//! The metrics registry: named counters, gauges, and log₂-bucketed
//! histograms with cheap atomic recording.
//!
//! Name lookup takes a short mutex-guarded map access; the returned
//! handles ([`Counter`], [`Gauge`], `Arc<Histogram>`) record through
//! relaxed atomics only, so hot paths can resolve a handle once and
//! record lock-free afterwards. Instrumentation sites that fire a few
//! times per trial (the common case here) simply use the name-based
//! convenience methods.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::snapshot::{HistogramSnapshot, MetricsSnapshot};

/// A monotonically increasing counter (merges by summation).
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `v`.
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A high-watermark gauge (keeps its maximum; merges by maximum).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Raises the gauge to at least `v`.
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Buckets per histogram: value `v` lands in bucket
/// `64 - v.leading_zeros()`, i.e. bucket `i` holds values in
/// `[2^(i-1), 2^i)` (bucket 0 holds exactly zero).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples (span histograms record
/// nanoseconds). Tracks count, sum, min, max, and per-bucket counts —
/// everything needed for totals, means, and order-of-magnitude
/// distributions, all merging associatively.
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        write!(
            f,
            "Histogram(count={}, sum={}, min={}, max={})",
            snap.count, snap.sum, snap.min, snap.max
        )
    }
}

fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Exports the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let mut buckets = BTreeMap::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.insert(i as u32, n);
            }
        }
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A registry of named counters, gauges, and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

fn cell(map: &Mutex<BTreeMap<String, Arc<AtomicU64>>>, name: &str) -> Arc<AtomicU64> {
    let mut map = map.lock().expect("metrics registry lock");
    if let Some(existing) = map.get(name) {
        return Arc::clone(existing);
    }
    let fresh = Arc::new(AtomicU64::new(0));
    map.insert(name.to_string(), Arc::clone(&fresh));
    fresh
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The named counter, created at zero on first use. The handle
    /// records lock-free.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(cell(&self.counters, name))
    }

    /// The named gauge, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(cell(&self.gauges, name))
    }

    /// The named histogram, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("metrics registry lock");
        if let Some(existing) = map.get(name) {
            return Arc::clone(existing);
        }
        let fresh = Arc::new(Histogram::new());
        map.insert(name.to_string(), Arc::clone(&fresh));
        fresh
    }

    /// Adds `v` to the named counter.
    pub fn add_counter(&self, name: &str, v: u64) {
        self.counter(name).add(v);
    }

    /// Raises the named gauge to at least `v`.
    pub fn gauge_max(&self, name: &str, v: u64) {
        self.gauge(name).set_max(v);
    }

    /// Records one sample into the named histogram.
    pub fn observe(&self, name: &str, v: u64) {
        self.histogram(name).record(v);
    }

    /// Drops every metric.
    pub fn clear(&self) {
        self.counters.lock().expect("metrics registry lock").clear();
        self.gauges.lock().expect("metrics registry lock").clear();
        self.histograms
            .lock()
            .expect("metrics registry lock")
            .clear();
    }

    /// Exports the current state of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let load = |map: &Mutex<BTreeMap<String, Arc<AtomicU64>>>| {
            map.lock()
                .expect("metrics registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect::<BTreeMap<String, u64>>()
        };
        let histograms = self
            .histograms
            .lock()
            .expect("metrics registry lock")
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        MetricsSnapshot {
            counters: load(&self.counters),
            gauges: load(&self.gauges),
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_handles() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.inc();
        assert_eq!(r.counter("x").get(), 3);
        r.add_counter("x", 4);
        assert_eq!(a.get(), 7);
    }

    #[test]
    fn gauges_keep_their_maximum() {
        let r = MetricsRegistry::new();
        r.gauge_max("g", 3);
        r.gauge_max("g", 9);
        r.gauge_max("g", 5);
        assert_eq!(r.gauge("g").get(), 9);
    }

    #[test]
    fn histogram_tracks_count_sum_min_max_and_buckets() {
        let r = MetricsRegistry::new();
        for v in [0u64, 1, 2, 3, 1024] {
            r.observe("h", v);
        }
        let snap = r.histogram("h").snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 1030);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 1024);
        // 0 → bucket 0, 1 → bucket 1, 2..3 → bucket 2, 1024 → bucket 11.
        assert_eq!(snap.buckets.get(&0), Some(&1));
        assert_eq!(snap.buckets.get(&1), Some(&1));
        assert_eq!(snap.buckets.get(&2), Some(&2));
        assert_eq!(snap.buckets.get(&11), Some(&1));
    }

    #[test]
    fn empty_histogram_snapshot_is_identity_shaped() {
        let r = MetricsRegistry::new();
        let snap = r.histogram("h").snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.min, 0, "empty min renders as 0, not u64::MAX");
        assert!(snap.buckets.is_empty());
    }

    #[test]
    fn clear_drops_everything() {
        let r = MetricsRegistry::new();
        r.add_counter("c", 1);
        r.observe("h", 1);
        r.clear();
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let r = std::sync::Arc::new(MetricsRegistry::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let r = std::sync::Arc::clone(&r);
                scope.spawn(move || {
                    for i in 0..1_000u64 {
                        r.add_counter("c", 1);
                        r.observe("h", i);
                    }
                });
            }
        });
        let snap = r.snapshot();
        assert_eq!(snap.counters["c"], 4_000);
        assert_eq!(snap.histograms["h"].count, 4_000);
    }
}

//! Phase spans: RAII guards that time a code region with the wall
//! clock and record the elapsed nanoseconds into a global histogram
//! when dropped.

use std::time::Instant;

/// An RAII phase timer. Created armed via [`Span::start`] (or through
/// [`crate::span`], which returns a disarmed no-op guard while
/// telemetry is off); on drop, records the elapsed wall-clock
/// nanoseconds into the global histogram named at construction.
///
/// ```
/// ichannels_obs::set_enabled(true);
/// {
///     let _span = ichannels_obs::span("span.doc.example");
///     // ... timed region ...
/// }
/// ichannels_obs::set_enabled(false);
/// let snap = ichannels_obs::global().snapshot();
/// assert_eq!(snap.histogram("span.doc.example").count, 1);
/// ```
#[derive(Debug)]
pub struct Span {
    armed: Option<(&'static str, Instant)>,
}

impl Span {
    /// Starts an armed span recording into histogram `name` on drop.
    pub fn start(name: &'static str) -> Self {
        Span {
            armed: Some((name, Instant::now())),
        }
    }

    /// A no-op guard: drop records nothing.
    pub fn disarmed() -> Self {
        Span { armed: None }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, started)) = self.armed.take() {
            let elapsed = started.elapsed().as_nanos();
            let ns = u64::try_from(elapsed).unwrap_or(u64::MAX);
            crate::global().observe(name, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn armed_span_records_elapsed_nanoseconds() {
        {
            let _span = Span::start("span.test.armed");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let snap = crate::global().snapshot();
        let hist = snap.histogram("span.test.armed");
        assert_eq!(hist.count, 1);
        assert!(hist.sum >= 1_000_000, "slept ≥1ms, recorded {}ns", hist.sum);
    }

    #[test]
    fn disarmed_span_records_nothing() {
        {
            let _span = Span::disarmed();
        }
        let snap = crate::global().snapshot();
        assert!(!snap.histograms.contains_key("span.test.disarmed"));
    }
}

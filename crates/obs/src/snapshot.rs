//! The exported telemetry state: a [`MetricsSnapshot`] renders to
//! one-line JSON, parses back, and merges associatively — N shard
//! snapshots merge (in any grouping and order) into exactly the
//! snapshot one unsharded process would have produced, the same
//! contract `merge_streams` gives trial rows.
//!
//! Merge semantics per metric class:
//!
//! * **counters** — summed;
//! * **gauges** — maximum (high-watermark semantics);
//! * **histograms** — count/sum summed, min/max combined, buckets
//!   added index-wise.
//!
//! All three are associative and commutative with the empty snapshot
//! as identity, which the workspace pins with a proptest over shard
//! splits (`tests/telemetry_invariance.rs`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema tag written into (and required from) every snapshot file.
pub const SCHEMA: &str = "ichannels-telemetry-v1";

/// One exported histogram: count, sum, min, max, and sparse log₂
/// bucket counts (bucket `i` holds values in `[2^(i-1), 2^i)`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Sparse bucket counts: log₂ bucket index → samples.
    pub buckets: BTreeMap<u32, u64>,
}

impl HistogramSnapshot {
    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds `other` into `self` (associative, commutative).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (&i, &n) in &other.buckets {
            *self.buckets.entry(i).or_insert(0) += n;
        }
    }
}

/// The exported state of a [`crate::MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The empty snapshot (the merge identity).
    pub fn new() -> Self {
        MetricsSnapshot::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The named counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram (empty when absent).
    pub fn histogram(&self, name: &str) -> HistogramSnapshot {
        self.histograms.get(name).cloned().unwrap_or_default()
    }

    /// Folds `other` into `self`: counters sum, gauges take the
    /// maximum, histograms merge bucket-wise. Associative and
    /// commutative — shard snapshots merge in any grouping.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_insert(0);
            *slot = (*slot).max(*v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Renders the snapshot as one line of JSON (deterministic: keys
    /// in sorted order, no whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"schema\":\"{SCHEMA}\",\"counters\":{{");
        render_u64_map(&mut out, &self.counters);
        out.push_str("},\"gauges\":{");
        render_u64_map(&mut out, &self.gauges);
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                escape(name),
                h.count,
                h.sum,
                h.min,
                h.max
            );
            for (j, (idx, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{idx},{n}]");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Parses a snapshot back from its JSON rendering.
    ///
    /// # Errors
    ///
    /// Returns a readable description when the text is not a
    /// `ichannels-telemetry-v1` snapshot (wrong schema tag, malformed
    /// JSON, unexpected value types).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut p = Parser {
            bytes: text.trim().as_bytes(),
            pos: 0,
        };
        let snap = p.parse_snapshot()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(snap)
    }
}

fn render_u64_map(out: &mut String, map: &BTreeMap<String, u64>) {
    for (i, (name, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{v}", escape(name));
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A minimal recursive-descent parser for exactly the JSON subset
/// [`MetricsSnapshot::to_json`] emits (objects, arrays, strings,
/// unsigned integers), tolerant of interstitial whitespace.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.peek() {
            Some(got) if got == b => {
                self.pos += 1;
                Ok(())
            }
            got => Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                got.map(|g| g as char)
            )),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "unsupported escape {:?}",
                                other.map(|b| *b as char)
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Multi-byte UTF-8 sequences pass through intact:
                    // copy the raw bytes of one scalar value.
                    let text =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = text.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                    let _ = b;
                }
            }
        }
    }

    fn parse_u64(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected an unsigned integer at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are UTF-8")
            .parse()
            .map_err(|e| format!("integer at byte {start}: {e}"))
    }

    /// Parses `{"k":v,...}` invoking `visit` per entry; the callback
    /// parses the value.
    fn parse_object(
        &mut self,
        mut visit: impl FnMut(&mut Self, String) -> Result<(), String>,
    ) -> Result<(), String> {
        self.expect(b'{')?;
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            visit(self, key)?;
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn parse_u64_map(&mut self) -> Result<BTreeMap<String, u64>, String> {
        let mut map = BTreeMap::new();
        self.parse_object(|p, key| {
            let v = p.parse_u64()?;
            map.insert(key, v);
            Ok(())
        })?;
        Ok(map)
    }

    fn parse_histogram(&mut self) -> Result<HistogramSnapshot, String> {
        let mut h = HistogramSnapshot::default();
        self.parse_object(|p, key| {
            match key.as_str() {
                "count" => h.count = p.parse_u64()?,
                "sum" => h.sum = p.parse_u64()?,
                "min" => h.min = p.parse_u64()?,
                "max" => h.max = p.parse_u64()?,
                "buckets" => {
                    p.expect(b'[')?;
                    if p.peek() == Some(b']') {
                        p.pos += 1;
                        return Ok(());
                    }
                    loop {
                        p.expect(b'[')?;
                        let idx = p.parse_u64()?;
                        p.expect(b',')?;
                        let n = p.parse_u64()?;
                        p.expect(b']')?;
                        let idx = u32::try_from(idx)
                            .map_err(|_| format!("bucket index {idx} out of range"))?;
                        h.buckets.insert(idx, n);
                        match p.peek() {
                            Some(b',') => p.pos += 1,
                            Some(b']') => {
                                p.pos += 1;
                                break;
                            }
                            other => {
                                return Err(format!(
                                    "expected ',' or ']' in buckets, found {:?}",
                                    other.map(|b| b as char)
                                ))
                            }
                        }
                    }
                }
                other => return Err(format!("unknown histogram field {other:?}")),
            }
            Ok(())
        })?;
        Ok(h)
    }

    fn parse_snapshot(&mut self) -> Result<MetricsSnapshot, String> {
        let mut schema: Option<String> = None;
        let mut snap = MetricsSnapshot::new();
        self.parse_object(|p, key| {
            match key.as_str() {
                "schema" => schema = Some(p.parse_string()?),
                "counters" => snap.counters = p.parse_u64_map()?,
                "gauges" => snap.gauges = p.parse_u64_map()?,
                "histograms" => {
                    let mut hists = BTreeMap::new();
                    p.parse_object(|p, name| {
                        let h = p.parse_histogram()?;
                        hists.insert(name, h);
                        Ok(())
                    })?;
                    snap.histograms = hists;
                }
                other => return Err(format!("unknown snapshot field {other:?}")),
            }
            Ok(())
        })?;
        match schema.as_deref() {
            Some(SCHEMA) => Ok(snap),
            Some(other) => Err(format!(
                "snapshot schema {other:?} is not the supported {SCHEMA:?}"
            )),
            None => Err(format!("snapshot has no \"schema\" tag ({SCHEMA:?})")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    fn sample() -> MetricsSnapshot {
        let r = MetricsRegistry::new();
        r.add_counter("trial.runs", 7);
        r.add_counter("calibration.memo_hits", 3);
        r.gauge_max("exec.threads", 4);
        for v in [0u64, 1, 900, 1_500, 2_000_000] {
            r.observe("trial.transmit", v);
        }
        r.snapshot()
    }

    #[test]
    fn json_round_trips_byte_exactly() {
        let snap = sample();
        let json = snap.to_json();
        assert!(json.starts_with("{\"schema\":\"ichannels-telemetry-v1\""));
        assert_eq!(json.lines().count(), 1, "one-line rendering");
        let reparsed = MetricsSnapshot::parse(&json).expect("parses");
        assert_eq!(reparsed, snap);
        assert_eq!(reparsed.to_json(), json, "re-render is byte-identical");
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let empty = MetricsSnapshot::new();
        assert!(empty.is_empty());
        let reparsed = MetricsSnapshot::parse(&empty.to_json()).expect("parses");
        assert_eq!(reparsed, empty);
    }

    #[test]
    fn parse_rejects_garbage_and_wrong_schemas() {
        assert!(MetricsSnapshot::parse("").is_err());
        assert!(MetricsSnapshot::parse("not json").is_err());
        assert!(
            MetricsSnapshot::parse("{\"counters\":{}}").is_err(),
            "no schema tag"
        );
        let wrong =
            "{\"schema\":\"something-else\",\"counters\":{},\"gauges\":{},\"histograms\":{}}";
        let err = MetricsSnapshot::parse(wrong).unwrap_err();
        assert!(err.contains("something-else"), "{err}");
        let torn = sample().to_json();
        assert!(MetricsSnapshot::parse(&torn[..torn.len() / 2]).is_err());
    }

    #[test]
    fn merge_sums_counters_maxes_gauges_and_folds_histograms() {
        let a = sample();
        let r = MetricsRegistry::new();
        r.add_counter("trial.runs", 2);
        r.add_counter("trial.errors", 1);
        r.gauge_max("exec.threads", 2);
        r.observe("trial.transmit", 10);
        let b = r.snapshot();

        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.counter("trial.runs"), 9);
        assert_eq!(merged.counter("trial.errors"), 1);
        assert_eq!(merged.gauges["exec.threads"], 4, "gauge keeps max");
        let h = merged.histogram("trial.transmit");
        assert_eq!(h.count, 6);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 2_000_000);

        // Commutativity on this pair.
        let mut swapped = b.clone();
        swapped.merge(&a);
        assert_eq!(swapped, merged);

        // Empty is the identity on both sides.
        let mut left = MetricsSnapshot::new();
        left.merge(&a);
        assert_eq!(left, a);
        let mut right = a.clone();
        right.merge(&MetricsSnapshot::new());
        assert_eq!(right, a);
    }

    #[test]
    fn metric_names_with_special_characters_survive() {
        let r = MetricsRegistry::new();
        r.add_counter("weird \"name\"\\with\tescapes", 1);
        let snap = r.snapshot();
        let reparsed = MetricsSnapshot::parse(&snap.to_json()).expect("parses");
        assert_eq!(reparsed, snap);
    }
}

//! # `ichannels-obs` — the telemetry layer
//!
//! A zero-dependency, **deterministic-safe** instrumentation substrate
//! for the simulation and campaign engine: counters, gauges, and
//! log₂-bucketed histograms recorded through cheap atomics, phase
//! spans that time code regions with the wall clock, and a JSON
//! snapshot format whose merge is associative (shard snapshots merge
//! into exactly the snapshot one unsharded process would have
//! produced, mirroring `merge_streams`).
//!
//! **Deterministic-safe** means the layer is strictly out-of-band:
//! nothing recorded here is ever read back by the simulation, so
//! enabling or disabling telemetry cannot change a single output byte
//! of any trial stream, CSV, or golden artifact (the repo's
//! telemetry-invariance tests pin this down). Wall-clock timestamps —
//! the only nondeterministic values in the system — exist *only* in
//! telemetry snapshots, never in results.
//!
//! * [`MetricsRegistry`] — named counters / gauges / histograms with
//!   atomic recording and a [`MetricsRegistry::snapshot`] export;
//! * [`MetricsSnapshot`] — the exported state: renders to one-line
//!   JSON ([`MetricsSnapshot::to_json`]), parses back
//!   ([`MetricsSnapshot::parse`]), and merges associatively
//!   ([`MetricsSnapshot::merge`]);
//! * [`Span`] — an RAII guard that records the elapsed nanoseconds of
//!   a code region into a histogram when dropped;
//! * the process-global registry ([`global`]) behind an on/off switch
//!   ([`set_enabled`]) — recording through the top-level helpers
//!   ([`counter_add`], [`gauge_max`], [`observe`], [`span`]) is a
//!   no-op while telemetry is off, so instrumented hot paths cost one
//!   relaxed atomic load in the default configuration.
//!
//! # Conventions
//!
//! Metric names are dotted lowercase paths (`trial.transmit`,
//! `calibration.memo_hits`). Span histograms record **nanoseconds**.
//! Counters merge by summation, gauges by maximum, histograms
//! bucket-wise — all associative and commutative, so shard snapshots
//! can be merged in any grouping.
//!
//! # Example
//!
//! ```
//! use ichannels_obs as obs;
//!
//! let registry = obs::MetricsRegistry::new();
//! registry.add_counter("trial.runs", 3);
//! registry.observe("trial.transmit", 1_500);
//! let snap = registry.snapshot();
//! let reparsed = obs::MetricsSnapshot::parse(&snap.to_json()).unwrap();
//! assert_eq!(snap, reparsed);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod registry;
mod snapshot;
mod span;

pub use registry::{Counter, Gauge, Histogram, MetricsRegistry};
pub use snapshot::{HistogramSnapshot, MetricsSnapshot, SCHEMA};
pub use span::Span;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// The process-global registry every instrumented crate records into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// True while telemetry recording is on (off by default — the
/// simulation pays one relaxed atomic load per instrumentation site).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns telemetry recording on or off. Toggling never changes any
/// simulated result — telemetry is strictly out-of-band.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Drops every metric recorded so far in the global registry.
pub fn reset() {
    global().clear();
}

/// Adds `v` to the named global counter (no-op while disabled).
pub fn counter_add(name: &str, v: u64) {
    if enabled() {
        global().add_counter(name, v);
    }
}

/// Raises the named global gauge to at least `v` (no-op while
/// disabled). Gauges keep their maximum, which is what merges
/// associatively across shards.
pub fn gauge_max(name: &str, v: u64) {
    if enabled() {
        global().gauge_max(name, v);
    }
}

/// Records one sample into the named global histogram (no-op while
/// disabled).
pub fn observe(name: &str, value: u64) {
    if enabled() {
        global().observe(name, value);
    }
}

/// Starts a phase span: an RAII guard that, when dropped, records the
/// elapsed wall-clock nanoseconds into the global histogram `name`.
/// Returns a disarmed no-op guard while telemetry is off.
pub fn span(name: &'static str) -> Span {
    if enabled() {
        Span::start(name)
    } else {
        Span::disarmed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_helpers_record_nothing() {
        // The global switch defaults to off; helpers must not touch
        // the registry. (Runs first alphabetically-independent: use a
        // dedicated name so other tests cannot interfere.)
        set_enabled(false);
        counter_add("lib.test.disabled", 5);
        observe("lib.test.disabled_hist", 5);
        let snap = global().snapshot();
        assert!(!snap.counters.contains_key("lib.test.disabled"));
        assert!(!snap.histograms.contains_key("lib.test.disabled_hist"));
    }

    #[test]
    fn enabled_helpers_record_into_the_global_registry() {
        set_enabled(true);
        counter_add("lib.test.enabled", 2);
        counter_add("lib.test.enabled", 3);
        gauge_max("lib.test.gauge", 7);
        gauge_max("lib.test.gauge", 4);
        {
            let _span = span("lib.test.span");
        }
        set_enabled(false);
        let snap = global().snapshot();
        assert_eq!(snap.counters.get("lib.test.enabled"), Some(&5));
        assert_eq!(snap.gauges.get("lib.test.gauge"), Some(&7));
        let hist = snap.histograms.get("lib.test.span").expect("span recorded");
        assert_eq!(hist.count, 1);
    }
}

//! CSV export for regenerated figures/tables.
//!
//! Every benchmark harness writes its series to `results/*.csv` so the
//! paper's plots can be regenerated with any plotting tool.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A rectangular table destined for CSV.
#[derive(Debug, Clone, Default)]
pub struct CsvTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Creates a table with the given column names.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        CsvTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Appends a row of floats, formatted with 6 significant digits.
    pub fn push_floats<I: IntoIterator<Item = f64>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(|v| format!("{v:.6}")).collect();
        self.push_row(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the CSV text (RFC-4180-style quoting of fields containing
    /// commas, quotes, or newlines).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let render = |cells: &[String]| {
            cells
                .iter()
                .map(|c| field(c))
                .collect::<Vec<_>>()
                .join(",")
        };
        let _ = writeln!(out, "{}", render(&self.header));
        for row in &self.rows {
            let _ = writeln!(out, "{}", render(row));
        }
        out
    }

    /// Writes the CSV to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or the write.
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let mut t = CsvTable::new(["a", "b"]);
        t.push_row(["1", "2"]);
        t.push_floats([0.5, 1.25]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "1,2");
        assert_eq!(lines[2], "0.500000,1.250000");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn quotes_special_fields() {
        let mut t = CsvTable::new(["x"]);
        t.push_row(["hello, \"world\""]);
        assert_eq!(t.to_csv().lines().nth(1).unwrap(), "\"hello, \"\"world\"\"\"");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = CsvTable::new(["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    fn writes_file() {
        let dir = std::env::temp_dir().join("ichannels_csv_test");
        let path = dir.join("t.csv");
        let mut t = CsvTable::new(["v"]);
        t.push_row(["42"]);
        t.write_to(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("42"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! CSV and JSONL export for regenerated figures/tables and campaigns.
//!
//! Every benchmark harness writes its series to `results/*.csv` so the
//! paper's plots can be regenerated with any plotting tool. The
//! experiment-campaign engine (`ichannels-lab`) additionally streams one
//! JSON object per trial to `results/*.jsonl` via [`JsonlWriter`].

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::io::Write as _;
use std::path::Path;

/// A rectangular table destined for CSV.
#[derive(Debug, Clone, Default)]
pub struct CsvTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Creates a table with the given column names.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        CsvTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Appends a row of floats, formatted with 6 significant digits.
    pub fn push_floats<I: IntoIterator<Item = f64>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(|v| format!("{v:.6}")).collect();
        self.push_row(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the CSV text (RFC-4180-style quoting of fields containing
    /// commas, quotes, or newlines).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let render =
            |cells: &[String]| cells.iter().map(|c| field(c)).collect::<Vec<_>>().join(",");
        let _ = writeln!(out, "{}", render(&self.header));
        for row in &self.rows {
            let _ = writeln!(out, "{}", render(row));
        }
        out
    }

    /// Writes the CSV to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or the write.
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// One JSON object assembled field by field, preserving insertion order
/// (so identical runs produce byte-identical lines).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JsonlRow {
    fields: Vec<(String, String)>, // key → pre-rendered JSON value
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl JsonlRow {
    /// An empty row.
    pub fn new() -> Self {
        JsonlRow::default()
    }

    fn push(mut self, key: &str, rendered: String) -> Self {
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Appends a string field.
    pub fn str(self, key: &str, value: &str) -> Self {
        let rendered = format!("\"{}\"", json_escape(value));
        self.push(key, rendered)
    }

    /// Appends a float field (`null` for non-finite values).
    pub fn num(self, key: &str, value: f64) -> Self {
        let rendered = if value.is_finite() {
            // Shortest round-trip formatting keeps rows compact and
            // byte-stable across runs.
            format!("{value}")
        } else {
            "null".to_string()
        };
        self.push(key, rendered)
    }

    /// Appends an integer field.
    pub fn int(self, key: &str, value: u64) -> Self {
        self.push(key, value.to_string())
    }

    /// Appends a boolean field.
    pub fn bool(self, key: &str, value: bool) -> Self {
        self.push(key, value.to_string())
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the row has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Renders the row as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(k), v);
        }
        out.push('}');
        out
    }
}

/// Streams [`JsonlRow`]s to a file, one JSON object per line.
///
/// Rows are written (and flushed through a [`io::BufWriter`]) as they
/// arrive, so long campaigns expose partial results while running.
#[derive(Debug)]
pub struct JsonlWriter {
    out: io::BufWriter<fs::File>,
    rows: usize,
}

impl JsonlWriter {
    /// Creates (truncates) `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from directory creation or file open.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        Ok(JsonlWriter {
            out: io::BufWriter::new(fs::File::create(path)?),
            rows: 0,
        })
    }

    /// Appends one row.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error.
    pub fn write_row(&mut self, row: &JsonlRow) -> io::Result<()> {
        writeln!(self.out, "{}", row.to_json())?;
        self.rows += 1;
        Ok(())
    }

    /// Flushes buffered rows to disk without closing the stream.
    ///
    /// Live campaign streams flush after every accepted trial so the
    /// file on disk is always a whole-line prefix of the run (at most
    /// the final line torn) — the invariant resume leans on after an
    /// interruption. Bulk rewrites (merge) skip per-row flushing.
    ///
    /// # Errors
    ///
    /// Propagates the flush error.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    /// Number of rows written so far.
    pub fn rows_written(&self) -> usize {
        self.rows
    }

    /// Flushes and closes the stream.
    ///
    /// # Errors
    ///
    /// Propagates the flush error.
    pub fn finish(mut self) -> io::Result<usize> {
        self.out.flush()?;
        Ok(self.rows)
    }
}

/// Renders rows to one JSONL string (for in-memory comparisons).
pub fn jsonl_to_string<'a, I: IntoIterator<Item = &'a JsonlRow>>(rows: I) -> String {
    let mut out = String::new();
    for row in rows {
        let _ = writeln!(out, "{}", row.to_json());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let mut t = CsvTable::new(["a", "b"]);
        t.push_row(["1", "2"]);
        t.push_floats([0.5, 1.25]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "1,2");
        assert_eq!(lines[2], "0.500000,1.250000");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn quotes_special_fields() {
        let mut t = CsvTable::new(["x"]);
        t.push_row(["hello, \"world\""]);
        assert_eq!(
            t.to_csv().lines().nth(1).unwrap(),
            "\"hello, \"\"world\"\"\""
        );
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = CsvTable::new(["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    fn writes_file() {
        let dir = std::env::temp_dir().join("ichannels_csv_test");
        let path = dir.join("t.csv");
        let mut t = CsvTable::new(["v"]);
        t.push_row(["42"]);
        t.write_to(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("42"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn jsonl_row_renders_in_insertion_order() {
        let row = JsonlRow::new()
            .str("name", "IccSMTcovert")
            .num("ber", 0.25)
            .int("n", 40)
            .bool("ok", true);
        assert_eq!(
            row.to_json(),
            "{\"name\":\"IccSMTcovert\",\"ber\":0.25,\"n\":40,\"ok\":true}"
        );
    }

    #[test]
    fn jsonl_escapes_and_nulls() {
        let row = JsonlRow::new()
            .str("s", "a\"b\\c\nd")
            .num("bad", f64::NAN)
            .num("inf", f64::INFINITY);
        assert_eq!(
            row.to_json(),
            "{\"s\":\"a\\\"b\\\\c\\nd\",\"bad\":null,\"inf\":null}"
        );
    }

    #[test]
    fn jsonl_writer_streams_lines() {
        let dir = std::env::temp_dir().join("ichannels_jsonl_test");
        let path = dir.join("t.jsonl");
        let mut w = JsonlWriter::create(&path).unwrap();
        for i in 0..3u64 {
            w.write_row(&JsonlRow::new().int("i", i)).unwrap();
        }
        assert_eq!(w.rows_written(), 3);
        assert_eq!(w.finish().unwrap(), 3);
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines, ["{\"i\":0}", "{\"i\":1}", "{\"i\":2}"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flushed_jsonl_rows_are_durable_before_finish() {
        // Resume leans on this: a flushed row reaches the file while
        // the stream is still open, so a killed campaign loses at most
        // a torn tail.
        let dir = std::env::temp_dir().join("ichannels_jsonl_flush_test");
        let path = dir.join("t.jsonl");
        let mut w = JsonlWriter::create(&path).unwrap();
        w.write_row(&JsonlRow::new().int("i", 7)).unwrap();
        w.flush().unwrap();
        // Read back while the writer is still open and unfinished.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"i\":7}\n");
        drop(w);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn jsonl_to_string_matches_writer_output() {
        let rows = [JsonlRow::new().int("i", 0), JsonlRow::new().str("x", "y")];
        assert_eq!(jsonl_to_string(rows.iter()), "{\"i\":0}\n{\"x\":\"y\"}\n");
    }
}

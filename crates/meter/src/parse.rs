//! JSONL parsing — the read side of [`crate::export`].
//!
//! The campaign engine streams one flat JSON object per line through
//! [`crate::export::JsonlWriter`]; this module parses those lines back
//! so shard outputs can be reloaded, merged, and resumed. The grammar
//! is deliberately the subset the writer emits: a single-line object of
//! string keys mapping to strings, numbers, booleans, or `null` — no
//! nesting, no arrays.
//!
//! Values round-trip byte-exactly: a non-negative integer literal
//! parses to [`JsonValue::Uint`] (so `u64` seeds survive), any other
//! numeric literal to [`JsonValue::Num`], and re-rendering a parsed
//! float with Rust's shortest round-trip `Display` reproduces the
//! original bytes.

use std::fmt;
use std::str::Chars;

/// A parsed JSON scalar.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal (no `.`, `e`, or sign).
    Uint(u64),
    /// Any other numeric literal.
    Num(f64),
    /// A string literal (escapes resolved).
    Str(String),
}

impl JsonValue {
    /// The value as an `f64`, if numeric ([`JsonValue::Uint`] widens).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::Uint(u) => Some(u as f64),
            JsonValue::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The value as an `f64`, treating `null` as NaN (the writer
    /// renders non-finite floats as `null`).
    pub fn as_f64_or_nan(&self) -> Option<f64> {
        match *self {
            JsonValue::Null => Some(f64::NAN),
            _ => self.as_f64(),
        }
    }

    /// The value as a `u64`, if an integer literal.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::Uint(u) => Some(u),
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A malformed JSONL line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed JSONL line: {}", self.message)
    }
}

impl std::error::Error for JsonParseError {}

fn err<T>(message: impl Into<String>) -> Result<T, JsonParseError> {
    Err(JsonParseError {
        message: message.into(),
    })
}

struct Cursor<'a> {
    chars: std::iter::Peekable<Chars<'a>>,
}

impl Cursor<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(' ' | '\t')) {
            self.chars.next();
        }
    }

    fn expect(&mut self, want: char) -> Result<(), JsonParseError> {
        self.skip_ws();
        match self.chars.next() {
            Some(c) if c == want => Ok(()),
            Some(c) => err(format!("expected `{want}`, found `{c}`")),
            None => err(format!("expected `{want}`, found end of line")),
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                None => return err("unterminated string"),
                Some('"') => return Ok(out),
                Some('\\') => match self.chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.chars.next().and_then(|c| c.to_digit(16)).ok_or_else(
                                || JsonParseError {
                                    message: "bad \\u escape".to_string(),
                                },
                            )?;
                            code = code * 16 + d;
                        }
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => return err("bad \\u code point"),
                        }
                    }
                    other => return err(format!("bad escape `\\{other:?}`")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        self.skip_ws();
        match self.chars.peek() {
            Some('"') => Ok(JsonValue::Str(self.string()?)),
            Some('t') | Some('f') | Some('n') => {
                let mut word = String::new();
                while matches!(self.chars.peek(), Some(c) if c.is_ascii_alphabetic()) {
                    word.push(self.chars.next().expect("peeked"));
                }
                match word.as_str() {
                    "true" => Ok(JsonValue::Bool(true)),
                    "false" => Ok(JsonValue::Bool(false)),
                    "null" => Ok(JsonValue::Null),
                    other => err(format!("unknown literal `{other}`")),
                }
            }
            Some(c) if *c == '-' || c.is_ascii_digit() => {
                let mut lit = String::new();
                while matches!(
                    self.chars.peek(),
                    Some(c) if c.is_ascii_digit()
                        || matches!(c, '-' | '+' | '.' | 'e' | 'E')
                ) {
                    lit.push(self.chars.next().expect("peeked"));
                }
                let plain_int = !lit.is_empty() && lit.bytes().all(|b| b.is_ascii_digit());
                if plain_int {
                    if let Ok(u) = lit.parse::<u64>() {
                        return Ok(JsonValue::Uint(u));
                    }
                }
                match lit.parse::<f64>() {
                    Ok(n) => Ok(JsonValue::Num(n)),
                    Err(_) => err(format!("bad number `{lit}`")),
                }
            }
            Some(c) => err(format!("unexpected `{c}` at value position")),
            None => err("missing value"),
        }
    }
}

/// Parses one JSONL line into its `(key, value)` pairs, in document
/// order.
///
/// # Errors
///
/// Returns [`JsonParseError`] when the line is not a flat JSON object
/// of supported scalar values (including a line truncated mid-write).
pub fn parse_jsonl_line(line: &str) -> Result<Vec<(String, JsonValue)>, JsonParseError> {
    let mut cur = Cursor {
        chars: line.trim_end_matches(['\n', '\r']).chars().peekable(),
    };
    cur.expect('{')?;
    let mut fields = Vec::new();
    cur.skip_ws();
    if cur.chars.peek() == Some(&'}') {
        cur.chars.next();
    } else {
        loop {
            let key = cur.string()?;
            cur.expect(':')?;
            let value = cur.value()?;
            fields.push((key, value));
            cur.skip_ws();
            match cur.chars.next() {
                Some(',') => continue,
                Some('}') => break,
                Some(c) => return err(format!("expected `,` or `}}`, found `{c}`")),
                None => return err("unterminated object"),
            }
        }
    }
    cur.skip_ws();
    match cur.chars.next() {
        None => Ok(fields),
        Some(c) => err(format!("trailing `{c}` after object")),
    }
}

/// Looks up a field by key in a parsed line.
pub fn field<'a>(fields: &'a [(String, JsonValue)], key: &str) -> Option<&'a JsonValue> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::JsonlRow;

    #[test]
    fn parses_writer_output_back() {
        let row = JsonlRow::new()
            .str("cell", "cannon_lake/IccThreadCovert/quiet")
            .int("trial", 0)
            .int("seed", 0xCBF2_9CE4_8422_2325)
            .num("ber", 0.03125)
            .num("nan", f64::NAN)
            .bool("ok", true);
        let fields = parse_jsonl_line(&row.to_json()).expect("parses");
        assert_eq!(fields.len(), 6);
        assert_eq!(
            field(&fields, "cell").and_then(JsonValue::as_str),
            Some("cannon_lake/IccThreadCovert/quiet")
        );
        assert_eq!(
            field(&fields, "seed").and_then(JsonValue::as_u64),
            Some(0xCBF2_9CE4_8422_2325)
        );
        assert_eq!(
            field(&fields, "ber").and_then(JsonValue::as_f64),
            Some(0.03125)
        );
        assert!(field(&fields, "nan")
            .and_then(JsonValue::as_f64_or_nan)
            .expect("null maps to NaN")
            .is_nan());
        assert_eq!(field(&fields, "ok"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn floats_round_trip_byte_exactly() {
        for v in [0.19047619047619047, 2918.0, 1e-7, -0.5, 123456789.25] {
            let rendered = JsonlRow::new().num("v", v).to_json();
            let fields = parse_jsonl_line(&rendered).expect("parses");
            let back = field(&fields, "v").and_then(JsonValue::as_f64).unwrap();
            assert_eq!(JsonlRow::new().num("v", back).to_json(), rendered);
        }
    }

    #[test]
    fn string_escapes_resolve() {
        let rendered = JsonlRow::new().str("s", "a\"b\\c\nd\te").to_json();
        let fields = parse_jsonl_line(&rendered).expect("parses");
        assert_eq!(
            field(&fields, "s").and_then(JsonValue::as_str),
            Some("a\"b\\c\nd\te")
        );
        let unicode = parse_jsonl_line("{\"s\":\"\\u0041\"}").expect("parses");
        assert_eq!(field(&unicode, "s").and_then(JsonValue::as_str), Some("A"));
    }

    #[test]
    fn empty_object_parses() {
        assert!(parse_jsonl_line("{}").expect("parses").is_empty());
    }

    #[test]
    fn truncated_lines_are_rejected() {
        for bad in [
            "",
            "{",
            "{\"a\":",
            "{\"a\":1",
            "{\"a\":1,",
            "{\"a\":\"unterminated",
            "{\"a\":1}garbage",
            "[1,2]",
            "{\"a\":{}}",
        ] {
            assert!(parse_jsonl_line(bad).is_err(), "accepted {bad:?}");
        }
    }
}

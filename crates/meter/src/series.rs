//! Time-series analysis for the characterization traces: uniform
//! resampling, moving averages, and automatic step detection (used to
//! quantify the Figure 6 voltage steps without eyeballing plots).

/// A uniformly or non-uniformly sampled `(t_seconds, value)` series.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Series {
    points: Vec<(f64, f64)>,
}

/// A detected step change in a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Step {
    /// Time of the step (s).
    pub time_s: f64,
    /// Level before the step.
    pub before: f64,
    /// Level after the step.
    pub after: f64,
}

impl Step {
    /// Signed step amplitude.
    pub fn amplitude(&self) -> f64 {
        self.after - self.before
    }
}

impl Series {
    /// Creates a series from `(t, v)` points.
    ///
    /// # Panics
    ///
    /// Panics if the timestamps are not strictly increasing or any value
    /// is not finite.
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(
            points.windows(2).all(|w| w[1].0 > w[0].0),
            "series timestamps must be strictly increasing"
        );
        assert!(
            points.iter().all(|(t, v)| t.is_finite() && v.is_finite()),
            "non-finite series point"
        );
        Series { points }
    }

    /// The points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Value at `t` (zero-order hold; clamps at the ends).
    ///
    /// # Panics
    ///
    /// Panics on an empty series.
    pub fn value_at(&self, t: f64) -> f64 {
        assert!(!self.points.is_empty(), "value_at on empty series");
        match self.points.iter().rev().find(|(pt, _)| *pt <= t) {
            Some((_, v)) => *v,
            None => self.points[0].1,
        }
    }

    /// Centred moving average over a window of `2k+1` points.
    pub fn moving_average(&self, k: usize) -> Series {
        let n = self.points.len();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let lo = i.saturating_sub(k);
            let hi = (i + k + 1).min(n);
            let mean = self.points[lo..hi].iter().map(|(_, v)| v).sum::<f64>() / (hi - lo) as f64;
            out.push((self.points[i].0, mean));
        }
        Series { points: out }
    }

    /// Detects level steps: positions where the mean of the next `w`
    /// samples differs from the mean of the previous `w` samples by more
    /// than `threshold`. Consecutive detections within `w` samples merge
    /// into one step.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`.
    pub fn detect_steps(&self, w: usize, threshold: f64) -> Vec<Step> {
        assert!(w > 0, "window must be non-zero");
        let n = self.points.len();
        let mut steps = Vec::new();
        if n < 2 * w {
            return steps;
        }
        let mean = |range: std::ops::Range<usize>| -> f64 {
            let len = range.len();
            self.points[range].iter().map(|(_, v)| v).sum::<f64>() / len as f64
        };
        let mut i = w;
        while i + w <= n {
            let before = mean(i - w..i);
            let after = mean(i..i + w);
            if (after - before).abs() > threshold {
                // Refine: slide forward to the point of maximum contrast,
                // so the reported levels are the settled plateaus rather
                // than partial-window mixtures.
                let mut best = i;
                let mut best_diff = (after - before).abs();
                let mut j = i + 1;
                while j + w <= n && j <= i + 2 * w {
                    let d = (mean(j..j + w) - mean(j - w..j)).abs();
                    if d > best_diff {
                        best_diff = d;
                        best = j;
                    }
                    j += 1;
                }
                steps.push(Step {
                    time_s: self.points[best].0,
                    before: mean(best - w..best),
                    after: mean(best..best + w),
                });
                i = best + 2 * w; // skip past this transition entirely
            } else {
                i += 1;
            }
        }
        steps
    }
}

impl FromIterator<(f64, f64)> for Series {
    fn from_iter<I: IntoIterator<Item = (f64, f64)>>(iter: I) -> Self {
        Series::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn staircase() -> Series {
        // 0 mV for 100 samples, then 8 mV, then 17 mV, back to 0.
        let mut pts = Vec::new();
        for i in 0..400 {
            let v = match i {
                0..=99 => 0.0,
                100..=199 => 8.0,
                200..=299 => 17.0,
                _ => 0.0,
            };
            pts.push((i as f64 * 1e-3, v));
        }
        Series::new(pts)
    }

    #[test]
    fn detects_figure6_style_steps() {
        let s = staircase();
        let steps = s.detect_steps(20, 2.0);
        assert_eq!(steps.len(), 3, "steps = {steps:?}");
        assert!((steps[0].amplitude() - 8.0).abs() < 0.5);
        assert!((steps[1].amplitude() - 9.0).abs() < 0.5);
        assert!((steps[2].amplitude() + 17.0).abs() < 0.5);
    }

    #[test]
    fn no_steps_in_flat_series() {
        let s: Series = (0..100).map(|i| (i as f64, 5.0)).collect();
        assert!(s.detect_steps(10, 1.0).is_empty());
    }

    #[test]
    fn moving_average_smooths() {
        let noisy: Series = (0..100)
            .map(|i| (i as f64, if i % 2 == 0 { 1.0 } else { -1.0 }))
            .collect();
        let smooth = noisy.moving_average(5);
        assert!(smooth.points().iter().all(|(_, v)| v.abs() < 0.2));
    }

    #[test]
    fn value_at_zero_order_hold() {
        let s = Series::new(vec![(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]);
        assert_eq!(s.value_at(0.5), 1.0);
        assert_eq!(s.value_at(1.0), 2.0);
        assert_eq!(s.value_at(9.0), 3.0);
        assert_eq!(s.value_at(-1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unordered_points() {
        let _ = Series::new(vec![(1.0, 0.0), (0.5, 0.0)]);
    }
}

//! Statistics utilities for the characterization and channel evaluation:
//! summaries, histograms/PDFs (Figures 8(a), 11(a), 13), confusion
//! matrices and bit-error rates (Figure 14).

use std::collections::BTreeMap;

/// Summary statistics of a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

/// Computes summary statistics.
///
/// # Panics
///
/// Panics on an empty slice or non-finite values.
pub fn summarize(values: &[f64]) -> Summary {
    assert!(!values.is_empty(), "cannot summarize an empty sample");
    assert!(
        values.iter().all(|v| v.is_finite()),
        "non-finite value in sample"
    );
    let n = values.len();
    let mean = values.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Summary {
        n,
        mean,
        std_dev: var.sqrt(),
        min,
        max,
    }
}

/// Linear-interpolation percentile (`p` ∈ [0, 100]).
///
/// # Panics
///
/// Panics on an empty slice or `p` outside [0, 100].
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let t = rank - lo as f64;
        v[lo] * (1.0 - t) + v[hi] * t
    }
}

/// Median (50th percentile).
pub fn median(values: &[f64]) -> f64 {
    percentile(values, 50.0)
}

/// A fixed-width histogram over a closed range; out-of-range samples are
/// clamped into the edge bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "invalid histogram range [{lo}, {hi}]");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, v: f64) {
        let bins = self.counts.len();
        let idx = if v <= self.lo {
            0
        } else if v >= self.hi {
            bins - 1
        } else {
            (((v - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
        self.total += 1;
    }

    /// Adds many samples.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.add(v);
        }
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of samples added.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }

    /// `(bin_center, probability_density)` pairs — the PDF estimate used
    /// by Figures 8(a), 11(a), and 13.
    pub fn pdf(&self) -> Vec<(f64, f64)> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        let total = self.total.max(1) as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.bin_center(i), c as f64 / total / w))
            .collect()
    }
}

/// A square confusion matrix over `k` symbol classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    k: usize,
    counts: Vec<u64>, // row-major: [sent][received]
}

impl ConfusionMatrix {
    /// Creates an empty `k × k` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "confusion matrix needs at least one class");
        ConfusionMatrix {
            k,
            counts: vec![0; k * k],
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.k
    }

    /// Records one (sent, received) observation.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, sent: usize, received: usize) {
        assert!(sent < self.k && received < self.k, "class out of range");
        self.counts[sent * self.k + received] += 1;
    }

    /// Count for a (sent, received) cell.
    pub fn count(&self, sent: usize, received: usize) -> u64 {
        self.counts[sent * self.k + received]
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Symbol error rate: fraction of off-diagonal observations.
    pub fn symbol_error_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.k).map(|i| self.count(i, i)).sum();
        (total - correct) as f64 / total as f64
    }

    /// Bit error rate for a 2-bit symbol mapping (symbols 0..4 encode the
    /// bit pairs 00/01/10/11): average fraction of wrong *bits*.
    ///
    /// # Panics
    ///
    /// Panics unless the matrix has exactly 4 classes.
    pub fn bit_error_rate_2bit(&self) -> f64 {
        assert_eq!(self.k, 4, "2-bit BER requires 4 symbol classes");
        let total_bits = self.total() * 2;
        if total_bits == 0 {
            return 0.0;
        }
        let mut wrong_bits = 0u64;
        for s in 0..4 {
            for r in 0..4 {
                let diff = u64::from(((s ^ r) as u32).count_ones());
                wrong_bits += diff * self.count(s, r);
            }
        }
        wrong_bits as f64 / total_bits as f64
    }

    /// Shannon capacity (bits/symbol) of the discrete memoryless channel
    /// estimated from the matrix, assuming uniform inputs: the mutual
    /// information `I(X;Y)`.
    pub fn mutual_information_bits(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let n = total as f64;
        // Joint p(x,y), marginals p(x), p(y).
        let mut px = vec![0.0; self.k];
        let mut py = vec![0.0; self.k];
        for (x, px_x) in px.iter_mut().enumerate() {
            for (y, py_y) in py.iter_mut().enumerate() {
                let p = self.count(x, y) as f64 / n;
                *px_x += p;
                *py_y += p;
            }
        }
        let mut mi = 0.0;
        for (x, &px_x) in px.iter().enumerate() {
            for (y, &py_y) in py.iter().enumerate() {
                let pxy = self.count(x, y) as f64 / n;
                if pxy > 0.0 && px_x > 0.0 && py_y > 0.0 {
                    mi += pxy * (pxy / (px_x * py_y)).log2();
                }
            }
        }
        mi.max(0.0)
    }

    /// Miller–Madow bias-corrected mutual information (bits/symbol).
    ///
    /// The naive plug-in MI estimate is biased upward by roughly
    /// `(m − r − c + 1) / (2N ln 2)` where `m`, `r`, `c` are the counts
    /// of non-zero joint/row/column cells — significant for small sample
    /// counts. This matters when deciding that a *mitigated* channel
    /// really carries (close to) zero information.
    pub fn mutual_information_bits_corrected(&self) -> f64 {
        let n = self.total();
        if n == 0 {
            return 0.0;
        }
        let mut nonzero_joint = 0i64;
        let mut row_nonzero = 0i64;
        let mut col_nonzero = 0i64;
        for x in 0..self.k {
            if (0..self.k).any(|y| self.count(x, y) > 0) {
                row_nonzero += 1;
            }
            if (0..self.k).any(|y| self.count(y, x) > 0) {
                col_nonzero += 1;
            }
            for y in 0..self.k {
                if self.count(x, y) > 0 {
                    nonzero_joint += 1;
                }
            }
        }
        let bias_terms = (nonzero_joint - row_nonzero - col_nonzero + 1).max(0) as f64;
        let bias = bias_terms / (2.0 * n as f64 * std::f64::consts::LN_2);
        (self.mutual_information_bits() - bias).max(0.0)
    }
}

/// Simple 1-D k-means-style level clustering: given sorted-ish samples
/// known to come from `k` levels, returns the `k` cluster means (used for
/// threshold calibration sanity checks).
///
/// # Panics
///
/// Panics if `values.len() < k` or `k == 0`.
pub fn cluster_means(values: &[f64], k: usize) -> Vec<f64> {
    assert!(k > 0, "need at least one cluster");
    assert!(values.len() >= k, "fewer samples than clusters");
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    // Initialize means from quantiles, then run a few Lloyd iterations.
    let mut means: Vec<f64> = (0..k)
        .map(|i| v[(i * (v.len() - 1)) / (k.max(2) - 1).max(1)])
        .collect();
    for _ in 0..32 {
        let mut sums = vec![0.0; k];
        let mut counts = vec![0u64; k];
        for &x in &v {
            let (best, _) = means
                .iter()
                .enumerate()
                .map(|(i, m)| (i, (x - m).abs()))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                .expect("k >= 1");
            sums[best] += x;
            counts[best] += 1;
        }
        let mut changed = false;
        for i in 0..k {
            if counts[i] > 0 {
                let nm = sums[i] / counts[i] as f64;
                if (nm - means[i]).abs() > 1e-12 {
                    changed = true;
                }
                means[i] = nm;
            }
        }
        if !changed {
            break;
        }
    }
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    means
}

/// Counts distinct "levels" among values: greedy clustering with the
/// given separation tolerance. Used to verify the "at least five
/// throttling levels" claim (Key Conclusion 4).
pub fn distinct_levels(values: &[f64], tolerance: f64) -> usize {
    let mut centers: BTreeMap<i64, f64> = BTreeMap::new();
    let mut out: Vec<f64> = Vec::new();
    for &v in values {
        if !out.iter().any(|c| (c - v).abs() <= tolerance) {
            out.push(v);
        }
    }
    let _ = &mut centers;
    out.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_basics() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - 1.2909944487358056).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 100.0), 40.0);
        assert_eq!(median(&v), 25.0);
    }

    #[test]
    fn histogram_pdf_integrates_to_one() {
        let mut h = Histogram::new(0.0, 10.0, 20);
        h.extend((0..1000).map(|i| (i % 10) as f64 + 0.5));
        let w = 0.5;
        let integral: f64 = h.pdf().iter().map(|(_, d)| d * w).sum();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_clamps_outliers() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(-5.0);
        h.add(7.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 1);
    }

    #[test]
    fn confusion_ber() {
        let mut m = ConfusionMatrix::new(4);
        // 3 correct, 1 error of Hamming distance 2 (00 → 11).
        m.record(0, 0);
        m.record(1, 1);
        m.record(2, 2);
        m.record(0, 3);
        assert!((m.symbol_error_rate() - 0.25).abs() < 1e-12);
        assert!((m.bit_error_rate_2bit() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn perfect_channel_has_two_bits_of_mi() {
        let mut m = ConfusionMatrix::new(4);
        for s in 0..4 {
            for _ in 0..100 {
                m.record(s, s);
            }
        }
        assert!((m.mutual_information_bits() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn useless_channel_has_zero_mi() {
        let mut m = ConfusionMatrix::new(4);
        for s in 0..4 {
            for r in 0..4 {
                for _ in 0..25 {
                    m.record(s, r);
                }
            }
        }
        assert!(m.mutual_information_bits() < 1e-9);
    }

    #[test]
    fn corrected_mi_removes_small_sample_bias() {
        // Independent sender/receiver over few samples: naive MI is
        // biased upward, the corrected estimate stays near zero.
        let mut m = ConfusionMatrix::new(4);
        let pattern = [0usize, 1, 2, 3, 1, 3, 0, 2];
        for (i, &r) in pattern.iter().enumerate() {
            m.record(i % 4, r);
        }
        assert!(m.mutual_information_bits() > 0.2);
        assert!(m.mutual_information_bits_corrected() < m.mutual_information_bits());
        // And a perfect channel is not penalized.
        let mut p = ConfusionMatrix::new(4);
        for s in 0..4 {
            for _ in 0..10 {
                p.record(s, s);
            }
        }
        assert!((p.mutual_information_bits_corrected() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cluster_means_recovers_levels() {
        let mut vals = Vec::new();
        for c in [5.0, 10.0, 20.0, 40.0] {
            for i in 0..50 {
                vals.push(c + (i % 5) as f64 * 0.01);
            }
        }
        let means = cluster_means(&vals, 4);
        for (m, c) in means.iter().zip([5.0, 10.0, 20.0, 40.0]) {
            assert!((m - c).abs() < 0.5, "means = {means:?}");
        }
    }

    #[test]
    fn distinct_levels_counts() {
        let vals = [1.0, 1.05, 3.0, 3.02, 5.0, 9.0, 9.1];
        assert_eq!(distinct_levels(&vals, 0.2), 4);
        assert_eq!(distinct_levels(&vals, 10.0), 1);
    }

    proptest! {
        #[test]
        fn ber_in_unit_interval(obs in proptest::collection::vec((0usize..4, 0usize..4), 1..200)) {
            let mut m = ConfusionMatrix::new(4);
            for (s, r) in obs {
                m.record(s, r);
            }
            let ber = m.bit_error_rate_2bit();
            prop_assert!((0.0..=1.0).contains(&ber));
            let ser = m.symbol_error_rate();
            prop_assert!((0.0..=1.0).contains(&ser));
            // SER bounds BER for 2-bit symbols: BER ≤ SER ≤ 2·BER.
            prop_assert!(ber <= ser + 1e-12);
            prop_assert!(ser <= 2.0 * ber + 1e-12);
        }

        #[test]
        fn mi_bounded_by_two_bits(obs in proptest::collection::vec((0usize..4, 0usize..4), 1..200)) {
            let mut m = ConfusionMatrix::new(4);
            for (s, r) in obs {
                m.record(s, r);
            }
            let mi = m.mutual_information_bits();
            prop_assert!((0.0..=2.0 + 1e-9).contains(&mi));
        }

        #[test]
        fn percentile_monotone(vals in proptest::collection::vec(-100.0f64..100.0, 2..50), p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(percentile(&vals, lo) <= percentile(&vals, hi) + 1e-12);
        }
    }
}

//! # `ichannels-meter` — measurement substrate
//!
//! The stand-in for the paper's NI-DAQ measurement infrastructure (§5.1)
//! plus the statistics used throughout the evaluation.
//!
//! * [`daq`] — a simulated NI-PCIe-6376 card: 3.5 MS/s uniform sampling
//!   of the SoC trace with 99.94 % accuracy noise.
//! * [`stats`] — summaries, percentiles, histograms/PDFs (Figures 8(a),
//!   11(a), 13), confusion matrices / BER / mutual information
//!   (Figure 14, channel capacity).
//! * [`series`] — time-series utilities (moving averages, automatic
//!   step detection for the Figure 6 voltage staircase).
//! * [`export`] — CSV tables for `results/*.csv` and the JSONL trial
//!   stream writer.
//! * [`parse`] — the JSONL read side: reload campaign trial streams
//!   for shard merging and resume.
//!
//! # Example
//!
//! ```
//! use ichannels_meter::stats::ConfusionMatrix;
//!
//! let mut m = ConfusionMatrix::new(4);
//! for s in 0..4 {
//!     m.record(s, s); // a perfect 2-bit channel
//! }
//! assert_eq!(m.bit_error_rate_2bit(), 0.0);
//! assert!((m.mutual_information_bits() - 2.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod daq;
pub mod export;
pub mod parse;
pub mod series;
pub mod stats;

pub use daq::{Daq, DaqConfig, DaqSample};
pub use export::CsvTable;
pub use parse::{parse_jsonl_line, JsonParseError, JsonValue};
pub use series::{Series, Step};
pub use stats::{ConfusionMatrix, Histogram, Summary};

//! The NI-DAQ measurement model (paper §5.1, Figure 5).
//!
//! The paper measures core voltage and current "with a National
//! Instruments Data Acquisition (NI-DAQ) card (NI-PCIe-6376), whose
//! sampling rate reaches up to 3.5 Mega-samples-per-second" and a "power
//! measurement accuracy of 99.94 %". We model the card as a uniform
//! resampler over the simulator's trace with multiplicative Gaussian
//! accuracy noise.

use ichannels_soc::trace::Trace;
use ichannels_uarch::time::{Freq, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of the simulated acquisition card.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DaqConfig {
    /// Sampling rate (the NI-PCIe-6376 tops out at 3.5 MS/s).
    pub sample_rate: Freq,
    /// 1-σ relative accuracy error (99.94 % accuracy → 6e-4).
    pub accuracy_sigma: f64,
    /// RNG seed for the noise (measurements are reproducible).
    pub seed: u64,
}

impl Default for DaqConfig {
    fn default() -> Self {
        DaqConfig {
            sample_rate: Freq::from_mhz(3.5),
            accuracy_sigma: 6e-4,
            seed: 0xDA0_CAFE,
        }
    }
}

/// One acquired (noisy) sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DaqSample {
    /// Acquisition instant.
    pub time: SimTime,
    /// Measured voltage (mV), with accuracy noise.
    pub vcc_mv: f64,
    /// Measured current (A), with accuracy noise.
    pub icc_a: f64,
}

/// The simulated NI-DAQ card.
#[derive(Debug, Clone)]
pub struct Daq {
    cfg: DaqConfig,
    rng: SmallRng,
}

impl Daq {
    /// Creates a card from its configuration.
    pub fn new(cfg: DaqConfig) -> Self {
        let rng = SmallRng::seed_from_u64(cfg.seed);
        Daq { cfg, rng }
    }

    /// The card configuration.
    pub fn config(&self) -> &DaqConfig {
        &self.cfg
    }

    /// Standard-normal sample via Box–Muller.
    fn gauss(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(1e-12..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    fn noisy(&mut self, v: f64) -> f64 {
        v * (1.0 + self.cfg.accuracy_sigma * self.gauss())
    }

    /// Acquires the window `[from, to)` of a simulator trace at the
    /// card's sample rate (zero-order hold between trace samples), adding
    /// accuracy noise.
    ///
    /// Returns an empty vector if the trace has no samples in range.
    pub fn acquire(&mut self, trace: &Trace, from: SimTime, to: SimTime) -> Vec<DaqSample> {
        let samples = trace.samples();
        if samples.is_empty() || to <= from {
            return Vec::new();
        }
        let period = self.cfg.sample_rate.cycle_period();
        let mut out = Vec::new();
        let mut t = from;
        let mut idx = 0usize;
        while t < to {
            // Zero-order hold: latest trace sample at or before t.
            while idx + 1 < samples.len() && samples[idx + 1].time <= t {
                idx += 1;
            }
            let s = &samples[idx];
            if s.time <= t {
                out.push(DaqSample {
                    time: t,
                    vcc_mv: self.noisy(s.vcc_mv),
                    icc_a: self.noisy(s.icc_a),
                });
            }
            t += period;
        }
        out
    }

    /// Convenience: acquire the whole trace.
    pub fn acquire_all(&mut self, trace: &Trace) -> Vec<DaqSample> {
        match (trace.samples().first(), trace.samples().last()) {
            (Some(a), Some(b)) => self.acquire(trace, a.time, b.time + SimTime::from_ps(1)),
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ichannels_soc::trace::Sample;

    fn flat_trace(vcc: f64, n: usize, step_us: f64) -> Trace {
        let mut t = Trace::new();
        for i in 0..n {
            t.push(Sample {
                time: SimTime::from_us(i as f64 * step_us),
                vcc_mv: vcc,
                icc_a: 10.0,
                freq: Freq::from_ghz(2.0),
                temp_c: 50.0,
                throttled: vec![false],
                core_ipc: vec![1.0],
            });
        }
        t
    }

    #[test]
    fn acquisition_rate_matches_config() {
        let trace = flat_trace(800.0, 100, 10.0); // 1 ms of trace
        let mut daq = Daq::new(DaqConfig::default());
        let got = daq.acquire(&trace, SimTime::ZERO, SimTime::from_ms(1.0));
        // 3.5 MS/s over 1 ms ≈ 3500 samples (±1 for period rounding).
        assert!((3499..=3501).contains(&got.len()), "n = {}", got.len());
    }

    #[test]
    fn accuracy_noise_is_small_and_unbiased() {
        let trace = flat_trace(1000.0, 10, 100.0);
        let mut daq = Daq::new(DaqConfig::default());
        let got = daq.acquire(&trace, SimTime::ZERO, SimTime::from_us(900.0));
        let mean: f64 = got.iter().map(|s| s.vcc_mv).sum::<f64>() / got.len() as f64;
        // 99.94% accuracy: mean within ±0.1 mV of truth over thousands of
        // samples, individual samples within ±0.5%.
        assert!((mean - 1000.0).abs() < 0.5, "mean = {mean}");
        assert!(got.iter().all(|s| (s.vcc_mv - 1000.0).abs() < 5.0));
        assert!(got.iter().any(|s| s.vcc_mv != 1000.0), "noise expected");
    }

    #[test]
    fn zero_order_hold_tracks_steps() {
        let mut trace = Trace::new();
        for (us, v) in [(0.0, 700.0), (50.0, 720.0)] {
            trace.push(Sample {
                time: SimTime::from_us(us),
                vcc_mv: v,
                icc_a: 0.0,
                freq: Freq::from_ghz(2.0),
                temp_c: 50.0,
                throttled: vec![false],
                core_ipc: vec![0.0],
            });
        }
        let mut daq = Daq::new(DaqConfig {
            accuracy_sigma: 0.0,
            ..Default::default()
        });
        let got = daq.acquire(&trace, SimTime::ZERO, SimTime::from_us(100.0));
        let early = got
            .iter()
            .find(|s| s.time < SimTime::from_us(50.0))
            .unwrap();
        let late = got
            .iter()
            .find(|s| s.time > SimTime::from_us(50.0))
            .unwrap();
        assert_eq!(early.vcc_mv, 700.0);
        assert_eq!(late.vcc_mv, 720.0);
    }

    #[test]
    fn empty_trace_yields_nothing() {
        let mut daq = Daq::new(DaqConfig::default());
        assert!(daq.acquire_all(&Trace::new()).is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let trace = flat_trace(900.0, 5, 10.0);
        let run = || {
            let mut daq = Daq::new(DaqConfig::default());
            daq.acquire(&trace, SimTime::ZERO, SimTime::from_us(40.0))
        };
        assert_eq!(run(), run());
    }
}

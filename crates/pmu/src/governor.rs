//! Software-level CPU frequency governors.
//!
//! §5.7 of the paper checks whether software power-management policies
//! affect the throttling mechanisms and finds they do not: "the
//! underlying mechanism of IChannels persists across all three policies"
//! (userspace, powersave, performance), because hardware throttling is
//! implemented inside the core for ns-scale response. The governors are
//! still needed as workload context — DFScovert (a baseline we compare
//! against) communicates *through* them.

use crate::pstate::PStateTable;
use ichannels_uarch::time::{Freq, SimTime};

/// A Linux-style CPU frequency governor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Governor {
    /// Pin the frequency to a user-chosen value (the paper's fixed-2 GHz
    /// experiments, Figure 6).
    Userspace(Freq),
    /// Always run at the lowest P-state.
    Powersave,
    /// Always request the highest P-state (turbo); the hardware limit
    /// mechanisms may still cap it.
    Performance,
    /// Demand-driven: high load ⇒ max frequency, low load ⇒ min, with a
    /// sampling period (the DFScovert channel modulates exactly this).
    Ondemand {
        /// Governor sampling period (Linux default ~10 ms).
        sampling_period: SimTime,
        /// Load threshold ∈ \[0,1\] above which the governor jumps to max.
        up_threshold: f64,
    },
}

impl Governor {
    /// The standard ondemand configuration.
    pub fn ondemand_default() -> Self {
        Governor::Ondemand {
            sampling_period: SimTime::from_ms(10.0),
            up_threshold: 0.8,
        }
    }

    /// The frequency this governor requests, given the P-state table and
    /// the measured load ∈ \[0,1\] over the last sampling period.
    ///
    /// # Panics
    ///
    /// Panics if `load` is outside \[0,1\].
    pub fn requested_freq(&self, table: &PStateTable, load: f64) -> Freq {
        assert!((0.0..=1.0).contains(&load), "load must be in [0,1]: {load}");
        match self {
            Governor::Userspace(f) => table.highest_not_above(*f),
            Governor::Powersave => table.min(),
            Governor::Performance => table.max(),
            Governor::Ondemand { up_threshold, .. } => {
                if load >= *up_threshold {
                    table.max()
                } else {
                    // Proportional scaling, snapped down to a real P-state.
                    let span = table.max().as_hz() - table.min().as_hz();
                    let f = table.min().as_hz() as f64 + span as f64 * (load / up_threshold);
                    table.highest_not_above(Freq::from_hz(f as u64))
                }
            }
        }
    }

    /// Sampling period after which the governor re-evaluates (None for
    /// static policies).
    pub fn sampling_period(&self) -> Option<SimTime> {
        match self {
            Governor::Ondemand {
                sampling_period, ..
            } => Some(*sampling_period),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PStateTable {
        PStateTable::new(
            vec![
                Freq::from_ghz(3.6),
                Freq::from_ghz(3.0),
                Freq::from_ghz(2.0),
                Freq::from_ghz(1.0),
            ],
            SimTime::from_us(12.0),
        )
    }

    #[test]
    fn userspace_pins_frequency() {
        let g = Governor::Userspace(Freq::from_ghz(2.0));
        assert_eq!(g.requested_freq(&table(), 1.0), Freq::from_ghz(2.0));
        assert_eq!(g.requested_freq(&table(), 0.0), Freq::from_ghz(2.0));
    }

    #[test]
    fn powersave_and_performance() {
        assert_eq!(
            Governor::Powersave.requested_freq(&table(), 1.0),
            Freq::from_ghz(1.0)
        );
        assert_eq!(
            Governor::Performance.requested_freq(&table(), 0.0),
            Freq::from_ghz(3.6)
        );
    }

    #[test]
    fn ondemand_tracks_load() {
        let g = Governor::ondemand_default();
        let t = table();
        assert_eq!(g.requested_freq(&t, 1.0), Freq::from_ghz(3.6));
        assert_eq!(g.requested_freq(&t, 0.9), Freq::from_ghz(3.6));
        let mid = g.requested_freq(&t, 0.4);
        assert!(mid < Freq::from_ghz(3.6) && mid >= Freq::from_ghz(1.0));
        assert_eq!(g.requested_freq(&t, 0.0), Freq::from_ghz(1.0));
    }

    #[test]
    fn sampling_period() {
        assert!(Governor::Performance.sampling_period().is_none());
        assert_eq!(
            Governor::ondemand_default().sampling_period(),
            Some(SimTime::from_ms(10.0))
        );
    }

    #[test]
    #[should_panic(expected = "load must be in")]
    fn load_validated() {
        let _ = Governor::Performance.requested_freq(&table(), 1.5);
    }
}

//! The central power management unit.
//!
//! The central PMU owns the package voltage rails: it arbitrates per-core
//! guardband licenses, computes the package voltage target (V/F base +
//! the additive per-core guardbands of Equation 1), and schedules VR
//! transitions over the serializing SVID interface. A core that raises
//! its license is **throttled until its transition completes** — this is
//! the throttling period (TP) every IChannels covert channel measures.
//!
//! Two of the paper's §7 mitigations live here as configuration:
//! per-core VRs ([`PmuConfig::per_core_vr`]) remove the cross-core SVID
//! serialization, and secure mode ([`PmuConfig::secure_mode`]) pins the
//! worst-case guardband so no transitions (hence no throttling) ever
//! happen.

use crate::license::CoreLicense;
use ichannels_pdn::guardband::GuardbandModel;
use ichannels_pdn::regulator::VrModel;
use ichannels_uarch::isa::InstClass;
use ichannels_uarch::time::{Freq, SimTime};

/// One scheduled linear ramp of a voltage rail.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Segment {
    ramp_start: SimTime,
    end: SimTime,
    from_mv: f64,
    to_mv: f64,
}

/// Maximum retained ramp history per rail; older segments are pruned
/// (their final voltage is folded into the floor value).
const MAX_SEGMENTS: usize = 4096;

/// A voltage rail: a VR plus its serializing command interface, with the
/// full piecewise-linear voltage timeline retained for tracing.
#[derive(Debug, Clone)]
pub struct VrRail {
    model: VrModel,
    free_at: SimTime,
    setpoint_mv: f64,
    segments: Vec<Segment>,
}

impl VrRail {
    /// Creates a rail settled at `initial_mv`.
    pub fn new(model: VrModel, initial_mv: f64) -> Self {
        VrRail {
            model,
            free_at: SimTime::ZERO,
            setpoint_mv: initial_mv,
            segments: Vec::new(),
        }
    }

    /// The VR's electrical model.
    pub fn model(&self) -> &VrModel {
        &self.model
    }

    /// Resets the rail to a freshly-constructed state settled at
    /// `initial_mv`, reusing the segment buffer's allocation.
    pub fn reset(&mut self, initial_mv: f64) {
        self.free_at = SimTime::ZERO;
        self.setpoint_mv = initial_mv;
        self.segments.clear();
    }

    /// Final setpoint (where the rail will settle after all scheduled
    /// transitions complete).
    pub fn setpoint_mv(&self) -> f64 {
        self.setpoint_mv
    }

    /// Earliest instant a new transition could start.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// True if a transition is scheduled or in flight at `now`.
    pub fn is_busy(&self, now: SimTime) -> bool {
        now < self.free_at
    }

    /// Schedules a transition to `target_mv`, requested at `now`. The
    /// transition queues behind any in-flight transition (SVID
    /// serialization). Returns `(start, end)` of the transition window.
    pub fn schedule(&mut self, now: SimTime, target_mv: f64) -> (SimTime, SimTime) {
        let start = now.max(self.free_at);
        let from = self.setpoint_mv;
        let delta = (target_mv - from).abs();
        let ramp_start = start + self.model.cmd_latency;
        let end = ramp_start + self.model.ramp_time(delta);
        self.segments.push(Segment {
            ramp_start,
            end,
            from_mv: from,
            to_mv: target_mv,
        });
        if self.segments.len() > MAX_SEGMENTS {
            let drop = self.segments.len() - MAX_SEGMENTS;
            self.segments.drain(..drop);
        }
        self.setpoint_mv = target_mv;
        self.free_at = end;
        (start, end)
    }

    /// Instantaneous rail voltage at `t`.
    pub fn voltage_at(&self, t: SimTime) -> f64 {
        // Settled fast path: at or past `free_at` every retained ramp
        // has completed, so the rail sits at its final setpoint (the
        // last segment's `to_mv`, which `schedule` keeps in sync).
        if t >= self.free_at {
            return self.setpoint_mv;
        }
        // Find the last segment whose ramp has begun by `t`.
        let idx = self.segments.partition_point(|s| s.ramp_start <= t);
        if idx == 0 {
            return match self.segments.first() {
                // Before any retained ramp: the pre-history voltage.
                Some(s) => s.from_mv,
                None => self.setpoint_mv,
            };
        }
        let s = &self.segments[idx - 1];
        if t >= s.end {
            s.to_mv
        } else {
            let frac = (t - s.ramp_start) / (s.end - s.ramp_start);
            s.from_mv + (s.to_mv - s.from_mv) * frac
        }
    }
}

/// Configuration of the central PMU.
#[derive(Debug, Clone)]
pub struct PmuConfig {
    /// Number of physical cores sharing the package.
    pub n_cores: usize,
    /// Guardband model (Equation 1 parameters).
    pub guardband: GuardbandModel,
    /// Voltage regulator electrical model.
    pub vr_model: VrModel,
    /// Hysteresis window (the paper's 650 µs reset-time).
    pub reset_time: SimTime,
    /// Mitigation: one VR per core instead of a single shared rail.
    pub per_core_vr: bool,
    /// Mitigation: pin the worst-case guardband (no transitions, no
    /// throttling; costs static power).
    pub secure_mode: bool,
}

/// Outcome of notifying the PMU that a core starts executing a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecGrant {
    /// Instant at which the core may execute at full rate. Equal to the
    /// notification time when no transition was needed; otherwise the end
    /// of the voltage transition — the core is throttled until then.
    pub ready_at: SimTime,
    /// The `(start, end)` of the scheduled transition, if one was needed.
    pub transition: Option<(SimTime, SimTime)>,
}

/// The central PMU state machine.
///
/// # Examples
///
/// ```
/// use ichannels_pmu::central::{CentralPmu, PmuConfig};
/// use ichannels_pdn::guardband::{CdynTable, GuardbandModel};
/// use ichannels_pdn::regulator::VrModel;
/// use ichannels_uarch::isa::InstClass;
/// use ichannels_uarch::time::{Freq, SimTime};
///
/// let cfg = PmuConfig {
///     n_cores: 2,
///     guardband: GuardbandModel::new(CdynTable::default(), 1.9),
///     vr_model: VrModel::mbvr(),
///     reset_time: SimTime::from_us(650.0),
///     per_core_vr: false,
///     secure_mode: false,
/// };
/// let mut pmu = CentralPmu::new(cfg, Freq::from_ghz(1.4), 760.0);
/// let g = pmu.on_execute(0, InstClass::Heavy512, SimTime::ZERO);
/// // A 512b-Heavy license raise needs a voltage ramp → throttled for µs.
/// assert!(g.ready_at.as_us() > 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct CentralPmu {
    cfg: PmuConfig,
    licenses: Vec<CoreLicense>,
    rails: Vec<VrRail>,
    base_mv: f64,
    freq: Freq,
    /// Rail targets are provably unchanged before this instant: license
    /// levels are piecewise-constant between executions and decay
    /// expiries, and `target_mv` depends only on those levels plus the
    /// operating point. Any mutation (execution, P-state change, reset)
    /// clears this to `SimTime::ZERO`; a completed decay scan advances it
    /// to the earliest pending decay. Purely a skip memo for
    /// [`Self::process_decays`] — it never alters results.
    targets_valid_until: SimTime,
}

impl CentralPmu {
    /// Creates the PMU at an initial operating point (`freq`, `base_mv`
    /// from the V/F curve).
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is zero.
    pub fn new(cfg: PmuConfig, freq: Freq, base_mv: f64) -> Self {
        assert!(cfg.n_cores > 0, "PMU needs at least one core");
        let n_rails = if cfg.per_core_vr { cfg.n_cores } else { 1 };
        let initial_mv = if cfg.secure_mode {
            // Secure mode: start (and stay) at the worst-case guardband.
            let per_core = if cfg.per_core_vr { 1 } else { cfg.n_cores };
            base_mv
                + cfg
                    .guardband
                    .secure_mode_guardband_mv(per_core, base_mv, freq)
        } else {
            base_mv
        };
        let rails = (0..n_rails)
            .map(|_| VrRail::new(cfg.vr_model, initial_mv))
            .collect();
        let licenses = (0..cfg.n_cores)
            .map(|_| CoreLicense::new(cfg.reset_time))
            .collect();
        CentralPmu {
            cfg,
            licenses,
            rails,
            base_mv,
            freq,
            targets_valid_until: SimTime::ZERO,
        }
    }

    /// Resets the PMU to its exactly-as-constructed state at an initial
    /// operating point, reusing the license and rail allocations
    /// (including each rail's retained segment buffer). Equivalent to
    /// `CentralPmu::new(cfg, freq, base_mv)` with the same config.
    pub fn reset(&mut self, freq: Freq, base_mv: f64) {
        self.freq = freq;
        self.base_mv = base_mv;
        let initial_mv = if self.cfg.secure_mode {
            let per_core = if self.cfg.per_core_vr {
                1
            } else {
                self.cfg.n_cores
            };
            base_mv
                + self
                    .cfg
                    .guardband
                    .secure_mode_guardband_mv(per_core, base_mv, freq)
        } else {
            base_mv
        };
        for rail in &mut self.rails {
            rail.reset(initial_mv);
        }
        for license in &mut self.licenses {
            license.reset();
        }
        self.targets_valid_until = SimTime::ZERO;
    }

    /// PMU configuration.
    pub fn config(&self) -> &PmuConfig {
        &self.cfg
    }

    /// Current core clock frequency (shared clock domain).
    pub fn freq(&self) -> Freq {
        self.freq
    }

    /// Base (guardband-free) voltage of the current operating point.
    pub fn base_mv(&self) -> f64 {
        self.base_mv
    }

    fn rail_index(&self, core: usize) -> usize {
        if self.cfg.per_core_vr {
            core
        } else {
            0
        }
    }

    /// The rail supplying `core` (read access, e.g. for tracing).
    pub fn rail(&self, core: usize) -> &VrRail {
        &self.rails[self.rail_index(core)]
    }

    /// Instantaneous supply voltage of `core` at `t`.
    pub fn core_voltage_mv(&self, core: usize, t: SimTime) -> f64 {
        self.rail(core).voltage_at(t)
    }

    /// Effective license level of `core` at `now`.
    pub fn effective_level(&self, core: usize, now: SimTime) -> u8 {
        self.licenses[core].effective_level(now)
    }

    /// Effective license of `core` at `now`, as an instruction class.
    pub fn effective_class(&self, core: usize, now: SimTime) -> InstClass {
        self.licenses[core].effective_class(now)
    }

    /// The voltage target of the rail supplying `core`, given current
    /// licenses at `now`.
    fn target_mv(&self, rail_core: usize, now: SimTime) -> f64 {
        if self.cfg.secure_mode {
            let per_core = if self.cfg.per_core_vr {
                1
            } else {
                self.cfg.n_cores
            };
            return self.base_mv
                + self
                    .cfg
                    .guardband
                    .secure_mode_guardband_mv(per_core, self.base_mv, self.freq);
        }
        let gb = if self.cfg.per_core_vr {
            let class = Some(self.licenses[rail_core].effective_class(now));
            self.cfg.guardband.package_guardband_iter_mv(
                std::iter::once(class),
                self.base_mv,
                self.freq,
            )
        } else {
            let classes = self.licenses.iter().map(|l| Some(l.effective_class(now)));
            self.cfg
                .guardband
                .package_guardband_iter_mv(classes, self.base_mv, self.freq)
        };
        self.base_mv + gb
    }

    /// Notifies the PMU that `core` starts executing a loop of `class`
    /// instructions at `now`.
    ///
    /// If the class exceeds the core's effective license, the license is
    /// raised and a voltage transition is scheduled; the returned grant
    /// says when the core stops being throttled.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn on_execute(&mut self, core: usize, class: InstClass, now: SimTime) -> ExecGrant {
        assert!(core < self.cfg.n_cores, "core {core} out of range");
        let current = self.licenses[core].effective_level(now);
        let need = class.intensity_rank();
        self.licenses[core].record_execution(class, now);
        // Even a same-level execution extends the license window, which
        // moves the pending decay — the cached decay-scan horizon is
        // stale either way.
        self.targets_valid_until = SimTime::ZERO;
        if self.cfg.secure_mode || need <= current {
            return ExecGrant {
                ready_at: now,
                transition: None,
            };
        }
        let rail_idx = self.rail_index(core);
        let target = self.target_mv(core, now);
        let (start, end) = self.rails[rail_idx].schedule(now, target);
        ExecGrant {
            ready_at: end,
            transition: Some((start, end)),
        }
    }

    /// The next instant at which any core's license decays, if any.
    pub fn next_decay(&self, now: SimTime) -> Option<SimTime> {
        self.licenses.iter().filter_map(|l| l.next_decay(now)).min()
    }

    /// Processes license decays at `now`: recomputes rail targets and
    /// schedules the (non-throttling) ramp-downs. Returns `true` if any
    /// rail was retargeted.
    pub fn process_decays(&mut self, now: SimTime) -> bool {
        if self.cfg.secure_mode {
            return false;
        }
        // License levels (hence rail targets) cannot have changed since
        // the last scan before the earliest pending decay, so the scan
        // below would compare every rail against an identical target and
        // report no change — skip it.
        if now < self.targets_valid_until {
            return false;
        }
        let mut changed = false;
        let rail_count = self.rails.len();
        for rail_idx in 0..rail_count {
            let target = self.target_mv(rail_idx, now);
            if (target - self.rails[rail_idx].setpoint_mv()).abs() > 1e-9 {
                self.rails[rail_idx].schedule(now, target);
                changed = true;
            }
        }
        self.targets_valid_until = self.next_decay(now).unwrap_or(SimTime::MAX);
        changed
    }

    /// Switches the package operating point (P-state change): updates
    /// frequency and base voltage and retargets every rail.
    pub fn set_operating_point(&mut self, now: SimTime, freq: Freq, base_mv: f64) {
        self.freq = freq;
        self.base_mv = base_mv;
        let rail_count = self.rails.len();
        for rail_idx in 0..rail_count {
            let target = self.target_mv(rail_idx, now);
            self.rails[rail_idx].schedule(now, target);
        }
        // Every rail setpoint now equals its target at `now`, and targets
        // hold until the next license decay.
        self.targets_valid_until = self.next_decay(now).unwrap_or(SimTime::MAX);
    }

    /// The final setpoint of the (first) rail — the package voltage once
    /// all scheduled transitions settle.
    pub fn package_setpoint_mv(&self) -> f64 {
        self.rails[0].setpoint_mv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ichannels_pdn::guardband::CdynTable;

    fn cfg() -> PmuConfig {
        PmuConfig {
            n_cores: 2,
            guardband: GuardbandModel::new(CdynTable::default(), 1.9),
            vr_model: VrModel::mbvr(),
            reset_time: SimTime::from_us(650.0),
            per_core_vr: false,
            secure_mode: false,
        }
    }

    fn pmu() -> CentralPmu {
        CentralPmu::new(cfg(), Freq::from_ghz(1.4), 760.0)
    }

    #[test]
    fn scalar_execution_never_throttles() {
        let mut p = pmu();
        let g = p.on_execute(0, InstClass::Scalar64, SimTime::ZERO);
        assert_eq!(g.ready_at, SimTime::ZERO);
        assert!(g.transition.is_none());
    }

    #[test]
    fn phi_triggers_multi_microsecond_throttle() {
        let mut p = pmu();
        let g = p.on_execute(0, InstClass::Heavy512, SimTime::ZERO);
        let tp = g.ready_at.as_us();
        assert!((5.0..20.0).contains(&tp), "TP = {tp} µs");
    }

    #[test]
    fn tp_is_multi_level_in_preceding_class() {
        // Figure 10(b): the TP of a 512b-Heavy loop depends on which
        // class ran before it — lower preceding intensity ⇒ longer TP.
        let mut tps = Vec::new();
        for prev in InstClass::ALL {
            let mut p = pmu();
            let g0 = p.on_execute(0, prev, SimTime::ZERO);
            // Run the 512b-Heavy loop right after the first settles.
            let t1 = g0.ready_at + SimTime::from_us(1.0);
            let g1 = p.on_execute(0, InstClass::Heavy512, t1);
            tps.push((g1.ready_at.saturating_sub(t1)).as_us());
        }
        // Monotone non-increasing with preceding intensity; 512b-Heavy
        // preceding ⇒ no further transition at all.
        for w in tps.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "tps = {tps:?}");
        }
        assert_eq!(*tps.last().unwrap(), 0.0);
        // At least 5 distinct levels (Key Conclusion 4).
        let mut distinct: Vec<f64> = Vec::new();
        for tp in &tps {
            if !distinct.iter().any(|d| (d - tp).abs() < 0.3) {
                distinct.push(*tp);
            }
        }
        assert!(distinct.len() >= 5, "levels: {tps:?}");
    }

    #[test]
    fn same_license_is_free_within_reset_time() {
        let mut p = pmu();
        let g0 = p.on_execute(0, InstClass::Heavy256, SimTime::ZERO);
        let t1 = g0.ready_at + SimTime::from_us(10.0);
        let g1 = p.on_execute(0, InstClass::Heavy256, t1);
        assert_eq!(g1.ready_at, t1);
    }

    #[test]
    fn license_decays_after_reset_time() {
        let mut p = pmu();
        let g0 = p.on_execute(0, InstClass::Heavy256, SimTime::ZERO);
        assert!(p.effective_level(0, g0.ready_at) > 0);
        let after = SimTime::from_us(651.0);
        assert_eq!(p.effective_level(0, after), 0);
        assert!(p.process_decays(after));
        // Re-execution needs a fresh ramp → throttled again.
        let t2 = SimTime::from_us(700.0);
        let g2 = p.on_execute(0, InstClass::Heavy256, t2);
        assert!(g2.ready_at > t2);
    }

    #[test]
    fn cross_core_requests_serialize_on_shared_rail() {
        // Observation 3: core 1's transition waits for core 0's.
        let mut p = pmu();
        let g0 = p.on_execute(0, InstClass::Heavy512, SimTime::ZERO);
        let t1 = SimTime::from_us(0.2); // within a few hundred cycles
        let g1 = p.on_execute(1, InstClass::Heavy128, t1);
        let (start1, _) = g1.transition.unwrap();
        assert_eq!(start1, g0.ready_at, "core1 must queue behind core0");
        assert!(g1.ready_at > g0.ready_at);
    }

    #[test]
    fn per_core_vr_removes_cross_core_serialization() {
        let mut c = cfg();
        c.per_core_vr = true;
        c.vr_model = VrModel::ldo();
        let mut p = CentralPmu::new(c, Freq::from_ghz(1.4), 760.0);
        let _g0 = p.on_execute(0, InstClass::Heavy512, SimTime::ZERO);
        let t1 = SimTime::from_us(0.2);
        let g1 = p.on_execute(1, InstClass::Heavy128, t1);
        let (start1, _) = g1.transition.unwrap();
        assert_eq!(start1, t1, "per-core VR must not queue behind core 0");
        // And the LDO transition is sub-µs (§7: < 0.5 µs).
        assert!((g1.ready_at - t1).as_us() < 0.5);
    }

    #[test]
    fn secure_mode_never_throttles() {
        let mut c = cfg();
        c.secure_mode = true;
        let mut p = CentralPmu::new(c, Freq::from_ghz(1.4), 760.0);
        for class in InstClass::ALL {
            let g = p.on_execute(0, class, SimTime::from_us(1.0));
            assert_eq!(g.ready_at, SimTime::from_us(1.0), "class {class}");
        }
        // Voltage sits at the worst-case guardband.
        let v = p.core_voltage_mv(0, SimTime::ZERO);
        assert!(v > 760.0);
        assert!(!p.process_decays(SimTime::from_ms(10.0)));
    }

    #[test]
    fn two_phi_cores_raise_voltage_in_two_steps() {
        // Figure 6(a): two cores running AVX2 → two voltage steps. The
        // second step is the per-core share only (the shared max-license
        // component was already paid by the first core).
        let mut p = pmu();
        let g0 = p.on_execute(0, InstClass::Heavy256, SimTime::ZERO);
        let v1 = p.package_setpoint_mv();
        let _ = p.on_execute(1, InstClass::Heavy256, g0.ready_at + SimTime::from_us(5.0));
        let v2 = p.package_setpoint_mv();
        let step1 = v1 - 760.0;
        let step2 = v2 - v1;
        assert!(step1 > 2.0 && step2 > 2.0, "steps {step1} / {step2}");
        assert!(step2 <= step1, "steps {step1} / {step2}");
        assert!(step2 > step1 * 0.5, "steps {step1} / {step2}");
    }

    #[test]
    fn rail_voltage_timeline_is_piecewise_linear() {
        let mut rail = VrRail::new(VrModel::mbvr(), 700.0);
        let (_s, e) = rail.schedule(SimTime::ZERO, 724.0);
        assert_eq!(rail.voltage_at(SimTime::ZERO), 700.0);
        assert_eq!(rail.voltage_at(e), 724.0);
        let mid = SimTime::from_us(1.2) + (e - SimTime::from_us(1.2)).scale(0.5);
        assert!((rail.voltage_at(mid) - 712.0).abs() < 0.05);
        // A second scheduled ramp queues after the first.
        let (s2, e2) = rail.schedule(SimTime::from_us(2.0), 700.0);
        assert_eq!(s2, e);
        assert_eq!(rail.voltage_at(e2), 700.0);
    }

    #[test]
    fn operating_point_change_retargets_rail() {
        let mut p = pmu();
        p.set_operating_point(SimTime::ZERO, Freq::from_ghz(2.2), 900.0);
        assert_eq!(p.freq(), Freq::from_ghz(2.2));
        let settle = SimTime::from_ms(1.0);
        assert!((p.core_voltage_mv(0, settle) - 900.0).abs() < 1e-6);
    }
}

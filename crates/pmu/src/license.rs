//! Per-core voltage-guardband licenses with the 650 µs hysteresis.
//!
//! Paper §4.1.2: "the processor keeps a hysteresis counter that keeps the
//! voltage at a high level corresponding to the highest power PHI
//! executed within the reset-time frame. If no executed PHIs are within a
//! 650 µs time frame, the processor reduces the voltage to the baseline
//! voltage level." The covert channels must wait this *reset-time*
//! between transactions, which bounds their symbol rate.

use ichannels_uarch::isa::InstClass;
use ichannels_uarch::time::SimTime;

/// Number of license levels — one per [`InstClass`] intensity rank.
pub const N_LEVELS: usize = 7;

/// The default reset-time (hysteresis window) measured in the paper.
pub const DEFAULT_RESET_TIME: SimTime = SimTime::from_ns_u64(650_000);

/// Tracks, per intensity rank, when a core last executed instructions of
/// at least that rank, and derives the *effective license* — the highest
/// rank still inside the hysteresis window.
///
/// # Examples
///
/// ```
/// use ichannels_pmu::license::CoreLicense;
/// use ichannels_uarch::isa::InstClass;
/// use ichannels_uarch::time::SimTime;
///
/// let mut lic = CoreLicense::new(SimTime::from_us(650.0));
/// lic.record_execution(InstClass::Heavy512, SimTime::ZERO);
/// assert_eq!(lic.effective_level(SimTime::from_us(100.0)), 6);
/// // 650 us later the license has fully decayed.
/// assert_eq!(lic.effective_level(SimTime::from_us(651.0)), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreLicense {
    reset_time: SimTime,
    /// `last_exec[r]` = last instant the core executed rank-`r`
    /// instructions; `None` if never.
    last_exec: [Option<SimTime>; N_LEVELS],
}

impl CoreLicense {
    /// Creates a license tracker with the given hysteresis window.
    pub fn new(reset_time: SimTime) -> Self {
        CoreLicense {
            reset_time,
            last_exec: [None; N_LEVELS],
        }
    }

    /// The hysteresis window.
    pub fn reset_time(&self) -> SimTime {
        self.reset_time
    }

    /// Records that the core executed `class` instructions at `now`.
    pub fn record_execution(&mut self, class: InstClass, now: SimTime) {
        self.last_exec[class.intensity_rank() as usize] = Some(now);
    }

    /// The effective license level (intensity rank 0‥6) at `now`: the
    /// highest rank executed within the last `reset_time`.
    pub fn effective_level(&self, now: SimTime) -> u8 {
        for rank in (1..N_LEVELS).rev() {
            if let Some(t) = self.last_exec[rank] {
                if now.saturating_sub(t) < self.reset_time {
                    return rank as u8;
                }
            }
        }
        0
    }

    /// The effective license as an instruction class.
    pub fn effective_class(&self, now: SimTime) -> InstClass {
        // `effective_level` is always a valid rank; fall back to the
        // baseline class rather than panicking.
        InstClass::from_rank(self.effective_level(now)).unwrap_or(InstClass::Scalar64)
    }

    /// The next instant at which the effective level will drop, if any.
    /// (The level drops when the hysteresis window of the currently
    /// dominant rank expires.)
    pub fn next_decay(&self, now: SimTime) -> Option<SimTime> {
        let level = self.effective_level(now);
        if level == 0 {
            return None;
        }
        // A non-zero level implies a recorded execution at that rank.
        self.last_exec[level as usize].map(|t| t + self.reset_time)
    }

    /// Clears all history (e.g., after a deep package sleep).
    pub fn reset(&mut self) {
        self.last_exec = [None; N_LEVELS];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lic() -> CoreLicense {
        CoreLicense::new(DEFAULT_RESET_TIME)
    }

    #[test]
    fn fresh_license_is_baseline() {
        assert_eq!(lic().effective_level(SimTime::from_ms(1.0)), 0);
        assert_eq!(lic().next_decay(SimTime::ZERO), None);
    }

    #[test]
    fn highest_recent_rank_wins() {
        let mut l = lic();
        l.record_execution(InstClass::Heavy256, SimTime::from_us(10.0));
        l.record_execution(InstClass::Light128, SimTime::from_us(20.0));
        assert_eq!(l.effective_level(SimTime::from_us(30.0)), 4);
    }

    #[test]
    fn decays_level_by_level() {
        let mut l = lic();
        l.record_execution(InstClass::Heavy512, SimTime::ZERO);
        l.record_execution(InstClass::Heavy128, SimTime::from_us(400.0));
        // At 500 us both are live: 512b Heavy dominates.
        assert_eq!(l.effective_level(SimTime::from_us(500.0)), 6);
        // At 700 us the 512b window (0..650) expired, 128b (400..1050) live.
        assert_eq!(l.effective_level(SimTime::from_us(700.0)), 2);
        // At 1100 us everything expired.
        assert_eq!(l.effective_level(SimTime::from_us(1100.0)), 0);
    }

    #[test]
    fn refresh_extends_window() {
        let mut l = lic();
        l.record_execution(InstClass::Heavy256, SimTime::ZERO);
        l.record_execution(InstClass::Heavy256, SimTime::from_us(600.0));
        assert_eq!(l.effective_level(SimTime::from_us(1200.0)), 4);
    }

    #[test]
    fn next_decay_matches_effective_level_boundary() {
        let mut l = lic();
        l.record_execution(InstClass::Heavy512, SimTime::from_us(100.0));
        let decay = l.next_decay(SimTime::from_us(200.0)).unwrap();
        assert_eq!(decay, SimTime::from_us(750.0));
        // Just before: still licensed. At the boundary: decayed.
        assert_eq!(l.effective_level(SimTime::from_us(749.9)), 6);
        assert_eq!(l.effective_level(decay), 0);
    }

    #[test]
    fn scalar_execution_never_licenses() {
        let mut l = lic();
        l.record_execution(InstClass::Scalar64, SimTime::ZERO);
        assert_eq!(l.effective_level(SimTime::from_us(1.0)), 0);
    }

    #[test]
    fn reset_clears() {
        let mut l = lic();
        l.record_execution(InstClass::Heavy512, SimTime::ZERO);
        l.reset();
        assert_eq!(l.effective_level(SimTime::from_us(1.0)), 0);
    }
}

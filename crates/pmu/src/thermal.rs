//! First-order RC thermal model of the core junction.
//!
//! The paper uses temperature to *refute* TurboCC's hypothesis: the
//! frequency reduction after PHI execution happens while "the junction
//! temperature (between 58 °C and 62 °C) is much lower than the maximum
//! allowed junction temperature, Tjmax (100 °C)" (Figure 7(b)), and
//! thermal mechanisms "typically take tens of milliseconds to tens of
//! seconds to develop". A single-pole RC model captures exactly that
//! separation of time scales.

use ichannels_uarch::time::SimTime;

/// A first-order (single RC pole) junction thermal model.
///
/// Steady state: `T = T_ambient + R_th · P`. The temperature relaxes
/// toward steady state with time constant `τ = R_th · C_th`.
///
/// # Examples
///
/// ```
/// use ichannels_pmu::thermal::ThermalModel;
/// use ichannels_uarch::time::SimTime;
///
/// let mut th = ThermalModel::client_default();
/// // 25 W sustained for 2 s heats the die noticeably but slowly.
/// th.advance(25.0, SimTime::from_secs(2.0));
/// assert!(th.temp_c() > 40.0 && th.temp_c() < th.tjmax_c());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ThermalModel {
    temp_c: f64,
    ambient_c: f64,
    r_th_c_per_w: f64,
    tau: SimTime,
    tjmax_c: f64,
    /// One-entry memo for the relaxation factor `exp(-dt/τ)`:
    /// event-driven stepping repeats the same `dt` constantly, and `exp`
    /// over identical bits is deterministic, so replaying the cached
    /// factor is exact. Never observable — excluded from equality.
    alpha_memo: (SimTime, f64),
}

/// Equality over the physical state only; the `alpha_memo` cache is an
/// internal accelerator and two models that differ only in it are the
/// same model.
impl PartialEq for ThermalModel {
    fn eq(&self, other: &Self) -> bool {
        self.temp_c == other.temp_c
            && self.ambient_c == other.ambient_c
            && self.r_th_c_per_w == other.r_th_c_per_w
            && self.tau == other.tau
            && self.tjmax_c == other.tjmax_c
    }
}

impl ThermalModel {
    /// Typical client-SoC parameters: 40 °C local ambient, 1.6 °C/W to
    /// ambient, ~3 s time constant, Tjmax = 100 °C.
    pub fn client_default() -> Self {
        ThermalModel::new(40.0, 1.6, SimTime::from_secs(3.0), 100.0)
    }

    /// Creates a thermal model at ambient temperature.
    ///
    /// # Panics
    ///
    /// Panics on non-finite parameters, non-positive `r_th` or `tjmax`,
    /// or a zero time constant.
    pub fn new(ambient_c: f64, r_th_c_per_w: f64, tau: SimTime, tjmax_c: f64) -> Self {
        assert!(ambient_c.is_finite(), "invalid ambient: {ambient_c}");
        assert!(
            r_th_c_per_w.is_finite() && r_th_c_per_w > 0.0,
            "invalid thermal resistance: {r_th_c_per_w}"
        );
        assert!(!tau.is_zero(), "thermal time constant must be non-zero");
        assert!(
            tjmax_c.is_finite() && tjmax_c > ambient_c,
            "invalid Tjmax: {tjmax_c}"
        );
        ThermalModel {
            temp_c: ambient_c,
            ambient_c,
            r_th_c_per_w,
            tau,
            tjmax_c,
            alpha_memo: (SimTime::MAX, 0.0),
        }
    }

    /// Current junction temperature (°C).
    pub fn temp_c(&self) -> f64 {
        self.temp_c
    }

    /// Maximum allowed junction temperature (°C).
    pub fn tjmax_c(&self) -> f64 {
        self.tjmax_c
    }

    /// Thermal time constant.
    pub fn tau(&self) -> SimTime {
        self.tau
    }

    /// Steady-state temperature under sustained power `p_w`.
    pub fn steady_state_c(&self, p_w: f64) -> f64 {
        self.ambient_c + self.r_th_c_per_w * p_w
    }

    /// Advances the model by `dt` with constant dissipated power `p_w`.
    pub fn advance(&mut self, p_w: f64, dt: SimTime) {
        let target = self.steady_state_c(p_w);
        let alpha = if self.alpha_memo.0 == dt {
            self.alpha_memo.1
        } else {
            let a = (-(dt / self.tau)).exp();
            self.alpha_memo = (dt, a);
            a
        };
        self.temp_c = target + (self.temp_c - target) * alpha;
    }

    /// True if the junction is at/over Tjmax (PROCHOT would assert; never
    /// reached in the paper's experiments).
    pub fn over_tjmax(&self) -> bool {
        self.temp_c >= self.tjmax_c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxes_to_steady_state() {
        let mut th = ThermalModel::client_default();
        for _ in 0..100 {
            th.advance(20.0, SimTime::from_secs(1.0));
        }
        let ss = th.steady_state_c(20.0);
        assert!((th.temp_c() - ss).abs() < 0.1, "T = {}", th.temp_c());
    }

    #[test]
    fn microsecond_phi_bursts_do_not_move_temperature() {
        // Key Conclusion 2 relies on this separation of time scales: a
        // tens-of-µs throttling event cannot be thermal.
        let mut th = ThermalModel::client_default();
        th.advance(15.0, SimTime::from_secs(10.0)); // warm up
        let before = th.temp_c();
        th.advance(35.0, SimTime::from_us(40.0)); // one PHI transaction
        assert!((th.temp_c() - before).abs() < 0.01);
    }

    #[test]
    fn figure7b_temperature_band() {
        // Mobile part at ~12-14 W: temperature settles around 58–62 °C,
        // far below Tjmax (Figure 7(b)).
        let mut th = ThermalModel::client_default();
        for _ in 0..30 {
            th.advance(12.5, SimTime::from_secs(1.0));
        }
        assert!(
            th.temp_c() > 55.0 && th.temp_c() < 65.0,
            "T = {}",
            th.temp_c()
        );
        assert!(!th.over_tjmax());
    }

    #[test]
    fn cooling_works() {
        let mut th = ThermalModel::client_default();
        th.advance(30.0, SimTime::from_secs(30.0));
        let hot = th.temp_c();
        th.advance(0.0, SimTime::from_secs(30.0));
        assert!(th.temp_c() < hot);
        assert!(th.temp_c() > 39.9);
    }

    #[test]
    fn over_tjmax_detection() {
        let mut th = ThermalModel::new(40.0, 3.0, SimTime::from_secs(1.0), 100.0);
        for _ in 0..60 {
            th.advance(40.0, SimTime::from_secs(1.0));
        }
        assert!(th.over_tjmax());
    }
}

//! P-states (performance states) and frequency transitions.
//!
//! Figure 9(c) of the paper shows the Vccmax/Iccmax protection mechanism
//! throttling the core "while initiating a P-state transition to reduce
//! the voltage and frequency". Frequency transitions take on the order
//! of tens of microseconds (the paper's Fig. 7 observations happen
//! "within tens of microseconds" of PHI execution).

use ichannels_uarch::time::{Freq, SimTime};

/// A table of discrete operating frequencies (P-states), highest first.
#[derive(Debug, Clone, PartialEq)]
pub struct PStateTable {
    freqs: Vec<Freq>,
    transition_latency: SimTime,
}

impl PStateTable {
    /// Builds a table from a list of frequencies (any order; stored
    /// descending) and a per-transition latency.
    ///
    /// # Panics
    ///
    /// Panics if `freqs` is empty or contains duplicates.
    pub fn new(mut freqs: Vec<Freq>, transition_latency: SimTime) -> Self {
        assert!(!freqs.is_empty(), "P-state table must not be empty");
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        assert!(
            freqs.windows(2).all(|w| w[0] != w[1]),
            "duplicate P-state frequencies"
        );
        PStateTable {
            freqs,
            transition_latency,
        }
    }

    /// All P-state frequencies, highest first.
    pub fn freqs(&self) -> &[Freq] {
        &self.freqs
    }

    /// Latency of one frequency transition.
    pub fn transition_latency(&self) -> SimTime {
        self.transition_latency
    }

    /// Highest frequency in the table.
    pub fn max(&self) -> Freq {
        self.freqs[0]
    }

    /// Lowest frequency in the table.
    pub fn min(&self) -> Freq {
        // Construction rejects empty tables.
        self.freqs[self.freqs.len() - 1]
    }

    /// Highest table frequency that does not exceed `cap`; falls back to
    /// the lowest P-state if even that exceeds the cap.
    pub fn highest_not_above(&self, cap: Freq) -> Freq {
        self.freqs
            .iter()
            .copied()
            .find(|f| *f <= cap)
            .unwrap_or(self.min())
    }

    /// The next P-state strictly below `freq`, if any.
    pub fn next_below(&self, freq: Freq) -> Option<Freq> {
        self.freqs.iter().copied().find(|f| *f < freq)
    }
}

/// An in-flight or settled frequency state of the (shared) clock domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PStateEngine {
    current: Freq,
    target: Freq,
    /// Completion time of the in-flight transition (== now if settled).
    settle_at: SimTime,
}

impl PStateEngine {
    /// Starts settled at `freq`.
    pub fn new(freq: Freq) -> Self {
        PStateEngine {
            current: freq,
            target: freq,
            settle_at: SimTime::ZERO,
        }
    }

    /// The frequency in force at `now` (the old frequency until the
    /// transition settles — clocks keep running during the PLL relock in
    /// our model; the execution *throttle* during the transition is
    /// handled by the SoC layer).
    pub fn freq_at(&self, now: SimTime) -> Freq {
        if now >= self.settle_at {
            self.target
        } else {
            self.current
        }
    }

    /// Final target frequency.
    pub fn target(&self) -> Freq {
        self.target
    }

    /// True if a transition is still in flight at `now`.
    pub fn in_transition(&self, now: SimTime) -> bool {
        now < self.settle_at
    }

    /// Instant the in-flight transition settles.
    pub fn settle_at(&self) -> SimTime {
        self.settle_at
    }

    /// Requests a transition to `freq` at `now`; returns the settle time.
    /// Requesting the current target is a no-op.
    pub fn request(&mut self, now: SimTime, freq: Freq, table: &PStateTable) -> SimTime {
        if freq == self.target {
            return self.settle_at.max(now);
        }
        // Fold an in-flight transition: the new one starts from the
        // frequency in force now.
        self.current = self.freq_at(now);
        self.target = freq;
        self.settle_at = now + table.transition_latency();
        self.settle_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PStateTable {
        PStateTable::new(
            vec![
                Freq::from_ghz(3.1),
                Freq::from_ghz(2.6),
                Freq::from_ghz(2.2),
                Freq::from_ghz(1.4),
                Freq::from_ghz(1.0),
            ],
            SimTime::from_us(12.0),
        )
    }

    #[test]
    fn table_is_sorted_descending() {
        let t = table();
        assert_eq!(t.max(), Freq::from_ghz(3.1));
        assert_eq!(t.min(), Freq::from_ghz(1.0));
        assert!(t.freqs().windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn highest_not_above() {
        let t = table();
        assert_eq!(
            t.highest_not_above(Freq::from_ghz(2.8)),
            Freq::from_ghz(2.6)
        );
        assert_eq!(
            t.highest_not_above(Freq::from_ghz(3.5)),
            Freq::from_ghz(3.1)
        );
        // Below the lowest P-state: clamp to the lowest.
        assert_eq!(
            t.highest_not_above(Freq::from_ghz(0.5)),
            Freq::from_ghz(1.0)
        );
    }

    #[test]
    fn next_below() {
        let t = table();
        assert_eq!(t.next_below(Freq::from_ghz(3.1)), Some(Freq::from_ghz(2.6)));
        assert_eq!(t.next_below(Freq::from_ghz(1.0)), None);
    }

    #[test]
    fn transition_takes_latency() {
        let t = table();
        let mut e = PStateEngine::new(Freq::from_ghz(3.1));
        let settle = e.request(SimTime::from_us(100.0), Freq::from_ghz(2.2), &t);
        assert_eq!(settle, SimTime::from_us(112.0));
        assert_eq!(e.freq_at(SimTime::from_us(105.0)), Freq::from_ghz(3.1));
        assert_eq!(e.freq_at(settle), Freq::from_ghz(2.2));
        assert!(e.in_transition(SimTime::from_us(111.0)));
        assert!(!e.in_transition(settle));
    }

    #[test]
    fn rerequest_same_target_is_noop() {
        let t = table();
        let mut e = PStateEngine::new(Freq::from_ghz(2.2));
        let s1 = e.request(SimTime::ZERO, Freq::from_ghz(1.4), &t);
        let s2 = e.request(SimTime::from_us(5.0), Freq::from_ghz(1.4), &t);
        assert_eq!(s1, s2);
    }

    #[test]
    fn redirect_mid_transition() {
        let t = table();
        let mut e = PStateEngine::new(Freq::from_ghz(3.1));
        e.request(SimTime::ZERO, Freq::from_ghz(2.2), &t);
        // Redirect before settling: old frequency still in force.
        let s2 = e.request(SimTime::from_us(6.0), Freq::from_ghz(1.0), &t);
        assert_eq!(e.freq_at(SimTime::from_us(10.0)), Freq::from_ghz(3.1));
        assert_eq!(e.freq_at(s2), Freq::from_ghz(1.0));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_freqs_panic() {
        let _ = PStateTable::new(
            vec![Freq::from_ghz(2.0), Freq::from_ghz(2.0)],
            SimTime::ZERO,
        );
    }
}

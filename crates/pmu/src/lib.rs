//! # `ichannels-pmu` — power management unit substrate
//!
//! The decision-making layer of the IChannels (ISCA 2021) reproduction:
//! the central PMU plus the per-core power-management state machines.
//!
//! * [`license`] — per-core voltage-guardband licenses with the paper's
//!   650 µs hysteresis (*reset-time*).
//! * [`central`] — the central PMU: license arbitration, package voltage
//!   targets (Equation 1 guardbands, additive across cores), serialized
//!   VR transitions, and the per-core-VR / secure-mode mitigations.
//! * [`turbo`] — the three `LVL{0,1,2}_TURBO_LICENSE` levels with fast
//!   grants and slow (ms) releases (the TurboCC time base).
//! * [`pstate`] — discrete P-states and tens-of-µs frequency transitions
//!   (the Vccmax/Iccmax protection path of Figure 9(c)).
//! * [`thermal`] — a first-order RC junction model demonstrating the
//!   time-scale separation behind Key Conclusion 2 (throttling is *not*
//!   thermal).
//! * [`governor`] — software frequency governors (§5.7: they do not
//!   affect the hardware throttling mechanisms).
//!
//! # Example
//!
//! The Figure 10(b) effect — a 512b-Heavy loop's throttling period
//! depends on the previously executed class:
//!
//! ```
//! use ichannels_pmu::central::{CentralPmu, PmuConfig};
//! use ichannels_pdn::guardband::{CdynTable, GuardbandModel};
//! use ichannels_pdn::regulator::VrModel;
//! use ichannels_uarch::isa::InstClass;
//! use ichannels_uarch::time::{Freq, SimTime};
//!
//! let cfg = PmuConfig {
//!     n_cores: 1,
//!     guardband: GuardbandModel::new(CdynTable::default(), 1.9),
//!     vr_model: VrModel::mbvr(),
//!     reset_time: SimTime::from_us(650.0),
//!     per_core_vr: false,
//!     secure_mode: false,
//! };
//! let mut pmu = CentralPmu::new(cfg, Freq::from_ghz(1.4), 760.0);
//! let g0 = pmu.on_execute(0, InstClass::Light128, SimTime::ZERO);
//! let t1 = g0.ready_at + SimTime::from_us(1.0);
//! let g1 = pmu.on_execute(0, InstClass::Heavy512, t1);
//! let tp_after_light = g1.ready_at - t1;
//! assert!(tp_after_light.as_us() > 5.0); // most of the ramp remains
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod central;
pub mod governor;
pub mod license;
pub mod pstate;
pub mod thermal;
pub mod turbo;

pub use central::{CentralPmu, ExecGrant, PmuConfig, VrRail};
pub use governor::Governor;
pub use license::CoreLicense;
pub use pstate::{PStateEngine, PStateTable};
pub use thermal::ThermalModel;
pub use turbo::{TurboLicense, TurboState, TurboTable};

//! Turbo frequency licenses (paper §5.3).
//!
//! "The Intel architecture provides three Turbo frequency licenses
//! (`LVL{0,1,2}_TURBO_LICENSE`) that the processor operates at. This
//! depends on the instructions that are being executed and the number of
//! active cores." These licenses cap the *maximum frequency*; they are
//! distinct from the (at least five) guardband throttling levels of
//! §5.5, which act at any frequency (footnote 11).
//!
//! TurboCC exploits the *slow* (tens of ms) frequency changes that follow
//! license transitions; IChannels does not depend on them — but we model
//! them so the TurboCC baseline can be reproduced faithfully.

use ichannels_uarch::isa::InstClass;
use ichannels_uarch::time::{Freq, SimTime};

/// The three Intel turbo licenses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TurboLicense {
    /// LVL0: scalar / SSE / light-AVX2 code — full turbo.
    Lvl0,
    /// LVL1: heavy AVX2 or light AVX-512 — reduced turbo.
    Lvl1,
    /// LVL2: heavy AVX-512 — lowest turbo.
    Lvl2,
}

impl TurboLicense {
    /// License required by an instruction class (Intel SDM-style mapping).
    pub const fn for_class(class: InstClass) -> TurboLicense {
        match class {
            InstClass::Scalar64
            | InstClass::Light128
            | InstClass::Heavy128
            | InstClass::Light256 => TurboLicense::Lvl0,
            InstClass::Heavy256 | InstClass::Light512 => TurboLicense::Lvl1,
            InstClass::Heavy512 => TurboLicense::Lvl2,
        }
    }

    /// Index 0..=2.
    pub const fn index(self) -> usize {
        match self {
            TurboLicense::Lvl0 => 0,
            TurboLicense::Lvl1 => 1,
            TurboLicense::Lvl2 => 2,
        }
    }
}

impl std::fmt::Display for TurboLicense {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LVL{}_TURBO_LICENSE", self.index())
    }
}

/// Per-license, per-active-core-count maximum turbo frequencies.
#[derive(Debug, Clone, PartialEq)]
pub struct TurboTable {
    /// `max_freq[license][active_cores - 1]`.
    max_freq: [Vec<Freq>; 3],
    /// Time the PMU takes to *grant* a higher license (frequency drop):
    /// fast, the hardware reacts within tens of µs.
    grant_latency: SimTime,
    /// Time before the PMU *releases* a license after the last demanding
    /// instruction (frequency recovers): slow, ~ms (this is the time
    /// constant TurboCC's covert channel is built on).
    release_latency: SimTime,
}

impl TurboTable {
    /// Builds a turbo table.
    ///
    /// Each of the three license rows must list the maximum frequency for
    /// 1‥=n active cores (same length, non-increasing within a row, and
    /// row LVL0 ≥ LVL1 ≥ LVL2 pointwise).
    ///
    /// # Panics
    ///
    /// Panics if the rows are empty, differ in length, or violate the
    /// ordering constraints.
    pub fn new(
        lvl0: Vec<Freq>,
        lvl1: Vec<Freq>,
        lvl2: Vec<Freq>,
        grant_latency: SimTime,
        release_latency: SimTime,
    ) -> Self {
        assert!(!lvl0.is_empty(), "turbo table must cover at least 1 core");
        assert!(
            lvl0.len() == lvl1.len() && lvl1.len() == lvl2.len(),
            "turbo table rows must have equal length"
        );
        for row in [&lvl0, &lvl1, &lvl2] {
            assert!(
                row.windows(2).all(|w| w[1] <= w[0]),
                "turbo frequency must not increase with active cores"
            );
        }
        for i in 0..lvl0.len() {
            assert!(
                lvl0[i] >= lvl1[i] && lvl1[i] >= lvl2[i],
                "higher licenses must not allow higher frequency"
            );
        }
        TurboTable {
            max_freq: [lvl0, lvl1, lvl2],
            grant_latency,
            release_latency,
        }
    }

    /// Maximum frequency under `license` with `active_cores` running.
    ///
    /// # Panics
    ///
    /// Panics if `active_cores` is zero.
    pub fn max_freq(&self, license: TurboLicense, active_cores: usize) -> Freq {
        assert!(active_cores > 0, "need at least one active core");
        let row = &self.max_freq[license.index()];
        let idx = (active_cores - 1).min(row.len() - 1);
        row[idx]
    }

    /// Latency for granting a more restrictive license (freq drop).
    pub fn grant_latency(&self) -> SimTime {
        self.grant_latency
    }

    /// Latency for releasing a license (freq recovery) — the ms-scale
    /// time constant exploited by TurboCC.
    pub fn release_latency(&self) -> SimTime {
        self.release_latency
    }

    /// Number of core counts covered.
    pub fn core_counts(&self) -> usize {
        self.max_freq[0].len()
    }
}

/// Tracks the package turbo license over time (grant fast, release slow).
#[derive(Debug, Clone, PartialEq)]
pub struct TurboState {
    current: TurboLicense,
    /// Last time an instruction *demanding* the current license executed.
    last_demand: SimTime,
    pending: Option<(TurboLicense, SimTime)>,
}

impl Default for TurboState {
    fn default() -> Self {
        Self::new()
    }
}

impl TurboState {
    /// Starts at LVL0.
    pub fn new() -> Self {
        TurboState {
            current: TurboLicense::Lvl0,
            last_demand: SimTime::ZERO,
            pending: None,
        }
    }

    /// Current license.
    pub fn current(&self) -> TurboLicense {
        self.current
    }

    /// Notifies that `class` instructions execute at `now`; returns the
    /// license in force after the notification (grants apply after the
    /// table's grant latency, but we commit the state change immediately
    /// and expose the effective instant via [`TurboState::pending`]).
    pub fn on_execute(&mut self, class: InstClass, now: SimTime, table: &TurboTable) {
        let needed = TurboLicense::for_class(class);
        if needed > self.current {
            self.pending = Some((needed, now + table.grant_latency()));
        }
        if needed >= self.current {
            self.last_demand = now;
        }
    }

    /// Advances the state to `now`: applies due grants and releases the
    /// license if nothing demanded it for the release latency.
    pub fn advance(&mut self, now: SimTime, table: &TurboTable) {
        if let Some((lic, at)) = self.pending {
            if now >= at {
                self.current = lic;
                self.last_demand = self.last_demand.max(at);
                self.pending = None;
            }
        }
        if self.current > TurboLicense::Lvl0
            && now.saturating_sub(self.last_demand) >= table.release_latency()
        {
            self.current = TurboLicense::Lvl0;
        }
    }

    /// The pending grant, if any: `(license, effective_at)`.
    pub fn pending(&self) -> Option<(TurboLicense, SimTime)> {
        self.pending
    }

    /// Next instant the state could change on its own (grant or release).
    pub fn next_event(&self, table: &TurboTable) -> Option<SimTime> {
        let release = if self.current > TurboLicense::Lvl0 {
            Some(self.last_demand + table.release_latency())
        } else {
            None
        };
        match (self.pending.map(|(_, t)| t), release) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, b) => b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> TurboTable {
        TurboTable::new(
            vec![Freq::from_ghz(4.9), Freq::from_ghz(4.6)],
            vec![Freq::from_ghz(4.4), Freq::from_ghz(4.2)],
            vec![Freq::from_ghz(4.0), Freq::from_ghz(3.8)],
            SimTime::from_us(50.0),
            SimTime::from_ms(2.0),
        )
    }

    #[test]
    fn class_mapping() {
        assert_eq!(
            TurboLicense::for_class(InstClass::Light256),
            TurboLicense::Lvl0
        );
        assert_eq!(
            TurboLicense::for_class(InstClass::Heavy256),
            TurboLicense::Lvl1
        );
        assert_eq!(
            TurboLicense::for_class(InstClass::Heavy512),
            TurboLicense::Lvl2
        );
    }

    #[test]
    fn max_freq_lookup() {
        let t = table();
        assert_eq!(t.max_freq(TurboLicense::Lvl0, 1), Freq::from_ghz(4.9));
        assert_eq!(t.max_freq(TurboLicense::Lvl1, 2), Freq::from_ghz(4.2));
        // Clamped beyond the table.
        assert_eq!(t.max_freq(TurboLicense::Lvl2, 8), Freq::from_ghz(3.8));
    }

    #[test]
    fn grant_is_fast_release_is_slow() {
        let t = table();
        let mut s = TurboState::new();
        s.on_execute(InstClass::Heavy256, SimTime::ZERO, &t);
        // Not yet granted before the grant latency.
        s.advance(SimTime::from_us(10.0), &t);
        assert_eq!(s.current(), TurboLicense::Lvl0);
        // Granted after.
        s.advance(SimTime::from_us(60.0), &t);
        assert_eq!(s.current(), TurboLicense::Lvl1);
        // Stays granted while within the release window…
        s.advance(SimTime::from_ms(1.0), &t);
        assert_eq!(s.current(), TurboLicense::Lvl1);
        // …and releases after ~ms of no demand (the TurboCC time base).
        s.advance(SimTime::from_ms(3.0), &t);
        assert_eq!(s.current(), TurboLicense::Lvl0);
    }

    #[test]
    fn demand_refresh_blocks_release() {
        let t = table();
        let mut s = TurboState::new();
        s.on_execute(InstClass::Heavy512, SimTime::ZERO, &t);
        s.advance(SimTime::from_us(60.0), &t);
        assert_eq!(s.current(), TurboLicense::Lvl2);
        // Keep demanding every 1 ms: license must persist at 10 ms.
        for k in 1..10 {
            let now = SimTime::from_ms(k as f64);
            s.on_execute(InstClass::Heavy512, now, &t);
            s.advance(now, &t);
        }
        s.advance(SimTime::from_ms(10.5), &t);
        assert_eq!(s.current(), TurboLicense::Lvl2);
    }

    #[test]
    fn next_event_reports_release() {
        let t = table();
        let mut s = TurboState::new();
        s.on_execute(InstClass::Heavy256, SimTime::ZERO, &t);
        s.advance(SimTime::from_us(60.0), &t);
        let ev = s.next_event(&t).unwrap();
        assert!(ev >= SimTime::from_ms(2.0));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_rows_panic() {
        let _ = TurboTable::new(
            vec![Freq::from_ghz(4.9)],
            vec![Freq::from_ghz(4.4), Freq::from_ghz(4.2)],
            vec![Freq::from_ghz(4.0)],
            SimTime::ZERO,
            SimTime::ZERO,
        );
    }
}

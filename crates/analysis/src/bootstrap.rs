//! Seeded percentile-bootstrap confidence intervals.
//!
//! The campaign engine's reproducibility contract extends to its
//! statistics: every resample is drawn from a [`SmallRng`] seeded by
//! `seed ^ fnv1a(label)`, so the interval for a cell depends only on
//! the analysis seed, the cell's label, and its sample values — never
//! on processing order, thread count, or which shard the rows came
//! from.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::stats::percentile_nearest_rank;

/// FNV-1a 64-bit hash — the same construction the campaign engine uses
/// to derive per-trial seeds from cell keys, reused here to give every
/// cell an independent, order-free bootstrap stream.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A two-sided percentile-bootstrap confidence interval on a mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapCi {
    /// Lower bound (the `α/2` percentile of the resampled means).
    pub lo: f64,
    /// Upper bound (the `1 − α/2` percentile of the resampled means).
    pub hi: f64,
    /// Number of bootstrap resamples drawn.
    pub resamples: usize,
}

/// Percentile-bootstrap CI on the mean of `samples` at confidence
/// `1 − alpha`: draws `resamples` with-replacement resamples from a
/// generator seeded by `seed ^ fnv1a(label)` and takes nearest-rank
/// percentiles of the resampled means.
///
/// Returns `None` when `samples` is empty or `resamples` is zero; a
/// single sample yields the degenerate interval `[x, x]`.
pub fn bootstrap_mean_ci(
    label: &str,
    samples: &[f64],
    resamples: usize,
    seed: u64,
    alpha: f64,
) -> Option<BootstrapCi> {
    if samples.is_empty() || resamples == 0 {
        return None;
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ fnv1a(label.as_bytes()));
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let sum: f64 = (0..samples.len())
            .map(|_| samples[rng.gen_range(0..samples.len())])
            .sum();
        means.push(sum / samples.len() as f64);
    }
    means.sort_unstable_by(f64::total_cmp);
    Some(BootstrapCi {
        lo: percentile_nearest_rank(&means, 100.0 * alpha / 2.0),
        hi: percentile_nearest_rank(&means, 100.0 * (1.0 - alpha / 2.0)),
        resamples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_label_and_seed() {
        let samples = [0.1, 0.2, 0.05, 0.3, 0.15];
        let a = bootstrap_mean_ci("cell_a", &samples, 200, 42, 0.05).unwrap();
        let b = bootstrap_mean_ci("cell_a", &samples, 200, 42, 0.05).unwrap();
        assert_eq!(a, b);
        // A different label draws an independent stream.
        let c = bootstrap_mean_ci("cell_b", &samples, 200, 42, 0.05).unwrap();
        assert_ne!((a.lo, a.hi), (c.lo, c.hi));
        // And a different seed moves the interval too.
        let d = bootstrap_mean_ci("cell_a", &samples, 200, 43, 0.05).unwrap();
        assert_ne!((a.lo, a.hi), (d.lo, d.hi));
    }

    #[test]
    fn interval_brackets_the_mean() {
        let samples = [0.1, 0.2, 0.05, 0.3, 0.15, 0.12, 0.18, 0.25];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let ci = bootstrap_mean_ci("cell", &samples, 500, 7, 0.05).unwrap();
        assert!(ci.lo <= mean && mean <= ci.hi, "{ci:?} vs mean {mean}");
        assert!(ci.lo >= 0.05 && ci.hi <= 0.3);
        assert_eq!(ci.resamples, 500);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(bootstrap_mean_ci("c", &[], 100, 0, 0.05), None);
        assert_eq!(bootstrap_mean_ci("c", &[0.5], 0, 0, 0.05), None);
        let one = bootstrap_mean_ci("c", &[0.5], 100, 0, 0.05).unwrap();
        assert_eq!((one.lo, one.hi), (0.5, 0.5));
        let constant = bootstrap_mean_ci("c", &[0.25; 6], 100, 1, 0.05).unwrap();
        assert_eq!((constant.lo, constant.hi), (0.25, 0.25));
    }
}

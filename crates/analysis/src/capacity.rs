//! Shannon capacity estimates from pooled error rates.
//!
//! Per-trial rows carry error *rates*, not the per-symbol
//! transmit/receive pairs a direct fig14-style confusion matrix needs,
//! so the estimator reconstructs the matrix a measured rate implies
//! under the symmetric-channel model and takes its mutual information:
//!
//! * **2-bit channels** (the paper's four-level modulation): a bit
//!   error rate `p` with independent bit flips implies the 4×4
//!   transition matrix `P(i→j) = p^d (1−p)^(2−d)` over the Hamming
//!   distance `d` of the 2-bit symbol labels; its uniform-input mutual
//!   information collapses to `2·(1 − H₂(p))` bits/symbol.
//! * **k-level alphabets** (the `-L6`/`-L7` extension channels): a
//!   symbol error rate `s` with errors spread uniformly over the k−1
//!   wrong symbols implies the k-ary symmetric matrix, giving
//!   `log₂k − H₂(s) − s·log₂(k−1)` bits/symbol.
//!
//! These are *model* capacities — what the measured error rate supports
//! if errors are symmetric — and sit alongside the measured per-trial
//! `capacity_bps` (bias-corrected MI × symbol rate), which needs no
//! model but is only available trial by trial. `docs/METHODOLOGY.md`
//! derives both.

/// Binary entropy `H₂(p)` in bits; `0` at `p ∈ {0, 1}`, `NaN` outside
/// `[0, 1]` or for a NaN input.
pub fn binary_entropy(p: f64) -> f64 {
    if !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 || p == 1.0 {
        return 0.0;
    }
    -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
}

/// The 4×4 transition matrix a bit error rate implies under
/// independent, symmetric bit flips: `P(i→j) = p^d (1−p)^(2−d)` with
/// `d` the Hamming distance between the 2-bit labels of `i` and `j` —
/// the matrix a fig14 error-matrix plot of such a channel would show.
pub fn implied_confusion_2bit(ber: f64) -> [[f64; 4]; 4] {
    let mut m = [[f64::NAN; 4]; 4];
    if !(0.0..=1.0).contains(&ber) {
        return m;
    }
    for (tx, row) in m.iter_mut().enumerate() {
        for (rx, cell) in row.iter_mut().enumerate() {
            let d = ((tx ^ rx) as u32).count_ones();
            *cell = ber.powi(d as i32) * (1.0 - ber).powi(2 - d as i32);
        }
    }
    m
}

/// Mutual information (bits) of a row-stochastic transition matrix
/// under uniform inputs: `I(X;Y)` of the joint `p(i,j) = P(i→j)/k`.
/// Returns `NaN` for an empty or non-finite matrix.
pub fn transition_mutual_information_bits(transition: &[Vec<f64>]) -> f64 {
    let k = transition.len();
    if k == 0 {
        return f64::NAN;
    }
    let p_in = 1.0 / k as f64;
    // Output marginals under uniform inputs.
    let mut p_out = vec![0.0f64; transition.iter().map(Vec::len).max().unwrap_or(0)];
    for row in transition {
        for (j, &p) in row.iter().enumerate() {
            if !p.is_finite() {
                return f64::NAN;
            }
            p_out[j] += p * p_in;
        }
    }
    let mut mi = 0.0;
    for row in transition {
        for (j, &p) in row.iter().enumerate() {
            let joint = p * p_in;
            if joint > 0.0 {
                mi += joint * (joint / (p_in * p_out[j])).log2();
            }
        }
    }
    mi
}

/// Model capacity (bits/symbol) of the paper's 2-bit modulation at bit
/// error rate `ber`: the mutual information of
/// [`implied_confusion_2bit`], which equals `2·(1 − H₂(ber))`.
/// `NaN` outside `[0, 1]`.
pub fn capacity_bits_2bit_from_ber(ber: f64) -> f64 {
    if !(0.0..=1.0).contains(&ber) {
        return f64::NAN;
    }
    2.0 * (1.0 - binary_entropy(ber))
}

/// Model capacity (bits/symbol) of a k-level alphabet at symbol error
/// rate `ser` under the k-ary symmetric channel:
/// `log₂k − H₂(ser) − ser·log₂(k−1)` — the exact uniform-input mutual
/// information of that channel, which is non-negative everywhere and
/// zero only at the uniform-output point `ser = (k−1)/k` (the `max`
/// guards against floating-point dust there). `NaN` for `k < 2` or
/// `ser` outside `[0, 1]`.
pub fn capacity_bits_kary_from_ser(ser: f64, k: usize) -> f64 {
    if k < 2 || !(0.0..=1.0).contains(&ser) {
        return f64::NAN;
    }
    let k_f = k as f64;
    (k_f.log2() - binary_entropy(ser) - ser * (k_f - 1.0).log2()).max(0.0)
}

/// Alphabet size encoded in a channel label: the `-L<k>` suffix of the
/// multi-level channels (`IccThreadCovert-L6` → 6). `None` for the
/// 2-bit channels, baselines, and probes.
pub fn alphabet_size(channel_label: &str) -> Option<usize> {
    let (_, suffix) = channel_label.rsplit_once("-L")?;
    suffix.parse().ok().filter(|&k| k >= 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_entropy_endpoints_and_peak() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
        assert!(binary_entropy(-0.1).is_nan());
        assert!(binary_entropy(f64::NAN).is_nan());
    }

    #[test]
    fn implied_matrix_rows_are_stochastic() {
        let m = implied_confusion_2bit(0.07);
        for row in &m {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "row sums to {sum}");
        }
        // Diagonal dominates at a small BER; double flips are rarest.
        assert!(m[0][0] > m[0][1] && m[0][1] > m[0][3]);
        assert!((m[0][3] - 0.07 * 0.07).abs() < 1e-12);
    }

    #[test]
    fn matrix_mi_matches_the_closed_form() {
        for ber in [0.0, 0.01, 0.07, 0.19, 0.5] {
            let m = implied_confusion_2bit(ber);
            let rows: Vec<Vec<f64>> = m.iter().map(|r| r.to_vec()).collect();
            let mi = transition_mutual_information_bits(&rows);
            let closed = capacity_bits_2bit_from_ber(ber);
            assert!(
                (mi - closed).abs() < 1e-9,
                "ber {ber}: matrix MI {mi} vs closed form {closed}"
            );
        }
    }

    #[test]
    fn capacity_endpoints() {
        assert_eq!(capacity_bits_2bit_from_ber(0.0), 2.0);
        assert!(capacity_bits_2bit_from_ber(0.5).abs() < 1e-12);
        assert!(capacity_bits_2bit_from_ber(f64::NAN).is_nan());
        // Perfect 7-level channel carries log2(7) bits.
        assert!((capacity_bits_kary_from_ser(0.0, 7) - 7f64.log2()).abs() < 1e-12);
        // At SER = (k-1)/k (uniform output) the channel carries nothing.
        assert!(capacity_bits_kary_from_ser(6.0 / 7.0, 7).abs() < 1e-12);
        // Beyond the uniform-output point the symmetric-channel MI
        // rises again (errors become informative), so it stays >= 0.
        assert!(capacity_bits_kary_from_ser(0.95, 7) > 0.0);
        assert!(capacity_bits_kary_from_ser(0.1, 1).is_nan());
    }

    #[test]
    fn alphabet_sizes_parse_from_labels() {
        assert_eq!(alphabet_size("IccThreadCovert-L6"), Some(6));
        assert_eq!(alphabet_size("IccCoresCovert-L7"), Some(7));
        assert_eq!(alphabet_size("IccThreadCovert-L4"), Some(4));
        assert_eq!(alphabet_size("IccThreadCovert"), None);
        assert_eq!(alphabet_size("turbo_ratio_baseline"), None);
        assert_eq!(alphabet_size("x-L1"), None);
    }
}

//! Finished analysis reports and their byte-stable JSONL rendering.
//!
//! A [`CampaignAnalysis`] renders as flat JSONL through the same
//! [`JsonlRow`] path the trial streams use — insertion-ordered fields,
//! shortest-round-trip floats, `NaN` as `null` — so `analysis.jsonl`
//! inherits the byte-stability contract of every other artifact and
//! parses with [`ichannels_meter::parse`]. Four record kinds share the
//! file, discriminated by the leading `record` field: `campaign`,
//! `cell`, `axis`, and `sensitivity`.

use ichannels_meter::export::{jsonl_to_string, JsonlRow};

use crate::bootstrap::{bootstrap_mean_ci, BootstrapCi};
use crate::capacity::{alphabet_size, capacity_bits_2bit_from_ber, capacity_bits_kary_from_ser};
use crate::stats::{summarize_samples, Stats};
use crate::stream::{CellAccumulator, MetricStream};
use crate::AnalysisConfig;

/// One metric's finished summary: exact sample count, order statistics
/// over the retained samples, and (where requested) a bootstrap CI on
/// the mean.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricReport {
    /// Finite samples seen (exact even when the reservoir sampled).
    pub n: u64,
    /// Summary statistics (`None` when no finite sample arrived).
    pub stats: Option<Stats>,
    /// Bootstrap CI on the mean (`None` when not computed or no data).
    pub ci: Option<BootstrapCi>,
    /// True when statistics come from the bottom-k-by-hash subsample
    /// rather than every sample.
    pub sampled: bool,
}

impl MetricReport {
    /// Summarizes a metric stream; `ci_label` keys the bootstrap
    /// stream (pass `None` to skip the CI).
    pub fn from_stream(
        stream: &MetricStream,
        ci_label: Option<&str>,
        config: &AnalysisConfig,
    ) -> Self {
        let values = stream.reservoir.values();
        let stats = summarize_samples(&values).ok();
        let ci = ci_label.and_then(|label| {
            bootstrap_mean_ci(label, &values, config.resamples, config.seed, config.alpha)
        });
        MetricReport {
            n: stream.count,
            stats,
            ci,
            sampled: stream.sampled(),
        }
    }
}

/// Finished summary of one grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Cell key.
    pub cell: String,
    /// Axis labels in [`crate::stream::AXES`] order.
    pub labels: [String; 6],
    /// Rows aggregated (including errored ones).
    pub trials: u64,
    /// Rows carrying an error message.
    pub errored: u64,
    /// Symbol alphabet size implied by the channel label (4 for the
    /// paper's 2-bit channels).
    pub alphabet: usize,
    /// Bit error rate (with bootstrap CI).
    pub ber: MetricReport,
    /// Symbol error rate.
    pub ser: MetricReport,
    /// Pooled error rate (BER when defined, else SER; with CI).
    pub error_rate: MetricReport,
    /// Gross throughput (b/s).
    pub throughput: MetricReport,
    /// Measured effective capacity (b/s).
    pub capacity_bps: MetricReport,
    /// Bias-corrected MI (bits/symbol).
    pub mi: MetricReport,
    /// Model capacity (bits/symbol) from the cell's mean error rate —
    /// `2(1−H₂(BER))` for 2-bit cells, the k-ary symmetric form for
    /// `-L<k>` cells, `None` for probes.
    pub capacity_model_bits_per_symbol: Option<f64>,
}

impl CellReport {
    /// Summarizes one cell accumulator.
    pub fn from_accumulator(acc: &CellAccumulator, config: &AnalysisConfig) -> Self {
        let metric = |stream: &MetricStream, tag: Option<&str>| {
            let label = tag.map(|t| format!("{}/{t}", acc.cell));
            MetricReport::from_stream(stream, label.as_deref(), config)
        };
        let ber = metric(&acc.ber, Some("ber"));
        let ser = metric(&acc.ser, Some("ser"));
        let channel = acc.labels[1].as_str();
        let alphabet = alphabet_size(channel).unwrap_or(4);
        let capacity_model_bits_per_symbol = match (&ber.stats, &ser.stats) {
            (Some(b), _) if alphabet_size(channel).is_none() => {
                Some(capacity_bits_2bit_from_ber(b.mean))
            }
            (_, Some(s)) if alphabet_size(channel).is_some() => {
                Some(capacity_bits_kary_from_ser(s.mean, alphabet))
            }
            (Some(b), _) => Some(capacity_bits_2bit_from_ber(b.mean)),
            _ => None,
        };
        CellReport {
            cell: acc.cell.clone(),
            labels: acc.labels.clone(),
            trials: acc.trials,
            errored: acc.errored,
            alphabet,
            ber,
            ser,
            error_rate: metric(&acc.error_rate, Some("error_rate")),
            throughput: metric(&acc.throughput, None),
            capacity_bps: metric(&acc.capacity_bps, None),
            mi: metric(&acc.mi, None),
            capacity_model_bits_per_symbol,
        }
    }
}

/// Pooled error rate of one axis value across every cell carrying it.
#[derive(Debug, Clone, PartialEq)]
pub struct AxisValueReport {
    /// Axis name (a [`crate::stream::AXES`] entry).
    pub axis: String,
    /// The value's label on that axis.
    pub value: String,
    /// Cells carrying this value.
    pub cells: u64,
    /// Trials pooled.
    pub trials: u64,
    /// Pooled per-trial error rate (with bootstrap CI).
    pub error_rate: MetricReport,
}

impl AxisValueReport {
    /// Summarizes one axis-value pool.
    pub fn from_pool(
        axis: &str,
        value: &str,
        pool: &MetricStream,
        cells: u64,
        trials: u64,
        config: &AnalysisConfig,
    ) -> Self {
        let label = format!("axis/{axis}/{value}");
        AxisValueReport {
            axis: axis.to_string(),
            value: value.to_string(),
            cells,
            trials,
            error_rate: MetricReport::from_stream(pool, Some(&label), config),
        }
    }
}

/// How much one grid axis moves the pooled error rate: the spread
/// between its best and worst value means.
#[derive(Debug, Clone, PartialEq)]
pub struct AxisSensitivity {
    /// Axis name.
    pub axis: String,
    /// Values with a defined pooled error rate.
    pub values: usize,
    /// Value with the lowest mean error rate.
    pub min_value: String,
    /// That value's mean error rate.
    pub min_mean: f64,
    /// Value with the highest mean error rate.
    pub max_value: String,
    /// That value's mean error rate.
    pub max_mean: f64,
    /// `max_mean − min_mean` — the sensitivity ranking key.
    pub range: f64,
}

impl AxisSensitivity {
    /// Ranks an axis from its value reports; `None` when no value has
    /// a defined error rate (e.g. a probe-only sweep).
    pub fn from_values(axis: &str, values: &[AxisValueReport]) -> Option<Self> {
        let defined: Vec<(&str, f64)> = values
            .iter()
            .filter_map(|v| {
                v.error_rate
                    .stats
                    .as_ref()
                    .map(|s| (v.value.as_str(), s.mean))
            })
            .collect();
        let (min_value, min_mean) = defined.iter().copied().min_by(|a, b| a.1.total_cmp(&b.1))?;
        let (max_value, max_mean) = defined.iter().copied().max_by(|a, b| a.1.total_cmp(&b.1))?;
        Some(AxisSensitivity {
            axis: axis.to_string(),
            values: defined.len(),
            min_value: min_value.to_string(),
            min_mean,
            max_value: max_value.to_string(),
            max_mean,
            range: max_mean - min_mean,
        })
    }
}

/// The finished analysis of one campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignAnalysis {
    /// Campaign name.
    pub campaign: String,
    /// Rows aggregated.
    pub trials: u64,
    /// Rows carrying an error message.
    pub errored: u64,
    /// The configuration the statistics were computed under (echoed
    /// into the report for provenance).
    pub config: AnalysisConfig,
    /// Campaign-pooled error rate (with bootstrap CI).
    pub error_rate: MetricReport,
    /// Campaign-pooled measured capacity (b/s).
    pub capacity_bps: MetricReport,
    /// Mean of the per-cell model capacities (bits/symbol), over cells
    /// where the model applies.
    pub capacity_model_mean_bits_per_symbol: Option<f64>,
    /// Per-cell summaries, sorted by cell key.
    pub cells: Vec<CellReport>,
    /// Per-axis value pools, in axis then value order.
    pub axes: Vec<AxisValueReport>,
    /// Axis sensitivity ranking, most-sensitive first.
    pub sensitivity: Vec<AxisSensitivity>,
}

/// Appends `<prefix>_n/mean/std/median/p95` fields (and
/// `<prefix>_ci_lo/_ci_hi` when a CI was computed) for one metric;
/// undefined statistics render as `null`.
fn metric_fields(mut row: JsonlRow, prefix: &str, m: &MetricReport) -> JsonlRow {
    let s = m.stats.as_ref();
    let get = |f: fn(&Stats) -> f64| s.map_or(f64::NAN, f);
    row = row
        .int(&format!("{prefix}_n"), m.n)
        .num(&format!("{prefix}_mean"), get(|s| s.mean))
        .num(&format!("{prefix}_std"), get(|s| s.std_dev))
        .num(&format!("{prefix}_median"), get(|s| s.median))
        .num(&format!("{prefix}_p95"), get(|s| s.p95));
    if let Some(ci) = &m.ci {
        row = row
            .num(&format!("{prefix}_ci_lo"), ci.lo)
            .num(&format!("{prefix}_ci_hi"), ci.hi);
    }
    row
}

impl CampaignAnalysis {
    /// Renders the analysis as its JSONL records (campaign, cells,
    /// axes, sensitivity — in that order).
    pub fn jsonl_rows(&self) -> Vec<JsonlRow> {
        let mut rows = Vec::with_capacity(1 + self.cells.len() + self.axes.len());
        let mut campaign = JsonlRow::new()
            .str("record", "campaign")
            .str("campaign", &self.campaign)
            .int("trials", self.trials)
            .int("cells", self.cells.len() as u64)
            .int("errored", self.errored)
            .int("seed", self.config.seed)
            .int("resamples", self.config.resamples as u64)
            .num("alpha", self.config.alpha)
            .int("reservoir", self.config.reservoir as u64);
        campaign = metric_fields(campaign, "error_rate", &self.error_rate);
        campaign = metric_fields(campaign, "capacity_bps", &self.capacity_bps);
        campaign = campaign.num(
            "capacity_model_mean_bits_per_symbol",
            self.capacity_model_mean_bits_per_symbol.unwrap_or(f64::NAN),
        );
        rows.push(campaign);

        for cell in &self.cells {
            let mut row = JsonlRow::new()
                .str("record", "cell")
                .str("campaign", &self.campaign)
                .str("cell", &cell.cell);
            for (axis, label) in crate::stream::AXES.iter().zip(&cell.labels) {
                row = row.str(axis, label);
            }
            row = row
                .int("trials", cell.trials)
                .int("errored", cell.errored)
                .int("alphabet", cell.alphabet as u64)
                .bool("sampled", cell.ber.sampled || cell.error_rate.sampled);
            row = metric_fields(row, "ber", &cell.ber);
            row = metric_fields(row, "ser", &cell.ser);
            row = metric_fields(row, "error_rate", &cell.error_rate);
            row = metric_fields(row, "throughput_bps", &cell.throughput);
            row = metric_fields(row, "capacity_bps", &cell.capacity_bps);
            row = metric_fields(row, "mi_bits_per_symbol", &cell.mi);
            row = row.num(
                "capacity_model_bits_per_symbol",
                cell.capacity_model_bits_per_symbol.unwrap_or(f64::NAN),
            );
            rows.push(row);
        }

        for axis in &self.axes {
            let mut row = JsonlRow::new()
                .str("record", "axis")
                .str("campaign", &self.campaign)
                .str("axis", &axis.axis)
                .str("value", &axis.value)
                .int("cells", axis.cells)
                .int("trials", axis.trials);
            row = metric_fields(row, "error_rate", &axis.error_rate);
            rows.push(row);
        }

        for s in &self.sensitivity {
            rows.push(
                JsonlRow::new()
                    .str("record", "sensitivity")
                    .str("campaign", &self.campaign)
                    .str("axis", &s.axis)
                    .int("values", s.values as u64)
                    .str("min_value", &s.min_value)
                    .num("min_mean", s.min_mean)
                    .str("max_value", &s.max_value)
                    .num("max_mean", s.max_mean)
                    .num("range", s.range),
            );
        }
        rows
    }

    /// Renders the analysis as one JSONL document.
    pub fn to_jsonl(&self) -> String {
        jsonl_to_string(self.jsonl_rows().iter())
    }
}

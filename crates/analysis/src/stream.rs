//! Constant-memory streaming aggregation over campaign trial streams.
//!
//! An [`Analysis`] consumes [`TrialRow`]s one at a time — from a merged
//! stream, an unsharded run, or shard by shard via [`Analysis::merge`]
//! — and holds per-cell state bounded by the reservoir capacity, never
//! by the trial count. Every statistic it reports is computed at
//! [`Analysis::finish`] from data in a canonical order (cells sorted by
//! key, reservoir samples sorted by their trial hash), so the report
//! bytes depend only on the row *set* and the [`AnalysisConfig`]:
//! feeding rows in a different order, from a different thread count's
//! output, or grouped into different shards cannot move a byte.
//!
//! Sampling contract: a cell's reservoir keeps the **bottom-k trials
//! by FNV-1a hash** of their `cell#trial` key. Bottom-k-by-hash is a
//! uniform subsample that is order-independent and associative under
//! merge — the same k trials win no matter how the stream was split.
//! Campaigns whose cells stay within the capacity (every catalog
//! campaign does, by orders of magnitude) are summarized exactly; past
//! it, order statistics and bootstrap CIs come from the deterministic
//! subsample while counts remain exact, and the report flags the cell
//! as sampled.

use std::collections::BTreeMap;

use ichannels_lab::shard::parse_header_line;
use ichannels_lab::TrialRow;

use crate::bootstrap::fnv1a;
use crate::report::{AxisSensitivity, AxisValueReport, CampaignAnalysis, CellReport, MetricReport};
use crate::AnalysisConfig;

/// The grid axes a sensitivity summary sweeps, in report order. Each
/// is a [`TrialRow`] label column (the trial/seed columns are not
/// axes).
pub const AXES: [&str; 6] = [
    "platform",
    "channel",
    "noise",
    "mitigations",
    "app",
    "payload",
];

/// A bounded, order-independent sample reservoir: keeps the bottom
/// `cap` samples ranked by `(hash, value bits)`, so membership is a
/// pure function of the sample set.
#[derive(Debug, Clone)]
pub struct Reservoir {
    cap: usize,
    /// Ascending by `(key, value bits)`.
    entries: Vec<(u64, f64)>,
}

impl Reservoir {
    /// An empty reservoir holding at most `cap` samples.
    pub fn new(cap: usize) -> Self {
        Reservoir {
            cap: cap.max(1),
            entries: Vec::new(),
        }
    }

    fn rank(entry: &(u64, f64)) -> (u64, u64) {
        (entry.0, entry.1.to_bits())
    }

    /// Inserts a keyed sample, evicting the largest-ranked entry if the
    /// reservoir is full.
    pub fn add(&mut self, key: u64, value: f64) {
        let entry = (key, value);
        let pos = self
            .entries
            .partition_point(|e| Self::rank(e) <= Self::rank(&entry));
        if self.entries.len() < self.cap {
            self.entries.insert(pos, entry);
        } else if pos < self.entries.len() {
            self.entries.pop();
            self.entries.insert(pos, entry);
        }
    }

    /// Merges another reservoir (same ranking) into this one.
    pub fn merge(&mut self, other: &Reservoir) {
        for &(key, value) in &other.entries {
            self.add(key, value);
        }
    }

    /// Retained samples in canonical (hash) order.
    pub fn values(&self) -> Vec<f64> {
        self.entries.iter().map(|&(_, v)| v).collect()
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One metric's streaming state: an exact count of finite samples plus
/// the bounded reservoir order statistics are computed from.
#[derive(Debug, Clone)]
pub struct MetricStream {
    /// Finite samples seen (exact, never sampled).
    pub count: u64,
    /// The retained samples.
    pub reservoir: Reservoir,
}

impl MetricStream {
    fn new(cap: usize) -> Self {
        MetricStream {
            count: 0,
            reservoir: Reservoir::new(cap),
        }
    }

    fn add(&mut self, key: u64, value: f64) {
        if value.is_finite() {
            self.count += 1;
            self.reservoir.add(key, value);
        }
    }

    fn merge(&mut self, other: &MetricStream) {
        self.count += other.count;
        self.reservoir.merge(&other.reservoir);
    }

    /// True when the reservoir overflowed and order statistics are
    /// computed from the deterministic subsample.
    pub fn sampled(&self) -> bool {
        self.count > self.reservoir.len() as u64
    }
}

/// Streaming state of one grid cell.
#[derive(Debug, Clone)]
pub struct CellAccumulator {
    /// Cell key.
    pub cell: String,
    /// The cell's axis labels, in [`AXES`] order.
    pub labels: [String; 6],
    /// Rows seen (including errored ones).
    pub trials: u64,
    /// Rows carrying an error message.
    pub errored: u64,
    /// Bit error rate samples.
    pub ber: MetricStream,
    /// Symbol error rate samples.
    pub ser: MetricStream,
    /// Per-trial error rate: BER when defined, else SER (the fuzz
    /// oracle's convention) — what the sensitivity sweep pools.
    pub error_rate: MetricStream,
    /// Gross throughput samples (b/s).
    pub throughput: MetricStream,
    /// Measured effective capacity samples (b/s).
    pub capacity_bps: MetricStream,
    /// Bias-corrected MI samples (bits/symbol).
    pub mi: MetricStream,
}

impl CellAccumulator {
    fn new(row: &TrialRow, cap: usize) -> Self {
        CellAccumulator {
            cell: row.cell.clone(),
            labels: [
                row.platform.clone(),
                row.channel.clone(),
                row.noise.clone(),
                row.mitigations.clone(),
                row.app.clone(),
                row.payload.clone(),
            ],
            trials: 0,
            errored: 0,
            ber: MetricStream::new(cap),
            ser: MetricStream::new(cap),
            error_rate: MetricStream::new(cap),
            throughput: MetricStream::new(cap),
            capacity_bps: MetricStream::new(cap),
            mi: MetricStream::new(cap),
        }
    }

    fn add(&mut self, row: &TrialRow) {
        let key = fnv1a(row.trial_key().as_bytes());
        self.trials += 1;
        if row.error.is_some() {
            self.errored += 1;
        }
        let m = &row.metrics;
        self.ber.add(key, m.ber);
        self.ser.add(key, m.ser);
        let error_rate = if m.ber.is_finite() { m.ber } else { m.ser };
        self.error_rate.add(key, error_rate);
        self.throughput.add(key, m.throughput_bps);
        self.capacity_bps.add(key, m.capacity_bps);
        self.mi.add(key, m.mi_bits_per_symbol);
    }

    fn merge(&mut self, other: &CellAccumulator) {
        self.trials += other.trials;
        self.errored += other.errored;
        self.ber.merge(&other.ber);
        self.ser.merge(&other.ser);
        self.error_rate.merge(&other.error_rate);
        self.throughput.merge(&other.throughput);
        self.capacity_bps.merge(&other.capacity_bps);
        self.mi.merge(&other.mi);
    }
}

/// A line the streaming reader refuses to aggregate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// The line is a shard header: the stream is one shard of a
    /// campaign, and aggregating a lone shard would silently report a
    /// slice as the whole.
    ShardHeader {
        /// The campaign the header records.
        campaign: String,
        /// The `I/N` spec the header records, rendered.
        shard: String,
    },
    /// The line is not a trial row (message from [`TrialRow::parse`]).
    BadRow(String),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::ShardHeader { campaign, shard } => write!(
                f,
                "stream is shard {shard} of campaign {campaign:?} — reassemble the shards \
                 with `campaign merge` and analyze the merged stream"
            ),
            StreamError::BadRow(message) => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for StreamError {}

/// Streaming analysis of one campaign's trial stream.
#[derive(Debug, Clone)]
pub struct Analysis {
    config: AnalysisConfig,
    campaign: String,
    cells: BTreeMap<String, CellAccumulator>,
    rows: u64,
    errored: u64,
}

impl Analysis {
    /// An empty analysis for the named campaign.
    pub fn new(campaign: &str, config: AnalysisConfig) -> Self {
        Analysis {
            config,
            campaign: campaign.to_string(),
            cells: BTreeMap::new(),
            rows: 0,
            errored: 0,
        }
    }

    /// The campaign name.
    pub fn campaign(&self) -> &str {
        &self.campaign
    }

    /// Rows aggregated so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Aggregates one trial row.
    pub fn add_row(&mut self, row: &TrialRow) {
        self.rows += 1;
        if row.error.is_some() {
            self.errored += 1;
        }
        let cap = self.config.reservoir;
        self.cells
            .entry(row.cell.clone())
            .or_insert_with(|| CellAccumulator::new(row, cap))
            .add(row);
    }

    /// Parses and aggregates one JSONL line.
    ///
    /// # Errors
    ///
    /// Rejects shard header lines (a lone shard is a slice, not a
    /// campaign — merge first) and lines that are not trial rows.
    pub fn add_jsonl_line(&mut self, line: &str) -> Result<(), StreamError> {
        if let Some((campaign, spec, _)) = parse_header_line(line) {
            return Err(StreamError::ShardHeader {
                campaign,
                shard: spec.to_string(),
            });
        }
        let row = TrialRow::parse(line).map_err(StreamError::BadRow)?;
        self.add_row(&row);
        Ok(())
    }

    /// Merges another analysis of the **same campaign over disjoint
    /// rows** (e.g. built shard by shard) into this one. The merged
    /// state — and therefore the finished report — is byte-identical
    /// to aggregating the union of rows directly, in any order.
    pub fn merge(&mut self, other: &Analysis) {
        self.rows += other.rows;
        self.errored += other.errored;
        for (key, acc) in &other.cells {
            match self.cells.get_mut(key) {
                Some(mine) => mine.merge(acc),
                None => {
                    self.cells.insert(key.clone(), acc.clone());
                }
            }
        }
    }

    /// Finishes the stream: per-cell summaries with bootstrap CIs,
    /// model capacity estimates, per-axis pools, and the sensitivity
    /// ranking. The analysis itself is unchanged and can keep
    /// aggregating.
    pub fn finish(&self) -> CampaignAnalysis {
        let cfg = &self.config;
        let cells: Vec<CellReport> = self
            .cells
            .values()
            .map(|acc| CellReport::from_accumulator(acc, cfg))
            .collect();

        // Campaign-level pools across every cell (canonical cell-key
        // merge order, so the result is independent of input order).
        let mut pooled_error = MetricStream::new(cfg.reservoir);
        let mut pooled_capacity = MetricStream::new(cfg.reservoir);
        for acc in self.cells.values() {
            pooled_error.merge(&acc.error_rate);
            pooled_capacity.merge(&acc.capacity_bps);
        }
        let model: Vec<f64> = cells
            .iter()
            .filter_map(|c| c.capacity_model_bits_per_symbol)
            .filter(|v| v.is_finite())
            .collect();
        let capacity_model_mean_bits_per_symbol =
            (!model.is_empty()).then(|| model.iter().sum::<f64>() / model.len() as f64);

        // Per-axis pools: merge the error-rate reservoirs of every
        // cell sharing an axis value (reservoir merge is associative,
        // and BTreeMap iteration fixes a canonical merge order).
        let mut axes = Vec::new();
        let mut sensitivity = Vec::new();
        for (axis_idx, axis) in AXES.iter().enumerate() {
            let mut pools: BTreeMap<&str, (MetricStream, u64, u64)> = BTreeMap::new();
            for acc in self.cells.values() {
                let value = acc.labels[axis_idx].as_str();
                let (pool, cells_n, trials) = pools
                    .entry(value)
                    .or_insert_with(|| (MetricStream::new(cfg.reservoir), 0, 0));
                pool.merge(&acc.error_rate);
                *cells_n += 1;
                *trials += acc.trials;
            }
            let values: Vec<AxisValueReport> = pools
                .iter()
                .map(|(value, (pool, cells_n, trials))| {
                    AxisValueReport::from_pool(axis, value, pool, *cells_n, *trials, cfg)
                })
                .collect();
            if let Some(s) = AxisSensitivity::from_values(axis, &values) {
                sensitivity.push(s);
            }
            axes.extend(values);
        }
        // Most-sensitive axis first; ties fall back to the fixed axis
        // order (stable sort), keeping the ranking deterministic.
        sensitivity.sort_by(|a, b| b.range.total_cmp(&a.range));

        CampaignAnalysis {
            campaign: self.campaign.clone(),
            trials: self.rows,
            errored: self.errored,
            config: *cfg,
            error_rate: MetricReport::from_stream(&pooled_error, Some("campaign/error_rate"), cfg),
            capacity_bps: MetricReport::from_stream(&pooled_capacity, None, cfg),
            capacity_model_mean_bits_per_symbol,
            cells,
            axes,
            sensitivity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservoir_is_order_independent_and_associative() {
        let samples: Vec<(u64, f64)> = (0..40u64)
            .map(|i| (fnv1a(&i.to_le_bytes()), i as f64))
            .collect();
        let mut forward = Reservoir::new(16);
        let mut backward = Reservoir::new(16);
        for &(k, v) in &samples {
            forward.add(k, v);
        }
        for &(k, v) in samples.iter().rev() {
            backward.add(k, v);
        }
        assert_eq!(forward.values(), backward.values());
        assert_eq!(forward.len(), 16);
        // Split-and-merge retains exactly the same bottom-k set.
        let mut left = Reservoir::new(16);
        let mut right = Reservoir::new(16);
        for (i, &(k, v)) in samples.iter().enumerate() {
            if i % 2 == 0 {
                left.add(k, v);
            } else {
                right.add(k, v);
            }
        }
        left.merge(&right);
        assert_eq!(left.values(), forward.values());
    }

    #[test]
    fn reservoir_under_capacity_is_lossless() {
        let mut r = Reservoir::new(64);
        for i in 0..10u64 {
            r.add(fnv1a(&i.to_le_bytes()), i as f64);
        }
        assert_eq!(r.len(), 10);
        let mut values = r.values();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(values, (0..10).map(f64::from).collect::<Vec<_>>());
    }

    #[test]
    fn metric_stream_counts_exactly_past_capacity() {
        let mut m = MetricStream::new(8);
        for i in 0..20u64 {
            m.add(fnv1a(&i.to_le_bytes()), i as f64);
        }
        m.add(999, f64::NAN); // NaN (undefined metric) never counts.
        assert_eq!(m.count, 20);
        assert_eq!(m.reservoir.len(), 8);
        assert!(m.sampled());
    }

    #[test]
    fn shard_headers_are_rejected_with_the_merge_pointer() {
        let mut analysis = Analysis::new("unit", AnalysisConfig::default());
        let spec = ichannels_lab::ShardSpec::new(1, 3).unwrap();
        let header = spec.header_row("noise_robustness", 9).to_json();
        let err = analysis.add_jsonl_line(&header).unwrap_err();
        assert!(matches!(err, StreamError::ShardHeader { .. }));
        let msg = err.to_string();
        assert!(msg.contains("campaign merge"), "{msg}");
        assert!(msg.contains("noise_robustness"), "{msg}");
        assert!(analysis.add_jsonl_line("{not json").is_err());
        assert_eq!(analysis.rows(), 0);
    }
}

//! Order statistics over finite `f64` samples: the shared core the
//! `criterion` stand-in's `Duration` stats delegate to and the per-cell
//! campaign summaries build on.
//!
//! Percentiles are **nearest-rank** (`rank(p) = ⌈p/100·n⌉`, 1-based) —
//! the convention the bench harness has always printed — and the
//! standard deviation is the sample (n−1) form. Unlike
//! [`ichannels_meter::stats::summarize`], which panics on bad input
//! mid-benchmark, this entry point returns a typed error so streaming
//! consumers can reject a poisoned series without unwinding.

/// Why a sample series cannot be summarized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsError {
    /// The series is empty.
    Empty,
    /// The series contains a NaN or infinity at the given index.
    NonFinite {
        /// Index of the first non-finite sample.
        index: usize,
    },
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::Empty => write!(f, "no samples to summarize"),
            StatsError::NonFinite { index } => {
                write!(f, "non-finite sample at index {index}")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// Summary statistics of one finite sample series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; `0` for n < 2).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Nearest-rank median.
    pub median: f64,
    /// Nearest-rank 95th percentile.
    pub p95: f64,
    /// Largest sample.
    pub max: f64,
}

/// Nearest-rank percentile of an ascending-sorted series:
/// `sorted[⌈p/100·n⌉ - 1]`, clamped to the series.
///
/// # Panics
///
/// Panics if `sorted` is empty.
pub fn percentile_nearest_rank(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "no samples to summarize");
    let idx = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[idx.clamp(1, sorted.len()) - 1]
}

/// Summarizes a sample series: mean, sample standard deviation,
/// min/median/p95/max with nearest-rank percentiles.
///
/// # Errors
///
/// Returns [`StatsError::Empty`] for an empty series and
/// [`StatsError::NonFinite`] if any sample is NaN or infinite — a
/// NaN would silently poison every moment, so it is rejected rather
/// than propagated.
pub fn summarize_samples(samples: &[f64]) -> Result<Stats, StatsError> {
    if samples.is_empty() {
        return Err(StatsError::Empty);
    }
    if let Some(index) = samples.iter().position(|v| !v.is_finite()) {
        return Err(StatsError::NonFinite { index });
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    let n = sorted.len();
    let mean = sorted.iter().sum::<f64>() / n as f64;
    let variance = if n < 2 {
        0.0
    } else {
        sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
    };
    Ok(Stats {
        n,
        mean,
        std_dev: variance.sqrt(),
        min: sorted[0],
        median: percentile_nearest_rank(&sorted, 50.0),
        p95: percentile_nearest_rank(&sorted, 95.0),
        max: sorted[n - 1],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_a_typed_error() {
        assert_eq!(summarize_samples(&[]), Err(StatsError::Empty));
        assert_eq!(StatsError::Empty.to_string(), "no samples to summarize");
    }

    #[test]
    fn single_sample_degenerates_cleanly() {
        let s = summarize_samples(&[7.0]).unwrap();
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.p95, 7.0);
        assert_eq!(s.max, 7.0);
    }

    #[test]
    fn constant_series_has_zero_spread() {
        let s = summarize_samples(&[3.25; 9]).unwrap();
        assert_eq!(s.n, 9);
        assert_eq!(s.mean, 3.25);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!((s.min, s.median, s.p95, s.max), (3.25, 3.25, 3.25, 3.25));
    }

    #[test]
    fn nan_and_infinity_are_rejected_with_position() {
        assert_eq!(
            summarize_samples(&[1.0, f64::NAN, 2.0]),
            Err(StatsError::NonFinite { index: 1 })
        );
        assert_eq!(
            summarize_samples(&[f64::INFINITY]),
            Err(StatsError::NonFinite { index: 0 })
        );
        assert_eq!(
            summarize_samples(&[0.0, 1.0, f64::NEG_INFINITY]),
            Err(StatsError::NonFinite { index: 2 })
        );
    }

    #[test]
    fn matches_the_historical_bench_convention() {
        // 1..=20: mean 10.5, nearest-rank median 10, p95 19, sample
        // stddev √35 — the exact numbers the criterion stand-in's own
        // unit test pins.
        let samples: Vec<f64> = (1..=20).map(f64::from).collect();
        let s = summarize_samples(&samples).unwrap();
        assert_eq!(s.mean, 10.5);
        assert_eq!(s.median, 10.0);
        assert_eq!(s.p95, 19.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 20.0);
        assert!((s.std_dev - 35.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn order_does_not_matter() {
        let a = summarize_samples(&[5.0, 1.0, 3.0]).unwrap();
        let b = summarize_samples(&[3.0, 5.0, 1.0]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.median, 3.0);
    }
}

//! # `ichannels-analysis` — streaming capacity statistics over merged campaigns
//!
//! The statistics layer of the IChannels reproduction: consumes the
//! per-trial JSONL streams the campaign engine writes (unsharded runs
//! or `campaign merge` output) and produces the information-theoretic
//! summaries the paper reports — per-cell error rates with bootstrap
//! confidence intervals, Shannon capacity estimates from the error
//! matrices those rates imply, and a per-axis sensitivity ranking of
//! which grid knob moves the error rate most. `docs/METHODOLOGY.md`
//! documents every estimator.
//!
//! * [`stats`] — order statistics over finite samples: the shared
//!   [`stats::Stats`]/[`stats::summarize_samples`] core the `criterion`
//!   stand-in's `Duration` statistics delegate to;
//! * [`bootstrap`] — seeded, label-keyed percentile-bootstrap CIs;
//! * [`capacity`] — capacity estimators from implied confusion
//!   matrices (2-bit symmetric and k-ary symmetric);
//! * [`stream`] — [`Analysis`]: the constant-memory streaming
//!   aggregator (bounded bottom-k-by-hash reservoirs, mergeable shard
//!   by shard, canonical-order statistics);
//! * [`report`] — [`CampaignAnalysis`] and its byte-stable JSONL
//!   rendering.
//!
//! The same reproducibility contract as the engine: the report bytes
//! are a pure function of the trial-row set and the
//! [`AnalysisConfig`] — independent of row order, thread counts, and
//! shard grouping.
//!
//! ```
//! use ichannels_analysis::{Analysis, AnalysisConfig};
//! use ichannels_lab::{campaigns, Executor, Grid};
//! use ichannels_lab::scenario::NoiseSpec;
//!
//! let grid = Grid::new()
//!     .noises(vec![NoiseSpec::Quiet, NoiseSpec::Low])
//!     .trials(2)
//!     .payload_symbols(6);
//! let report = campaigns::run("demo", &grid, Executor::serial());
//! let mut analysis = Analysis::new("demo", AnalysisConfig::default());
//! for record in &report.records {
//!     analysis.add_row(&ichannels_lab::TrialRow::from_record(record));
//! }
//! let finished = analysis.finish();
//! assert_eq!(finished.trials, 4);
//! assert_eq!(finished.cells.len(), 2);
//! // Every cell reports a BER with a bootstrap CI around its mean.
//! for cell in &finished.cells {
//!     let stats = cell.ber.stats.as_ref().unwrap();
//!     let ci = cell.ber.ci.as_ref().unwrap();
//!     assert!(ci.lo <= stats.mean && stats.mean <= ci.hi);
//! }
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bootstrap;
pub mod capacity;
pub mod report;
pub mod stats;
pub mod stream;

pub use report::{AxisSensitivity, AxisValueReport, CampaignAnalysis, CellReport, MetricReport};
pub use stats::{summarize_samples, Stats, StatsError};
pub use stream::{Analysis, StreamError};

/// Configuration of one analysis pass: the bootstrap seed/shape and
/// the reservoir capacity. Echoed into the report for provenance —
/// two reports are only comparable under the same configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalysisConfig {
    /// Base seed of the bootstrap streams (each label derives its own
    /// independent stream from it).
    pub seed: u64,
    /// Bootstrap resamples per interval.
    pub resamples: usize,
    /// Two-sided miscoverage: intervals are at confidence `1 − alpha`.
    pub alpha: f64,
    /// Per-metric reservoir capacity (samples kept per cell).
    pub reservoir: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            seed: 0x0A11_A712,
            resamples: 256,
            alpha: 0.05,
            reservoir: 512,
        }
    }
}

/// Analyzes one complete (headerless) trial stream: every line must be
/// a trial row.
///
/// # Errors
///
/// Returns the 1-based line number and the [`StreamError`] of the
/// first line that is not a trial row — including the
/// merge-the-shards-first rejection of shard headers.
pub fn analyze_stream(
    campaign: &str,
    text: &str,
    config: AnalysisConfig,
) -> Result<Analysis, (usize, StreamError)> {
    let mut analysis = Analysis::new(campaign, config);
    for (i, line) in text.lines().enumerate() {
        analysis.add_jsonl_line(line).map_err(|e| (i + 1, e))?;
    }
    Ok(analysis)
}

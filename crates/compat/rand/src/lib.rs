//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over half-open integer/float ranges.
//!
//! The build environment has no access to crates.io, so this local crate
//! takes the `rand` package name and keeps the workspace self-contained.
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction `SmallRng` uses upstream — so it is deterministic per
//! seed and statistically solid for simulation purposes, although the
//! streams are not bit-identical to the real crate's.

#![warn(missing_docs)]

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seeding support (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that can produce one uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is valid.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty => $bits:expr),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> (64 - $bits)) as $t
                    / (1u64 << $bits) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

impl_float_range!(f32 => 24, f64 => 53);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open (or inclusive integer) range.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u8 = rng.gen_range(0..4);
            assert!(v < 4);
            let f: f64 = rng.gen_range(1e-12..1.0);
            assert!((1e-12..1.0).contains(&f));
            let i: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn int_samples_are_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[rng.gen_range(0usize..4)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits = {hits}");
    }
}

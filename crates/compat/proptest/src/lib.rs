//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses. The build environment has no access to crates.io, so this local
//! crate takes the `proptest` package name.
//!
//! It implements random-sampling property testing: each `proptest!` test
//! samples its strategies from a generator seeded deterministically from
//! the test's module path, runs the body, and panics with the offending
//! message on the first failed case. Supported surface: integer/float
//! range strategies, tuples, `prop_map`, `prop_oneof!`,
//! `any::<bool/integers>()`, `collection::vec`,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, and
//! `ProptestConfig::with_cases`. Shrinking is provided as a standalone
//! bounded deterministic loop in [`shrink`] rather than woven through the
//! strategy tree.

pub mod shrink;
pub mod strategy;
pub mod test_runner;

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Generates vectors of `element` samples with `size` elements.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Declares property tests; see the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            // Rejected cases (prop_assume!) do not count toward the case
            // budget but are bounded to avoid livelock on tight filters.
            while __accepted < __cfg.cases && __attempts < __cfg.cases.saturating_mul(16) {
                __attempts += 1;
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match __result {
                    ::core::result::Result::Ok(()) => __accepted += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(__msg),
                    ) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name),
                            __accepted,
                            __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
}

/// Rejects the current case (resampled, not counted) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

//! Value-generation strategies (sampling only, no shrinking).

use crate::test_runner::TestRng;
use rand::Rng;

/// A source of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.sample(rng)))
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.sample(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice among type-erased strategies.
#[derive(Debug)]
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union over `branches`.
    ///
    /// # Panics
    ///
    /// Panics if `branches` is empty.
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union(branches)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].sample(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_raw() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only, spanning several orders of magnitude.
        rng.gen_range(-1e9f64..1e9)
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// Strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

//! Deterministic, bounded, smallest-first shrinking.
//!
//! Upstream proptest interleaves shrinking with its strategy tree; this
//! stand-in keeps the two concerns separate. A caller that has a failing
//! value hands it to [`shrink`] together with a *candidate enumerator*
//! (which lists strictly-simpler variants, simplest first) and an oracle
//! (does this variant still fail?). The loop greedily jumps to the first
//! still-failing candidate and repeats until no candidate fails or the
//! iteration budget is spent.
//!
//! Three properties make the result usable in a replayable findings
//! report:
//!
//! - **smallest-first:** candidates are probed in the order the
//!   enumerator yields them, so enumerators that list their simplest
//!   variant first converge to it without exploring the rest;
//! - **bounded:** at most `max_evals` oracle calls are made in total, so
//!   a pathological enumerator (or an oracle that keeps flickering)
//!   terminates instead of looping;
//! - **deterministic:** the loop itself holds no randomness — the same
//!   initial value, enumerator, and oracle always shrink to the same
//!   minimum, byte for byte.

/// Outcome of one bounded shrink run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShrinkReport<T> {
    /// The simplest value found that still fails the oracle.
    pub minimal: T,
    /// Number of accepted shrink steps (jumps to a simpler failing value).
    pub steps: usize,
    /// Total oracle evaluations spent, accepted or not.
    pub evals: usize,
    /// True when the loop stopped because the `max_evals` budget ran out
    /// rather than because no candidate still failed. `minimal` is still
    /// a valid failing value, just not necessarily a local minimum.
    pub budget_exhausted: bool,
}

/// Shrinks `initial` — a value known to fail — toward a minimal failing
/// value.
///
/// `candidates` must enumerate values strictly simpler than its argument,
/// simplest first; returning an empty vector stops the search. `still_fails`
/// is the oracle: `true` means the candidate reproduces the original
/// failure. At most `max_evals` oracle calls are made.
pub fn shrink<T, C, F>(
    initial: T,
    candidates: C,
    mut still_fails: F,
    max_evals: usize,
) -> ShrinkReport<T>
where
    C: Fn(&T) -> Vec<T>,
    F: FnMut(&T) -> bool,
{
    let mut current = initial;
    let mut steps = 0usize;
    let mut evals = 0usize;
    loop {
        let mut advanced = false;
        for candidate in candidates(&current) {
            if evals >= max_evals {
                return ShrinkReport {
                    minimal: current,
                    steps,
                    evals,
                    budget_exhausted: true,
                };
            }
            evals += 1;
            if still_fails(&candidate) {
                current = candidate;
                steps += 1;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return ShrinkReport {
                minimal: current,
                steps,
                evals,
                budget_exhausted: false,
            };
        }
    }
}

/// Smallest-first shrink candidates for an integer with a lower bound:
/// the floor itself, then a bisection toward it, then the predecessor.
/// Empty when `value` is already at the floor.
pub fn integer_candidates(value: usize, floor: usize) -> Vec<usize> {
    if value <= floor {
        return Vec::new();
    }
    let mut out = vec![floor];
    let mid = floor + (value - floor) / 2;
    if mid != floor && mid != value {
        out.push(mid);
    }
    let pred = value - 1;
    if pred != floor && out.last() != Some(&pred) {
        out.push(pred);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_integer_to_boundary() {
        // Fails iff >= 17: the minimal failing value is exactly 17.
        let report = shrink(
            1000usize,
            |&v| integer_candidates(v, 0),
            |&v| v >= 17,
            10_000,
        );
        assert_eq!(report.minimal, 17);
        assert!(!report.budget_exhausted);
    }

    #[test]
    fn smallest_first_jumps_straight_to_floor_when_it_fails() {
        // Everything fails, so the very first candidate (the floor) is
        // accepted in one step and one eval.
        let report = shrink(64usize, |&v| integer_candidates(v, 4), |_| true, 10_000);
        assert_eq!(report.minimal, 4);
        assert_eq!(report.steps, 1);
        assert_eq!(report.evals, 1);
    }

    #[test]
    fn respects_eval_budget_on_pathological_enumerator() {
        // An enumerator that always offers "one less" with an
        // always-failing oracle would take `initial` evals to reach 0;
        // the budget cuts it short but still returns a failing value.
        let report = shrink(
            1_000_000usize,
            |&v| if v > 0 { vec![v - 1] } else { Vec::new() },
            |_| true,
            10,
        );
        assert_eq!(report.evals, 10);
        assert_eq!(report.minimal, 1_000_000 - 10);
        assert!(report.budget_exhausted);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            shrink(
                (97usize, 31usize),
                |&(a, b)| {
                    let mut c: Vec<(usize, usize)> = integer_candidates(a, 0)
                        .into_iter()
                        .map(|a2| (a2, b))
                        .collect();
                    c.extend(integer_candidates(b, 0).into_iter().map(|b2| (a, b2)));
                    c
                },
                |&(a, b)| a + b >= 40,
                10_000,
            )
        };
        let first = run();
        let second = run();
        assert_eq!(first, second);
        assert_eq!(first.minimal.0 + first.minimal.1, 40);
    }

    #[test]
    fn integer_candidates_are_strictly_smaller_and_sorted() {
        for v in 1usize..200 {
            for floor in 0..v {
                let c = integer_candidates(v, floor);
                assert!(!c.is_empty());
                assert!(
                    c.iter().all(|&x| x < v && x >= floor),
                    "v={v} floor={floor} {c:?}"
                );
                assert!(
                    c.windows(2).all(|w| w[0] < w[1]),
                    "v={v} floor={floor} {c:?}"
                );
            }
        }
        assert!(integer_candidates(5, 5).is_empty());
    }
}

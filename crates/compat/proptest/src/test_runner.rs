//! Test execution support: configuration, RNG, and case errors.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps simulation-heavy suites
        // fast while still exercising the space.
        ProptestConfig { cases: 64 }
    }
}

/// Outcome of one sampled case body.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filter failed; resample without counting the case.
    Reject(&'static str),
    /// `prop_assert!` (or variant) failed with this message.
    Fail(String),
}

/// Deterministic RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// A generator seeded from a stable hash of `name`, so every run of a
    /// given test samples the same cases.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a, 64-bit.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }

    /// A generator seeded directly from `seed`. Two `TestRng`s built from
    /// the same seed produce identical sample streams, which is what makes
    /// externally driven fuzzing (seed recorded in a findings report)
    /// replayable.
    pub fn with_seed(seed: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(seed))
    }

    /// Raw 64 random bits (used by integer `any`).
    pub fn next_raw(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

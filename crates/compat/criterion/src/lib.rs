//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses. The build environment has no access to crates.io, so this local
//! crate takes the `criterion` package name.
//!
//! Benchmarks run a short warm-up, then time `sample_size` batches and
//! print min/mean per-iteration durations. No statistical analysis, no
//! HTML reports — just enough to keep `cargo bench` useful offline.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            sample_size: None,
        }
    }

    /// Runs one benchmark function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, &mut f);
        self
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_bench(name, n, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    // Warm-up.
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    let mut min = Duration::MAX;
    for _ in 0..samples.max(1) {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters > 0 {
            let per_iter = b.elapsed / u32::try_from(b.iters).unwrap_or(u32::MAX);
            min = min.min(per_iter);
        }
        total += b.elapsed;
        iters += b.iters;
    }
    if iters == 0 {
        println!("  {name}: no iterations recorded");
        return;
    }
    let mean = total / u32::try_from(iters).unwrap_or(u32::MAX);
    println!("  {name}: mean {mean:?}/iter, best {min:?}/iter ({iters} iters)");
}

/// Times closures handed to it by a benchmark function.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f`, preventing the result from being optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Declares a benchmark group function invoking each target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

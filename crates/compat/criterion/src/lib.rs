//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses. The build environment has no access to crates.io, so this local
//! crate takes the `criterion` package name.
//!
//! Benchmarks run a short warm-up, then time `sample_size` batches and
//! print mean/median/stddev/p95/best per-iteration durations over the
//! batch samples. No outlier rejection, no HTML reports — just enough
//! statistics to keep `cargo bench` useful offline.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            sample_size: None,
        }
    }

    /// Runs one benchmark function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, &mut f);
        self
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_bench(name, n, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Statistics over one benchmark's timed samples: what the driver
/// prints, exposed so external harnesses (e.g. `campaign bench`) can
/// record the same numbers machine-readably.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: Duration,
    /// Nearest-rank median.
    pub median: Duration,
    /// Sample standard deviation.
    pub std_dev: Duration,
    /// Nearest-rank 95th percentile.
    pub p95: Duration,
    /// Fastest sample.
    pub best: Duration,
}

/// Summarizes sample durations: mean, median, sample standard
/// deviation, 95th percentile (nearest-rank), and best.
///
/// The statistics themselves live in
/// [`ichannels_analysis::stats::summarize_samples`] — the shared f64
/// core this stand-in's seed grew into — and this wrapper only maps
/// `Duration` nanoseconds through it. Order statistics (median, p95,
/// best) round-trip exactly: integer nanoseconds are lossless in f64
/// at benchmark time scales.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn summarize_samples(samples: &[Duration]) -> Stats {
    assert!(!samples.is_empty(), "no samples to summarize");
    let nanos: Vec<f64> = samples.iter().map(Duration::as_nanos_f64).collect();
    let s =
        ichannels_analysis::stats::summarize_samples(&nanos).expect("duration samples are finite");
    let duration = |ns: f64| Duration::from_nanos(ns.round() as u64);
    Stats {
        mean: duration(s.mean),
        median: duration(s.median),
        std_dev: duration(s.std_dev),
        p95: duration(s.p95),
        best: duration(s.min),
    }
}

/// `Duration::as_nanos` as f64 (the u128 → f64 cast is lossless at
/// benchmark time scales).
trait AsNanosF64 {
    fn as_nanos_f64(&self) -> f64;
}

impl AsNanosF64 for Duration {
    fn as_nanos_f64(&self) -> f64 {
        self.as_nanos() as f64
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    // Warm-up.
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    let mut iters = 0u64;
    let mut per_iter = Vec::with_capacity(samples.max(1));
    for _ in 0..samples.max(1) {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters > 0 {
            per_iter.push(b.elapsed / u32::try_from(b.iters).unwrap_or(u32::MAX));
        }
        iters += b.iters;
    }
    if per_iter.is_empty() {
        println!("  {name}: no iterations recorded");
        return;
    }
    let stats = summarize_samples(&per_iter);
    println!(
        "  {name}: mean {:?}/iter, median {:?}, stddev {:?}, p95 {:?}, best {:?} \
         ({iters} iters, {} samples)",
        stats.mean,
        stats.median,
        stats.std_dev,
        stats.p95,
        stats.best,
        per_iter.len()
    );
}

/// Times closures handed to it by a benchmark function.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f`, preventing the result from being optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Declares a benchmark group function invoking each target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_known_samples() {
        let us = |n: u64| Duration::from_micros(n);
        // 1..=20 µs: mean 10.5, median (nearest-rank p50) 10, p95 19.
        let samples: Vec<Duration> = (1..=20).map(us).collect();
        let stats = summarize_samples(&samples);
        assert_eq!(stats.mean, Duration::from_nanos(10_500));
        assert_eq!(stats.median, us(10));
        assert_eq!(stats.p95, us(19));
        assert_eq!(stats.best, us(1));
        // Sample stddev of 1..=20 is √35 ≈ 5.916 µs.
        let nanos = stats.std_dev.as_nanos() as f64;
        assert!((nanos - 5_916.0).abs() < 1.0, "stddev {nanos} ns");
    }

    #[test]
    fn stats_degenerate_cases() {
        let one = [Duration::from_micros(7)];
        let stats = summarize_samples(&one);
        assert_eq!(stats.mean, one[0]);
        assert_eq!(stats.median, one[0]);
        assert_eq!(stats.p95, one[0]);
        assert_eq!(stats.std_dev, Duration::ZERO);
        // Order does not matter.
        let us = |n: u64| Duration::from_micros(n);
        let shuffled = [us(5), us(1), us(3)];
        assert_eq!(summarize_samples(&shuffled).median, us(3));
        assert_eq!(summarize_samples(&shuffled).best, us(1));
    }

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        b.iter(|| std::hint::black_box(2 + 2));
        b.iter(|| std::hint::black_box(2 + 2));
        assert_eq!(b.iters, 2);
    }
}

//! Performance monitoring counters (PMCs).
//!
//! The paper's characterization (§5.1, §5.6) relies on two counters:
//! `CPU_CLK_UNHALTED` and `IDQ_UOPS_NOT_DELIVERED` ("counts the number of
//! uops not delivered by the Instruction Decode Queue (IDQ) to the
//! back-end of the pipeline when there were no back-end stalls"). We also
//! track delivered uops and retired instructions for IPC computation.

use crate::ipc::ISSUE_WIDTH;

/// A snapshot of the per-hardware-thread performance counters.
///
/// # Examples
///
/// ```
/// use ichannels_uarch::counters::PerfCounters;
///
/// let c = PerfCounters {
///     cpu_clk_unhalted: 1000,
///     idq_uops_not_delivered: 3000,
///     uops_delivered: 1000,
///     inst_retired: 1000,
///     ..Default::default()
/// };
/// // Figure 11(a) metric: 3000 / (4*1000) = 0.75 → throttled.
/// assert!((c.normalized_undelivered() - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PerfCounters {
    /// Unhalted core clock cycles attributed to this thread.
    pub cpu_clk_unhalted: u64,
    /// Delivery slots that went unused while the back-end was not stalled.
    pub idq_uops_not_delivered: u64,
    /// Uops actually delivered from the IDQ to the back-end.
    pub uops_delivered: u64,
    /// Instructions retired.
    pub inst_retired: u64,
    /// Delivery slots visible to this thread (4/cycle when alone on the
    /// core, 2/cycle when the SMT sibling is also active). Equals
    /// `4 × CPU_CLK_UNHALTED` in the single-thread case.
    pub slots_visible: u64,
}

impl PerfCounters {
    /// `IDQ_UOPS_NOT_DELIVERED / (4 × CPU_CLK_UNHALTED)` — the normalized
    /// undelivered-uops metric of Figure 11(a). When the SMT sibling is
    /// active the denominator is the thread's visible slot count, which
    /// is what the per-thread counter measures against on real parts.
    /// Returns 0 for an idle thread (no unhalted cycles).
    pub fn normalized_undelivered(&self) -> f64 {
        let denom = if self.slots_visible > 0 {
            self.slots_visible
        } else {
            u64::from(ISSUE_WIDTH) * self.cpu_clk_unhalted
        };
        if denom == 0 {
            return 0.0;
        }
        self.idq_uops_not_delivered as f64 / denom as f64
    }

    /// Retired instructions per unhalted cycle.
    pub fn ipc(&self) -> f64 {
        if self.cpu_clk_unhalted == 0 {
            return 0.0;
        }
        self.inst_retired as f64 / self.cpu_clk_unhalted as f64
    }

    /// Difference of two snapshots (`self` taken after `earlier`), the
    /// usual read-PMC-before-and-after-a-loop pattern of §5.6.
    ///
    /// # Panics
    ///
    /// Panics if any counter of `earlier` exceeds the corresponding
    /// counter of `self` (snapshots out of order).
    pub fn delta_since(&self, earlier: &PerfCounters) -> PerfCounters {
        PerfCounters {
            cpu_clk_unhalted: self
                .cpu_clk_unhalted
                .checked_sub(earlier.cpu_clk_unhalted)
                // lint:allow(R001): documented panic — snapshot ordering is the
                // caller's contract, and wrapping would fabricate counts.
                .expect("counter snapshots out of order"),
            idq_uops_not_delivered: self
                .idq_uops_not_delivered
                .checked_sub(earlier.idq_uops_not_delivered)
                // lint:allow(R001): documented panic — snapshot ordering is the
                // caller's contract, and wrapping would fabricate counts.
                .expect("counter snapshots out of order"),
            uops_delivered: self
                .uops_delivered
                .checked_sub(earlier.uops_delivered)
                // lint:allow(R001): documented panic — snapshot ordering is the
                // caller's contract, and wrapping would fabricate counts.
                .expect("counter snapshots out of order"),
            inst_retired: self
                .inst_retired
                .checked_sub(earlier.inst_retired)
                // lint:allow(R001): documented panic — snapshot ordering is the
                // caller's contract, and wrapping would fabricate counts.
                .expect("counter snapshots out of order"),
            slots_visible: self
                .slots_visible
                .checked_sub(earlier.slots_visible)
                // lint:allow(R001): documented panic — snapshot ordering is the
                // caller's contract, and wrapping would fabricate counts.
                .expect("counter snapshots out of order"),
        }
    }

    /// Accumulates another delta into this snapshot.
    pub fn accumulate(&mut self, delta: &PerfCounters) {
        self.cpu_clk_unhalted += delta.cpu_clk_unhalted;
        self.idq_uops_not_delivered += delta.idq_uops_not_delivered;
        self.uops_delivered += delta.uops_delivered;
        self.inst_retired += delta.inst_retired;
        self.slots_visible += delta.slots_visible;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_undelivered_zero_when_idle() {
        assert_eq!(PerfCounters::default().normalized_undelivered(), 0.0);
    }

    #[test]
    fn ipc_computation() {
        let c = PerfCounters {
            cpu_clk_unhalted: 500,
            inst_retired: 1000,
            ..Default::default()
        };
        assert!((c.ipc() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn delta_since() {
        let early = PerfCounters {
            cpu_clk_unhalted: 100,
            idq_uops_not_delivered: 10,
            uops_delivered: 390,
            inst_retired: 390,
            slots_visible: 400,
        };
        let late = PerfCounters {
            cpu_clk_unhalted: 300,
            idq_uops_not_delivered: 20,
            uops_delivered: 1170,
            inst_retired: 1170,
            slots_visible: 1200,
        };
        let d = late.delta_since(&early);
        assert_eq!(d.cpu_clk_unhalted, 200);
        assert_eq!(d.idq_uops_not_delivered, 10);
        assert_eq!(d.uops_delivered, 780);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn delta_since_out_of_order_panics() {
        let a = PerfCounters {
            cpu_clk_unhalted: 10,
            ..Default::default()
        };
        let b = PerfCounters::default();
        let _ = b.delta_since(&a);
    }

    #[test]
    fn accumulate() {
        let mut acc = PerfCounters::default();
        let d = PerfCounters {
            cpu_clk_unhalted: 4,
            idq_uops_not_delivered: 3,
            uops_delivered: 1,
            inst_retired: 1,
            slots_visible: 4,
        };
        acc.accumulate(&d);
        acc.accumulate(&d);
        assert_eq!(acc.cpu_clk_unhalted, 8);
        assert_eq!(acc.idq_uops_not_delivered, 6);
    }
}

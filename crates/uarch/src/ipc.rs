//! The IPC (instructions-per-cycle) model used by the event-driven core.
//!
//! Figure 4 of the paper assumes a nominal IPC of 2 for scalar loops and 1
//! for PHI loops, with throttling reducing the *effective* IPC to 1/4 of
//! nominal ("the IPC is reduced to 1/4th of its baseline value"). This
//! module captures those rates plus SMT slot sharing.

use crate::isa::InstClass;

/// Front-end issue width (uops per cycle): Skylake-class cores deliver up
/// to 4 uops/cycle from the IDQ to the back-end.
pub const ISSUE_WIDTH: u32 = 4;

/// Fraction of cycles the IDQ is *blocked* while throttled (Figure 11:
/// "the IDQ does not deliver any uop in approximately three-quarters of
/// the core cycles").
pub const THROTTLE_BLOCKED_FRACTION: f64 = 0.75;

/// Effective rate multiplier during a throttling period: 1 delivery cycle
/// in every window of 4 (Key Conclusion 5).
pub const THROTTLE_IPC_FACTOR: f64 = 1.0 - THROTTLE_BLOCKED_FRACTION;

/// Length, in core cycles, of the throttling duty-cycle window.
pub const THROTTLE_WINDOW_CYCLES: u32 = 4;

/// Per-class nominal (unthrottled, single-thread) IPC.
///
/// Scalar micro-benchmark loops sustain IPC ≈ 2; vector PHI loops sustain
/// IPC ≈ 1 (paper Figure 4 assumptions; register-only Agner Fog loops).
pub fn nominal_ipc(class: InstClass) -> f64 {
    match class {
        InstClass::Scalar64 => 2.0,
        InstClass::Light128 | InstClass::Heavy128 => 1.4,
        InstClass::Light256 | InstClass::Heavy256 => 1.0,
        InstClass::Light512 | InstClass::Heavy512 => 1.0,
    }
}

/// Effective IPC of one hardware thread given throttle state and whether
/// the sibling SMT context is active.
///
/// While throttled, the 1-of-4 delivery window is shared by the *entire
/// core* (both SMT threads), so each of two active threads receives half
/// of the surviving slots. Unthrottled, the register-only loops used by
/// the paper's micro-benchmarks do not contend for ports, so the sibling
/// costs nothing.
pub fn effective_ipc(class: InstClass, throttled: bool, sibling_active: bool) -> f64 {
    let base = nominal_ipc(class);
    if throttled {
        let share = if sibling_active { 0.5 } else { 1.0 };
        base * THROTTLE_IPC_FACTOR * share
    } else {
        base
    }
}

/// Uops per instruction for each class (register-only loops decode to a
/// single uop per instruction on these cores).
pub fn uops_per_inst(class: InstClass) -> f64 {
    let _ = class;
    1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_faster_than_vector() {
        assert!(nominal_ipc(InstClass::Scalar64) > nominal_ipc(InstClass::Heavy256));
    }

    #[test]
    fn throttle_quarters_ipc() {
        for class in InstClass::ALL {
            let full = effective_ipc(class, false, false);
            let thr = effective_ipc(class, true, false);
            assert!((thr / full - 0.25).abs() < 1e-12, "class {class}");
        }
    }

    #[test]
    fn smt_sharing_only_matters_when_throttled() {
        let alone = effective_ipc(InstClass::Heavy256, false, false);
        let shared = effective_ipc(InstClass::Heavy256, false, true);
        assert_eq!(alone, shared);

        let thr_alone = effective_ipc(InstClass::Heavy256, true, false);
        let thr_shared = effective_ipc(InstClass::Heavy256, true, true);
        assert!((thr_shared / thr_alone - 0.5).abs() < 1e-12);
    }

    #[test]
    fn constants_consistent() {
        assert!((THROTTLE_BLOCKED_FRACTION + THROTTLE_IPC_FACTOR - 1.0).abs() < 1e-12);
        assert_eq!(THROTTLE_WINDOW_CYCLES, ISSUE_WIDTH);
    }
}

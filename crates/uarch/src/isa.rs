//! The instruction taxonomy of the paper (§4, §5.5).
//!
//! IChannels classifies instructions along two axes:
//!
//! * **width** — 64-bit scalar, 128-bit SSE, 256-bit AVX2, 512-bit AVX-512;
//! * **heaviness** — *Heavy* instructions "include any instruction that
//!   requires the floating-point unit (e.g., `ADDPD`, `SUBPS`) or any
//!   multiplication instruction, while light instructions include all other
//!   instructions (e.g., non-multiplication integer arithmetic, logic,
//!   shuffle and blend instructions)".
//!
//! This yields the seven canonical classes the characterization sweeps in
//! Figure 10: `64b`, `128b Light`, `128b Heavy`, `256b Light`,
//! `256b Heavy`, `512b Light`, `512b Heavy`.

use std::fmt;
use std::str::FromStr;

/// Vector register width of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Width {
    /// 64-bit scalar (general-purpose register) operations.
    W64,
    /// 128-bit SSE / AVX-128 operations.
    W128,
    /// 256-bit AVX2 operations.
    W256,
    /// 512-bit AVX-512 operations.
    W512,
}

impl Width {
    /// All widths, narrowest first.
    pub const ALL: [Width; 4] = [Width::W64, Width::W128, Width::W256, Width::W512];

    /// Register width in bits.
    pub const fn bits(self) -> u32 {
        match self {
            Width::W64 => 64,
            Width::W128 => 128,
            Width::W256 => 256,
            Width::W512 => 512,
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}b", self.bits())
    }
}

/// Computational heaviness of an instruction (paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Heaviness {
    /// Non-multiplication integer arithmetic, logic, shuffle, blend.
    Light,
    /// Floating-point or multiplication instructions.
    Heavy,
}

impl fmt::Display for Heaviness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Heaviness::Light => write!(f, "Light"),
            Heaviness::Heavy => write!(f, "Heavy"),
        }
    }
}

/// One of the seven computational-intensity classes of Figure 10.
///
/// The ordering (`Scalar64 < Light128 < … < Heavy512`) follows increasing
/// computational intensity and therefore increasing dynamic capacitance,
/// required voltage guardband, and throttling period.
///
/// # Examples
///
/// ```
/// use ichannels_uarch::isa::InstClass;
///
/// assert!(InstClass::Heavy512 > InstClass::Light256);
/// assert_eq!(InstClass::Heavy256.to_string(), "256b Heavy");
/// assert!(InstClass::Heavy256.is_phi());
/// assert!(!InstClass::Scalar64.is_phi());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InstClass {
    /// 64-bit scalar instructions (the non-PHI baseline).
    Scalar64,
    /// 128-bit light vector instructions.
    Light128,
    /// 128-bit heavy (FP/multiply) vector instructions.
    Heavy128,
    /// 256-bit light vector instructions.
    Light256,
    /// 256-bit heavy vector instructions (classic "AVX2" PHIs).
    Heavy256,
    /// 512-bit light vector instructions.
    Light512,
    /// 512-bit heavy vector instructions (the most power-hungry class).
    Heavy512,
}

impl InstClass {
    /// All seven classes in increasing computational-intensity order,
    /// exactly the x-axis of Figure 10(a).
    pub const ALL: [InstClass; 7] = [
        InstClass::Scalar64,
        InstClass::Light128,
        InstClass::Heavy128,
        InstClass::Light256,
        InstClass::Heavy256,
        InstClass::Light512,
        InstClass::Heavy512,
    ];

    /// Computational-intensity rank, 0 (`64b`) … 6 (`512b Heavy`).
    ///
    /// The rank doubles as the *virus level* index used by the adaptive
    /// voltage guardband (paper §2, Figure 2(c)).
    pub const fn intensity_rank(self) -> u8 {
        match self {
            InstClass::Scalar64 => 0,
            InstClass::Light128 => 1,
            InstClass::Heavy128 => 2,
            InstClass::Light256 => 3,
            InstClass::Heavy256 => 4,
            InstClass::Light512 => 5,
            InstClass::Heavy512 => 6,
        }
    }

    /// Constructs a class from its intensity rank.
    pub const fn from_rank(rank: u8) -> Option<InstClass> {
        match rank {
            0 => Some(InstClass::Scalar64),
            1 => Some(InstClass::Light128),
            2 => Some(InstClass::Heavy128),
            3 => Some(InstClass::Light256),
            4 => Some(InstClass::Heavy256),
            5 => Some(InstClass::Light512),
            6 => Some(InstClass::Heavy512),
            _ => None,
        }
    }

    /// Register width of the class.
    pub const fn width(self) -> Width {
        match self {
            InstClass::Scalar64 => Width::W64,
            InstClass::Light128 | InstClass::Heavy128 => Width::W128,
            InstClass::Light256 | InstClass::Heavy256 => Width::W256,
            InstClass::Light512 | InstClass::Heavy512 => Width::W512,
        }
    }

    /// Heaviness of the class (scalar counts as light).
    pub const fn heaviness(self) -> Heaviness {
        match self {
            InstClass::Scalar64
            | InstClass::Light128
            | InstClass::Light256
            | InstClass::Light512 => Heaviness::Light,
            InstClass::Heavy128 | InstClass::Heavy256 | InstClass::Heavy512 => Heaviness::Heavy,
        }
    }

    /// Whether instructions of this class are power-hungry instructions
    /// (PHIs): anything wider than scalar requires a raised voltage
    /// guardband and can trigger throttling.
    pub const fn is_phi(self) -> bool {
        !matches!(self, InstClass::Scalar64)
    }

    /// Whether the class uses the AVX (256/512-bit) unit, which sits
    /// behind a dedicated power-gate on Skylake+ parts (paper §5.4).
    pub const fn uses_avx_unit(self) -> bool {
        matches!(
            self,
            InstClass::Light256 | InstClass::Heavy256 | InstClass::Light512 | InstClass::Heavy512
        )
    }

    /// The four sender levels of the covert channel (Figure 3):
    /// bits `00`→`128b_Heavy` (L4), `01`→`256b_Light` (L3),
    /// `10`→`256b_Heavy` (L2), `11`→`512b_Heavy` (L1).
    pub const SENDER_LEVELS: [InstClass; 4] = [
        InstClass::Heavy128,
        InstClass::Light256,
        InstClass::Heavy256,
        InstClass::Heavy512,
    ];
}

impl fmt::Display for InstClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == InstClass::Scalar64 {
            write!(f, "64b")
        } else {
            write!(f, "{} {}", self.width(), self.heaviness())
        }
    }
}

/// Error returned when parsing an [`InstClass`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseInstClassError {
    input: String,
}

impl fmt::Display for ParseInstClassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown instruction class `{}`", self.input)
    }
}

impl std::error::Error for ParseInstClassError {}

impl FromStr for InstClass {
    type Err = ParseInstClassError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm = s.trim().to_ascii_lowercase().replace(['-', '_'], " ");
        let class = match norm.as_str() {
            "64b" | "scalar" | "64b light" => InstClass::Scalar64,
            "128b light" => InstClass::Light128,
            "128b heavy" => InstClass::Heavy128,
            "256b light" => InstClass::Light256,
            "256b heavy" => InstClass::Heavy256,
            "512b light" => InstClass::Light512,
            "512b heavy" => InstClass::Heavy512,
            _ => {
                return Err(ParseInstClassError {
                    input: s.to_string(),
                })
            }
        };
        Ok(class)
    }
}

/// A concrete x86 mnemonic mapped to its computational-intensity class.
///
/// The table mirrors the micro-benchmarks used in the paper (customized
/// Agner Fog loops, §5.1) plus the specific examples called out in the
/// text (`VORPD-256`, `VMULPD-512`, `MOV32`, `FMA256`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mnemonic {
    name: &'static str,
    class: InstClass,
}

impl Mnemonic {
    /// Assembly mnemonic (including width suffix where relevant).
    pub const fn name(self) -> &'static str {
        self.name
    }

    /// Computational-intensity class of the instruction.
    pub const fn class(self) -> InstClass {
        self.class
    }

    /// Looks up a mnemonic by (case-insensitive) name.
    pub fn lookup(name: &str) -> Option<Mnemonic> {
        MNEMONICS
            .iter()
            .find(|m| m.name.eq_ignore_ascii_case(name))
            .copied()
    }

    /// All mnemonics of a given class (useful for workload generation).
    pub fn of_class(class: InstClass) -> impl Iterator<Item = Mnemonic> {
        MNEMONICS.iter().copied().filter(move |m| m.class == class)
    }
}

impl fmt::Display for Mnemonic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

macro_rules! mnemonic_table {
    ($(($name:literal, $class:ident)),+ $(,)?) => {
        /// The built-in mnemonic table.
        pub const MNEMONICS: &[Mnemonic] = &[
            $(Mnemonic { name: $name, class: InstClass::$class }),+
        ];
    };
}

mnemonic_table![
    // 64-bit scalar.
    ("MOV32", Scalar64),
    ("MOV64", Scalar64),
    ("ADD64", Scalar64),
    ("SUB64", Scalar64),
    ("XOR64", Scalar64),
    ("AND64", Scalar64),
    ("SHL64", Scalar64),
    ("LEA64", Scalar64),
    // 128-bit light: integer/logic/shuffle SSE.
    ("PXOR-128", Light128),
    ("POR-128", Light128),
    ("PADDD-128", Light128),
    ("PSHUFB-128", Light128),
    ("PBLENDW-128", Light128),
    ("PAND-128", Light128),
    // 128-bit heavy: FP or multiply.
    ("ADDPS-128", Heavy128),
    ("SUBPS-128", Heavy128),
    ("MULPS-128", Heavy128),
    ("PMULLD-128", Heavy128),
    ("ADDPD-128", Heavy128),
    ("VFMADD132PS-128", Heavy128),
    // 256-bit light.
    ("VPOR-256", Light256),
    ("VORPD-256", Light256),
    ("VPADDD-256", Light256),
    ("VPSHUFB-256", Light256),
    ("VPBLENDW-256", Light256),
    ("VPAND-256", Light256),
    // 256-bit heavy (AVX2 PHIs).
    ("VADDPD-256", Heavy256),
    ("VSUBPS-256", Heavy256),
    ("VMULPD-256", Heavy256),
    ("VPMULLD-256", Heavy256),
    ("VFMADD132PD-256", Heavy256),
    ("FMA256", Heavy256),
    // 512-bit light.
    ("VPORD-512", Light512),
    ("VPXORD-512", Light512),
    ("VPADDD-512", Light512),
    ("VPERMW-512", Light512),
    // 512-bit heavy (AVX-512 PHIs).
    ("VADDPD-512", Heavy512),
    ("VMULPD-512", Heavy512),
    ("VFMADD132PD-512", Heavy512),
    ("VPMULLQ-512", Heavy512),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_round_trips() {
        for class in InstClass::ALL {
            assert_eq!(InstClass::from_rank(class.intensity_rank()), Some(class));
        }
        assert_eq!(InstClass::from_rank(7), None);
    }

    #[test]
    fn ordering_follows_intensity() {
        for pair in InstClass::ALL.windows(2) {
            assert!(pair[0] < pair[1]);
            assert!(pair[0].intensity_rank() < pair[1].intensity_rank());
        }
    }

    #[test]
    fn display_matches_paper_labels() {
        let labels: Vec<String> = InstClass::ALL.iter().map(|c| c.to_string()).collect();
        assert_eq!(
            labels,
            [
                "64b",
                "128b Light",
                "128b Heavy",
                "256b Light",
                "256b Heavy",
                "512b Light",
                "512b Heavy"
            ]
        );
    }

    #[test]
    fn parse_accepts_paper_spellings() {
        assert_eq!("64b".parse::<InstClass>().unwrap(), InstClass::Scalar64);
        assert_eq!(
            "256b_Heavy".parse::<InstClass>().unwrap(),
            InstClass::Heavy256
        );
        assert_eq!(
            "512b-heavy".parse::<InstClass>().unwrap(),
            InstClass::Heavy512
        );
        assert!("1024b heavy".parse::<InstClass>().is_err());
    }

    #[test]
    fn phi_and_avx_flags() {
        assert!(!InstClass::Scalar64.is_phi());
        assert!(InstClass::Light128.is_phi());
        assert!(!InstClass::Heavy128.uses_avx_unit());
        assert!(InstClass::Light256.uses_avx_unit());
        assert!(InstClass::Heavy512.uses_avx_unit());
    }

    #[test]
    fn heaviness_classification() {
        assert_eq!(InstClass::Scalar64.heaviness(), Heaviness::Light);
        assert_eq!(InstClass::Heavy128.heaviness(), Heaviness::Heavy);
        assert_eq!(InstClass::Light512.heaviness(), Heaviness::Light);
    }

    #[test]
    fn sender_levels_match_figure3() {
        assert_eq!(
            InstClass::SENDER_LEVELS,
            [
                InstClass::Heavy128,
                InstClass::Light256,
                InstClass::Heavy256,
                InstClass::Heavy512
            ]
        );
    }

    #[test]
    fn mnemonic_lookup() {
        let m = Mnemonic::lookup("vmulpd-512").unwrap();
        assert_eq!(m.class(), InstClass::Heavy512);
        assert_eq!(Mnemonic::lookup("NOPE-128"), None);
        // Paper: VORPD-256 is light, VMULPD-512 is heavy (§1, Observation 1).
        assert_eq!(
            Mnemonic::lookup("VORPD-256").unwrap().class(),
            InstClass::Light256
        );
    }

    #[test]
    fn every_class_has_mnemonics() {
        for class in InstClass::ALL {
            assert!(
                Mnemonic::of_class(class).count() >= 4,
                "class {class} needs at least 4 mnemonics for workload variety"
            );
        }
    }

    #[test]
    fn widths() {
        assert_eq!(InstClass::Scalar64.width().bits(), 64);
        assert_eq!(InstClass::Heavy512.width().bits(), 512);
        assert_eq!(Width::W256.to_string(), "256b");
    }
}

//! # `ichannels-uarch` — microarchitectural substrate
//!
//! The lowest layer of the IChannels (ISCA 2021) reproduction: the pieces
//! of a modern Intel core that the paper's covert channels interact with.
//!
//! * [`time`] — picosecond simulation time ([`time::SimTime`]) and clock
//!   frequencies ([`time::Freq`]).
//! * [`isa`] — the seven computational-intensity instruction classes of
//!   Figure 10 ([`isa::InstClass`]) and a mnemonic table.
//! * [`ipc`] — the analytic IPC model (nominal rates, the 1/4 throttle
//!   factor of Key Conclusion 5, SMT slot sharing).
//! * [`idq`] — a cycle-accurate IDQ→back-end interface with the 1-of-4
//!   throttle gate of Figure 11(b), SMT arbitration, and the paper's
//!   proposed "improved core throttling" mitigation policy.
//! * [`counters`] — `CPU_CLK_UNHALTED` / `IDQ_UOPS_NOT_DELIVERED`-style
//!   performance counters.
//! * [`tsc`] — the invariant time-stamp counter used by receivers to
//!   measure throttling periods.
//!
//! # Example
//!
//! Reproducing the core of Figure 11(a) — a throttled loop leaves ~75 %
//! of delivery slots unused, an unthrottled one ~0 %:
//!
//! ```
//! use ichannels_uarch::idq::{Idq, SmtId, ThreadDemand};
//! use ichannels_uarch::isa::InstClass;
//!
//! let mut idq = Idq::new();
//! idq.set_throttled(true, Some(SmtId::T0));
//! let frac = idq.run_normalized_undelivered(
//!     ThreadDemand::busy(InstClass::Heavy256),
//!     ThreadDemand::IDLE,
//!     10_000,
//!     SmtId::T0,
//! );
//! assert!((frac - 0.75).abs() < 0.01);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod counters;
pub mod idq;
pub mod ipc;
pub mod isa;
pub mod time;
pub mod tsc;

pub use counters::PerfCounters;
pub use idq::{Idq, SmtId, ThreadDemand, ThrottlePolicy};
pub use isa::{InstClass, Mnemonic, Width};
pub use time::{Freq, SimTime};
pub use tsc::Tsc;

//! Simulation time and frequency primitives.
//!
//! The whole reproduction runs on a single discrete notion of time:
//! [`SimTime`], a picosecond-resolution instant/duration. Picoseconds are
//! fine enough to resolve the ~8–15 ns AVX power-gate wake-up the paper
//! measures in Figure 8(b) while a `u64` still covers ~213 days of
//! simulated time, far beyond the 60 s experiments of §6.3.
//!
//! [`Freq`] is a Hz-resolution clock frequency used for core clocks, the
//! invariant TSC, and DAQ sample rates.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_S: u64 = 1_000_000_000_000;

/// An instant or duration on the simulated timeline, in picoseconds.
///
/// `SimTime` is used both as a point in time (measured from simulation
/// start) and as a span between two points; the arithmetic is identical
/// and the dual use keeps the simulator code free of conversions.
///
/// # Examples
///
/// ```
/// use ichannels_uarch::time::SimTime;
///
/// let reset = SimTime::from_us(650.0); // the paper's hysteresis reset-time
/// let tx = SimTime::from_us(40.0);     // one covert-channel transaction
/// assert_eq!((reset + tx).as_us(), 690.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant (simulation start) / empty duration.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a time from integer nanoseconds.
    pub const fn from_ns_u64(ns: u64) -> Self {
        SimTime(ns * PS_PER_NS)
    }

    /// Creates a time from fractional nanoseconds (rounded to ps).
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    pub fn from_ns(ns: f64) -> Self {
        assert!(
            ns.is_finite() && ns >= 0.0,
            "invalid nanosecond value: {ns}"
        );
        SimTime((ns * PS_PER_NS as f64).round() as u64)
    }

    /// Creates a time from fractional microseconds (rounded to ps).
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    pub fn from_us(us: f64) -> Self {
        assert!(
            us.is_finite() && us >= 0.0,
            "invalid microsecond value: {us}"
        );
        SimTime((us * PS_PER_US as f64).round() as u64)
    }

    /// Creates a time from fractional milliseconds (rounded to ps).
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    pub fn from_ms(ms: f64) -> Self {
        assert!(
            ms.is_finite() && ms >= 0.0,
            "invalid millisecond value: {ms}"
        );
        SimTime((ms * PS_PER_MS as f64).round() as u64)
    }

    /// Creates a time from fractional seconds (rounded to ps).
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid second value: {s}");
        SimTime((s * PS_PER_S as f64).round() as u64)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Value in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Value in microseconds.
    pub fn as_us(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Value in milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// Value in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Saturating subtraction; clamps at zero instead of underflowing.
    pub const fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Checked addition; `None` on overflow.
    pub const fn checked_add(self, other: SimTime) -> Option<SimTime> {
        match self.0.checked_add(other.0) {
            Some(v) => Some(SimTime(v)),
            None => None,
        }
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// True if this is the zero instant.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies a duration by a dimensionless factor (rounding to ps).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale(self, factor: f64) -> SimTime {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid scale factor: {factor}"
        );
        SimTime((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                // lint:allow(R001): deliberate hard stop — saturating here
                // would silently freeze the event timeline.
                .expect("SimTime addition overflow"),
        )
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                // lint:allow(R001): deliberate hard stop — a negative
                // duration means the schedule itself is corrupt.
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |acc, t| acc + t)
    }
}

impl Div<SimTime> for SimTime {
    type Output = f64;
    /// Ratio of two durations.
    fn div(self, rhs: SimTime) -> f64 {
        assert!(!rhs.is_zero(), "division by zero SimTime");
        self.0 as f64 / rhs.0 as f64
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: f64) -> SimTime {
        self.scale(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= PS_PER_S {
            write!(f, "{:.6}s", self.as_secs())
        } else if self.0 >= PS_PER_MS {
            write!(f, "{:.3}ms", self.as_ms())
        } else if self.0 >= PS_PER_US {
            write!(f, "{:.3}us", self.as_us())
        } else if self.0 >= PS_PER_NS {
            write!(f, "{:.3}ns", self.as_ns())
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

/// A clock frequency in Hz.
///
/// # Examples
///
/// ```
/// use ichannels_uarch::time::{Freq, SimTime};
///
/// let f = Freq::from_ghz(2.2); // Cannon Lake base clock
/// let cycles = f.cycles_in(SimTime::from_us(1.0));
/// assert!((cycles - 2200.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Freq(u64);

impl Freq {
    /// Zero frequency (clock gated).
    pub const ZERO: Freq = Freq(0);

    /// Creates a frequency from raw Hz.
    pub const fn from_hz(hz: u64) -> Self {
        Freq(hz)
    }

    /// Creates a frequency from MHz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is negative or not finite.
    pub fn from_mhz(mhz: f64) -> Self {
        assert!(mhz.is_finite() && mhz >= 0.0, "invalid MHz value: {mhz}");
        Freq((mhz * 1e6).round() as u64)
    }

    /// Creates a frequency from GHz.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is negative or not finite.
    pub fn from_ghz(ghz: f64) -> Self {
        assert!(ghz.is_finite() && ghz >= 0.0, "invalid GHz value: {ghz}");
        Freq((ghz * 1e9).round() as u64)
    }

    /// Raw Hz.
    pub const fn as_hz(self) -> u64 {
        self.0
    }

    /// Value in MHz.
    pub fn as_mhz(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Value in GHz.
    pub fn as_ghz(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Number of clock cycles elapsed in `dt` at this frequency.
    pub fn cycles_in(self, dt: SimTime) -> f64 {
        self.0 as f64 * dt.as_secs()
    }

    /// Duration of one clock cycle.
    ///
    /// # Panics
    ///
    /// Panics for the zero frequency.
    pub fn cycle_period(self) -> SimTime {
        assert!(self.0 > 0, "cycle period of zero frequency");
        SimTime::from_ps((PS_PER_S as f64 / self.0 as f64).round() as u64)
    }

    /// Time needed for `cycles` clock cycles at this frequency.
    ///
    /// # Panics
    ///
    /// Panics for the zero frequency or a negative/non-finite cycle count.
    pub fn time_for_cycles(self, cycles: f64) -> SimTime {
        assert!(self.0 > 0, "time_for_cycles on zero frequency");
        assert!(
            cycles.is_finite() && cycles >= 0.0,
            "invalid cycle count: {cycles}"
        );
        SimTime::from_secs(cycles / self.0 as f64)
    }
}

impl fmt::Display for Freq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.2}GHz", self.as_ghz())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.1}MHz", self.as_mhz())
        } else {
            write!(f, "{}Hz", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_us(12.5);
        assert_eq!(t.as_ps(), 12_500_000);
        assert!((t.as_us() - 12.5).abs() < 1e-12);
        assert!((t.as_ns() - 12_500.0).abs() < 1e-9);
        assert!((t.as_ms() - 0.0125).abs() < 1e-12);
        assert!((t.as_secs() - 12.5e-6).abs() < 1e-15);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(10.0);
        let b = SimTime::from_ns(4.0);
        assert_eq!((a + b).as_ns(), 14.0);
        assert_eq!((a - b).as_ns(), 6.0);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.scale(0.5).as_ns(), 5.0);
        assert!((a / b - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_ns(1.0) - SimTime::from_ns(2.0);
    }

    #[test]
    fn min_max_and_zero() {
        let a = SimTime::from_us(1.0);
        let b = SimTime::from_us(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert!(SimTime::ZERO.is_zero());
        assert!(!a.is_zero());
    }

    #[test]
    fn sum_of_durations() {
        let total: SimTime = (1..=4).map(|i| SimTime::from_ns(i as f64)).sum();
        assert_eq!(total.as_ns(), 10.0);
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(format!("{}", SimTime::from_ps(5)), "5ps");
        assert_eq!(format!("{}", SimTime::from_ns(8.0)), "8.000ns");
        assert_eq!(format!("{}", SimTime::from_us(12.0)), "12.000us");
        assert_eq!(format!("{}", SimTime::from_ms(650.0)), "650.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(2.0)), "2.000000s");
    }

    #[test]
    fn freq_cycles() {
        let f = Freq::from_ghz(1.4);
        assert_eq!(f.as_hz(), 1_400_000_000);
        let cycles = f.cycles_in(SimTime::from_us(10.0));
        assert!((cycles - 14_000.0).abs() < 1e-6);
        let t = f.time_for_cycles(14_000.0);
        assert!((t.as_us() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn freq_cycle_period() {
        let f = Freq::from_ghz(2.0);
        assert_eq!(f.cycle_period().as_ps(), 500);
    }

    #[test]
    fn freq_display() {
        assert_eq!(format!("{}", Freq::from_ghz(3.6)), "3.60GHz");
        assert_eq!(format!("{}", Freq::from_mhz(100.0)), "100.0MHz");
    }
}

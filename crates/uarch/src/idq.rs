//! Cycle-accurate model of the Instruction Decode Queue (IDQ) to
//! back-end interface, including the throttling gate.
//!
//! §5.6 of the paper discovers that during a throttling period the core
//! "limits the number of uops delivered from the IDQ to the back-end
//! during a certain time window … During a time window of four core clock
//! cycles, the IDQ delivers uops to the back-end in only one cycle, while
//! in the remaining three cycles, the throttling mechanism blocks the
//! IDQ" (Figure 11(b)). Crucially, the gate sits on the *shared*
//! IDQ→back-end interface, so it throttles **both** SMT threads.
//!
//! The event-driven SoC simulator uses the analytic rates from
//! [`crate::ipc`]; this cycle-level model exists to (a) validate those
//! rates, (b) regenerate Figure 11(a) from first principles, and (c) host
//! the "improved core throttling" mitigation (paper §7) at the
//! granularity where it is actually defined — per-uop gating.

use crate::counters::PerfCounters;
use crate::ipc::{ISSUE_WIDTH, THROTTLE_WINDOW_CYCLES};
use crate::isa::InstClass;

/// Identifies one of the (up to two) SMT hardware threads of a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SmtId(pub u8);

impl SmtId {
    /// The first hardware thread.
    pub const T0: SmtId = SmtId(0);
    /// The second hardware thread.
    pub const T1: SmtId = SmtId(1);
}

/// Throttle gating policy on the IDQ→back-end interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThrottlePolicy {
    /// Baseline Intel behaviour (Figure 11(b)): while throttled, block
    /// *all* uops of *all* threads for 3 cycles in every 4-cycle window.
    #[default]
    BlockEntireCore,
    /// The paper's proposed "Improved Core Throttling" mitigation (§7):
    /// block only the uops that belong to the thread executing the PHI,
    /// and do not block non-PHI uops at all.
    PerThreadPhiOnly,
}

/// Per-thread input state: what the thread is currently trying to issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadDemand {
    /// Class of the uops at the head of this thread's IDQ partition.
    pub class: InstClass,
    /// Whether the thread has uops ready to deliver this cycle.
    pub active: bool,
}

impl ThreadDemand {
    /// An idle thread (nothing to deliver).
    pub const IDLE: ThreadDemand = ThreadDemand {
        class: InstClass::Scalar64,
        active: false,
    };

    /// A thread continuously issuing uops of `class`.
    pub const fn busy(class: InstClass) -> ThreadDemand {
        ThreadDemand {
            class,
            active: true,
        }
    }
}

/// Result of one IDQ cycle: uops delivered per thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeliveryResult {
    /// Uops delivered for thread 0 this cycle.
    pub t0_uops: u32,
    /// Uops delivered for thread 1 this cycle.
    pub t1_uops: u32,
    /// True if the throttle gate blocked the interface this cycle.
    pub gate_blocked: bool,
}

impl DeliveryResult {
    /// Total uops delivered across both threads.
    pub fn total(&self) -> u32 {
        self.t0_uops + self.t1_uops
    }
}

/// Cycle-level IDQ→back-end interface with the throttle gate and SMT
/// round-robin arbitration.
///
/// # Examples
///
/// ```
/// use ichannels_uarch::idq::{Idq, ThreadDemand, SmtId};
/// use ichannels_uarch::isa::InstClass;
///
/// let mut idq = Idq::new();
/// idq.set_throttled(true, Some(SmtId::T0));
/// let mut delivered = 0;
/// for _ in 0..400 {
///     let r = idq.cycle(ThreadDemand::busy(InstClass::Heavy256), ThreadDemand::IDLE);
///     delivered += r.total();
/// }
/// // Throttled: only ~1 in 4 cycles delivers → ~25% of 400*4 slots.
/// assert_eq!(delivered, 400);
/// ```
#[derive(Debug, Clone)]
pub struct Idq {
    policy: ThrottlePolicy,
    throttled: bool,
    /// The thread whose PHI triggered the throttle (needed by the
    /// per-thread mitigation policy).
    phi_thread: Option<SmtId>,
    window_pos: u32,
    /// Round-robin arbitration pointer for SMT.
    rr_next: SmtId,
    counters: [PerfCounters; 2],
    core_cycles: u64,
}

impl Default for Idq {
    fn default() -> Self {
        Self::new()
    }
}

impl Idq {
    /// Creates an IDQ with the baseline (entire-core) throttle policy.
    pub fn new() -> Self {
        Self::with_policy(ThrottlePolicy::BlockEntireCore)
    }

    /// Creates an IDQ with an explicit throttle policy.
    pub fn with_policy(policy: ThrottlePolicy) -> Self {
        Idq {
            policy,
            throttled: false,
            phi_thread: None,
            window_pos: 0,
            rr_next: SmtId::T0,
            counters: [PerfCounters::default(), PerfCounters::default()],
            core_cycles: 0,
        }
    }

    /// Current throttle policy.
    pub fn policy(&self) -> ThrottlePolicy {
        self.policy
    }

    /// Engages/disengages the throttle gate. `phi_thread` identifies the
    /// hardware thread whose PHI caused the transition (used by
    /// [`ThrottlePolicy::PerThreadPhiOnly`]).
    pub fn set_throttled(&mut self, throttled: bool, phi_thread: Option<SmtId>) {
        self.throttled = throttled;
        self.phi_thread = if throttled { phi_thread } else { None };
        if throttled {
            self.window_pos = 0;
        }
    }

    /// Whether the gate is currently engaged.
    pub fn is_throttled(&self) -> bool {
        self.throttled
    }

    /// Per-thread performance counters.
    pub fn counters(&self, thread: SmtId) -> &PerfCounters {
        &self.counters[thread.0 as usize]
    }

    /// Resets all performance counters (like `WRMSR` clearing PMCs).
    pub fn reset_counters(&mut self) {
        self.counters = [PerfCounters::default(), PerfCounters::default()];
        self.core_cycles = 0;
    }

    /// Total core cycles simulated.
    pub fn core_cycles(&self) -> u64 {
        self.core_cycles
    }

    /// Advances the interface by one core clock cycle.
    ///
    /// Applies the throttle gate, arbitrates the `ISSUE_WIDTH` slots
    /// between active threads, and updates `CPU_CLK_UNHALTED` /
    /// `IDQ_UOPS_NOT_DELIVERED` style counters.
    pub fn cycle(&mut self, t0: ThreadDemand, t1: ThreadDemand) -> DeliveryResult {
        self.core_cycles += 1;
        let demands = [t0, t1];
        for (i, d) in demands.iter().enumerate() {
            if d.active {
                self.counters[i].cpu_clk_unhalted += 1;
            }
        }

        // Which cycle of the 4-cycle throttle window are we in? The gate
        // opens on exactly one cycle per window.
        let gate_open_cycle = self.window_pos == 0;
        if self.throttled {
            self.window_pos = (self.window_pos + 1) % THROTTLE_WINDOW_CYCLES;
        }

        let mut result = DeliveryResult::default();
        let mut slots = ISSUE_WIDTH;

        // Determine per-thread eligibility under the active policy.
        let eligible = |id: SmtId, d: &ThreadDemand| -> bool {
            if !d.active {
                return false;
            }
            if !self.throttled {
                return true;
            }
            match self.policy {
                ThrottlePolicy::BlockEntireCore => gate_open_cycle,
                ThrottlePolicy::PerThreadPhiOnly => {
                    // Only the offending thread's PHI uops are gated; the
                    // sibling and non-PHI uops flow freely.
                    let is_offender = self.phi_thread == Some(id);
                    if is_offender && d.class.is_phi() {
                        gate_open_cycle
                    } else {
                        true
                    }
                }
            }
        };

        let t0_ok = eligible(SmtId::T0, &demands[0]);
        let t1_ok = eligible(SmtId::T1, &demands[1]);
        result.gate_blocked = self.throttled && !gate_open_cycle;

        // Round-robin split of the issue slots between eligible threads.
        match (t0_ok, t1_ok) {
            (true, true) => {
                let first_half = slots / 2 + u32::from(self.rr_next == SmtId::T0) * (slots % 2);
                let t0_slots = if self.rr_next == SmtId::T0 {
                    first_half
                } else {
                    slots - (slots / 2 + (slots % 2))
                };
                result.t0_uops = t0_slots.max(slots / 2);
                result.t1_uops = slots - result.t0_uops;
                self.rr_next = if self.rr_next == SmtId::T0 {
                    SmtId::T1
                } else {
                    SmtId::T0
                };
            }
            (true, false) => result.t0_uops = slots,
            (false, true) => result.t1_uops = slots,
            (false, false) => slots = 0,
        }
        let _ = slots;

        // Book-keeping: IDQ_UOPS_NOT_DELIVERED counts undelivered slots
        // on cycles where the back-end was not stalled (always true for
        // our register-only loops).
        for (i, d) in demands.iter().enumerate() {
            if d.active {
                let delivered = if i == 0 {
                    result.t0_uops
                } else {
                    result.t1_uops
                };
                // When both threads are active each thread's view of the
                // interface is half the slots.
                let view = if demands[0].active && demands[1].active {
                    ISSUE_WIDTH / 2
                } else {
                    ISSUE_WIDTH
                };
                let not_delivered = view.saturating_sub(delivered);
                self.counters[i].idq_uops_not_delivered += u64::from(not_delivered);
                self.counters[i].uops_delivered += u64::from(delivered);
                self.counters[i].inst_retired += u64::from(delivered); // 1 uop = 1 inst
                self.counters[i].slots_visible += u64::from(view);
            }
        }

        result
    }

    /// Runs `cycles` cycles with constant demand and returns the fraction
    /// of delivery slots that went unused for `thread`
    /// (`IDQ_UOPS_NOT_DELIVERED / (4 × CPU_CLK_UNHALTED)`, the normalized
    /// metric of Figure 11(a)).
    pub fn run_normalized_undelivered(
        &mut self,
        t0: ThreadDemand,
        t1: ThreadDemand,
        cycles: u64,
        thread: SmtId,
    ) -> f64 {
        self.reset_counters();
        for _ in 0..cycles {
            self.cycle(t0, t1);
        }
        self.counters(thread).normalized_undelivered()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unthrottled_single_thread_gets_full_width() {
        let mut idq = Idq::new();
        let r = idq.cycle(ThreadDemand::busy(InstClass::Scalar64), ThreadDemand::IDLE);
        assert_eq!(r.t0_uops, ISSUE_WIDTH);
        assert_eq!(r.t1_uops, 0);
        assert!(!r.gate_blocked);
    }

    #[test]
    fn throttled_delivers_one_cycle_in_four() {
        let mut idq = Idq::new();
        idq.set_throttled(true, Some(SmtId::T0));
        let mut delivered_cycles = 0;
        let n = 4000;
        for _ in 0..n {
            let r = idq.cycle(ThreadDemand::busy(InstClass::Heavy256), ThreadDemand::IDLE);
            if r.total() > 0 {
                delivered_cycles += 1;
            }
        }
        assert_eq!(delivered_cycles, n / 4);
    }

    #[test]
    fn normalized_undelivered_matches_figure11() {
        // Throttled iteration: ~75% of slots undelivered.
        let mut idq = Idq::new();
        idq.set_throttled(true, Some(SmtId::T0));
        let frac = idq.run_normalized_undelivered(
            ThreadDemand::busy(InstClass::Heavy256),
            ThreadDemand::IDLE,
            10_000,
            SmtId::T0,
        );
        assert!((frac - 0.75).abs() < 0.01, "throttled frac = {frac}");

        // Unthrottled iteration: ~0% undelivered.
        let mut idq = Idq::new();
        let frac = idq.run_normalized_undelivered(
            ThreadDemand::busy(InstClass::Heavy256),
            ThreadDemand::IDLE,
            10_000,
            SmtId::T0,
        );
        assert!(frac < 0.01, "unthrottled frac = {frac}");
    }

    #[test]
    fn throttle_blocks_both_smt_threads() {
        // Key observation 2: the sibling running scalar code is throttled
        // too, because the gate is on the shared interface.
        let mut idq = Idq::new();
        idq.set_throttled(true, Some(SmtId::T0));
        let frac_sibling = idq.run_normalized_undelivered(
            ThreadDemand::busy(InstClass::Heavy256),
            ThreadDemand::busy(InstClass::Scalar64),
            10_000,
            SmtId::T1,
        );
        assert!(
            frac_sibling > 0.70,
            "sibling should be ~75% blocked, got {frac_sibling}"
        );
    }

    #[test]
    fn improved_throttling_spares_sibling() {
        // Mitigation (§7): per-thread PHI-only gating leaves the sibling
        // 64b loop untouched.
        let mut idq = Idq::with_policy(ThrottlePolicy::PerThreadPhiOnly);
        idq.set_throttled(true, Some(SmtId::T0));
        let frac_sibling = idq.run_normalized_undelivered(
            ThreadDemand::busy(InstClass::Heavy256),
            ThreadDemand::busy(InstClass::Scalar64),
            10_000,
            SmtId::T1,
        );
        // The sibling sees its fair SMT share every cycle → ~0 undelivered.
        assert!(frac_sibling < 0.01, "sibling frac = {frac_sibling}");

        // The offender is still gated.
        let mut idq = Idq::with_policy(ThrottlePolicy::PerThreadPhiOnly);
        idq.set_throttled(true, Some(SmtId::T0));
        let frac_offender = idq.run_normalized_undelivered(
            ThreadDemand::busy(InstClass::Heavy256),
            ThreadDemand::IDLE,
            10_000,
            SmtId::T0,
        );
        assert!(frac_offender > 0.70, "offender frac = {frac_offender}");
    }

    #[test]
    fn improved_throttling_spares_non_phi_uops_of_offender() {
        // Second stage of the mitigation: non-PHI uops of the offending
        // thread are not blocked either.
        let mut idq = Idq::with_policy(ThrottlePolicy::PerThreadPhiOnly);
        idq.set_throttled(true, Some(SmtId::T0));
        let frac = idq.run_normalized_undelivered(
            ThreadDemand::busy(InstClass::Scalar64),
            ThreadDemand::IDLE,
            10_000,
            SmtId::T0,
        );
        assert!(frac < 0.01, "non-PHI frac = {frac}");
    }

    #[test]
    fn smt_splits_slots_fairly() {
        let mut idq = Idq::new();
        let mut t0 = 0u64;
        let mut t1 = 0u64;
        for _ in 0..1000 {
            let r = idq.cycle(
                ThreadDemand::busy(InstClass::Scalar64),
                ThreadDemand::busy(InstClass::Scalar64),
            );
            t0 += u64::from(r.t0_uops);
            t1 += u64::from(r.t1_uops);
        }
        let ratio = t0 as f64 / t1 as f64;
        assert!((ratio - 1.0).abs() < 0.05, "t0={t0} t1={t1}");
    }

    #[test]
    fn counters_reset() {
        let mut idq = Idq::new();
        idq.cycle(ThreadDemand::busy(InstClass::Scalar64), ThreadDemand::IDLE);
        assert!(idq.counters(SmtId::T0).cpu_clk_unhalted > 0);
        idq.reset_counters();
        assert_eq!(idq.counters(SmtId::T0).cpu_clk_unhalted, 0);
        assert_eq!(idq.core_cycles(), 0);
    }
}

//! The invariant time-stamp counter (`rdtsc`).
//!
//! Both the covert-channel receiver ("measuring its own throttling period
//! (TP) using the `rdtsc` instruction", §4) and the sender/receiver
//! synchronization ("each thread can obtain the wall clock using rdtsc",
//! §4.3.3) depend on the TSC. On all modern Intel parts the TSC is
//! *invariant*: it ticks at a constant rate regardless of the core
//! P-state, which is exactly why it can measure throttling periods that
//! coincide with frequency changes.

use crate::time::{Freq, SimTime};

/// An invariant TSC: converts between simulated wall-clock time and TSC
/// cycle counts at a fixed reference frequency.
///
/// # Examples
///
/// ```
/// use ichannels_uarch::tsc::Tsc;
/// use ichannels_uarch::time::{Freq, SimTime};
///
/// let tsc = Tsc::new(Freq::from_ghz(2.2)); // Cannon Lake reference clock
/// let t = SimTime::from_us(10.0);
/// assert_eq!(tsc.read(t), 22_000);
/// assert!((tsc.to_time(22_000).as_us() - 10.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tsc {
    freq: Freq,
}

impl Tsc {
    /// Creates a TSC ticking at `freq`.
    ///
    /// # Panics
    ///
    /// Panics if `freq` is zero.
    pub fn new(freq: Freq) -> Self {
        assert!(freq.as_hz() > 0, "TSC frequency must be non-zero");
        Tsc { freq }
    }

    /// Reference frequency of the counter.
    pub fn freq(&self) -> Freq {
        self.freq
    }

    /// `rdtsc` at simulated instant `now`.
    pub fn read(&self, now: SimTime) -> u64 {
        // now_ps * hz / 1e12, computed in u128 to avoid overflow.
        (u128::from(now.as_ps()) * u128::from(self.freq.as_hz()) / 1_000_000_000_000u128) as u64
    }

    /// Converts a TSC value back to a simulated instant (inverse of
    /// [`Tsc::read`], up to rounding).
    pub fn to_time(&self, tsc: u64) -> SimTime {
        SimTime::from_ps(
            (u128::from(tsc) * 1_000_000_000_000u128 / u128::from(self.freq.as_hz())) as u64,
        )
    }

    /// Converts a TSC-cycle *count* into a duration.
    pub fn cycles_to_duration(&self, cycles: u64) -> SimTime {
        self.to_time(cycles)
    }

    /// Converts a duration into TSC cycles.
    pub fn duration_to_cycles(&self, dt: SimTime) -> u64 {
        self.read(dt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic() {
        let tsc = Tsc::new(Freq::from_ghz(3.0));
        let mut last = 0;
        for us in 0..1000 {
            let v = tsc.read(SimTime::from_us(us as f64));
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn round_trip() {
        let tsc = Tsc::new(Freq::from_ghz(2.2));
        for us in [0.0, 1.5, 650.0, 1_000_000.0] {
            let t = SimTime::from_us(us);
            let back = tsc.to_time(tsc.read(t));
            let err = t.as_ps().abs_diff(back.as_ps());
            assert!(err <= 1000, "round trip error {err}ps at {us}us");
        }
    }

    #[test]
    fn no_overflow_at_large_times() {
        let tsc = Tsc::new(Freq::from_ghz(5.0));
        // One simulated day.
        let t = SimTime::from_secs(86_400.0);
        let v = tsc.read(t);
        assert_eq!(v, 5_000_000_000 * 86_400);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_freq_panics() {
        let _ = Tsc::new(Freq::ZERO);
    }
}

//! The three IChannels covert channels (paper §4):
//! [`ChannelKind::Thread`] (IccThreadCovert), [`ChannelKind::Smt`]
//! (IccSMTcovert), and [`ChannelKind::Cores`] (IccCoresCovert).
//!
//! All three share the Figure 3 structure: per transaction the sender
//! executes a PHI loop whose computational-intensity level encodes two
//! secret bits; the receiver times its own loop with `rdtsc` and decodes
//! the bits from the throttling period embedded in that duration. After
//! each transaction the channel waits out the 650 µs *reset-time* so the
//! voltage returns to baseline; the cycle time (< 690 µs) bounds the
//! throughput at ~2.9 kb/s (§6.2).
//!
//! The module splits along the trial pipeline:
//!
//! * [`kind`] — [`ChannelKind`], where sender and receiver live;
//! * [`config`] — [`ChannelConfig`], the SoC plus transaction timing;
//! * [`receiver`] — [`ReceiverCalibration`]/[`ReceiverMode`], the
//!   platform-calibrated adaptive demodulator;
//! * [`calibration`] — [`Calibration`], the per-level training, and its
//!   process-wide memo ([`Calibration::for_config`]);
//! * [`run`] — [`SymbolRun`] (the re-armable Soc-owning driver),
//!   [`IChannel`], [`Transmission`], and the typed [`ChannelError`].

pub mod calibration;
pub mod config;
pub mod kind;
mod programs;
pub mod receiver;
pub mod run;

pub use calibration::Calibration;
pub use config::ChannelConfig;
pub use kind::ChannelKind;
pub use receiver::{ReceiverCalibration, ReceiverMode};
pub use run::{ChannelError, IChannel, SymbolRun, Transmission};

#[cfg(test)]
mod tests {
    use super::*;
    use ichannels_soc::config::{PlatformSpec, SocConfig};
    use ichannels_uarch::time::{Freq, SimTime};

    use crate::symbols::Symbol;

    fn all_levels() -> Vec<Symbol> {
        Symbol::ALL.to_vec()
    }

    #[test]
    fn thread_channel_levels_are_ordered_and_separated() {
        let ch = IChannel::icc_thread_covert();
        let durations = ch.run_symbols(&all_levels()).expect("clean schedule");
        // Same-thread: higher sender level ⇒ less remaining ramp ⇒
        // SHORTER receiver duration.
        for w in durations.windows(2) {
            assert!(w[1] < w[0], "durations = {durations:?}");
        }
        // Level separation > 2000 TSC cycles (§6.3, Figure 13).
        for w in durations.windows(2) {
            assert!(
                w[0] - w[1] > 1800,
                "adjacent separation too small: {durations:?}"
            );
        }
    }

    #[test]
    fn smt_channel_levels_are_ordered() {
        let ch = IChannel::icc_smt_covert();
        let durations = ch.run_symbols(&all_levels()).expect("clean schedule");
        // Across SMT: higher sender level ⇒ longer co-throttling ⇒
        // LONGER receiver duration.
        for w in durations.windows(2) {
            assert!(w[1] > w[0], "durations = {durations:?}");
        }
    }

    #[test]
    fn cores_channel_levels_are_ordered() {
        let ch = IChannel::icc_cores_covert();
        let durations = ch.run_symbols(&all_levels()).expect("clean schedule");
        for w in durations.windows(2) {
            assert!(w[1] > w[0], "durations = {durations:?}");
        }
    }

    #[test]
    fn calibrate_then_transmit_round_trips() {
        for ch in [
            IChannel::icc_thread_covert(),
            IChannel::icc_smt_covert(),
            IChannel::icc_cores_covert(),
        ] {
            let cal = ch.calibrate(3);
            let msg = [
                Symbol::new(2),
                Symbol::new(0),
                Symbol::new(3),
                Symbol::new(1),
                Symbol::new(3),
                Symbol::new(0),
            ];
            let tx = ch.transmit_symbols(&msg, &cal);
            assert_eq!(tx.received, msg, "{} failed", ch.kind());
            assert_eq!(tx.bit_error_rate(), 0.0);
        }
    }

    #[test]
    fn throughput_is_about_2_9_kbps() {
        let ch = IChannel::icc_thread_covert();
        let cal = ch.calibrate(2);
        let msg = vec![Symbol::new(1); 10];
        let tx = ch.transmit_symbols(&msg, &cal);
        let bps = tx.throughput_bps();
        assert!((2_800.0..3_000.0).contains(&bps), "throughput = {bps} b/s");
    }

    #[test]
    fn transmit_bits_api() {
        let ch = IChannel::icc_thread_covert();
        let cal = ch.calibrate(2);
        let bits = [true, false, false, true, true, true];
        let tx = ch.transmit_bits(&bits, &cal);
        assert_eq!(crate::symbols::symbols_to_bits(&tx.received), bits);
    }

    #[test]
    fn calibration_separation_exceeds_2k_cycles() {
        let ch = IChannel::icc_thread_covert();
        let cal = ch.calibrate(3);
        assert!(
            cal.min_separation_cycles() > 1800.0,
            "separation = {}",
            cal.min_separation_cycles()
        );
    }

    #[test]
    fn calibration_thresholds_are_midpoints() {
        let cal = Calibration::from_means([4000.0, 3000.0, 2000.0, 1000.0]);
        assert_eq!(cal.thresholds(), [1500.0, 2500.0, 3500.0]);
        // Nearest-mean decoding is exactly thresholding.
        assert_eq!(cal.decode(1499), Symbol::new(3));
        assert_eq!(cal.decode(1501), Symbol::new(2));
    }

    #[test]
    fn decode_vote_takes_plurality_and_breaks_ties_by_distance() {
        let cal = Calibration::from_means([1000.0, 2000.0, 3000.0, 4000.0]);
        // Plurality: two votes near level 0 beat one near level 2.
        assert_eq!(cal.decode_vote(&[999, 1001, 2990]), Symbol::new(0));
        // A 1–1 tie goes to the smaller total distance (level 2 here:
        // 1998+1 against level 0's 2+1999).
        assert_eq!(cal.decode_vote(&[1002, 2999]), Symbol::new(2));
        // A single sample is exactly `decode`.
        assert_eq!(cal.decode_vote(&[3100]), cal.decode(3100));
    }

    #[test]
    fn calibrated_receiver_is_identity_on_client_rails() {
        for spec in [
            PlatformSpec::cannon_lake(),
            PlatformSpec::coffee_lake(),
            PlatformSpec::haswell(),
        ] {
            for kind in [ChannelKind::Thread, ChannelKind::Smt, ChannelKind::Cores] {
                assert!(
                    ReceiverCalibration::for_channel(&spec, kind).is_legacy(),
                    "{} {kind} should keep the legacy receiver",
                    spec.name
                );
            }
        }
        // Only the server's cross-core channel derives a real tuning.
        let server = PlatformSpec::skylake_server();
        for kind in [ChannelKind::Thread, ChannelKind::Smt] {
            assert!(ReceiverCalibration::for_channel(&server, kind).is_legacy());
        }
        let tuned = ReceiverCalibration::for_channel(&server, ChannelKind::Cores);
        assert!(!tuned.is_legacy());
        assert!(tuned.votes >= 3, "votes = {}", tuned.votes);
        assert!(tuned.window_scale > 1.0, "window = {}", tuned.window_scale);
    }

    #[test]
    fn legacy_mode_reproduces_the_fixed_receiver_bit_for_bit() {
        // On a client rail the calibrated mode resolves to the identity
        // tuning, so the whole transmission is byte-identical to the
        // explicit legacy mode.
        let mut cfg = ChannelConfig::default_cannon_lake();
        cfg.soc = SocConfig::pinned(PlatformSpec::coffee_lake(), Freq::from_ghz(2.0));
        let mut legacy_cfg = cfg.clone();
        legacy_cfg.receiver = ReceiverMode::Legacy;
        let calibrated = IChannel::new(ChannelKind::Cores, cfg);
        let legacy = IChannel::new(ChannelKind::Cores, legacy_cfg);
        assert!(calibrated.tuning().is_legacy());
        let msg = [Symbol::new(1), Symbol::new(3), Symbol::new(0)];
        let (ca, cb) = (calibrated.calibrate(2), legacy.calibrate(2));
        assert_eq!(ca, cb);
        let (ta, tb) = (
            calibrated.transmit_symbols(&msg, &ca),
            legacy.transmit_symbols(&msg, &cb),
        );
        assert_eq!(ta.durations, tb.durations);
        assert_eq!(ta.received, tb.received);
        assert_eq!(ta.elapsed, tb.elapsed);
    }

    #[test]
    fn server_cross_core_votes_stretch_the_transmission() {
        let mut cfg = ChannelConfig::default_cannon_lake();
        cfg.soc = SocConfig::pinned(PlatformSpec::skylake_server(), Freq::from_ghz(2.0));
        let ch = IChannel::new(ChannelKind::Cores, cfg);
        let tuning = ch.tuning();
        assert!(!tuning.is_legacy());
        let votes = tuning.votes as usize;
        assert_eq!(ch.slots_per_symbol(), votes);
        let cal = ch.calibrate(2);
        let msg = [Symbol::new(0), Symbol::new(3), Symbol::new(2)];
        let tx = ch.transmit_symbols(&msg, &cal);
        assert_eq!(tx.received, msg, "voted decode should be clean");
        assert_eq!(tx.durations.len(), msg.len() * votes);
        assert_eq!(
            tx.elapsed,
            ch.config().slot_period.scale((msg.len() * votes) as f64),
            "elapsed must charge every voting slot"
        );
        // The throughput honestly pays the votes-fold slowdown.
        assert!(tx.throughput_bps() < 2_900.0 / (votes as f64 - 0.5));
    }

    #[test]
    fn receiver_calibration_derivation_tracks_compression() {
        assert!(ReceiverCalibration::for_compression(1.0).is_legacy());
        assert!(ReceiverCalibration::for_compression(0.8).is_legacy());
        let moderate = ReceiverCalibration::for_compression(0.7);
        assert_eq!(moderate.votes, 3);
        let strong = ReceiverCalibration::for_compression(0.5625);
        assert_eq!(strong.votes, 5);
        assert!(strong.window_scale > moderate.window_scale);
        // The window stretch is capped.
        assert_eq!(ReceiverCalibration::for_compression(0.1).window_scale, 4.0);
    }

    #[test]
    #[should_panic(expected = "requires SMT")]
    fn smt_channel_rejects_non_smt_platform() {
        let mut cfg = ChannelConfig::default_cannon_lake();
        cfg.soc = SocConfig::pinned(PlatformSpec::coffee_lake(), Freq::from_ghz(2.0));
        let _ = IChannel::new(ChannelKind::Smt, cfg);
    }

    #[test]
    fn channel_works_on_coffee_lake_cross_core() {
        let mut cfg = ChannelConfig::default_cannon_lake();
        cfg.soc = SocConfig::pinned(PlatformSpec::coffee_lake(), Freq::from_ghz(2.0));
        let ch = IChannel::new(ChannelKind::Cores, cfg);
        let cal = ch.calibrate(2);
        let msg = [Symbol::new(0), Symbol::new(3), Symbol::new(2)];
        let tx = ch.transmit_symbols(&msg, &cal);
        assert_eq!(tx.received, msg);
    }

    #[test]
    fn symbol_run_rearms_bit_identically() {
        // Repeated runs of one SymbolRun reproduce a fresh driver per
        // call exactly — the invariant that lets calibration reuse one
        // armed driver across its four level runs.
        let ch = IChannel::icc_cores_covert();
        let msg = all_levels();
        let mut run = SymbolRun::new(&ch);
        let first = run.run(&msg, |_| {}).expect("clean schedule");
        let second = run.run(&msg, |_| {}).expect("clean schedule");
        assert_eq!(first, second, "re-arming must restart every seed");
        let fresh = ch.run_symbols(&msg).expect("clean schedule");
        assert_eq!(first, fresh, "SymbolRun must match the one-shot path");
    }

    #[test]
    fn broken_slot_schedule_is_a_typed_error() {
        // A slot period far too short for the PHI loop collapses the
        // schedule: the receiver cannot record every transaction before
        // the deadline. This must surface as a ChannelError, not a
        // process abort.
        let mut cfg = ChannelConfig::default_cannon_lake();
        cfg.slot_period = SimTime::from_us(1.0);
        let ch = IChannel::new(ChannelKind::Thread, cfg);
        let err = ch
            .run_symbols(&[Symbol::new(3); 8])
            .expect_err("1 µs slots cannot fit a 15 µs PHI loop");
        match err {
            ChannelError::ReceiverMissedTransactions {
                channel,
                expected,
                got,
            } => {
                assert_eq!(channel, ChannelKind::Thread);
                assert_eq!(expected, 8);
                assert!(got < expected, "got {got} of {expected}");
            }
        }
        assert!(
            err.to_string().contains("missed transactions"),
            "unreadable: {err}"
        );
        // The same failure propagates out of calibration.
        assert!(ch.try_calibrate(2).is_err());
    }

    #[test]
    fn calibration_memo_is_transparent() {
        // for_config equals an uncached computation, hit or miss, and
        // the memoized calibrate() path equals the fingerprint path.
        let cfg = ChannelConfig::default_cannon_lake();
        let memoized = Calibration::for_config(ChannelKind::Thread, &cfg, 2);
        let again = Calibration::for_config(ChannelKind::Thread, &cfg, 2);
        assert_eq!(memoized, again);
        assert_eq!(
            IChannel::new(ChannelKind::Thread, cfg.clone()).calibrate(2),
            memoized
        );
        // The fingerprint is a pure function of the config…
        assert_eq!(
            calibration::fingerprint(ChannelKind::Thread, &cfg, 2),
            calibration::fingerprint(ChannelKind::Thread, &cfg, 2)
        );
        // …and separates kinds, reps, and seeds.
        let mut reseeded = cfg.clone();
        reseeded.jitter_seed ^= 1;
        for other in [
            calibration::fingerprint(ChannelKind::Smt, &cfg, 2),
            calibration::fingerprint(ChannelKind::Thread, &cfg, 3),
            calibration::fingerprint(ChannelKind::Thread, &reseeded, 2),
        ] {
            assert_ne!(
                other,
                calibration::fingerprint(ChannelKind::Thread, &cfg, 2)
            );
        }
    }

    #[test]
    fn memo_fingerprint_resolves_the_receiver_mode() {
        // Calibrated resolves to the identity tuning on a client rail,
        // so it shares its memo entry with the explicit legacy mode —
        // the two training runs are provably bit-identical.
        let cfg = ChannelConfig::default_cannon_lake();
        let mut legacy = cfg.clone();
        legacy.receiver = ReceiverMode::Legacy;
        assert_eq!(
            calibration::fingerprint(ChannelKind::Cores, &cfg, 2),
            calibration::fingerprint(ChannelKind::Cores, &legacy, 2)
        );
        // On the compressed server rail the calibrated tuning differs,
        // so the entries split.
        let mut server = cfg.clone();
        server.soc = SocConfig::pinned(PlatformSpec::skylake_server(), Freq::from_ghz(2.0));
        let mut server_legacy = server.clone();
        server_legacy.receiver = ReceiverMode::Legacy;
        assert_ne!(
            calibration::fingerprint(ChannelKind::Cores, &server, 2),
            calibration::fingerprint(ChannelKind::Cores, &server_legacy, 2)
        );
    }
}

//! [`ChannelKind`]: where the two communicating execution contexts live.

use ichannels_uarch::isa::InstClass;

/// Where the two communicating execution contexts live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelKind {
    /// Same hardware thread (IccThreadCovert).
    Thread,
    /// Two SMT threads of one physical core (IccSMTcovert).
    Smt,
    /// Two different physical cores (IccCoresCovert).
    Cores,
}

impl ChannelKind {
    /// The receiver's measurement loop class (Figure 3): `512b_Heavy`
    /// on the same thread, `64b` across SMT, `128b_Heavy` across cores.
    pub const fn receiver_class(self) -> InstClass {
        match self {
            ChannelKind::Thread => InstClass::Heavy512,
            ChannelKind::Smt => InstClass::Scalar64,
            ChannelKind::Cores => InstClass::Heavy128,
        }
    }

    /// Display name used in the paper.
    pub const fn name(self) -> &'static str {
        match self {
            ChannelKind::Thread => "IccThreadCovert",
            ChannelKind::Smt => "IccSMTcovert",
            ChannelKind::Cores => "IccCoresCovert",
        }
    }
}

impl std::fmt::Display for ChannelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

//! Receiver demodulation tuning: [`ReceiverCalibration`] and the
//! [`ReceiverMode`] selection a channel configuration carries.

use ichannels_pdn::loadline::LoadLine;
use ichannels_soc::config::PlatformSpec;

use super::kind::ChannelKind;

/// Receiver demodulation tuning: how long the receiver integrates per
/// measurement and how many repeated transactions vote on each symbol.
///
/// The paper's receiver calibrates per platform (§6): where the
/// per-level separation is comfortably above the measurement-jitter
/// floor a single fixed-window sample per transaction decodes
/// error-free, but where a stiffer rail compresses the levels toward
/// each other a real attacker integrates longer and repeats the
/// transaction, trading symbol rate for reliability. The identity
/// tuning ([`ReceiverCalibration::LEGACY`]) reproduces the fixed
/// single-sample receiver bit for bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReceiverCalibration {
    /// Multiplier on the receiver's measured-loop duration (the
    /// integration window).
    pub window_scale: f64,
    /// Repeat-and-vote: transactions transmitted per symbol, decoded by
    /// per-transaction nearest-mean votes. 1 disables voting.
    pub votes: u32,
}

impl ReceiverCalibration {
    /// The fixed single-sample receiver (pre-calibration behavior).
    pub const LEGACY: ReceiverCalibration = ReceiverCalibration {
        window_scale: 1.0,
        votes: 1,
    };

    /// Compression factor above which the single-sample receiver is
    /// kept: every client rail in the catalog sits at 1.0, the 0.9 mΩ
    /// server rail at ≈0.56.
    pub const COMPRESSION_FLOOR: f64 = 0.75;

    /// True for the identity tuning — the execution path is then
    /// bit-identical to the legacy fixed-window receiver.
    pub fn is_legacy(self) -> bool {
        self.votes <= 1 && self.window_scale == 1.0
    }

    /// Derives the tuning for a channel on a platform from its
    /// load-line.
    ///
    /// Only the cross-core channel rides the shared package rail, so
    /// only it sees the [`LoadLine::separation_compression`] of a stiff
    /// server load-line; the same-thread and SMT channels observe the
    /// throttling of their own core directly and keep the legacy
    /// receiver everywhere.
    pub fn for_channel(spec: &PlatformSpec, kind: ChannelKind) -> Self {
        if kind != ChannelKind::Cores {
            return Self::LEGACY;
        }
        let compression =
            LoadLine::new(spec.rll_mohm).separation_compression(&LoadLine::client_reference());
        Self::for_compression(compression)
    }

    /// Derives the tuning for a measured separation-compression factor:
    /// identity at or above [`Self::COMPRESSION_FLOOR`], otherwise an
    /// integration window stretched by the inverse compression and a
    /// vote count growing as the levels close up.
    pub fn for_compression(compression: f64) -> Self {
        assert!(
            compression.is_finite() && compression > 0.0,
            "invalid separation compression: {compression}"
        );
        if compression >= Self::COMPRESSION_FLOOR {
            return Self::LEGACY;
        }
        ReceiverCalibration {
            window_scale: (1.0 / compression).clamp(1.0, 4.0),
            votes: if compression >= 0.6 { 3 } else { 5 },
        }
    }
}

/// Which receiver a channel decodes with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReceiverMode {
    /// Platform-calibrated adaptive receiver (the default):
    /// [`ReceiverCalibration::for_channel`] derives the tuning from the
    /// platform's load-line.
    Calibrated,
    /// The fixed single-sample receiver, kept for A/B comparison.
    Legacy,
    /// An explicit tuning override (receiver-calibration sweeps).
    Fixed(ReceiverCalibration),
}

impl ReceiverMode {
    /// Resolves the mode to a concrete tuning for a channel instance.
    pub fn resolve(self, spec: &PlatformSpec, kind: ChannelKind) -> ReceiverCalibration {
        match self {
            ReceiverMode::Calibrated => ReceiverCalibration::for_channel(spec, kind),
            ReceiverMode::Legacy => ReceiverCalibration::LEGACY,
            ReceiverMode::Fixed(tuning) => tuning,
        }
    }
}

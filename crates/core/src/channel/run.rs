//! The run-one-transmission engine: [`SymbolRun`] (the re-armable
//! Soc-owning driver behind every calibration and payload run),
//! [`IChannel`] (a channel bound to its configuration), the
//! [`Transmission`] result, and the typed [`ChannelError`].

use std::cell::RefCell;
use std::rc::Rc;

use ichannels_soc::config::SocConfig;
use ichannels_soc::sim::Soc;
use ichannels_uarch::isa::InstClass;
use ichannels_uarch::time::SimTime;
use ichannels_uarch::tsc::Tsc;
use ichannels_workload::loops::{instructions_for_duration, Recorder};

use crate::symbols::Symbol;

use super::calibration::Calibration;
use super::config::ChannelConfig;
use super::kind::ChannelKind;
use super::programs::{JitterSource, ReceiverProg, SenderProg, ThreadChannelProg};
use super::receiver::ReceiverCalibration;

/// A typed failure of a channel run.
///
/// Campaign trials surface this through their trial record (one cell
/// fails with a readable message) instead of aborting the whole
/// process the way the old `assert_eq!` did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelError {
    /// The receiver recorded a different number of transaction
    /// durations than the sender transmitted slots: the slot schedule
    /// broke down before the run deadline (typically a `slot_period`
    /// too short for the throttled PHI and measurement loops).
    ReceiverMissedTransactions {
        /// The channel whose schedule broke down.
        channel: ChannelKind,
        /// Transaction slots transmitted.
        expected: usize,
        /// Durations the receiver recorded.
        got: usize,
    },
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::ReceiverMissedTransactions {
                channel,
                expected,
                got,
            } => write!(
                f,
                "{channel} receiver missed transactions ({got} of {expected} recorded): \
                 the slot schedule broke down before the deadline — check that the \
                 slot period covers the throttled sender and receiver loops"
            ),
        }
    }
}

impl std::error::Error for ChannelError {}

/// Result of one transmission.
#[derive(Debug, Clone)]
pub struct Transmission {
    /// Symbols the sender transmitted.
    pub sent: Vec<Symbol>,
    /// Symbols the receiver decoded.
    pub received: Vec<Symbol>,
    /// Raw receiver durations (TSC cycles), one per transaction.
    pub durations: Vec<u64>,
    /// Wall-clock time of the whole transmission.
    pub elapsed: SimTime,
}

impl Transmission {
    /// Gross channel throughput in bits/s (2 bits per transaction over
    /// the measured wall-clock time).
    pub fn throughput_bps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        (self.sent.len() as f64 * 2.0) / self.elapsed.as_secs()
    }

    /// Fraction of wrong bits.
    pub fn bit_error_rate(&self) -> f64 {
        if self.sent.is_empty() {
            return 0.0;
        }
        let wrong: u32 = self
            .sent
            .iter()
            .zip(&self.received)
            .map(|(s, r)| s.bit_errors_vs(*r))
            .sum();
        f64::from(wrong) / (self.sent.len() as f64 * 2.0)
    }
}

/// The sender/receiver driver of one channel instance, with every
/// per-configuration invariant — instruction counts, slot schedule,
/// receiver window, jitter σ — derived once at construction.
///
/// A `SymbolRun` owns its [`Soc`] and **re-arms** for each run: the
/// first [`SymbolRun::run`] builds the SoC from the stored
/// configuration and every later run resets it in place via
/// [`Soc::rearm`] (reusing the core, rail-segment, and trace
/// allocations), so repeated runs (the four calibration levels, then
/// the payload) are bit-identical to constructing a fresh driver each
/// time — noise arrivals, program state, and measurement jitter all
/// restart from the configuration seeds — while the schedule
/// derivation and the SoC construction are paid once instead of per
/// run.
pub struct SymbolRun {
    kind: ChannelKind,
    soc_cfg: SocConfig,
    start_offset: SimTime,
    slot_period: SimTime,
    slot0: u64,
    period: u64,
    sender_insts: [u64; 4],
    recv_class: InstClass,
    recv_insts: u64,
    recv_delay: u64,
    jitter_seed: u64,
    jitter_sigma_cycles: f64,
    /// The most recently armed SoC; `None` until the first run.
    soc: Option<Soc>,
}

impl std::fmt::Debug for SymbolRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SymbolRun({} on {})",
            self.kind, self.soc_cfg.platform.name
        )
    }
}

impl SymbolRun {
    /// Derives the run invariants of `channel`. No SoC is built yet —
    /// each run arms its own (the TSC is a pure function of the
    /// platform's invariant frequency, exactly what `Soc::new` would
    /// construct).
    pub fn new(channel: &IChannel) -> Self {
        let cfg = channel.config();
        let freq = cfg.freq();
        let tsc = Tsc::new(cfg.soc.platform.tsc_freq);
        let slot0 = tsc.read(cfg.start_offset);
        let period = tsc.duration_to_cycles(cfg.slot_period);
        let sender_insts: [u64; 4] = std::array::from_fn(|i| {
            instructions_for_duration(Symbol::new(i as u8).sender_class(), freq, cfg.sender_loop)
        });
        let recv_class = channel.kind().receiver_class();
        // The calibrated integration window; the exact untouched
        // duration when the tuning is the identity, so legacy-tuned
        // platforms reproduce the fixed-window receiver bit for bit.
        let tuning = channel.tuning();
        let recv_window = if tuning.window_scale == 1.0 {
            cfg.receiver_loop
        } else {
            cfg.receiver_loop.scale(tuning.window_scale)
        };
        let recv_insts = instructions_for_duration(recv_class, freq, recv_window);
        let recv_delay = if channel.kind() == ChannelKind::Cores {
            tsc.duration_to_cycles(cfg.cross_core_delay)
        } else {
            0
        };
        SymbolRun {
            kind: channel.kind(),
            soc_cfg: cfg.soc.clone(),
            start_offset: cfg.start_offset,
            slot_period: cfg.slot_period,
            slot0,
            period,
            sender_insts,
            recv_class,
            recv_insts,
            recv_delay,
            jitter_seed: cfg.jitter_seed,
            jitter_sigma_cycles: tsc.duration_to_cycles(cfg.measurement_jitter) as f64,
            soc: None,
        }
    }

    /// Re-arms the SoC and runs the sender/receiver pair over
    /// `symbols`, returning the raw receiver durations (TSC cycles),
    /// one per transaction. `setup` may add extra programs (noise
    /// applications) to the freshly armed SoC before the run.
    ///
    /// # Errors
    ///
    /// [`ChannelError::ReceiverMissedTransactions`] when the receiver
    /// recorded fewer durations than transmitted slots.
    pub fn run<F>(&mut self, symbols: &[Symbol], setup: F) -> Result<Vec<u64>, ChannelError>
    where
        F: FnOnce(&mut Soc),
    {
        self.run_shared(&Rc::from(symbols), setup)
    }

    /// [`SymbolRun::run`] over an already-shared symbol buffer: the
    /// programs clone the `Rc`, so no per-program symbol copies are
    /// made.
    ///
    /// # Errors
    ///
    /// [`ChannelError::ReceiverMissedTransactions`] when the receiver
    /// recorded fewer durations than transmitted slots.
    pub(crate) fn run_shared<F>(
        &mut self,
        symbols: &Rc<[Symbol]>,
        setup: F,
    ) -> Result<Vec<u64>, ChannelError>
    where
        F: FnOnce(&mut Soc),
    {
        // Re-arm in place after the first run: `Soc::rearm` is pinned
        // bit-identical to a fresh `Soc::new` and skips both the
        // config clone and the PMU/core/trace rebuild.
        let soc = match self.soc.take() {
            Some(mut soc) => {
                soc.rearm();
                self.soc.insert(soc)
            }
            None => self.soc.insert(Soc::new(self.soc_cfg.clone())),
        };
        setup(soc);
        let recorder = Recorder::new();
        let jitter = Rc::new(RefCell::new(JitterSource::new(
            self.jitter_seed,
            self.jitter_sigma_cycles,
        )));

        match self.kind {
            ChannelKind::Thread => {
                soc.spawn(
                    0,
                    0,
                    Box::new(ThreadChannelProg {
                        symbols: symbols.clone(),
                        idx: 0,
                        stage: 0,
                        slot0: self.slot0,
                        period: self.period,
                        sender_insts: self.sender_insts,
                        recv_class: self.recv_class,
                        recv_insts: self.recv_insts,
                        t_start: 0,
                        recorder: recorder.clone(),
                        jitter: jitter.clone(),
                    }),
                );
            }
            ChannelKind::Smt | ChannelKind::Cores => {
                soc.spawn(
                    0,
                    0,
                    Box::new(SenderProg {
                        symbols: symbols.clone(),
                        idx: 0,
                        running: false,
                        slot0: self.slot0,
                        period: self.period,
                        sender_insts: self.sender_insts,
                    }),
                );
                let (rc, rs) = if self.kind == ChannelKind::Smt {
                    (0, 1)
                } else {
                    (1, 0)
                };
                soc.spawn(
                    rc,
                    rs,
                    Box::new(ReceiverProg {
                        n: symbols.len(),
                        idx: 0,
                        stage: 0,
                        slot0: self.slot0 + self.recv_delay,
                        period: self.period,
                        class: self.recv_class,
                        insts: self.recv_insts,
                        t_start: 0,
                        recorder: recorder.clone(),
                        jitter: jitter.clone(),
                    }),
                );
            }
        }

        let deadline = self.start_offset + self.slot_period.scale((symbols.len() + 2) as f64);
        // Per-rearm SoC stepping time. The Instant is taken only while
        // telemetry is on; timing lives strictly out-of-band and never
        // feeds back into the simulation.
        // lint:allow(D002): telemetry-gated span timing; off by default
        // and never part of campaign bytes.
        let stepping = ichannels_obs::enabled().then(std::time::Instant::now);
        soc.run_until_idle(deadline);
        if let Some(started) = stepping {
            let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            ichannels_obs::observe("soc.step_ns", ns);
            ichannels_obs::counter_add("soc.slots_simulated", symbols.len() as u64);
            ichannels_obs::counter_add("soc.rearms", 1);
        }
        let durations = recorder.values();
        if durations.len() != symbols.len() {
            return Err(ChannelError::ReceiverMissedTransactions {
                channel: self.kind,
                expected: symbols.len(),
                got: durations.len(),
            });
        }
        Ok(durations)
    }
}

/// An IChannels covert channel bound to a configuration.
///
/// # Examples
///
/// ```
/// use ichannels::channel::{ChannelConfig, ChannelKind, IChannel};
/// use ichannels::symbols::Symbol;
///
/// let ch = IChannel::new(ChannelKind::Thread, ChannelConfig::default_cannon_lake());
/// let cal = ch.calibrate(3);
/// let tx = ch.transmit_symbols(&[Symbol::new(0), Symbol::new(3)], &cal);
/// assert_eq!(tx.sent.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct IChannel {
    kind: ChannelKind,
    cfg: ChannelConfig,
}

impl IChannel {
    /// Creates a channel of the given kind.
    ///
    /// # Panics
    ///
    /// Panics if the kind is [`ChannelKind::Smt`] on a platform without
    /// SMT, or [`ChannelKind::Cores`] on a single-core platform.
    pub fn new(kind: ChannelKind, cfg: ChannelConfig) -> Self {
        match kind {
            ChannelKind::Smt => assert!(
                cfg.soc.platform.smt,
                "{} requires SMT (the paper tests it only on Cannon Lake)",
                kind
            ),
            ChannelKind::Cores => assert!(
                cfg.soc.platform.n_cores >= 2,
                "{} requires at least two cores",
                kind
            ),
            ChannelKind::Thread => {}
        }
        IChannel { kind, cfg }
    }

    /// IccThreadCovert on the default platform.
    pub fn icc_thread_covert() -> Self {
        IChannel::new(ChannelKind::Thread, ChannelConfig::default_cannon_lake())
    }

    /// IccSMTcovert on the default platform.
    pub fn icc_smt_covert() -> Self {
        IChannel::new(ChannelKind::Smt, ChannelConfig::default_cannon_lake())
    }

    /// IccCoresCovert on the default platform.
    pub fn icc_cores_covert() -> Self {
        IChannel::new(ChannelKind::Cores, ChannelConfig::default_cannon_lake())
    }

    /// The channel kind.
    pub fn kind(&self) -> ChannelKind {
        self.kind
    }

    /// The channel configuration.
    pub fn config(&self) -> &ChannelConfig {
        &self.cfg
    }

    /// Mutable access to the configuration (e.g., to apply mitigations
    /// or noise before calibrating).
    pub fn config_mut(&mut self) -> &mut ChannelConfig {
        &mut self.cfg
    }

    /// The resolved receiver tuning of this channel instance.
    pub fn tuning(&self) -> ReceiverCalibration {
        self.cfg.receiver.resolve(&self.cfg.soc.platform, self.kind)
    }

    /// Transactions (slots) one payload symbol occupies: the resolved
    /// repeat-and-vote count.
    pub fn slots_per_symbol(&self) -> usize {
        self.tuning().votes.max(1) as usize
    }

    /// Runs the sender/receiver pair over `symbols` and returns the raw
    /// receiver durations (TSC cycles), one per transaction.
    ///
    /// # Errors
    ///
    /// [`ChannelError::ReceiverMissedTransactions`] when the slot
    /// schedule broke down before the run deadline.
    pub fn run_symbols(&self, symbols: &[Symbol]) -> Result<Vec<u64>, ChannelError> {
        self.run_symbols_with(symbols, |_| {})
    }

    /// Like [`IChannel::run_symbols`], with a hook to add extra programs
    /// (noise applications) to the SoC before the run.
    ///
    /// # Errors
    ///
    /// [`ChannelError::ReceiverMissedTransactions`] when the slot
    /// schedule broke down before the run deadline.
    pub fn run_symbols_with<F>(
        &self,
        symbols: &[Symbol],
        setup: F,
    ) -> Result<Vec<u64>, ChannelError>
    where
        F: FnOnce(&mut Soc),
    {
        SymbolRun::new(self).run(symbols, setup)
    }

    /// Calibrates the channel: transmits each of the four levels
    /// `reps` times with known symbols and records the mean duration per
    /// level. Served by the process-wide memo for repeated identical
    /// configurations (see [`Calibration::for_config`]).
    ///
    /// # Panics
    ///
    /// Panics if `reps` is zero or a training run fails; use
    /// [`IChannel::try_calibrate`] to handle a broken configuration.
    pub fn calibrate(&self, reps: usize) -> Calibration {
        // lint:allow(R001): documented panicking wrapper over
        // try_calibrate for harness/figure code.
        self.try_calibrate(reps).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`IChannel::calibrate`].
    ///
    /// # Errors
    ///
    /// Propagates the [`ChannelError`] of the first failing training
    /// run.
    pub fn try_calibrate(&self, reps: usize) -> Result<Calibration, ChannelError> {
        Calibration::try_for_config(self.kind, &self.cfg, reps)
    }

    /// Transmits symbols and decodes them with the calibration.
    ///
    /// # Panics
    ///
    /// Panics if the run fails; use [`IChannel::try_transmit_symbols`]
    /// to handle a broken configuration.
    pub fn transmit_symbols(&self, symbols: &[Symbol], cal: &Calibration) -> Transmission {
        // lint:allow(R001): documented panicking wrapper over
        // try_transmit_symbols for harness/figure code.
        self.try_transmit_symbols(symbols, cal)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`IChannel::transmit_symbols`].
    ///
    /// # Errors
    ///
    /// [`ChannelError::ReceiverMissedTransactions`] when the slot
    /// schedule broke down before the run deadline.
    pub fn try_transmit_symbols(
        &self,
        symbols: &[Symbol],
        cal: &Calibration,
    ) -> Result<Transmission, ChannelError> {
        self.try_transmit_symbols_with(symbols, cal, |_| {})
    }

    /// Like [`IChannel::transmit_symbols`], with a SoC setup hook for
    /// concurrent noise applications (§6.3).
    ///
    /// # Panics
    ///
    /// Panics if the run fails; use
    /// [`IChannel::try_transmit_symbols_with`] to handle a broken
    /// configuration.
    pub fn transmit_symbols_with<F>(
        &self,
        symbols: &[Symbol],
        cal: &Calibration,
        setup: F,
    ) -> Transmission
    where
        F: FnOnce(&mut Soc),
    {
        // lint:allow(R001): documented panicking wrapper over
        // try_transmit_symbols_with for harness/figure code.
        self.try_transmit_symbols_with(symbols, cal, setup)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`IChannel::transmit_symbols_with`].
    ///
    /// With a repeat-and-vote tuning (`votes > 1`) every payload symbol
    /// is transmitted over that many consecutive transaction slots and
    /// decoded by [`Calibration::decode_vote`]; `durations` then holds
    /// one raw measurement per slot and `elapsed` reflects the
    /// `votes`-fold slowdown a real attacker pays for the reliability.
    ///
    /// # Errors
    ///
    /// [`ChannelError::ReceiverMissedTransactions`] when the slot
    /// schedule broke down before the run deadline.
    pub fn try_transmit_symbols_with<F>(
        &self,
        symbols: &[Symbol],
        cal: &Calibration,
        setup: F,
    ) -> Result<Transmission, ChannelError>
    where
        F: FnOnce(&mut Soc),
    {
        let votes = self.slots_per_symbol();
        // Build the slot schedule once as a shared buffer: the spawned
        // programs clone the `Rc` instead of re-copying the symbols.
        let slots: Rc<[Symbol]> = if votes == 1 {
            Rc::from(symbols)
        } else {
            symbols
                .iter()
                .flat_map(|&s| std::iter::repeat_n(s, votes))
                .collect()
        };
        let durations = SymbolRun::new(self).run_shared(&slots, setup)?;
        let received: Vec<Symbol> = if votes == 1 {
            durations.iter().map(|&d| cal.decode(d)).collect()
        } else {
            durations
                .chunks(votes)
                .map(|c| cal.decode_vote(c))
                .collect()
        };
        Ok(Transmission {
            sent: symbols.to_vec(),
            received,
            durations,
            elapsed: self.cfg.slot_period.scale(slots.len() as f64),
        })
    }

    /// Transmits raw bits (even count) — the end-to-end covert channel.
    ///
    /// # Panics
    ///
    /// Panics if the bit count is odd or the run fails.
    pub fn transmit_bits(&self, bits: &[bool], cal: &Calibration) -> Transmission {
        let symbols = crate::symbols::bits_to_symbols(bits);
        self.transmit_symbols(&symbols, cal)
    }
}

//! [`ChannelConfig`]: the full configuration of a covert-channel
//! instance — the simulated SoC plus the transaction timing.

use ichannels_soc::config::{PlatformSpec, SocConfig};
use ichannels_uarch::time::{Freq, SimTime};

use super::receiver::ReceiverMode;

/// Configuration of a covert channel instance.
#[derive(Debug, Clone)]
pub struct ChannelConfig {
    /// The simulated system the two contexts run on (platform, noise,
    /// mitigations).
    pub soc: SocConfig,
    /// Transaction period: PHI transmission + reset-time (§6.2:
    /// < 690 µs).
    pub slot_period: SimTime,
    /// Settling time before the first slot.
    pub start_offset: SimTime,
    /// Target (unthrottled) duration of the sender's PHI loop.
    pub sender_loop: SimTime,
    /// Target (unthrottled) duration of the receiver's measured loop.
    pub receiver_loop: SimTime,
    /// How long after the sender the cross-core receiver starts its loop
    /// ("within a few hundred cycles", §4.3.1).
    pub cross_core_delay: SimTime,
    /// 1-σ receiver measurement jitter (rdtsc serialization, pipeline
    /// drain — the spread visible in Figure 13).
    pub measurement_jitter: SimTime,
    /// RNG seed for the measurement jitter.
    pub jitter_seed: u64,
    /// How the receiver demodulates (platform-calibrated by default).
    pub receiver: ReceiverMode,
}

impl ChannelConfig {
    /// The paper's default setup: Cannon Lake pinned at 1.4 GHz
    /// (IccSMTcovert is only testable there — Coffee Lake has no SMT).
    pub fn default_cannon_lake() -> Self {
        ChannelConfig {
            soc: SocConfig::pinned(PlatformSpec::cannon_lake(), Freq::from_ghz(1.4)),
            slot_period: SimTime::from_us(690.0),
            start_offset: SimTime::from_us(100.0),
            sender_loop: SimTime::from_us(15.0),
            receiver_loop: SimTime::from_us(8.0),
            cross_core_delay: SimTime::from_ns(150.0),
            measurement_jitter: SimTime::from_ns(150.0),
            jitter_seed: 0x05EE_D1CC,
            receiver: ReceiverMode::Calibrated,
        }
    }

    /// The frequency the channel operates at (pinned governor assumed).
    pub fn freq(&self) -> Freq {
        match self.soc.governor {
            ichannels_pmu::governor::Governor::Userspace(f) => f,
            _ => self.soc.platform.pstates.max(),
        }
    }
}

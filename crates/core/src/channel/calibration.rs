//! Per-level receiver calibration: the training the paper's receiver
//! does once per platform (§6), plus a process-wide memo cache so
//! identical channel configurations train exactly once per process.
//! The memo is sharded by fingerprint hash (`memoized_means`) and
//! also serves the multi-level alphabet calibration
//! ([`crate::extended::MultiLevelChannel::calibrate`]), whose keys
//! extend the four-level fingerprint with the alphabet.
//!
//! [`Calibration::for_config`] is the pure, fingerprinted entry point:
//! the calibration is a deterministic function of everything the
//! training simulation consumes ([`fingerprint`] spells that set out),
//! so a memo hit returns byte-identical means to a fresh recomputation
//! and enabling the cache can never change output bytes. Configurations
//! that differ anywhere — a different trial seed, a different noise
//! level — produce a different fingerprint and simply miss.
//!
//! Because campaign trials deliberately mix their per-trial seed into
//! the jitter/SoC seeds, a single fresh campaign pass shares nothing
//! and runs at cache-off speed; the memo pays off whenever the *same*
//! configurations recur in one process — re-running a catalog
//! (`campaign bench`'s cache-on arm), A/B twins that resolve to the
//! same tuning (`tests/receiver_invariance.rs`), figure harnesses
//! re-deriving a calibration, and resumed/repeated trials.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::symbols::Symbol;

use super::config::ChannelConfig;
use super::kind::ChannelKind;
use super::run::{ChannelError, IChannel, SymbolRun};

/// Per-level mean receiver durations learned during calibration, in TSC
/// cycles, plus nearest-mean decoding.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    means: [f64; 4],
}

impl Calibration {
    /// Builds a calibration from per-symbol mean durations (TSC cycles).
    pub fn from_means(means: [f64; 4]) -> Self {
        Calibration { means }
    }

    /// Derives the calibration for a channel configuration through the
    /// process-wide memo cache: the first call for a given
    /// [`fingerprint`] runs the four per-level training transmissions,
    /// every later call returns the memoized (identical) means.
    ///
    /// # Panics
    ///
    /// Panics if `reps` is zero, if the kind/platform combination is
    /// unsupported, or if the training run itself fails (see
    /// [`Calibration::try_for_config`] for the fallible form).
    pub fn for_config(kind: ChannelKind, cfg: &ChannelConfig, reps: usize) -> Self {
        // lint:allow(R001): documented panicking wrapper; callers who
        // need to handle the error use try_for_config.
        Self::try_for_config(kind, cfg, reps).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Calibration::for_config`]: a broken
    /// configuration (e.g. a slot period too short for the PHI loop)
    /// returns the [`ChannelError`] of the failing training run instead
    /// of panicking. Errors are never cached.
    ///
    /// # Errors
    ///
    /// Propagates the [`ChannelError`] of the first failing training
    /// transmission.
    ///
    /// # Panics
    ///
    /// Panics if `reps` is zero or the kind/platform combination is
    /// unsupported.
    pub fn try_for_config(
        kind: ChannelKind,
        cfg: &ChannelConfig,
        reps: usize,
    ) -> Result<Self, ChannelError> {
        assert!(reps > 0, "calibration needs at least one repetition");
        let means = memoized_means(
            || fingerprint(kind, cfg, reps),
            || calibrate_uncached(kind, cfg, reps).map(|cal| cal.means.to_vec()),
        )?;
        let mut arr = [0.0f64; 4];
        for (slot, m) in arr.iter_mut().zip(&means) {
            *slot = *m;
        }
        Ok(Calibration::from_means(arr))
    }

    /// Per-symbol mean durations (TSC cycles).
    pub fn means(&self) -> &[f64; 4] {
        &self.means
    }

    /// Decodes a measured duration by the nearest calibrated mean.
    pub fn decode(&self, duration_cycles: u64) -> Symbol {
        let d = duration_cycles as f64;
        let mut best = 0usize;
        let mut best_err = f64::INFINITY;
        for (i, m) in self.means.iter().enumerate() {
            let e = (d - m).abs();
            if e < best_err {
                best_err = e;
                best = i;
            }
        }
        Symbol::new(best as u8)
    }

    /// The three decision thresholds between the four level means
    /// (midpoints of the sorted means, TSC cycles) — the per-level
    /// thresholds the training preamble learns. Nearest-mean decoding
    /// is exactly thresholding against these.
    pub fn thresholds(&self) -> [f64; 3] {
        let mut sorted = self.means;
        sorted.sort_by(f64::total_cmp);
        [
            (sorted[0] + sorted[1]) / 2.0,
            (sorted[1] + sorted[2]) / 2.0,
            (sorted[2] + sorted[3]) / 2.0,
        ]
    }

    /// Decodes one symbol from repeated measurements of the same
    /// transaction (repeat-and-vote): each duration votes for its
    /// nearest mean, the plurality wins, and ties break toward the
    /// smallest total distance. With a single duration this is exactly
    /// [`Calibration::decode`].
    ///
    /// # Panics
    ///
    /// Panics if `durations` is empty.
    pub fn decode_vote(&self, durations: &[u64]) -> Symbol {
        assert!(!durations.is_empty(), "vote needs at least one sample");
        let mut counts = [0u32; 4];
        let mut total_err = [0.0f64; 4];
        for &d in durations {
            counts[self.decode(d).value() as usize] += 1;
            for (i, m) in self.means.iter().enumerate() {
                total_err[i] += (d as f64 - m).abs();
            }
        }
        let mut best = 0usize;
        for i in 1..4 {
            if counts[i] > counts[best]
                || (counts[i] == counts[best] && total_err[i] < total_err[best])
            {
                best = i;
            }
        }
        Symbol::new(best as u8)
    }

    /// Minimum separation between adjacent level means (TSC cycles) —
    /// the paper reports > 2 000 cycles on a low-noise system (§6.3).
    pub fn min_separation_cycles(&self) -> f64 {
        let mut sorted = self.means;
        sorted.sort_by(f64::total_cmp);
        sorted
            .windows(2)
            .map(|w| w[1] - w[0])
            .fold(f64::INFINITY, f64::min)
    }
}

/// Runs the four per-level training transmissions on one re-armed
/// [`SymbolRun`] — the Soc-building invariants (instruction counts,
/// slot schedule) are derived once and reused across the four runs.
fn calibrate_uncached(
    kind: ChannelKind,
    cfg: &ChannelConfig,
    reps: usize,
) -> Result<Calibration, ChannelError> {
    let channel = IChannel::new(kind, cfg.clone());
    let mut run = SymbolRun::new(&channel);
    let mut means = [0.0f64; 4];
    for (i, mean) in means.iter_mut().enumerate() {
        let symbols = vec![Symbol::new(i as u8); reps];
        let durations = run.run(&symbols, |_| {})?;
        *mean = durations.iter().map(|&d| d as f64).sum::<f64>() / reps as f64;
    }
    Ok(Calibration::from_means(means))
}

/// The memo key of one calibration: a stable rendering of **exactly**
/// the inputs the training simulation consumes — the channel kind, the
/// repetition count, the **resolved** receiver tuning (so a
/// `Calibrated` mode that resolves to the identity tuning shares its
/// entry with an explicit `Legacy` mode — the two runs are provably
/// bit-identical), the transaction timing, the jitter seed/σ, and the
/// full SoC configuration (platform constants, governor, mitigations,
/// noise, SoC seed). Two configurations with equal fingerprints produce
/// byte-identical calibrations; anything that differs — a per-trial
/// seed, a knob override — changes the fingerprint and misses.
pub fn fingerprint(kind: ChannelKind, cfg: &ChannelConfig, reps: usize) -> String {
    let tuning = cfg.receiver.resolve(&cfg.soc.platform, kind);
    // lint:allow(D004): audited — the fingerprint is a process-local
    // memo key compared only for equality within one process; it is
    // never persisted, so Debug-format drift cannot corrupt artifacts.
    format!(
        "{kind:?}|reps={reps}|tuning={tuning:?}|slot={:?}|start={:?}|sender={:?}|recv={:?}|\
         xdelay={:?}|jitter={:?}|jseed={}|soc={:?}",
        cfg.slot_period,
        cfg.start_offset,
        cfg.sender_loop,
        cfg.receiver_loop,
        cfg.cross_core_delay,
        cfg.measurement_jitter,
        cfg.jitter_seed,
        cfg.soc,
    )
}

/// Hit/miss counters of the calibration memo. A "miss" is one executed
/// four-run training (whether or not the cache was enabled), so
/// `misses` counts the calibrations actually simulated by this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    /// Calibrations served from the cache.
    pub hits: u64,
    /// Calibrations simulated (cache misses and disabled-cache runs).
    pub misses: u64,
}

/// Shards of the memo map. Lookups hash the fingerprint to pick a
/// shard, so concurrent workers probing different configurations no
/// longer serialize on one process-wide mutex.
const N_SHARDS: usize = 16;

/// Entries one shard holds before it is wholesale cleared (a clear only
/// costs retraining, never correctness).
const SHARD_CAPACITY: usize = 8_192 / N_SHARDS;

static ENABLED: AtomicBool = AtomicBool::new(true);
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

// lint:allow(D001): the memo is only ever probed by exact key and
// wholesale cleared — nothing iterates it, so map order is
// unobservable in any output.
type Memo = std::collections::HashMap<String, Vec<f64>>;

fn shards() -> &'static [Mutex<Memo>; N_SHARDS] {
    static SHARDS: OnceLock<[Mutex<Memo>; N_SHARDS]> = OnceLock::new();
    SHARDS.get_or_init(|| std::array::from_fn(|_| Mutex::new(Memo::new())))
}

/// Locks the shard holding `key`, recovering from poisoning: the memo
/// holds only complete entries (each insert is a single call), so a
/// panic in another thread cannot leave a torn value behind. The shard
/// choice is a process-local routing decision — it never affects which
/// entries exist, only which mutex guards them.
fn shard_lock(key: &str) -> std::sync::MutexGuard<'static, Memo> {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    shards()[(h.finish() as usize) % N_SHARDS]
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The memo engine shared by the four-level [`Calibration`] and the
/// multi-level alphabet calibration: looks `key_fn()` up in the sharded
/// process-wide memo, running `train` (outside any lock) on a miss.
/// `key_fn` is only invoked while the memo is enabled, so the disabled
/// path never pays for fingerprint rendering.
///
/// # Errors
///
/// Propagates the training error; errors are never cached.
pub(crate) fn memoized_means<K, T>(key_fn: K, train: T) -> Result<Vec<f64>, ChannelError>
where
    K: FnOnce() -> String,
    T: FnOnce() -> Result<Vec<f64>, ChannelError>,
{
    ichannels_obs::counter_add("calibration.requests", 1);
    if !memo_enabled() {
        MISSES.fetch_add(1, Ordering::Relaxed);
        ichannels_obs::counter_add("calibration.memo_misses", 1);
        return train();
    }
    let key = key_fn();
    if let Some(hit) = shard_lock(&key).get(&key) {
        HITS.fetch_add(1, Ordering::Relaxed);
        ichannels_obs::counter_add("calibration.memo_hits", 1);
        return Ok(hit.clone());
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    ichannels_obs::counter_add("calibration.memo_misses", 1);
    // The training runs execute outside the lock so workers never
    // serialize on each other's simulations; two workers racing on
    // the same key compute identical means, so the double insert is
    // benign.
    let means = train()?;
    let mut map = shard_lock(&key);
    // Bound the memo: a long-lived process sweeping ever-fresh seeds
    // would otherwise grow it without limit. Dropping every entry is
    // always safe — the next lookup just retrains.
    if map.len() >= SHARD_CAPACITY {
        map.clear();
    }
    map.insert(key, means.clone());
    Ok(means)
}

/// True while the process-wide calibration memo is consulted (the
/// default).
pub fn memo_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enables or disables the calibration memo. Disabling never changes
/// results — every lookup is simply recomputed (what `campaign bench`
/// times as the cache-off arm).
pub fn set_memo_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Drops every memoized calibration and zeroes the hit/miss counters.
pub fn reset_memo() {
    for shard in shards() {
        shard
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

/// Snapshot of the memo counters.
pub fn memo_stats() -> MemoStats {
    MemoStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
    }
}

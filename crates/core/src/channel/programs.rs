//! The simulated sender/receiver programs a [`super::run::SymbolRun`]
//! spawns onto the SoC, plus the receiver's measurement-jitter source.

use std::cell::RefCell;
use std::rc::Rc;

use ichannels_soc::program::{Action, ProgCtx, Program};
use ichannels_uarch::isa::InstClass;
use ichannels_workload::loops::Recorder;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::symbols::Symbol;

/// Gaussian measurement jitter on the receiver's `rdtsc` delta.
#[derive(Debug)]
pub(crate) struct JitterSource {
    rng: SmallRng,
    sigma_cycles: f64,
}

impl JitterSource {
    pub(crate) fn new(seed: u64, sigma_cycles: f64) -> Self {
        JitterSource {
            rng: SmallRng::seed_from_u64(seed),
            sigma_cycles,
        }
    }

    fn apply(&mut self, cycles: u64) -> u64 {
        if self.sigma_cycles <= 0.0 {
            return cycles;
        }
        let u1: f64 = self.rng.gen_range(1e-12..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let jittered = cycles as f64 + g * self.sigma_cycles;
        jittered.max(0.0).round() as u64
    }
}

/// Same-hardware-thread program: alternates sender and receiver roles
/// within each transaction slot (IccThreadCovert).
pub(crate) struct ThreadChannelProg {
    pub(crate) symbols: Rc<[Symbol]>,
    pub(crate) idx: usize,
    pub(crate) stage: u8,
    pub(crate) slot0: u64,
    pub(crate) period: u64,
    pub(crate) sender_insts: [u64; 4],
    pub(crate) recv_class: InstClass,
    pub(crate) recv_insts: u64,
    pub(crate) t_start: u64,
    pub(crate) recorder: Recorder,
    pub(crate) jitter: Rc<RefCell<JitterSource>>,
}

impl std::fmt::Debug for ThreadChannelProg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ThreadChannelProg(idx={})", self.idx)
    }
}

impl Program for ThreadChannelProg {
    fn next(&mut self, ctx: &ProgCtx) -> Action {
        loop {
            if self.idx >= self.symbols.len() {
                return Action::Halt;
            }
            match self.stage {
                0 => {
                    self.stage = 1;
                    return Action::WaitUntilTsc(self.slot0 + self.idx as u64 * self.period);
                }
                1 => {
                    // Sender role: PHI loop encoding two bits.
                    self.stage = 2;
                    let s = self.symbols[self.idx];
                    return Action::Run {
                        class: s.sender_class(),
                        instructions: self.sender_insts[s.value() as usize],
                    };
                }
                2 => {
                    // Receiver role: timed 512b-Heavy loop.
                    self.stage = 3;
                    self.t_start = ctx.tsc;
                    return Action::Run {
                        class: self.recv_class,
                        instructions: self.recv_insts,
                    };
                }
                _ => {
                    let d = ctx.tsc.saturating_sub(self.t_start);
                    self.recorder.push(self.jitter.borrow_mut().apply(d));
                    self.idx += 1;
                    self.stage = 0;
                }
            }
        }
    }

    fn name(&self) -> &str {
        "IccThreadCovert"
    }
}

/// Standalone sender (IccSMTcovert / IccCoresCovert).
pub(crate) struct SenderProg {
    pub(crate) symbols: Rc<[Symbol]>,
    pub(crate) idx: usize,
    pub(crate) running: bool,
    pub(crate) slot0: u64,
    pub(crate) period: u64,
    pub(crate) sender_insts: [u64; 4],
}

impl std::fmt::Debug for SenderProg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SenderProg(idx={})", self.idx)
    }
}

impl Program for SenderProg {
    fn next(&mut self, _ctx: &ProgCtx) -> Action {
        if self.idx >= self.symbols.len() {
            return Action::Halt;
        }
        if !self.running {
            self.running = true;
            Action::WaitUntilTsc(self.slot0 + self.idx as u64 * self.period)
        } else {
            self.running = false;
            let s = self.symbols[self.idx];
            self.idx += 1;
            Action::Run {
                class: s.sender_class(),
                instructions: self.sender_insts[s.value() as usize],
            }
        }
    }

    fn name(&self) -> &str {
        "IChannels sender"
    }
}

/// Standalone receiver (IccSMTcovert / IccCoresCovert).
pub(crate) struct ReceiverProg {
    pub(crate) n: usize,
    pub(crate) idx: usize,
    pub(crate) stage: u8,
    pub(crate) slot0: u64,
    pub(crate) period: u64,
    pub(crate) class: InstClass,
    pub(crate) insts: u64,
    pub(crate) t_start: u64,
    pub(crate) recorder: Recorder,
    pub(crate) jitter: Rc<RefCell<JitterSource>>,
}

impl std::fmt::Debug for ReceiverProg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ReceiverProg(idx={})", self.idx)
    }
}

impl Program for ReceiverProg {
    fn next(&mut self, ctx: &ProgCtx) -> Action {
        loop {
            if self.idx >= self.n {
                return Action::Halt;
            }
            match self.stage {
                0 => {
                    self.stage = 1;
                    return Action::WaitUntilTsc(self.slot0 + self.idx as u64 * self.period);
                }
                1 => {
                    self.stage = 2;
                    self.t_start = ctx.tsc;
                    return Action::Run {
                        class: self.class,
                        instructions: self.insts,
                    };
                }
                _ => {
                    let d = ctx.tsc.saturating_sub(self.t_start);
                    self.recorder.push(self.jitter.borrow_mut().apply(d));
                    self.idx += 1;
                    self.stage = 0;
                }
            }
        }
    }

    fn name(&self) -> &str {
        "IChannels receiver"
    }
}

//! The paper's §7 mitigations and their evaluation (Table 1).
//!
//! * **Per-core VR** — LDO rails per core: removes the cross-core SVID
//!   serialization entirely and shrinks same-thread/SMT throttling
//!   periods below the measurement noise floor (partial).
//! * **Improved core throttling** — gate only the PHI uops of the
//!   offending SMT thread: kills IccSMTcovert.
//! * **Secure mode** — pin the worst-case guardband: no voltage
//!   transitions, no throttling, all three channels die; costs static
//!   power (≈4 %/11 % for AVX2/AVX-512 parts).

use ichannels_soc::config::PlatformSpec;
use ichannels_uarch::isa::InstClass;

use crate::ber::{evaluate, ChannelEval};
use crate::channel::{ChannelConfig, ChannelKind, IChannel};

/// One of the three proposed mitigations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mitigation {
    /// Per-core (LDO) voltage regulators.
    PerCoreVr,
    /// Per-thread, PHI-only IDQ gating.
    ImprovedThrottling,
    /// Pinned worst-case voltage guardband.
    SecureMode,
}

impl Mitigation {
    /// All mitigations, in Table 1 order.
    pub const ALL: [Mitigation; 3] = [
        Mitigation::PerCoreVr,
        Mitigation::ImprovedThrottling,
        Mitigation::SecureMode,
    ];

    /// Table 1 label.
    pub const fn name(self) -> &'static str {
        match self {
            Mitigation::PerCoreVr => "Per-core VR",
            Mitigation::ImprovedThrottling => "Improved Throttling",
            Mitigation::SecureMode => "Secure-Mode",
        }
    }

    /// Table 1 overhead description.
    pub const fn overhead(self) -> &'static str {
        match self {
            Mitigation::PerCoreVr => "11%-13% more area",
            Mitigation::ImprovedThrottling => "Some design effort",
            Mitigation::SecureMode => "4%-11% additional power",
        }
    }

    /// Applies the mitigation to a channel configuration.
    pub fn apply(self, mut cfg: ChannelConfig) -> ChannelConfig {
        cfg.soc = match self {
            Mitigation::PerCoreVr => cfg.soc.with_per_core_vr(),
            Mitigation::ImprovedThrottling => cfg.soc.with_improved_throttling(),
            Mitigation::SecureMode => cfg.soc.with_secure_mode(),
        };
        cfg
    }
}

impl std::fmt::Display for Mitigation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// How well a mitigation neutralizes a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Effectiveness {
    /// Channel capacity reduced to (near) zero.
    Full,
    /// Channel weakened substantially but not eliminated.
    Partial,
    /// Channel essentially unaffected.
    None,
}

impl std::fmt::Display for Effectiveness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Effectiveness::Full => write!(f, "yes"),
            Effectiveness::Partial => write!(f, "partially"),
            Effectiveness::None => write!(f, "no"),
        }
    }
}

/// Classifies a mitigated channel evaluation against the unmitigated
/// capacity.
pub fn classify(mitigated: &ChannelEval, baseline: &ChannelEval) -> Effectiveness {
    classify_capacity(mitigated.capacity_bps, baseline.capacity_bps)
}

/// Classifies from bare capacities (bits/s) — the entry point for
/// callers that aggregate trials outside [`ChannelEval`] (for example
/// the `ichannels-lab` campaign engine).
pub fn classify_capacity(mitigated_bps: f64, baseline_bps: f64) -> Effectiveness {
    let residual = if baseline_bps > 0.0 {
        mitigated_bps / baseline_bps
    } else {
        0.0
    };
    if residual < 0.08 {
        Effectiveness::Full
    } else if residual < 0.75 {
        Effectiveness::Partial
    } else {
        Effectiveness::None
    }
}

/// Evaluation of one (mitigation, channel) cell of Table 1.
#[derive(Debug, Clone)]
pub struct MitigationOutcome {
    /// The mitigation applied.
    pub mitigation: Mitigation,
    /// The channel evaluated.
    pub channel: ChannelKind,
    /// Unmitigated reference evaluation.
    pub baseline: ChannelEval,
    /// Evaluation with the mitigation applied.
    pub mitigated: ChannelEval,
    /// Verdict.
    pub effectiveness: Effectiveness,
}

/// Evaluates one Table 1 cell with `n_symbols` random symbols.
/// The mitigated channel is *recalibrated* first — the attacker adapts.
pub fn evaluate_mitigation(
    mitigation: Mitigation,
    kind: ChannelKind,
    base_cfg: &ChannelConfig,
    n_symbols: usize,
    calib_reps: usize,
    seed: u64,
) -> MitigationOutcome {
    let base_channel = IChannel::new(kind, base_cfg.clone());
    let base_cal = base_channel.calibrate(calib_reps);
    let baseline = evaluate(&base_channel, &base_cal, n_symbols, seed);

    let mit_cfg = mitigation.apply(base_cfg.clone());
    let mit_channel = IChannel::new(kind, mit_cfg);
    let mit_cal = mit_channel.calibrate(calib_reps);
    let mitigated = evaluate(&mit_channel, &mit_cal, n_symbols, seed);

    let effectiveness = classify(&mitigated, &baseline);
    MitigationOutcome {
        mitigation,
        channel: kind,
        baseline,
        mitigated,
        effectiveness,
    }
}

/// Secure-mode power overhead for a system whose widest PHI class is
/// `widest`: the static power increase of pinning the worst-case
/// guardband, `((V + ΔV)/V)² − 1` (paper: up to 4 % for AVX2 systems,
/// 11 % for AVX-512 systems). Evaluated at the nominal (non-turbo)
/// operating point, where the system spends its time.
pub fn secure_mode_power_overhead(platform: &PlatformSpec, widest: InstClass) -> f64 {
    // Nominal frequency: the median P-state (turbo states are transient).
    let freqs = platform.pstates.freqs();
    let freq = freqs[freqs.len() / 2];
    let base_mv = platform.vf_curve.voltage_mv(freq);
    let gb = platform
        .guardband()
        .core_guardband_mv(widest, base_mv, freq);
    ((base_mv + gb) / base_mv).powi(2) - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ChannelConfig {
        ChannelConfig::default_cannon_lake()
    }

    #[test]
    fn secure_mode_kills_every_channel() {
        for kind in [ChannelKind::Thread, ChannelKind::Smt, ChannelKind::Cores] {
            let o = evaluate_mitigation(Mitigation::SecureMode, kind, &cfg(), 60, 2, 5);
            assert_eq!(
                o.effectiveness,
                Effectiveness::Full,
                "{kind}: residual capacity {}",
                o.mitigated.capacity_bps
            );
        }
    }

    #[test]
    fn improved_throttling_kills_smt_channel_only() {
        let smt = evaluate_mitigation(
            Mitigation::ImprovedThrottling,
            ChannelKind::Smt,
            &cfg(),
            60,
            2,
            6,
        );
        assert_eq!(smt.effectiveness, Effectiveness::Full, "SMT should die");
        let thread = evaluate_mitigation(
            Mitigation::ImprovedThrottling,
            ChannelKind::Thread,
            &cfg(),
            60,
            2,
            6,
        );
        assert_eq!(
            thread.effectiveness,
            Effectiveness::None,
            "same-thread channel throttles itself and survives"
        );
    }

    #[test]
    fn per_core_vr_kills_cross_core_channel() {
        let cores =
            evaluate_mitigation(Mitigation::PerCoreVr, ChannelKind::Cores, &cfg(), 60, 2, 7);
        assert_eq!(cores.effectiveness, Effectiveness::Full);
    }

    #[test]
    fn per_core_vr_weakens_thread_channel() {
        let thread =
            evaluate_mitigation(Mitigation::PerCoreVr, ChannelKind::Thread, &cfg(), 60, 3, 8);
        assert_ne!(
            thread.effectiveness,
            Effectiveness::None,
            "LDO TPs are sub-µs: channel must be at least weakened (residual {})",
            thread.mitigated.capacity_bps / thread.baseline.capacity_bps
        );
    }

    #[test]
    fn secure_mode_overhead_matches_paper_band() {
        let p = PlatformSpec::cannon_lake();
        let avx2 = secure_mode_power_overhead(&p, InstClass::Heavy256);
        let avx512 = secure_mode_power_overhead(&p, InstClass::Heavy512);
        // Paper: up to 4%/11% for AVX2/AVX512 systems.
        assert!((0.015..0.08).contains(&avx2), "avx2 overhead = {avx2}");
        assert!((0.05..0.16).contains(&avx512), "avx512 overhead = {avx512}");
        assert!(avx512 > avx2);
    }
}

//! Error detection and correction for noisy-channel operation.
//!
//! §6.3 lists "error detection and correction codes" among the noise
//! mitigations ("used by several recent covert channel works"). Three
//! schemes are provided: triple repetition (majority vote), Hamming(7,4)
//! (single-bit correction per 4 data bits), and CRC-8 (detection only,
//! for retransmission protocols).

/// Triple-repetition code: each bit sent three times, decoded by
/// majority vote. Corrects any single error per triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Repetition3;

impl Repetition3 {
    /// Encodes bits: each input bit becomes three channel bits.
    pub fn encode(&self, bits: &[bool]) -> Vec<bool> {
        let mut out = Vec::with_capacity(bits.len() * 3);
        for &b in bits {
            out.extend_from_slice(&[b, b, b]);
        }
        out
    }

    /// Decodes by majority vote.
    ///
    /// # Panics
    ///
    /// Panics if the input length is not a multiple of 3.
    pub fn decode(&self, bits: &[bool]) -> Vec<bool> {
        assert!(
            bits.len().is_multiple_of(3),
            "repetition code length must be 3n"
        );
        bits.chunks(3)
            .map(|c| (u8::from(c[0]) + u8::from(c[1]) + u8::from(c[2])) >= 2)
            .collect()
    }

    /// Code rate (data bits per channel bit).
    pub fn rate(&self) -> f64 {
        1.0 / 3.0
    }
}

/// Hamming(7,4): 4 data bits → 7 channel bits; corrects one error per
/// block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Hamming74;

impl Hamming74 {
    /// Encodes 4 data bits into a 7-bit codeword
    /// `[p1, p2, d1, p3, d2, d3, d4]` (standard positions 1‥7).
    ///
    /// # Panics
    ///
    /// Panics if the input length is not a multiple of 4.
    pub fn encode(&self, bits: &[bool]) -> Vec<bool> {
        assert!(
            bits.len().is_multiple_of(4),
            "Hamming(7,4) input must be 4n bits"
        );
        let mut out = Vec::with_capacity(bits.len() / 4 * 7);
        for d in bits.chunks(4) {
            let (d1, d2, d3, d4) = (d[0], d[1], d[2], d[3]);
            let p1 = d1 ^ d2 ^ d4;
            let p2 = d1 ^ d3 ^ d4;
            let p3 = d2 ^ d3 ^ d4;
            out.extend_from_slice(&[p1, p2, d1, p3, d2, d3, d4]);
        }
        out
    }

    /// Decodes, correcting up to one error per 7-bit block.
    ///
    /// # Panics
    ///
    /// Panics if the input length is not a multiple of 7.
    pub fn decode(&self, bits: &[bool]) -> Vec<bool> {
        assert!(
            bits.len().is_multiple_of(7),
            "Hamming(7,4) input must be 7n bits"
        );
        let mut out = Vec::with_capacity(bits.len() / 7 * 4);
        for c in bits.chunks(7) {
            let mut w = [c[0], c[1], c[2], c[3], c[4], c[5], c[6]];
            let s1 = w[0] ^ w[2] ^ w[4] ^ w[6];
            let s2 = w[1] ^ w[2] ^ w[5] ^ w[6];
            let s3 = w[3] ^ w[4] ^ w[5] ^ w[6];
            let syndrome = (u8::from(s3) << 2) | (u8::from(s2) << 1) | u8::from(s1);
            if syndrome != 0 {
                w[(syndrome - 1) as usize] ^= true;
            }
            out.extend_from_slice(&[w[2], w[4], w[5], w[6]]);
        }
        out
    }

    /// Code rate.
    pub fn rate(&self) -> f64 {
        4.0 / 7.0
    }
}

/// CRC-8 (polynomial 0x07, init 0) over bytes — error *detection* for
/// retransmission-based protocols.
pub fn crc8(data: &[u8]) -> u8 {
    let mut crc: u8 = 0;
    for &b in data {
        crc ^= b;
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ 0x07
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// Frames a payload with its CRC-8; [`check_frame`] validates it.
pub fn frame_with_crc(payload: &[u8]) -> Vec<u8> {
    let mut out = payload.to_vec();
    out.push(crc8(payload));
    out
}

/// Checks a CRC-framed message, returning the payload if intact.
pub fn check_frame(frame: &[u8]) -> Option<&[u8]> {
    let (crc, payload) = frame.split_last()?;
    if crc8(payload) == *crc {
        Some(payload)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn repetition_corrects_single_flip() {
        let data = [true, false, true, true];
        let mut coded = Repetition3.encode(&data);
        coded[4] ^= true; // one flip inside the second triple
        assert_eq!(Repetition3.decode(&coded), data);
    }

    #[test]
    fn hamming_corrects_any_single_flip() {
        let data = [true, false, false, true];
        let clean = Hamming74.encode(&data);
        for i in 0..7 {
            let mut coded = clean.clone();
            coded[i] ^= true;
            assert_eq!(Hamming74.decode(&coded), data, "flip at {i}");
        }
    }

    #[test]
    fn crc_detects_corruption() {
        let frame = frame_with_crc(b"secret key");
        assert_eq!(check_frame(&frame), Some(&b"secret key"[..]));
        let mut bad = frame.clone();
        bad[3] ^= 0x10;
        assert_eq!(check_frame(&bad), None);
    }

    #[test]
    fn crc_known_vector() {
        // CRC-8/SMBUS of "123456789" is 0xF4.
        assert_eq!(crc8(b"123456789"), 0xF4);
    }

    #[test]
    fn rates() {
        assert!((Repetition3.rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((Hamming74.rate() - 4.0 / 7.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn repetition_round_trip(bits in proptest::collection::vec(any::<bool>(), 0..64)) {
            let coded = Repetition3.encode(&bits);
            prop_assert_eq!(Repetition3.decode(&coded), bits);
        }

        #[test]
        fn hamming_round_trip(bits in proptest::collection::vec(any::<bool>(), 0..64)) {
            prop_assume!(bits.len() % 4 == 0);
            let coded = Hamming74.encode(&bits);
            prop_assert_eq!(Hamming74.decode(&coded), bits);
        }

        #[test]
        fn crc_framing_round_trip(payload in proptest::collection::vec(any::<u8>(), 0..64)) {
            let frame = frame_with_crc(&payload);
            prop_assert_eq!(check_frame(&frame), Some(&payload[..]));
        }
    }
}

//! Symbol coding: two secret bits per communication transaction.
//!
//! Figure 3 of the paper: the sender picks one of four computational
//! intensity levels based on `send_bits[i+1:i]` —
//! `00 → 128b_Heavy (L4)`, `01 → 256b_Light (L3)`,
//! `10 → 256b_Heavy (L2)`, `11 → 512b_Heavy (L1)`.

use ichannels_uarch::isa::InstClass;

/// A two-bit channel symbol (0‥=3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u8);

impl Symbol {
    /// All four symbols in order.
    pub const ALL: [Symbol; 4] = [Symbol(0), Symbol(1), Symbol(2), Symbol(3)];

    /// Creates a symbol from its two-bit value.
    ///
    /// # Panics
    ///
    /// Panics if `v > 3`.
    pub fn new(v: u8) -> Self {
        assert!(v <= 3, "symbol value {v} out of range");
        Symbol(v)
    }

    /// The two-bit value.
    pub const fn value(self) -> u8 {
        self.0
    }

    /// The bits `(msb, lsb)` = `send_bits[i+1:i]`.
    pub const fn bits(self) -> (bool, bool) {
        (self.0 & 0b10 != 0, self.0 & 0b01 != 0)
    }

    /// Builds a symbol from two bits `(msb, lsb)`.
    pub fn from_bits(msb: bool, lsb: bool) -> Self {
        Symbol((u8::from(msb) << 1) | u8::from(lsb))
    }

    /// The PHI class the sender executes for this symbol (Figure 3).
    pub const fn sender_class(self) -> InstClass {
        InstClass::SENDER_LEVELS[self.0 as usize]
    }

    /// Hamming distance between the two symbols' bit patterns (0‥=2).
    pub const fn bit_errors_vs(self, other: Symbol) -> u32 {
        (self.0 ^ other.0).count_ones()
    }
}

impl std::fmt::Display for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}", self.0 >> 1, self.0 & 1)
    }
}

/// Packs a bit slice (big-endian within each pair: `[msb, lsb]`) into
/// symbols.
///
/// # Panics
///
/// Panics if the bit count is odd.
pub fn bits_to_symbols(bits: &[bool]) -> Vec<Symbol> {
    assert!(bits.len().is_multiple_of(2), "bit count must be even");
    bits.chunks(2)
        .map(|p| Symbol::from_bits(p[0], p[1]))
        .collect()
}

/// Unpacks symbols back into bits.
pub fn symbols_to_bits(symbols: &[Symbol]) -> Vec<bool> {
    let mut out = Vec::with_capacity(symbols.len() * 2);
    for s in symbols {
        let (m, l) = s.bits();
        out.push(m);
        out.push(l);
    }
    out
}

/// Unpacks a byte slice into bits, MSB first.
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<bool> {
    let mut out = Vec::with_capacity(bytes.len() * 8);
    for b in bytes {
        for k in (0..8).rev() {
            out.push(b & (1 << k) != 0);
        }
    }
    out
}

/// Packs bits (MSB first) into bytes; the tail is zero-padded.
pub fn bits_to_bytes(bits: &[bool]) -> Vec<u8> {
    bits.chunks(8)
        .map(|chunk| {
            let mut b = 0u8;
            for (i, &bit) in chunk.iter().enumerate() {
                if bit {
                    b |= 1 << (7 - i);
                }
            }
            b
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn figure3_mapping() {
        assert_eq!(Symbol::new(0).sender_class(), InstClass::Heavy128); // L4
        assert_eq!(Symbol::new(1).sender_class(), InstClass::Light256); // L3
        assert_eq!(Symbol::new(2).sender_class(), InstClass::Heavy256); // L2
        assert_eq!(Symbol::new(3).sender_class(), InstClass::Heavy512); // L1
    }

    #[test]
    fn bit_round_trip() {
        for s in Symbol::ALL {
            let (m, l) = s.bits();
            assert_eq!(Symbol::from_bits(m, l), s);
        }
    }

    #[test]
    fn display() {
        assert_eq!(Symbol::new(2).to_string(), "10");
    }

    #[test]
    fn hamming() {
        assert_eq!(Symbol::new(0).bit_errors_vs(Symbol::new(3)), 2);
        assert_eq!(Symbol::new(1).bit_errors_vs(Symbol::new(3)), 1);
        assert_eq!(Symbol::new(2).bit_errors_vs(Symbol::new(2)), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_invalid() {
        let _ = Symbol::new(4);
    }

    proptest! {
        #[test]
        fn bits_symbols_round_trip(bits in proptest::collection::vec(any::<bool>(), 0..64)) {
            prop_assume!(bits.len() % 2 == 0);
            let symbols = bits_to_symbols(&bits);
            prop_assert_eq!(symbols_to_bits(&symbols), bits);
        }

        #[test]
        fn bytes_bits_round_trip(bytes in proptest::collection::vec(any::<u8>(), 0..32)) {
            let bits = bytes_to_bits(&bytes);
            prop_assert_eq!(bits_to_bytes(&bits), bytes);
        }
    }
}

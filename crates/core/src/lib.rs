//! # `ichannels` — the IChannels covert channels (ISCA 2021)
//!
//! A full reproduction of *IChannels: Exploiting Current Management
//! Mechanisms to Create Covert Channels in Modern Processors*
//! (Haj-Yahya et al., ISCA 2021) on a simulated Intel-client SoC
//! (`ichannels-soc`).
//!
//! The paper's three observations — multi-level throttling periods
//! within a thread, SMT co-throttling through the shared IDQ gate, and
//! cross-core serialization of voltage transitions — become three covert
//! channels:
//!
//! * [`channel::ChannelKind::Thread`] — **IccThreadCovert**, two
//!   execution contexts on the same hardware thread;
//! * [`channel::ChannelKind::Smt`] — **IccSMTcovert**, across SMT
//!   siblings;
//! * [`channel::ChannelKind::Cores`] — **IccCoresCovert**, across
//!   physical cores.
//!
//! Each transmits **2 bits per transaction** (four PHI intensity levels,
//! Figure 3) at ~2.9 kb/s. Supporting modules:
//!
//! * [`symbols`] — the 2-bit symbol ↔ PHI-level coding;
//! * [`ber`] — BER / capacity evaluation harness (§6.2, §6.3);
//! * [`baselines`] — NetSpectre, TurboCC, DFScovert, POWERT comparators
//!   (Figure 12, Table 2);
//! * [`mitigations`] — the §7 mitigations and the Table 1 evaluation;
//! * [`ecc`] — repetition/Hamming/CRC coding for noisy operation (§6.3);
//! * [`attack`] — the §6.5 instruction-type inference side channel;
//! * [`sync`] — §4.3.3 wall-clock synchronization with preamble-based
//!   offset recovery;
//! * [`extended`] — beyond the paper: 6/7-level modulation exploiting
//!   all distinguishable throttling levels.
//!
//! # Quickstart
//!
//! ```
//! use ichannels::channel::IChannel;
//! use ichannels::symbols::{bits_to_symbols, symbols_to_bits};
//!
//! // Exfiltrate one secret byte across SMT threads.
//! let channel = IChannel::icc_smt_covert();
//! let cal = channel.calibrate(3);
//! let secret = [true, false, true, true, false, false, true, false];
//! let tx = channel.transmit_bits(&secret, &cal);
//! assert_eq!(symbols_to_bits(&tx.received), secret);
//! assert!(tx.throughput_bps() > 2_500.0); // ~2.9 kb/s
//! # let _ = bits_to_symbols(&secret);
//! ```

#![warn(missing_docs)]

pub mod attack;
pub mod baselines;
pub mod ber;
pub mod channel;
pub mod ecc;
pub mod extended;
pub mod mitigations;
pub mod protocol;
pub mod symbols;
pub mod sync;

pub use attack::{InstructionSpy, SpyPlacement};
pub use ber::{evaluate, ChannelEval};
pub use channel::{Calibration, ChannelConfig, ChannelKind, IChannel, Transmission};
pub use extended::{LevelAlphabet, MultiLevelChannel};
pub use mitigations::{Effectiveness, Mitigation};
pub use protocol::{FramedLink, LinkStats};
pub use symbols::Symbol;

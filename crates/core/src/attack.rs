//! Side-channel variant of IChannels (paper §6.5).
//!
//! "Attacker code can infer the instruction types (e.g., 64bit scalar,
//! 128bit vector, 256bit vector, 512bit vector instructions) of victim
//! code that is running 1) on another SMT thread by utilizing the
//! Multi-Throttling-SMT side-effect, or 2) on another core by utilizing
//! the Multi-Throttling-Cores side-effect."
//!
//! The victim is *not* cooperating: it simply executes whatever its
//! workload demands. The spy times its own loops and classifies the
//! victim's instruction class from the co-throttling it experiences.

use ichannels_meter::stats::ConfusionMatrix;
use ichannels_soc::program::Script;
use ichannels_soc::sim::Soc;
use ichannels_uarch::isa::InstClass;
use ichannels_uarch::time::SimTime;
use ichannels_workload::loops::{instructions_for_duration, MeasuredLoop, Recorder};

use crate::channel::{ChannelConfig, ChannelKind};

/// Where the spy observes the victim from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpyPlacement {
    /// Spy on the victim's SMT sibling (Multi-Throttling-SMT).
    SmtSibling,
    /// Spy on another physical core (Multi-Throttling-Cores).
    OtherCore,
}

/// The instruction-type inference side channel.
#[derive(Debug, Clone)]
pub struct InstructionSpy {
    cfg: ChannelConfig,
    placement: SpyPlacement,
}

impl InstructionSpy {
    /// Creates a spy with the given placement on the channel's default
    /// platform configuration.
    pub fn new(placement: SpyPlacement, cfg: ChannelConfig) -> Self {
        if placement == SpyPlacement::SmtSibling {
            assert!(cfg.soc.platform.smt, "SMT sibling spy requires SMT");
        }
        InstructionSpy { cfg, placement }
    }

    /// Default Cannon Lake spy.
    pub fn default_cannon_lake(placement: SpyPlacement) -> Self {
        InstructionSpy::new(placement, ChannelConfig::default_cannon_lake())
    }

    /// The spy's probe class: a scalar loop on the sibling (throttled by
    /// the shared IDQ gate) or a PHI probe across cores (queued behind
    /// the victim's transition).
    fn probe_class(&self) -> InstClass {
        match self.placement {
            SpyPlacement::SmtSibling => ChannelKind::Smt.receiver_class(),
            SpyPlacement::OtherCore => ChannelKind::Cores.receiver_class(),
        }
    }

    /// Runs one observation: the victim executes a burst of
    /// `victim_class` while the spy times its probe loop. Returns the
    /// probe duration in TSC cycles.
    pub fn observe(&self, victim_class: InstClass) -> u64 {
        let cfg = &self.cfg;
        let mut soc = Soc::new(cfg.soc.clone());
        let freq = cfg.freq();
        let victim_insts = instructions_for_duration(victim_class, freq, cfg.sender_loop);
        let probe_insts = instructions_for_duration(self.probe_class(), freq, cfg.receiver_loop);
        // Victim starts its burst at t=0 (simulation start).
        soc.spawn(0, 0, Box::new(Script::run_loop(victim_class, victim_insts)));
        // Spy probes right after the victim begins.
        let rec = Recorder::new();
        let (core, smt) = match self.placement {
            SpyPlacement::SmtSibling => (0, 1),
            SpyPlacement::OtherCore => (1, 0),
        };
        soc.spawn(
            core,
            smt,
            Box::new(MeasuredLoop::once(
                self.probe_class(),
                probe_insts,
                rec.clone(),
            )),
        );
        soc.run_until_idle(SimTime::from_ms(2.0));
        rec.values()[0]
    }

    /// Calibrates per-class probe durations (the attacker profiles the
    /// machine offline).
    pub fn profile(&self, classes: &[InstClass]) -> Vec<(InstClass, f64)> {
        classes
            .iter()
            .map(|&c| (c, self.observe(c) as f64))
            .collect()
    }

    /// Classifies one observation against a profile (nearest mean).
    pub fn classify(&self, duration: u64, profile: &[(InstClass, f64)]) -> InstClass {
        let d = duration as f64;
        profile
            .iter()
            .min_by(|a, b| (a.1 - d).abs().total_cmp(&(b.1 - d).abs()))
            // lint:allow(R001): profile() always returns one entry per
            // requested class, and classify is only called with it.
            .expect("non-empty profile")
            .0
    }

    /// Full accuracy experiment: profiles `classes`, then runs `trials`
    /// observations per class and returns the confusion matrix (row =
    /// victim class index, column = inferred).
    pub fn accuracy_experiment(&self, classes: &[InstClass], trials: usize) -> ConfusionMatrix {
        let profile = self.profile(classes);
        let mut m = ConfusionMatrix::new(classes.len());
        for (i, &victim) in classes.iter().enumerate() {
            for _ in 0..trials {
                let d = self.observe(victim);
                let inferred = self.classify(d, &profile);
                let j = classes
                    .iter()
                    .position(|&c| c == inferred)
                    // lint:allow(R001): classify returns an element of
                    // `profile`, which was built from `classes`.
                    .expect("class in set");
                m.record(i, j);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The four widths the paper names in §6.5.
    fn width_classes() -> Vec<InstClass> {
        vec![
            InstClass::Scalar64,
            InstClass::Heavy128,
            InstClass::Heavy256,
            InstClass::Heavy512,
        ]
    }

    #[test]
    fn smt_spy_distinguishes_widths() {
        let spy = InstructionSpy::default_cannon_lake(SpyPlacement::SmtSibling);
        let m = spy.accuracy_experiment(&width_classes(), 2);
        assert_eq!(m.symbol_error_rate(), 0.0, "SMT spy misclassified: {m:?}");
    }

    #[test]
    fn cross_core_spy_distinguishes_phis() {
        let spy = InstructionSpy::default_cannon_lake(SpyPlacement::OtherCore);
        // Scalar victims produce no cross-core signal; PHI classes do.
        let classes = vec![
            InstClass::Heavy128,
            InstClass::Heavy256,
            InstClass::Heavy512,
        ];
        let m = spy.accuracy_experiment(&classes, 2);
        assert_eq!(m.symbol_error_rate(), 0.0, "cross-core spy: {m:?}");
    }

    #[test]
    fn observation_is_monotone_in_victim_intensity() {
        let spy = InstructionSpy::default_cannon_lake(SpyPlacement::SmtSibling);
        let mut last = 0;
        for c in width_classes() {
            let d = spy.observe(c);
            assert!(d >= last, "class {c}: {d} < {last}");
            last = d;
        }
    }
}

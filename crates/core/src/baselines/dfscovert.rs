//! The DFScovert baseline (Alagappan et al., Figure 12(b)).
//!
//! DFScovert "manipulates the power governors that control the CPU core
//! frequency": a trojan modulates the *governor-requested* frequency and
//! a spy process senses it through timed loops. The channel's time base
//! is the governor sampling period plus the P-state transition latency —
//! tens of milliseconds per bit, ~20 b/s.
//!
//! This baseline is modelled directly over the governor/P-state state
//! machines (the original attack writes sysfs files, which has no
//! counterpart inside a single simulated process tree); the achievable
//! bit rate is set by the same mechanism latencies the full simulator
//! uses.

use ichannels_pmu::governor::Governor;
use ichannels_pmu::pstate::{PStateEngine, PStateTable};
use ichannels_soc::config::PlatformSpec;
use ichannels_uarch::time::{Freq, SimTime};

/// DFScovert configuration.
#[derive(Debug, Clone)]
pub struct DfsCovertConfig {
    /// Platform whose P-state table is used.
    pub platform: PlatformSpec,
    /// Governor sampling period (Linux ondemand default: 10 ms).
    pub sampling_period: SimTime,
    /// Bit period; the default 50 ms yields the paper's 20 b/s.
    pub bit_period: SimTime,
}

impl Default for DfsCovertConfig {
    fn default() -> Self {
        DfsCovertConfig {
            platform: PlatformSpec::cannon_lake(),
            sampling_period: SimTime::from_ms(10.0),
            bit_period: SimTime::from_ms(50.0),
        }
    }
}

/// The DFScovert governor-frequency covert channel (mechanism model).
#[derive(Debug, Clone, Default)]
pub struct DfsCovertChannel {
    cfg: DfsCovertConfig,
}

impl DfsCovertChannel {
    /// Creates the channel.
    pub fn new(cfg: DfsCovertConfig) -> Self {
        DfsCovertChannel { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &DfsCovertConfig {
        &self.cfg
    }

    /// Transmits bits through governor modulation; returns the decoded
    /// bits and the throughput.
    pub fn transmit(&self, bits: &[bool]) -> (Vec<bool>, f64) {
        let table: &PStateTable = &self.cfg.platform.pstates;
        let mut engine = PStateEngine::new(table.min());
        let mut now = SimTime::ZERO;
        let mut decoded = Vec::with_capacity(bits.len());
        let probe_offset = self.cfg.bit_period.scale(0.9);
        let threshold = Freq::from_hz((table.min().as_hz() + table.max().as_hz()) / 2);
        for &bit in bits {
            let bit_start = now;
            // The trojan sets the governor for this bit window; the
            // governor applies it at its next sampling tick.
            let governor = if bit {
                Governor::Performance
            } else {
                Governor::Powersave
            };
            let mut tick = bit_start + self.cfg.sampling_period;
            while tick < bit_start + self.cfg.bit_period {
                let requested = governor.requested_freq(table, if bit { 1.0 } else { 0.0 });
                engine.request(tick, requested, table);
                tick += self.cfg.sampling_period;
            }
            // The spy probes the frequency late in the window.
            let probe_t = bit_start + probe_offset;
            decoded.push(engine.freq_at(probe_t) >= threshold);
            now = bit_start + self.cfg.bit_period;
        }
        let bps = bits.len() as f64 / now.as_secs();
        (decoded, bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let ch = DfsCovertChannel::default();
        let bits = vec![true, false, true, true, false, false, true];
        let (decoded, _) = ch.transmit(&bits);
        assert_eq!(decoded, bits);
    }

    #[test]
    fn throughput_is_about_20_bps() {
        let ch = DfsCovertChannel::default();
        let (_, bps) = ch.transmit(&[true, false, true, false]);
        assert!((18.0..22.0).contains(&bps), "bps = {bps}");
    }

    #[test]
    fn faster_bit_period_breaks_the_channel() {
        // Below the governor sampling period, bits are lost — the
        // mechanism cannot keep up (why DFScovert cannot approach
        // IChannels rates).
        let cfg = DfsCovertConfig {
            bit_period: SimTime::from_ms(5.0),
            ..Default::default()
        };
        let ch = DfsCovertChannel::new(cfg);
        let bits = vec![true, false, true, false, true, false];
        let (decoded, _) = ch.transmit(&bits);
        assert_ne!(decoded, bits);
    }
}

//! The POWERT baseline (Khatamifard et al., Figure 12(b)).
//!
//! POWERT exploits **power-budget management**: sustained high power on
//! one core trips the package power-limit controller, which lowers the
//! shared frequency; a co-located spy senses the change. The controller
//! integrates power over a running-average window (ms scale), so the
//! channel is faster than thermal/governor channels but still ~24×
//! slower than IChannels (~122 b/s vs ~2.9 kb/s).
//!
//! Modelled over a running-average power-limit controller plus the
//! P-state engine (same latencies as the full simulator).

use ichannels_pmu::pstate::{PStateEngine, PStateTable};
use ichannels_soc::config::PlatformSpec;
use ichannels_uarch::time::{Freq, SimTime};

/// POWERT configuration.
#[derive(Debug, Clone)]
pub struct PowerTConfig {
    /// Platform whose P-state table is used.
    pub platform: PlatformSpec,
    /// Power-limit controller averaging window (PL1-style, ms scale).
    pub avg_window: SimTime,
    /// Package power budget (W).
    pub budget_w: f64,
    /// Sender high-phase power (W).
    pub high_power_w: f64,
    /// Sender low-phase power (W).
    pub low_power_w: f64,
    /// Bit period; the default 8.2 ms yields the paper's ~122 b/s.
    pub bit_period: SimTime,
    /// Controller evaluation step.
    pub step: SimTime,
}

impl Default for PowerTConfig {
    fn default() -> Self {
        PowerTConfig {
            platform: PlatformSpec::cannon_lake(),
            avg_window: SimTime::from_ms(2.0),
            budget_w: 15.0,
            high_power_w: 28.0,
            low_power_w: 4.0,
            bit_period: SimTime::from_us(8_200.0),
            step: SimTime::from_us(100.0),
        }
    }
}

/// The POWERT power-budget covert channel (mechanism model).
#[derive(Debug, Clone, Default)]
pub struct PowerTChannel {
    cfg: PowerTConfig,
}

impl PowerTChannel {
    /// Creates the channel.
    pub fn new(cfg: PowerTConfig) -> Self {
        PowerTChannel { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &PowerTConfig {
        &self.cfg
    }

    /// Transmits bits by modulating package power; returns decoded bits
    /// and throughput.
    pub fn transmit(&self, bits: &[bool]) -> (Vec<bool>, f64) {
        let cfg = &self.cfg;
        let table: &PStateTable = &cfg.platform.pstates;
        let mut engine = PStateEngine::new(table.max());
        // Exponential running average of package power.
        let alpha = 1.0 - (-(cfg.step / cfg.avg_window)).exp();
        let mut avg_power = cfg.low_power_w;
        let mut now = SimTime::ZERO;
        let threshold = Freq::from_hz((table.min().as_hz() + table.max().as_hz()) / 2);
        let low_freq = table.highest_not_above(Freq::from_hz(table.max().as_hz() * 6 / 10));
        let mut decoded = Vec::with_capacity(bits.len());
        for &bit in bits {
            let bit_end = now + cfg.bit_period;
            let probe_t = now + cfg.bit_period.scale(0.9);
            let mut probed = None;
            while now < bit_end {
                let p = if bit {
                    cfg.high_power_w
                } else {
                    cfg.low_power_w
                };
                avg_power += alpha * (p - avg_power);
                // Power-limit controller: clamp frequency while the
                // running average exceeds the budget.
                let target = if avg_power > cfg.budget_w {
                    low_freq
                } else {
                    table.max()
                };
                if target != engine.target() {
                    engine.request(now, target, table);
                }
                if probed.is_none() && now >= probe_t {
                    // High sender power ⇒ clamped (low) frequency ⇒ bit 1.
                    probed = Some(engine.freq_at(now) < threshold);
                }
                now += cfg.step;
            }
            decoded.push(probed.unwrap_or(engine.freq_at(now) < threshold));
        }
        let bps = bits.len() as f64 / now.as_secs();
        (decoded, bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let ch = PowerTChannel::default();
        let bits = vec![true, false, false, true, true, false];
        let (decoded, _) = ch.transmit(&bits);
        assert_eq!(decoded, bits);
    }

    #[test]
    fn throughput_is_about_122_bps() {
        let ch = PowerTChannel::default();
        let (_, bps) = ch.transmit(&[true, false]);
        assert!((110.0..135.0).contains(&bps), "bps = {bps}");
    }

    #[test]
    fn bit_period_below_avg_window_fails() {
        // The running average cannot swing across the budget within a
        // sub-window bit time.
        let cfg = PowerTConfig {
            bit_period: SimTime::from_us(500.0),
            ..Default::default()
        };
        let ch = PowerTChannel::new(cfg);
        let bits = vec![true, false, true, false, true, false, true, false];
        let (decoded, _) = ch.transmit(&bits);
        assert_ne!(decoded, bits);
    }
}

//! State-of-the-art covert channels the paper compares against
//! (Figure 12, Table 2): NetSpectre's same-thread AVX gadget, TurboCC's
//! turbo-frequency channel, DFScovert's governor channel, and POWERT's
//! power-budget channel.
//!
//! NetSpectre and TurboCC run end-to-end on the full SoC simulator;
//! DFScovert and POWERT are modelled directly over the governor/P-state
//! and power-limit state machines (their original attack surfaces —
//! sysfs writes and package power budgeting — have no in-process
//! counterpart; see DESIGN.md).

pub mod dfscovert;
pub mod netspectre;
pub mod powert;
pub mod turbocc;

pub use dfscovert::{DfsCovertChannel, DfsCovertConfig};
pub use netspectre::{NetSpectreChannel, NetSpectreTx};
pub use powert::{PowerTChannel, PowerTConfig};
pub use turbocc::{TurboCcChannel, TurboCcConfig, TurboCcTx};

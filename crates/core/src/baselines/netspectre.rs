//! The NetSpectre covert-channel gadget (Schwarz et al., baseline of
//! Figure 12(a)).
//!
//! NetSpectre's AVX gadget is a *single-level* same-thread channel: the
//! sender either executes an AVX2 loop (bit 1) or stays idle (bit 0);
//! the receiver then times its own AVX2 loop — throttled (long) means
//! the voltage was still at baseline (bit 0), unthrottled (short) means
//! the sender had already raised it (bit 1). One bit per transaction,
//! same reset-time cycle ⇒ half of IccThreadCovert's throughput
//! (we compare "to NetSpectre's main gadget … not to the end-to-end
//! NetSpectre implementation", §6.2).

use std::cell::RefCell;
use std::rc::Rc;

use ichannels_soc::program::{Action, ProgCtx, Program};
use ichannels_soc::sim::Soc;
use ichannels_uarch::isa::InstClass;
use ichannels_workload::loops::{instructions_for_duration, Recorder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::channel::ChannelConfig;

/// The NetSpectre-style 1-bit covert channel.
#[derive(Debug, Clone)]
pub struct NetSpectreChannel {
    cfg: ChannelConfig,
}

/// A decoded NetSpectre transmission.
#[derive(Debug, Clone)]
pub struct NetSpectreTx {
    /// Bits sent.
    pub sent: Vec<bool>,
    /// Bits decoded.
    pub received: Vec<bool>,
    /// Raw receiver durations (TSC cycles).
    pub durations: Vec<u64>,
    /// Throughput in bits/s (1 bit per slot).
    pub throughput_bps: f64,
}

impl NetSpectreTx {
    /// Fraction of wrong bits.
    pub fn bit_error_rate(&self) -> f64 {
        if self.sent.is_empty() {
            return 0.0;
        }
        let wrong = self
            .sent
            .iter()
            .zip(&self.received)
            .filter(|(a, b)| a != b)
            .count();
        wrong as f64 / self.sent.len() as f64
    }
}

impl NetSpectreChannel {
    /// Creates the channel on the same configuration as IccThreadCovert
    /// (so the Figure 12(a) comparison is apples-to-apples).
    pub fn new(cfg: ChannelConfig) -> Self {
        NetSpectreChannel { cfg }
    }

    /// Default instance on Cannon Lake.
    pub fn default_cannon_lake() -> Self {
        NetSpectreChannel::new(ChannelConfig::default_cannon_lake())
    }

    /// The channel configuration.
    pub fn config(&self) -> &ChannelConfig {
        &self.cfg
    }

    /// Runs a bit sequence, returning raw receiver durations.
    pub fn run_bits(&self, bits: &[bool]) -> Vec<u64> {
        let cfg = &self.cfg;
        let mut soc = Soc::new(cfg.soc.clone());
        let tsc = *soc.tsc();
        let freq = cfg.freq();
        let slot0 = tsc.read(cfg.start_offset);
        let period = tsc.duration_to_cycles(cfg.slot_period);
        let sender_insts = instructions_for_duration(InstClass::Heavy256, freq, cfg.sender_loop);
        let recv_insts = instructions_for_duration(InstClass::Heavy256, freq, cfg.receiver_loop);
        let recorder = Recorder::new();
        let sigma = tsc.duration_to_cycles(cfg.measurement_jitter) as f64;
        soc.spawn(
            0,
            0,
            Box::new(NetSpectreProg {
                bits: bits.to_vec(),
                idx: 0,
                stage: 0,
                slot0,
                period,
                sender_insts,
                recv_insts,
                t_start: 0,
                recorder: recorder.clone(),
                rng: Rc::new(RefCell::new(SmallRng::seed_from_u64(cfg.jitter_seed))),
                sigma,
            }),
        );
        let deadline = cfg.start_offset + cfg.slot_period.scale((bits.len() + 2) as f64);
        soc.run_until_idle(deadline);
        recorder.values()
    }

    /// Calibrates the two duration levels: returns `(mean_one, mean_zero)`
    /// in TSC cycles.
    pub fn calibrate(&self, reps: usize) -> (f64, f64) {
        let ones = self.run_bits(&vec![true; reps]);
        let zeros = self.run_bits(&vec![false; reps]);
        let mean = |v: &[u64]| v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
        (mean(&ones), mean(&zeros))
    }

    /// Transmits bits and decodes against the calibrated means.
    pub fn transmit(&self, bits: &[bool], cal: (f64, f64)) -> NetSpectreTx {
        let durations = self.run_bits(bits);
        let received: Vec<bool> = durations
            .iter()
            .map(|&d| {
                let d = d as f64;
                (d - cal.0).abs() < (d - cal.1).abs()
            })
            .collect();
        let elapsed = self.cfg.slot_period.scale(bits.len() as f64);
        NetSpectreTx {
            sent: bits.to_vec(),
            received,
            durations,
            throughput_bps: bits.len() as f64 / elapsed.as_secs(),
        }
    }
}

struct NetSpectreProg {
    bits: Vec<bool>,
    idx: usize,
    stage: u8,
    slot0: u64,
    period: u64,
    sender_insts: u64,
    recv_insts: u64,
    t_start: u64,
    recorder: Recorder,
    rng: Rc<RefCell<SmallRng>>,
    sigma: f64,
}

impl std::fmt::Debug for NetSpectreProg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NetSpectreProg(idx={})", self.idx)
    }
}

impl Program for NetSpectreProg {
    fn next(&mut self, ctx: &ProgCtx) -> Action {
        loop {
            if self.idx >= self.bits.len() {
                return Action::Halt;
            }
            match self.stage {
                0 => {
                    self.stage = 1;
                    return Action::WaitUntilTsc(self.slot0 + self.idx as u64 * self.period);
                }
                1 => {
                    self.stage = 2;
                    if self.bits[self.idx] {
                        // Bit 1: the "leak" executes the AVX2 instruction.
                        return Action::Run {
                            class: InstClass::Heavy256,
                            instructions: self.sender_insts,
                        };
                    }
                    // Bit 0: nothing executed; fall through to measure.
                }
                2 => {
                    self.stage = 3;
                    self.t_start = ctx.tsc;
                    return Action::Run {
                        class: InstClass::Heavy256,
                        instructions: self.recv_insts,
                    };
                }
                _ => {
                    let mut d = ctx.tsc.saturating_sub(self.t_start) as f64;
                    if self.sigma > 0.0 {
                        let mut rng = self.rng.borrow_mut();
                        let u1: f64 = rng.gen_range(1e-12..1.0);
                        let u2: f64 = rng.gen_range(0.0..1.0);
                        d += (-2.0 * u1.ln()).sqrt()
                            * (2.0 * std::f64::consts::PI * u2).cos()
                            * self.sigma;
                    }
                    self.recorder.push(d.max(0.0).round() as u64);
                    self.idx += 1;
                    self.stage = 0;
                }
            }
        }
    }

    fn name(&self) -> &str {
        "NetSpectre gadget"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_level_channel_round_trips() {
        let ch = NetSpectreChannel::default_cannon_lake();
        let cal = ch.calibrate(3);
        let bits = [true, false, false, true, true, false, true, false];
        let tx = ch.transmit(&bits, cal);
        assert_eq!(tx.received, bits);
        assert_eq!(tx.bit_error_rate(), 0.0);
    }

    #[test]
    fn half_the_throughput_of_icc_thread_covert() {
        // Figure 12(a): IccThreadCovert = 2× NetSpectre.
        let ns = NetSpectreChannel::default_cannon_lake();
        let cal = ns.calibrate(2);
        let tx = ns.transmit(&[true, false, true, false], cal);
        let icc_bps = 2.0 / ns.config().slot_period.as_secs();
        let ratio = icc_bps / tx.throughput_bps;
        assert!((ratio - 2.0).abs() < 1e-9, "ratio = {ratio}");
    }

    #[test]
    fn levels_are_separated() {
        let ch = NetSpectreChannel::default_cannon_lake();
        let (one, zero) = ch.calibrate(3);
        // Bit 0 (no prior AVX2) leaves the full ramp to the receiver ⇒
        // longer duration.
        assert!(zero > one + 2_000.0, "one = {one}, zero = {zero}");
    }
}

//! The TurboCC covert channel (Kalmbach et al., baseline of
//! Figure 12(b)).
//!
//! TurboCC communicates across cores through **turbo frequency
//! changes**: executing PHIs at turbo frequency forces a turbo-license
//! drop that lowers the *shared* core clock; the receiver senses the
//! frequency with a timed scalar loop. The mechanism's time base is the
//! slow (ms-scale) license release — three orders of magnitude slower
//! than the current-management throttling IChannels uses, which is why
//! TurboCC tops out near 61 b/s while IChannels reaches ~2.9 kb/s.

use ichannels_soc::config::{PlatformSpec, SocConfig};
use ichannels_soc::program::{Action, ProgCtx, Program};
use ichannels_soc::sim::Soc;
use ichannels_uarch::isa::InstClass;
use ichannels_uarch::time::SimTime;
use ichannels_workload::loops::Recorder;

/// TurboCC channel configuration.
#[derive(Debug, Clone)]
pub struct TurboCcConfig {
    /// The simulated system (must run at the performance governor so
    /// turbo licensing is active).
    pub soc: SocConfig,
    /// Bit period. The default (16.4 ms) yields the paper's 61 b/s.
    pub bit_period: SimTime,
    /// Settling offset before the first bit.
    pub start_offset: SimTime,
    /// Receiver probe loop instruction count (scalar).
    pub probe_insts: u64,
}

impl Default for TurboCcConfig {
    fn default() -> Self {
        TurboCcConfig {
            soc: SocConfig::quiet(PlatformSpec::cannon_lake()),
            bit_period: SimTime::from_us(16_400.0),
            start_offset: SimTime::from_ms(1.0),
            probe_insts: 400_000,
        }
    }
}

/// The TurboCC cross-core covert channel.
#[derive(Debug, Clone, Default)]
pub struct TurboCcChannel {
    cfg: TurboCcConfig,
}

/// A decoded TurboCC transmission.
#[derive(Debug, Clone)]
pub struct TurboCcTx {
    /// Bits sent.
    pub sent: Vec<bool>,
    /// Bits decoded.
    pub received: Vec<bool>,
    /// Probe durations (TSC cycles), one per bit.
    pub durations: Vec<u64>,
    /// Throughput in bits/s.
    pub throughput_bps: f64,
}

impl TurboCcTx {
    /// Fraction of wrong bits.
    pub fn bit_error_rate(&self) -> f64 {
        if self.sent.is_empty() {
            return 0.0;
        }
        let wrong = self
            .sent
            .iter()
            .zip(&self.received)
            .filter(|(a, b)| a != b)
            .count();
        wrong as f64 / self.sent.len() as f64
    }
}

impl TurboCcChannel {
    /// Creates a TurboCC channel.
    pub fn new(cfg: TurboCcConfig) -> Self {
        TurboCcChannel { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &TurboCcConfig {
        &self.cfg
    }

    /// Runs a bit sequence; returns the receiver probe durations.
    pub fn run_bits(&self, bits: &[bool]) -> Vec<u64> {
        let cfg = &self.cfg;
        let mut soc = Soc::new(cfg.soc.clone());
        let tsc = *soc.tsc();
        let slot0 = tsc.read(cfg.start_offset);
        let period = tsc.duration_to_cycles(cfg.bit_period);
        // The probe fires near the end of each bit window, after the
        // license state has settled.
        let probe_offset = tsc.duration_to_cycles(cfg.bit_period.scale(0.7));
        let recorder = Recorder::new();
        soc.spawn(
            0,
            0,
            Box::new(TurboSender {
                bits: bits.to_vec(),
                idx: 0,
                running: false,
                slot0,
                period,
                block_insts: 40_000,
            }),
        );
        soc.spawn(
            1,
            0,
            Box::new(TurboReceiver {
                n: bits.len(),
                idx: 0,
                stage: 0,
                slot0: slot0 + probe_offset,
                period,
                probe_insts: cfg.probe_insts,
                t_start: 0,
                recorder: recorder.clone(),
            }),
        );
        let deadline = cfg.start_offset + cfg.bit_period.scale((bits.len() + 1) as f64);
        soc.run_until_idle(deadline);
        recorder.values()
    }

    /// Calibrates `(mean_one, mean_zero)` probe durations.
    pub fn calibrate(&self, reps: usize) -> (f64, f64) {
        let ones = self.run_bits(&vec![true; reps]);
        let zeros = self.run_bits(&vec![false; reps]);
        let mean = |v: &[u64]| v.iter().map(|&x| x as f64).sum::<f64>() / v.len().max(1) as f64;
        (mean(&ones), mean(&zeros))
    }

    /// Transmits and decodes a bit sequence.
    pub fn transmit(&self, bits: &[bool], cal: (f64, f64)) -> TurboCcTx {
        let durations = self.run_bits(bits);
        let received: Vec<bool> = durations
            .iter()
            .map(|&d| {
                let d = d as f64;
                (d - cal.0).abs() < (d - cal.1).abs()
            })
            .collect();
        TurboCcTx {
            sent: bits.to_vec(),
            received,
            durations,
            throughput_bps: 1.0 / self.cfg.bit_period.as_secs(),
        }
    }
}

/// Sender: saturate the core with AVX-512 blocks for bit 1, idle for 0.
struct TurboSender {
    bits: Vec<bool>,
    idx: usize,
    running: bool,
    slot0: u64,
    period: u64,
    block_insts: u64,
}

impl std::fmt::Debug for TurboSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TurboSender(idx={})", self.idx)
    }
}

impl Program for TurboSender {
    fn next(&mut self, ctx: &ProgCtx) -> Action {
        loop {
            if self.idx >= self.bits.len() {
                return Action::Halt;
            }
            let slot_start = self.slot0 + self.idx as u64 * self.period;
            let slot_end = slot_start + self.period * 6 / 10; // stop at 60% so the license can release
            if !self.running {
                self.running = true;
                if ctx.tsc < slot_start {
                    return Action::WaitUntilTsc(slot_start);
                }
            }
            if ctx.tsc >= slot_end {
                self.running = false;
                self.idx += 1;
                continue;
            }
            if self.bits[self.idx] {
                return Action::Run {
                    class: InstClass::Heavy512,
                    instructions: self.block_insts,
                };
            }
            self.running = false;
            self.idx += 1;
            return Action::WaitUntilTsc(self.slot0 + self.idx as u64 * self.period);
        }
    }

    fn name(&self) -> &str {
        "TurboCC sender"
    }
}

/// Receiver: timed scalar loop — duration ∝ 1/frequency.
struct TurboReceiver {
    n: usize,
    idx: usize,
    stage: u8,
    slot0: u64,
    period: u64,
    probe_insts: u64,
    t_start: u64,
    recorder: Recorder,
}

impl std::fmt::Debug for TurboReceiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TurboReceiver(idx={})", self.idx)
    }
}

impl Program for TurboReceiver {
    fn next(&mut self, ctx: &ProgCtx) -> Action {
        loop {
            if self.idx >= self.n {
                return Action::Halt;
            }
            match self.stage {
                0 => {
                    self.stage = 1;
                    return Action::WaitUntilTsc(self.slot0 + self.idx as u64 * self.period);
                }
                1 => {
                    self.stage = 2;
                    self.t_start = ctx.tsc;
                    return Action::Run {
                        class: InstClass::Scalar64,
                        instructions: self.probe_insts,
                    };
                }
                _ => {
                    self.recorder.push(ctx.tsc.saturating_sub(self.t_start));
                    self.idx += 1;
                    self.stage = 0;
                }
            }
        }
    }

    fn name(&self) -> &str {
        "TurboCC receiver"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn turbo_channel_round_trips() {
        let ch = TurboCcChannel::default();
        let cal = ch.calibrate(2);
        let bits = [true, false, true, true, false];
        let tx = ch.transmit(&bits, cal);
        assert_eq!(tx.received, bits, "durations = {:?}", tx.durations);
    }

    #[test]
    fn throughput_is_about_61_bps() {
        let ch = TurboCcChannel::default();
        let cal = ch.calibrate(1);
        let tx = ch.transmit(&[true, false], cal);
        assert!(
            (55.0..70.0).contains(&tx.throughput_bps),
            "bps = {}",
            tx.throughput_bps
        );
    }

    #[test]
    fn mechanism_is_three_orders_slower_than_ichannels() {
        // §6.2: IChannels works at the tens-of-µs scale, TurboCC at ms.
        let turbo_bit = TurboCcConfig::default().bit_period;
        let ich_tx = SimTime::from_us(40.0);
        assert!(turbo_bit / ich_tx > 100.0);
    }
}

//! A reliable message protocol over the covert channel.
//!
//! §6.3 sketches three noise mitigations: averaging over repeated sends,
//! error-correcting codes, and transmitting during quiet periods. This
//! module combines the first two into a practical one-way link (the
//! receiver has no way to ACK): the payload is split into frames, each
//! frame carries a sequence number, a Hamming(7,4)-coded body, and a
//! CRC-8; the sender repeats the whole message `redundancy` times and
//! the receiver keeps, per sequence number, the first copy whose CRC
//! checks out.

use crate::channel::{Calibration, IChannel};
use crate::ecc::{check_frame, frame_with_crc, Hamming74};
use crate::symbols::{bits_to_bytes, bits_to_symbols, bytes_to_bits, symbols_to_bits, Symbol};

/// Maximum payload bytes per frame.
pub const FRAME_PAYLOAD: usize = 8;

/// One protocol frame: `[seq, len, payload…]` + CRC, Hamming-coded.
fn encode_frame(seq: u8, payload: &[u8]) -> Vec<Symbol> {
    assert!(payload.len() <= FRAME_PAYLOAD, "payload too large");
    let mut raw = Vec::with_capacity(2 + FRAME_PAYLOAD);
    raw.push(seq);
    raw.push(payload.len() as u8);
    raw.extend_from_slice(payload);
    raw.resize(2 + FRAME_PAYLOAD, 0); // fixed-size frames simplify sync
    let framed = frame_with_crc(&raw);
    let bits = bytes_to_bits(&framed);
    let coded = Hamming74.encode(&bits); // 11 bytes → 88 bits → 154 bits
    let mut padded = coded;
    if !padded.len().is_multiple_of(2) {
        padded.push(false);
    }
    bits_to_symbols(&padded)
}

/// Symbols per encoded frame (fixed because frames are fixed-size).
pub fn frame_symbols() -> usize {
    encode_frame(0, &[]).len()
}

/// Attempts to decode one frame; `None` when the CRC fails.
fn decode_frame(symbols: &[Symbol]) -> Option<(u8, Vec<u8>)> {
    let bits = symbols_to_bits(symbols);
    let coded_len = (2 + FRAME_PAYLOAD + 1) * 8 / 4 * 7; // bytes → Hamming bits
    let coded = &bits[..coded_len.min(bits.len())];
    let data_bits = Hamming74.decode(coded);
    let bytes = bits_to_bytes(&data_bits);
    let frame = &bytes[..(2 + FRAME_PAYLOAD + 1).min(bytes.len())];
    let raw = check_frame(frame)?;
    let seq = raw[0];
    let len = raw[1] as usize;
    if len > FRAME_PAYLOAD {
        return None;
    }
    Some((seq, raw[2..2 + len].to_vec()))
}

/// Transfer statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkStats {
    /// Total frames transmitted (including repeats).
    pub frames_sent: usize,
    /// Frames whose CRC failed at the receiver.
    pub frames_corrupt: usize,
    /// Distinct frames recovered.
    pub frames_recovered: usize,
}

/// A one-way reliable link over an [`IChannel`].
#[derive(Debug)]
pub struct FramedLink<'a> {
    channel: &'a IChannel,
    cal: &'a Calibration,
    /// How many times the whole message is repeated (§6.3: "send the
    /// secret value many times").
    pub redundancy: usize,
}

impl<'a> FramedLink<'a> {
    /// Creates a link with the given redundancy (≥1).
    ///
    /// # Panics
    ///
    /// Panics if `redundancy` is zero.
    pub fn new(channel: &'a IChannel, cal: &'a Calibration, redundancy: usize) -> Self {
        assert!(redundancy >= 1, "redundancy must be at least 1");
        FramedLink {
            channel,
            cal,
            redundancy,
        }
    }

    /// Sends `payload` and returns what the receiver reconstructed plus
    /// link statistics. `None` payload bytes indicate unrecoverable
    /// frames (all copies corrupt).
    ///
    /// # Panics
    ///
    /// Panics if the payload needs more than 256 frames.
    pub fn transfer(&self, payload: &[u8]) -> (Option<Vec<u8>>, LinkStats) {
        let chunks: Vec<&[u8]> = payload.chunks(FRAME_PAYLOAD).collect();
        assert!(chunks.len() <= 256, "payload too large for u8 sequence");
        let mut stats = LinkStats {
            frames_sent: 0,
            frames_corrupt: 0,
            frames_recovered: 0,
        };
        let mut recovered: Vec<Option<Vec<u8>>> = vec![None; chunks.len()];
        for round in 0..self.redundancy {
            for (seq, chunk) in chunks.iter().enumerate() {
                if recovered[seq].is_some() {
                    continue; // receiver already has this frame
                }
                // Every repeat happens later in wall-clock time, so it
                // must see fresh OS-noise arrivals: advance the SoC seed
                // per round. (Replaying the identical noise stream would
                // make redundancy useless against a deterministic hit.)
                let mut channel = self.channel.clone();
                channel.config_mut().soc.seed =
                    self.channel.config().soc.seed.wrapping_add(round as u64);
                let symbols = encode_frame(seq as u8, chunk);
                let tx = channel.transmit_symbols(&symbols, self.cal);
                stats.frames_sent += 1;
                match decode_frame(&tx.received) {
                    Some((rx_seq, data)) if rx_seq as usize == seq => {
                        recovered[seq] = Some(data);
                        stats.frames_recovered += 1;
                    }
                    _ => stats.frames_corrupt += 1,
                }
            }
        }
        if recovered.iter().all(Option::is_some) {
            let mut out = Vec::with_capacity(payload.len());
            for r in recovered.into_iter().flatten() {
                out.extend(r);
            }
            (Some(out), stats)
        } else {
            (None, stats)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ichannels_soc::noise::NoiseConfig;

    #[test]
    fn frame_round_trip() {
        let symbols = encode_frame(7, b"covert");
        let (seq, data) = decode_frame(&symbols).expect("clean frame decodes");
        assert_eq!(seq, 7);
        assert_eq!(data, b"covert");
    }

    #[test]
    fn corrupt_frame_is_rejected() {
        let mut symbols = encode_frame(3, b"payload!");
        // Flip three symbols (beyond Hamming's correction budget).
        for i in [0, 10, 20] {
            let v = symbols[i].value() ^ 0b11;
            symbols[i] = Symbol::new(v);
        }
        assert_eq!(decode_frame(&symbols), None);
    }

    #[test]
    fn clean_link_transfers_in_one_round() {
        let ch = IChannel::icc_smt_covert();
        let cal = ch.calibrate(2);
        let link = FramedLink::new(&ch, &cal, 2);
        let payload = b"attack at dawn";
        let (rx, stats) = link.transfer(payload);
        assert_eq!(rx.as_deref(), Some(&payload[..]));
        assert_eq!(stats.frames_corrupt, 0);
        assert_eq!(stats.frames_recovered, 2); // 14 bytes = 2 frames
        assert_eq!(stats.frames_sent, 2); // no repeats needed
    }

    #[test]
    fn noisy_link_recovers_via_redundancy() {
        let mut ch = IChannel::icc_thread_covert();
        ch.config_mut().soc = ch
            .config()
            .soc
            .clone()
            .with_noise(NoiseConfig::ctx_switches_only(2_000.0));
        let cal = ch.calibrate(3);
        // At 2000 ctx-switches/s roughly every other frame takes an
        // uncorrectable hit; a deep redundancy budget is what makes the
        // one-way link reliable (§6.3: "send the secret value many
        // times").
        let link = FramedLink::new(&ch, &cal, 12);
        let payload = b"0123456789abcdef";
        let (rx, stats) = link.transfer(payload);
        assert_eq!(rx.as_deref(), Some(&payload[..]), "stats = {stats:?}");
        assert!(
            stats.frames_corrupt > 0,
            "noise should corrupt at least one frame copy"
        );
    }
}

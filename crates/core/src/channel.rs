//! The three IChannels covert channels (paper §4):
//! [`ChannelKind::Thread`] (IccThreadCovert), [`ChannelKind::Smt`]
//! (IccSMTcovert), and [`ChannelKind::Cores`] (IccCoresCovert).
//!
//! All three share the Figure 3 structure: per transaction the sender
//! executes a PHI loop whose computational-intensity level encodes two
//! secret bits; the receiver times its own loop with `rdtsc` and decodes
//! the bits from the throttling period embedded in that duration. After
//! each transaction the channel waits out the 650 µs *reset-time* so the
//! voltage returns to baseline; the cycle time (< 690 µs) bounds the
//! throughput at ~2.9 kb/s (§6.2).

use std::cell::RefCell;
use std::rc::Rc;

use ichannels_pdn::loadline::LoadLine;
use ichannels_soc::config::{PlatformSpec, SocConfig};
use ichannels_soc::program::{Action, ProgCtx, Program};
use ichannels_soc::sim::Soc;
use ichannels_uarch::isa::InstClass;
use ichannels_uarch::time::{Freq, SimTime};
use ichannels_workload::loops::{instructions_for_duration, Recorder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::symbols::Symbol;

/// Where the two communicating execution contexts live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelKind {
    /// Same hardware thread (IccThreadCovert).
    Thread,
    /// Two SMT threads of one physical core (IccSMTcovert).
    Smt,
    /// Two different physical cores (IccCoresCovert).
    Cores,
}

impl ChannelKind {
    /// The receiver's measurement loop class (Figure 3): `512b_Heavy`
    /// on the same thread, `64b` across SMT, `128b_Heavy` across cores.
    pub const fn receiver_class(self) -> InstClass {
        match self {
            ChannelKind::Thread => InstClass::Heavy512,
            ChannelKind::Smt => InstClass::Scalar64,
            ChannelKind::Cores => InstClass::Heavy128,
        }
    }

    /// Display name used in the paper.
    pub const fn name(self) -> &'static str {
        match self {
            ChannelKind::Thread => "IccThreadCovert",
            ChannelKind::Smt => "IccSMTcovert",
            ChannelKind::Cores => "IccCoresCovert",
        }
    }
}

impl std::fmt::Display for ChannelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Receiver demodulation tuning: how long the receiver integrates per
/// measurement and how many repeated transactions vote on each symbol.
///
/// The paper's receiver calibrates per platform (§6): where the
/// per-level separation is comfortably above the measurement-jitter
/// floor a single fixed-window sample per transaction decodes
/// error-free, but where a stiffer rail compresses the levels toward
/// each other a real attacker integrates longer and repeats the
/// transaction, trading symbol rate for reliability. The identity
/// tuning ([`ReceiverCalibration::LEGACY`]) reproduces the fixed
/// single-sample receiver bit for bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReceiverCalibration {
    /// Multiplier on the receiver's measured-loop duration (the
    /// integration window).
    pub window_scale: f64,
    /// Repeat-and-vote: transactions transmitted per symbol, decoded by
    /// per-transaction nearest-mean votes. 1 disables voting.
    pub votes: u32,
}

impl ReceiverCalibration {
    /// The fixed single-sample receiver (pre-calibration behavior).
    pub const LEGACY: ReceiverCalibration = ReceiverCalibration {
        window_scale: 1.0,
        votes: 1,
    };

    /// Compression factor above which the single-sample receiver is
    /// kept: every client rail in the catalog sits at 1.0, the 0.9 mΩ
    /// server rail at ≈0.56.
    pub const COMPRESSION_FLOOR: f64 = 0.75;

    /// True for the identity tuning — the execution path is then
    /// bit-identical to the legacy fixed-window receiver.
    pub fn is_legacy(self) -> bool {
        self.votes <= 1 && self.window_scale == 1.0
    }

    /// Derives the tuning for a channel on a platform from its
    /// load-line.
    ///
    /// Only the cross-core channel rides the shared package rail, so
    /// only it sees the [`LoadLine::separation_compression`] of a stiff
    /// server load-line; the same-thread and SMT channels observe the
    /// throttling of their own core directly and keep the legacy
    /// receiver everywhere.
    pub fn for_channel(spec: &PlatformSpec, kind: ChannelKind) -> Self {
        if kind != ChannelKind::Cores {
            return Self::LEGACY;
        }
        let compression =
            LoadLine::new(spec.rll_mohm).separation_compression(&LoadLine::client_reference());
        Self::for_compression(compression)
    }

    /// Derives the tuning for a measured separation-compression factor:
    /// identity at or above [`Self::COMPRESSION_FLOOR`], otherwise an
    /// integration window stretched by the inverse compression and a
    /// vote count growing as the levels close up.
    pub fn for_compression(compression: f64) -> Self {
        assert!(
            compression.is_finite() && compression > 0.0,
            "invalid separation compression: {compression}"
        );
        if compression >= Self::COMPRESSION_FLOOR {
            return Self::LEGACY;
        }
        ReceiverCalibration {
            window_scale: (1.0 / compression).clamp(1.0, 4.0),
            votes: if compression >= 0.6 { 3 } else { 5 },
        }
    }
}

/// Which receiver a channel decodes with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReceiverMode {
    /// Platform-calibrated adaptive receiver (the default):
    /// [`ReceiverCalibration::for_channel`] derives the tuning from the
    /// platform's load-line.
    Calibrated,
    /// The fixed single-sample receiver, kept for A/B comparison.
    Legacy,
    /// An explicit tuning override (receiver-calibration sweeps).
    Fixed(ReceiverCalibration),
}

impl ReceiverMode {
    /// Resolves the mode to a concrete tuning for a channel instance.
    pub fn resolve(self, spec: &PlatformSpec, kind: ChannelKind) -> ReceiverCalibration {
        match self {
            ReceiverMode::Calibrated => ReceiverCalibration::for_channel(spec, kind),
            ReceiverMode::Legacy => ReceiverCalibration::LEGACY,
            ReceiverMode::Fixed(tuning) => tuning,
        }
    }
}

/// Configuration of a covert channel instance.
#[derive(Debug, Clone)]
pub struct ChannelConfig {
    /// The simulated system the two contexts run on (platform, noise,
    /// mitigations).
    pub soc: SocConfig,
    /// Transaction period: PHI transmission + reset-time (§6.2:
    /// < 690 µs).
    pub slot_period: SimTime,
    /// Settling time before the first slot.
    pub start_offset: SimTime,
    /// Target (unthrottled) duration of the sender's PHI loop.
    pub sender_loop: SimTime,
    /// Target (unthrottled) duration of the receiver's measured loop.
    pub receiver_loop: SimTime,
    /// How long after the sender the cross-core receiver starts its loop
    /// ("within a few hundred cycles", §4.3.1).
    pub cross_core_delay: SimTime,
    /// 1-σ receiver measurement jitter (rdtsc serialization, pipeline
    /// drain — the spread visible in Figure 13).
    pub measurement_jitter: SimTime,
    /// RNG seed for the measurement jitter.
    pub jitter_seed: u64,
    /// How the receiver demodulates (platform-calibrated by default).
    pub receiver: ReceiverMode,
}

impl ChannelConfig {
    /// The paper's default setup: Cannon Lake pinned at 1.4 GHz
    /// (IccSMTcovert is only testable there — Coffee Lake has no SMT).
    pub fn default_cannon_lake() -> Self {
        ChannelConfig {
            soc: SocConfig::pinned(PlatformSpec::cannon_lake(), Freq::from_ghz(1.4)),
            slot_period: SimTime::from_us(690.0),
            start_offset: SimTime::from_us(100.0),
            sender_loop: SimTime::from_us(15.0),
            receiver_loop: SimTime::from_us(8.0),
            cross_core_delay: SimTime::from_ns(150.0),
            measurement_jitter: SimTime::from_ns(150.0),
            jitter_seed: 0x05EE_D1CC,
            receiver: ReceiverMode::Calibrated,
        }
    }

    /// The frequency the channel operates at (pinned governor assumed).
    pub fn freq(&self) -> Freq {
        match self.soc.governor {
            ichannels_pmu::governor::Governor::Userspace(f) => f,
            _ => self.soc.platform.pstates.max(),
        }
    }
}

/// Per-level mean receiver durations learned during calibration, in TSC
/// cycles, plus nearest-mean decoding.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    means: [f64; 4],
}

impl Calibration {
    /// Builds a calibration from per-symbol mean durations (TSC cycles).
    pub fn from_means(means: [f64; 4]) -> Self {
        Calibration { means }
    }

    /// Per-symbol mean durations (TSC cycles).
    pub fn means(&self) -> &[f64; 4] {
        &self.means
    }

    /// Decodes a measured duration by the nearest calibrated mean.
    pub fn decode(&self, duration_cycles: u64) -> Symbol {
        let d = duration_cycles as f64;
        let mut best = 0usize;
        let mut best_err = f64::INFINITY;
        for (i, m) in self.means.iter().enumerate() {
            let e = (d - m).abs();
            if e < best_err {
                best_err = e;
                best = i;
            }
        }
        Symbol::new(best as u8)
    }

    /// The three decision thresholds between the four level means
    /// (midpoints of the sorted means, TSC cycles) — the per-level
    /// thresholds the training preamble learns. Nearest-mean decoding
    /// is exactly thresholding against these.
    pub fn thresholds(&self) -> [f64; 3] {
        let mut sorted = self.means;
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        [
            (sorted[0] + sorted[1]) / 2.0,
            (sorted[1] + sorted[2]) / 2.0,
            (sorted[2] + sorted[3]) / 2.0,
        ]
    }

    /// Decodes one symbol from repeated measurements of the same
    /// transaction (repeat-and-vote): each duration votes for its
    /// nearest mean, the plurality wins, and ties break toward the
    /// smallest total distance. With a single duration this is exactly
    /// [`Calibration::decode`].
    ///
    /// # Panics
    ///
    /// Panics if `durations` is empty.
    pub fn decode_vote(&self, durations: &[u64]) -> Symbol {
        assert!(!durations.is_empty(), "vote needs at least one sample");
        let mut counts = [0u32; 4];
        let mut total_err = [0.0f64; 4];
        for &d in durations {
            counts[self.decode(d).value() as usize] += 1;
            for (i, m) in self.means.iter().enumerate() {
                total_err[i] += (d as f64 - m).abs();
            }
        }
        let mut best = 0usize;
        for i in 1..4 {
            if counts[i] > counts[best]
                || (counts[i] == counts[best] && total_err[i] < total_err[best])
            {
                best = i;
            }
        }
        Symbol::new(best as u8)
    }

    /// Minimum separation between adjacent level means (TSC cycles) —
    /// the paper reports > 2 000 cycles on a low-noise system (§6.3).
    pub fn min_separation_cycles(&self) -> f64 {
        let mut sorted = self.means;
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        sorted
            .windows(2)
            .map(|w| w[1] - w[0])
            .fold(f64::INFINITY, f64::min)
    }
}

/// Result of one transmission.
#[derive(Debug, Clone)]
pub struct Transmission {
    /// Symbols the sender transmitted.
    pub sent: Vec<Symbol>,
    /// Symbols the receiver decoded.
    pub received: Vec<Symbol>,
    /// Raw receiver durations (TSC cycles), one per transaction.
    pub durations: Vec<u64>,
    /// Wall-clock time of the whole transmission.
    pub elapsed: SimTime,
}

impl Transmission {
    /// Gross channel throughput in bits/s (2 bits per transaction over
    /// the measured wall-clock time).
    pub fn throughput_bps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        (self.sent.len() as f64 * 2.0) / self.elapsed.as_secs()
    }

    /// Fraction of wrong bits.
    pub fn bit_error_rate(&self) -> f64 {
        if self.sent.is_empty() {
            return 0.0;
        }
        let wrong: u32 = self
            .sent
            .iter()
            .zip(&self.received)
            .map(|(s, r)| s.bit_errors_vs(*r))
            .sum();
        f64::from(wrong) / (self.sent.len() as f64 * 2.0)
    }
}

/// An IChannels covert channel bound to a configuration.
///
/// # Examples
///
/// ```
/// use ichannels::channel::{ChannelConfig, ChannelKind, IChannel};
/// use ichannels::symbols::Symbol;
///
/// let ch = IChannel::new(ChannelKind::Thread, ChannelConfig::default_cannon_lake());
/// let cal = ch.calibrate(3);
/// let tx = ch.transmit_symbols(&[Symbol::new(0), Symbol::new(3)], &cal);
/// assert_eq!(tx.sent.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct IChannel {
    kind: ChannelKind,
    cfg: ChannelConfig,
}

impl IChannel {
    /// Creates a channel of the given kind.
    ///
    /// # Panics
    ///
    /// Panics if the kind is [`ChannelKind::Smt`] on a platform without
    /// SMT, or [`ChannelKind::Cores`] on a single-core platform.
    pub fn new(kind: ChannelKind, cfg: ChannelConfig) -> Self {
        match kind {
            ChannelKind::Smt => assert!(
                cfg.soc.platform.smt,
                "{} requires SMT (the paper tests it only on Cannon Lake)",
                kind
            ),
            ChannelKind::Cores => assert!(
                cfg.soc.platform.n_cores >= 2,
                "{} requires at least two cores",
                kind
            ),
            ChannelKind::Thread => {}
        }
        IChannel { kind, cfg }
    }

    /// IccThreadCovert on the default platform.
    pub fn icc_thread_covert() -> Self {
        IChannel::new(ChannelKind::Thread, ChannelConfig::default_cannon_lake())
    }

    /// IccSMTcovert on the default platform.
    pub fn icc_smt_covert() -> Self {
        IChannel::new(ChannelKind::Smt, ChannelConfig::default_cannon_lake())
    }

    /// IccCoresCovert on the default platform.
    pub fn icc_cores_covert() -> Self {
        IChannel::new(ChannelKind::Cores, ChannelConfig::default_cannon_lake())
    }

    /// The channel kind.
    pub fn kind(&self) -> ChannelKind {
        self.kind
    }

    /// The channel configuration.
    pub fn config(&self) -> &ChannelConfig {
        &self.cfg
    }

    /// Mutable access to the configuration (e.g., to apply mitigations
    /// or noise before calibrating).
    pub fn config_mut(&mut self) -> &mut ChannelConfig {
        &mut self.cfg
    }

    /// The resolved receiver tuning of this channel instance.
    pub fn tuning(&self) -> ReceiverCalibration {
        self.cfg.receiver.resolve(&self.cfg.soc.platform, self.kind)
    }

    /// Transactions (slots) one payload symbol occupies: the resolved
    /// repeat-and-vote count.
    pub fn slots_per_symbol(&self) -> usize {
        self.tuning().votes.max(1) as usize
    }

    /// Runs the sender/receiver pair over `symbols` and returns the raw
    /// receiver durations (TSC cycles), one per transaction.
    pub fn run_symbols(&self, symbols: &[Symbol]) -> Vec<u64> {
        self.run_symbols_with(symbols, |_| {})
    }

    /// Like [`IChannel::run_symbols`], with a hook to add extra programs
    /// (noise applications) to the SoC before the run.
    pub fn run_symbols_with<F>(&self, symbols: &[Symbol], setup: F) -> Vec<u64>
    where
        F: FnOnce(&mut Soc),
    {
        let cfg = &self.cfg;
        let mut soc = Soc::new(cfg.soc.clone());
        setup(&mut soc);
        let freq = cfg.freq();
        let tsc = *soc.tsc();
        let slot0 = tsc.read(cfg.start_offset);
        let period = tsc.duration_to_cycles(cfg.slot_period);
        let sender_insts: [u64; 4] = std::array::from_fn(|i| {
            instructions_for_duration(Symbol::new(i as u8).sender_class(), freq, cfg.sender_loop)
        });
        let recv_class = self.kind.receiver_class();
        // The calibrated integration window; the exact untouched
        // duration when the tuning is the identity, so legacy-tuned
        // platforms reproduce the fixed-window receiver bit for bit.
        let tuning = self.tuning();
        let recv_window = if tuning.window_scale == 1.0 {
            cfg.receiver_loop
        } else {
            cfg.receiver_loop.scale(tuning.window_scale)
        };
        let recv_insts = instructions_for_duration(recv_class, freq, recv_window);
        let recorder = Recorder::new();
        let jitter = Rc::new(RefCell::new(JitterSource::new(
            cfg.jitter_seed,
            tsc.duration_to_cycles(cfg.measurement_jitter) as f64,
        )));

        match self.kind {
            ChannelKind::Thread => {
                soc.spawn(
                    0,
                    0,
                    Box::new(ThreadChannelProg {
                        symbols: symbols.to_vec(),
                        idx: 0,
                        stage: 0,
                        slot0,
                        period,
                        sender_insts,
                        recv_class,
                        recv_insts,
                        t_start: 0,
                        recorder: recorder.clone(),
                        jitter: jitter.clone(),
                    }),
                );
            }
            ChannelKind::Smt | ChannelKind::Cores => {
                let recv_delay = if self.kind == ChannelKind::Cores {
                    tsc.duration_to_cycles(cfg.cross_core_delay)
                } else {
                    0
                };
                soc.spawn(
                    0,
                    0,
                    Box::new(SenderProg {
                        symbols: symbols.to_vec(),
                        idx: 0,
                        running: false,
                        slot0,
                        period,
                        sender_insts,
                    }),
                );
                let (rc, rs) = if self.kind == ChannelKind::Smt {
                    (0, 1)
                } else {
                    (1, 0)
                };
                soc.spawn(
                    rc,
                    rs,
                    Box::new(ReceiverProg {
                        n: symbols.len(),
                        idx: 0,
                        stage: 0,
                        slot0: slot0 + recv_delay,
                        period,
                        class: recv_class,
                        insts: recv_insts,
                        t_start: 0,
                        recorder: recorder.clone(),
                        jitter: jitter.clone(),
                    }),
                );
            }
        }

        let deadline = cfg.start_offset + cfg.slot_period.scale((symbols.len() + 2) as f64);
        soc.run_until_idle(deadline);
        let durations = recorder.values();
        assert_eq!(
            durations.len(),
            symbols.len(),
            "receiver missed transactions ({} of {})",
            durations.len(),
            symbols.len()
        );
        durations
    }

    /// Calibrates the channel: transmits each of the four levels
    /// `reps` times with known symbols and records the mean duration per
    /// level.
    pub fn calibrate(&self, reps: usize) -> Calibration {
        assert!(reps > 0, "calibration needs at least one repetition");
        let mut means = [0.0f64; 4];
        for (i, mean) in means.iter_mut().enumerate() {
            let symbols = vec![Symbol::new(i as u8); reps];
            let durations = self.run_symbols(&symbols);
            *mean = durations.iter().map(|&d| d as f64).sum::<f64>() / reps as f64;
        }
        Calibration::from_means(means)
    }

    /// Transmits symbols and decodes them with the calibration.
    pub fn transmit_symbols(&self, symbols: &[Symbol], cal: &Calibration) -> Transmission {
        self.transmit_symbols_with(symbols, cal, |_| {})
    }

    /// Like [`IChannel::transmit_symbols`], with a SoC setup hook for
    /// concurrent noise applications (§6.3).
    ///
    /// With a repeat-and-vote tuning (`votes > 1`) every payload symbol
    /// is transmitted over that many consecutive transaction slots and
    /// decoded by [`Calibration::decode_vote`]; `durations` then holds
    /// one raw measurement per slot and `elapsed` reflects the
    /// `votes`-fold slowdown a real attacker pays for the reliability.
    pub fn transmit_symbols_with<F>(
        &self,
        symbols: &[Symbol],
        cal: &Calibration,
        setup: F,
    ) -> Transmission
    where
        F: FnOnce(&mut Soc),
    {
        let votes = self.slots_per_symbol();
        let slots: Vec<Symbol> = if votes == 1 {
            symbols.to_vec()
        } else {
            symbols
                .iter()
                .flat_map(|&s| std::iter::repeat_n(s, votes))
                .collect()
        };
        let durations = self.run_symbols_with(&slots, setup);
        let received: Vec<Symbol> = if votes == 1 {
            durations.iter().map(|&d| cal.decode(d)).collect()
        } else {
            durations
                .chunks(votes)
                .map(|c| cal.decode_vote(c))
                .collect()
        };
        Transmission {
            sent: symbols.to_vec(),
            received,
            durations,
            elapsed: self.cfg.slot_period.scale(slots.len() as f64),
        }
    }

    /// Transmits raw bits (even count) — the end-to-end covert channel.
    ///
    /// # Panics
    ///
    /// Panics if the bit count is odd.
    pub fn transmit_bits(&self, bits: &[bool], cal: &Calibration) -> Transmission {
        let symbols = crate::symbols::bits_to_symbols(bits);
        self.transmit_symbols(&symbols, cal)
    }
}

/// Gaussian measurement jitter on the receiver's `rdtsc` delta.
#[derive(Debug)]
struct JitterSource {
    rng: SmallRng,
    sigma_cycles: f64,
}

impl JitterSource {
    fn new(seed: u64, sigma_cycles: f64) -> Self {
        JitterSource {
            rng: SmallRng::seed_from_u64(seed),
            sigma_cycles,
        }
    }

    fn apply(&mut self, cycles: u64) -> u64 {
        if self.sigma_cycles <= 0.0 {
            return cycles;
        }
        let u1: f64 = self.rng.gen_range(1e-12..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let jittered = cycles as f64 + g * self.sigma_cycles;
        jittered.max(0.0).round() as u64
    }
}

/// Same-hardware-thread program: alternates sender and receiver roles
/// within each transaction slot (IccThreadCovert).
struct ThreadChannelProg {
    symbols: Vec<Symbol>,
    idx: usize,
    stage: u8,
    slot0: u64,
    period: u64,
    sender_insts: [u64; 4],
    recv_class: InstClass,
    recv_insts: u64,
    t_start: u64,
    recorder: Recorder,
    jitter: Rc<RefCell<JitterSource>>,
}

impl std::fmt::Debug for ThreadChannelProg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ThreadChannelProg(idx={})", self.idx)
    }
}

impl Program for ThreadChannelProg {
    fn next(&mut self, ctx: &ProgCtx) -> Action {
        loop {
            if self.idx >= self.symbols.len() {
                return Action::Halt;
            }
            match self.stage {
                0 => {
                    self.stage = 1;
                    return Action::WaitUntilTsc(self.slot0 + self.idx as u64 * self.period);
                }
                1 => {
                    // Sender role: PHI loop encoding two bits.
                    self.stage = 2;
                    let s = self.symbols[self.idx];
                    return Action::Run {
                        class: s.sender_class(),
                        instructions: self.sender_insts[s.value() as usize],
                    };
                }
                2 => {
                    // Receiver role: timed 512b-Heavy loop.
                    self.stage = 3;
                    self.t_start = ctx.tsc;
                    return Action::Run {
                        class: self.recv_class,
                        instructions: self.recv_insts,
                    };
                }
                _ => {
                    let d = ctx.tsc.saturating_sub(self.t_start);
                    self.recorder.push(self.jitter.borrow_mut().apply(d));
                    self.idx += 1;
                    self.stage = 0;
                }
            }
        }
    }

    fn name(&self) -> &str {
        "IccThreadCovert"
    }
}

/// Standalone sender (IccSMTcovert / IccCoresCovert).
struct SenderProg {
    symbols: Vec<Symbol>,
    idx: usize,
    running: bool,
    slot0: u64,
    period: u64,
    sender_insts: [u64; 4],
}

impl std::fmt::Debug for SenderProg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SenderProg(idx={})", self.idx)
    }
}

impl Program for SenderProg {
    fn next(&mut self, _ctx: &ProgCtx) -> Action {
        if self.idx >= self.symbols.len() {
            return Action::Halt;
        }
        if !self.running {
            self.running = true;
            Action::WaitUntilTsc(self.slot0 + self.idx as u64 * self.period)
        } else {
            self.running = false;
            let s = self.symbols[self.idx];
            self.idx += 1;
            Action::Run {
                class: s.sender_class(),
                instructions: self.sender_insts[s.value() as usize],
            }
        }
    }

    fn name(&self) -> &str {
        "IChannels sender"
    }
}

/// Standalone receiver (IccSMTcovert / IccCoresCovert).
struct ReceiverProg {
    n: usize,
    idx: usize,
    stage: u8,
    slot0: u64,
    period: u64,
    class: InstClass,
    insts: u64,
    t_start: u64,
    recorder: Recorder,
    jitter: Rc<RefCell<JitterSource>>,
}

impl std::fmt::Debug for ReceiverProg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ReceiverProg(idx={})", self.idx)
    }
}

impl Program for ReceiverProg {
    fn next(&mut self, ctx: &ProgCtx) -> Action {
        loop {
            if self.idx >= self.n {
                return Action::Halt;
            }
            match self.stage {
                0 => {
                    self.stage = 1;
                    return Action::WaitUntilTsc(self.slot0 + self.idx as u64 * self.period);
                }
                1 => {
                    self.stage = 2;
                    self.t_start = ctx.tsc;
                    return Action::Run {
                        class: self.class,
                        instructions: self.insts,
                    };
                }
                _ => {
                    let d = ctx.tsc.saturating_sub(self.t_start);
                    self.recorder.push(self.jitter.borrow_mut().apply(d));
                    self.idx += 1;
                    self.stage = 0;
                }
            }
        }
    }

    fn name(&self) -> &str {
        "IChannels receiver"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_levels() -> Vec<Symbol> {
        Symbol::ALL.to_vec()
    }

    #[test]
    fn thread_channel_levels_are_ordered_and_separated() {
        let ch = IChannel::icc_thread_covert();
        let durations = ch.run_symbols(&all_levels());
        // Same-thread: higher sender level ⇒ less remaining ramp ⇒
        // SHORTER receiver duration.
        for w in durations.windows(2) {
            assert!(w[1] < w[0], "durations = {durations:?}");
        }
        // Level separation > 2000 TSC cycles (§6.3, Figure 13).
        for w in durations.windows(2) {
            assert!(
                w[0] - w[1] > 1800,
                "adjacent separation too small: {durations:?}"
            );
        }
    }

    #[test]
    fn smt_channel_levels_are_ordered() {
        let ch = IChannel::icc_smt_covert();
        let durations = ch.run_symbols(&all_levels());
        // Across SMT: higher sender level ⇒ longer co-throttling ⇒
        // LONGER receiver duration.
        for w in durations.windows(2) {
            assert!(w[1] > w[0], "durations = {durations:?}");
        }
    }

    #[test]
    fn cores_channel_levels_are_ordered() {
        let ch = IChannel::icc_cores_covert();
        let durations = ch.run_symbols(&all_levels());
        for w in durations.windows(2) {
            assert!(w[1] > w[0], "durations = {durations:?}");
        }
    }

    #[test]
    fn calibrate_then_transmit_round_trips() {
        for ch in [
            IChannel::icc_thread_covert(),
            IChannel::icc_smt_covert(),
            IChannel::icc_cores_covert(),
        ] {
            let cal = ch.calibrate(3);
            let msg = [
                Symbol::new(2),
                Symbol::new(0),
                Symbol::new(3),
                Symbol::new(1),
                Symbol::new(3),
                Symbol::new(0),
            ];
            let tx = ch.transmit_symbols(&msg, &cal);
            assert_eq!(tx.received, msg, "{} failed", ch.kind());
            assert_eq!(tx.bit_error_rate(), 0.0);
        }
    }

    #[test]
    fn throughput_is_about_2_9_kbps() {
        let ch = IChannel::icc_thread_covert();
        let cal = ch.calibrate(2);
        let msg = vec![Symbol::new(1); 10];
        let tx = ch.transmit_symbols(&msg, &cal);
        let bps = tx.throughput_bps();
        assert!((2_800.0..3_000.0).contains(&bps), "throughput = {bps} b/s");
    }

    #[test]
    fn transmit_bits_api() {
        let ch = IChannel::icc_thread_covert();
        let cal = ch.calibrate(2);
        let bits = [true, false, false, true, true, true];
        let tx = ch.transmit_bits(&bits, &cal);
        assert_eq!(crate::symbols::symbols_to_bits(&tx.received), bits);
    }

    #[test]
    fn calibration_separation_exceeds_2k_cycles() {
        let ch = IChannel::icc_thread_covert();
        let cal = ch.calibrate(3);
        assert!(
            cal.min_separation_cycles() > 1800.0,
            "separation = {}",
            cal.min_separation_cycles()
        );
    }

    #[test]
    fn calibration_thresholds_are_midpoints() {
        let cal = Calibration::from_means([4000.0, 3000.0, 2000.0, 1000.0]);
        assert_eq!(cal.thresholds(), [1500.0, 2500.0, 3500.0]);
        // Nearest-mean decoding is exactly thresholding.
        assert_eq!(cal.decode(1499), Symbol::new(3));
        assert_eq!(cal.decode(1501), Symbol::new(2));
    }

    #[test]
    fn decode_vote_takes_plurality_and_breaks_ties_by_distance() {
        let cal = Calibration::from_means([1000.0, 2000.0, 3000.0, 4000.0]);
        // Plurality: two votes near level 0 beat one near level 2.
        assert_eq!(cal.decode_vote(&[999, 1001, 2990]), Symbol::new(0));
        // A 1–1 tie goes to the smaller total distance (level 2 here:
        // 1998+1 against level 0's 2+1999).
        assert_eq!(cal.decode_vote(&[1002, 2999]), Symbol::new(2));
        // A single sample is exactly `decode`.
        assert_eq!(cal.decode_vote(&[3100]), cal.decode(3100));
    }

    #[test]
    fn calibrated_receiver_is_identity_on_client_rails() {
        for spec in [
            PlatformSpec::cannon_lake(),
            PlatformSpec::coffee_lake(),
            PlatformSpec::haswell(),
        ] {
            for kind in [ChannelKind::Thread, ChannelKind::Smt, ChannelKind::Cores] {
                assert!(
                    ReceiverCalibration::for_channel(&spec, kind).is_legacy(),
                    "{} {kind} should keep the legacy receiver",
                    spec.name
                );
            }
        }
        // Only the server's cross-core channel derives a real tuning.
        let server = PlatformSpec::skylake_server();
        for kind in [ChannelKind::Thread, ChannelKind::Smt] {
            assert!(ReceiverCalibration::for_channel(&server, kind).is_legacy());
        }
        let tuned = ReceiverCalibration::for_channel(&server, ChannelKind::Cores);
        assert!(!tuned.is_legacy());
        assert!(tuned.votes >= 3, "votes = {}", tuned.votes);
        assert!(tuned.window_scale > 1.0, "window = {}", tuned.window_scale);
    }

    #[test]
    fn legacy_mode_reproduces_the_fixed_receiver_bit_for_bit() {
        // On a client rail the calibrated mode resolves to the identity
        // tuning, so the whole transmission is byte-identical to the
        // explicit legacy mode.
        let mut cfg = ChannelConfig::default_cannon_lake();
        cfg.soc = SocConfig::pinned(PlatformSpec::coffee_lake(), Freq::from_ghz(2.0));
        let mut legacy_cfg = cfg.clone();
        legacy_cfg.receiver = ReceiverMode::Legacy;
        let calibrated = IChannel::new(ChannelKind::Cores, cfg);
        let legacy = IChannel::new(ChannelKind::Cores, legacy_cfg);
        assert!(calibrated.tuning().is_legacy());
        let msg = [Symbol::new(1), Symbol::new(3), Symbol::new(0)];
        let (ca, cb) = (calibrated.calibrate(2), legacy.calibrate(2));
        assert_eq!(ca, cb);
        let (ta, tb) = (
            calibrated.transmit_symbols(&msg, &ca),
            legacy.transmit_symbols(&msg, &cb),
        );
        assert_eq!(ta.durations, tb.durations);
        assert_eq!(ta.received, tb.received);
        assert_eq!(ta.elapsed, tb.elapsed);
    }

    #[test]
    fn server_cross_core_votes_stretch_the_transmission() {
        let mut cfg = ChannelConfig::default_cannon_lake();
        cfg.soc = SocConfig::pinned(PlatformSpec::skylake_server(), Freq::from_ghz(2.0));
        let ch = IChannel::new(ChannelKind::Cores, cfg);
        let tuning = ch.tuning();
        assert!(!tuning.is_legacy());
        let votes = tuning.votes as usize;
        assert_eq!(ch.slots_per_symbol(), votes);
        let cal = ch.calibrate(2);
        let msg = [Symbol::new(0), Symbol::new(3), Symbol::new(2)];
        let tx = ch.transmit_symbols(&msg, &cal);
        assert_eq!(tx.received, msg, "voted decode should be clean");
        assert_eq!(tx.durations.len(), msg.len() * votes);
        assert_eq!(
            tx.elapsed,
            ch.config().slot_period.scale((msg.len() * votes) as f64),
            "elapsed must charge every voting slot"
        );
        // The throughput honestly pays the votes-fold slowdown.
        assert!(tx.throughput_bps() < 2_900.0 / (votes as f64 - 0.5));
    }

    #[test]
    fn receiver_calibration_derivation_tracks_compression() {
        assert!(ReceiverCalibration::for_compression(1.0).is_legacy());
        assert!(ReceiverCalibration::for_compression(0.8).is_legacy());
        let moderate = ReceiverCalibration::for_compression(0.7);
        assert_eq!(moderate.votes, 3);
        let strong = ReceiverCalibration::for_compression(0.5625);
        assert_eq!(strong.votes, 5);
        assert!(strong.window_scale > moderate.window_scale);
        // The window stretch is capped.
        assert_eq!(ReceiverCalibration::for_compression(0.1).window_scale, 4.0);
    }

    #[test]
    #[should_panic(expected = "requires SMT")]
    fn smt_channel_rejects_non_smt_platform() {
        let mut cfg = ChannelConfig::default_cannon_lake();
        cfg.soc = SocConfig::pinned(PlatformSpec::coffee_lake(), Freq::from_ghz(2.0));
        let _ = IChannel::new(ChannelKind::Smt, cfg);
    }

    #[test]
    fn channel_works_on_coffee_lake_cross_core() {
        let mut cfg = ChannelConfig::default_cannon_lake();
        cfg.soc = SocConfig::pinned(PlatformSpec::coffee_lake(), Freq::from_ghz(2.0));
        let ch = IChannel::new(ChannelKind::Cores, cfg);
        let cal = ch.calibrate(2);
        let msg = [Symbol::new(0), Symbol::new(3), Symbol::new(2)];
        let tx = ch.transmit_symbols(&msg, &cal);
        assert_eq!(tx.received, msg);
    }
}

//! Extension beyond the paper: higher-order modulation.
//!
//! The paper's channels use four sender levels (2 bits/transaction) but
//! its own characterization finds *at least five* distinguishable
//! throttling levels (Key Conclusion 4) — and our Figure 10(b)
//! regeneration resolves all seven instruction classes. This module
//! generalizes the channel to an arbitrary level alphabet and measures
//! how many bits/transaction actually survive, trading level spacing
//! against measurement noise.

use ichannels_meter::stats::ConfusionMatrix;
use ichannels_uarch::isa::InstClass;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::channel::{ChannelConfig, ChannelKind};

/// A level alphabet: the ordered set of sender classes used as symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelAlphabet {
    classes: Vec<InstClass>,
}

impl LevelAlphabet {
    /// The paper's four levels (Figure 3).
    pub fn paper4() -> Self {
        LevelAlphabet {
            classes: InstClass::SENDER_LEVELS.to_vec(),
        }
    }

    /// Six PHI levels (all vector classes) — 2.58 bits/transaction raw.
    pub fn phi6() -> Self {
        LevelAlphabet {
            classes: vec![
                InstClass::Light128,
                InstClass::Heavy128,
                InstClass::Light256,
                InstClass::Heavy256,
                InstClass::Light512,
                InstClass::Heavy512,
            ],
        }
    }

    /// All seven classes including the scalar baseline (the "send
    /// nothing" level) — log2(7) ≈ 2.81 bits/transaction raw.
    pub fn full7() -> Self {
        LevelAlphabet {
            classes: InstClass::ALL.to_vec(),
        }
    }

    /// Creates an alphabet from explicit classes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two classes are given or any class repeats.
    pub fn new(classes: Vec<InstClass>) -> Self {
        assert!(classes.len() >= 2, "alphabet needs at least two levels");
        for (i, c) in classes.iter().enumerate() {
            assert!(!classes[..i].contains(c), "duplicate class {c} in alphabet");
        }
        LevelAlphabet { classes }
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True if the alphabet is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The classes.
    pub fn classes(&self) -> &[InstClass] {
        &self.classes
    }

    /// Raw information content per transaction (bits).
    pub fn bits_per_symbol(&self) -> f64 {
        (self.len() as f64).log2()
    }
}

/// Evaluation of a higher-order modulation run.
#[derive(Debug, Clone)]
pub struct ExtendedEval {
    /// Levels used.
    pub levels: usize,
    /// Raw bits/transaction (log2 of the alphabet size).
    pub raw_bits_per_symbol: f64,
    /// Measured mutual information per transaction (bias-corrected).
    pub mi_bits_per_symbol: f64,
    /// Effective capacity (bits/s) = MI × symbol rate.
    pub capacity_bps: f64,
    /// Symbol error rate.
    pub ser: f64,
}

/// A multi-level covert channel over an arbitrary alphabet.
///
/// Internally reuses [`crate::channel::IChannel`]'s transaction
/// machinery by mapping
/// each alphabet level onto a dedicated single-symbol run; the
/// calibration stores one mean per level.
#[derive(Debug, Clone)]
pub struct MultiLevelChannel {
    kind: ChannelKind,
    cfg: ChannelConfig,
    alphabet: LevelAlphabet,
}

impl MultiLevelChannel {
    /// Creates a multi-level channel.
    pub fn new(kind: ChannelKind, cfg: ChannelConfig, alphabet: LevelAlphabet) -> Self {
        MultiLevelChannel {
            kind,
            cfg,
            alphabet,
        }
    }

    /// The alphabet.
    pub fn alphabet(&self) -> &LevelAlphabet {
        &self.alphabet
    }

    /// Runs `digits` (alphabet indices) through the channel and returns
    /// the raw receiver durations.
    ///
    /// # Panics
    ///
    /// Panics if a digit is out of range for the alphabet.
    pub fn run_digits(&self, digits: &[usize]) -> Vec<u64> {
        self.run_classes(
            &digits
                .iter()
                .map(|&d| {
                    *self
                        .alphabet
                        .classes
                        .get(d)
                        // lint:allow(R001): documented precondition of a
                        // panicking API (doc: "# Panics").
                        .unwrap_or_else(|| panic!("digit {d} out of range"))
                })
                .collect::<Vec<_>>(),
        )
    }

    /// Low-level driver: one transaction per class in `classes`. The
    /// fixed 4-symbol table of [`crate::channel::IChannel`] cannot carry
    /// arbitrary classes, so each transaction drives the SoC directly.
    fn run_classes(&self, classes: &[InstClass]) -> Vec<u64> {
        use ichannels_soc::program::Script;
        use ichannels_soc::sim::Soc;
        use ichannels_uarch::time::SimTime;
        use ichannels_workload::loops::{instructions_for_duration, MeasuredLoop, Recorder};

        let cfg = &self.cfg;
        let freq = cfg.freq();
        let recv_class = self.kind.receiver_class();
        let recv_insts = instructions_for_duration(recv_class, freq, cfg.receiver_loop);
        let mut out = Vec::with_capacity(classes.len());
        // One independent SoC run per transaction: equivalent to the
        // slotted protocol (each slot starts from a decayed license) and
        // embarrassingly simple to reason about. The simulator itself is
        // built once and re-armed in place between transactions —
        // `Soc::rearm` is pinned bit-identical to a fresh `Soc::new`.
        let mut armed: Option<Soc> = None;
        for &class in classes {
            let soc = match armed.take() {
                Some(mut soc) => {
                    soc.rearm();
                    armed.insert(soc)
                }
                None => armed.insert(Soc::new(cfg.soc.clone())),
            };
            let sender_insts = instructions_for_duration(class, freq, cfg.sender_loop);
            let rec = Recorder::new();
            match self.kind {
                ChannelKind::Thread => {
                    // Sender phase then timed receiver phase on (0,0).
                    let rec2 = rec.clone();
                    let mut stage = 0u8;
                    let mut t0 = 0u64;
                    let prog = ichannels_soc::program::FnProgram::new(
                        "multilevel thread",
                        move |ctx: &ichannels_soc::program::ProgCtx| {
                            match stage {
                                0 => {
                                    stage = 1;
                                    if class == InstClass::Scalar64 {
                                        // "Send nothing" level: skip the PHI.
                                        stage = 2;
                                        t0 = ctx.tsc;
                                        return ichannels_soc::program::Action::Run {
                                            class: recv_class,
                                            instructions: recv_insts,
                                        };
                                    }
                                    ichannels_soc::program::Action::Run {
                                        class,
                                        instructions: sender_insts,
                                    }
                                }
                                1 => {
                                    stage = 2;
                                    t0 = ctx.tsc;
                                    ichannels_soc::program::Action::Run {
                                        class: recv_class,
                                        instructions: recv_insts,
                                    }
                                }
                                _ => {
                                    rec2.push(ctx.tsc.saturating_sub(t0));
                                    ichannels_soc::program::Action::Halt
                                }
                            }
                        },
                    );
                    soc.spawn(0, 0, Box::new(prog));
                }
                ChannelKind::Smt | ChannelKind::Cores => {
                    let (rc, rs) = if self.kind == ChannelKind::Smt {
                        (0, 1)
                    } else {
                        (1, 0)
                    };
                    if class != InstClass::Scalar64 {
                        soc.spawn(0, 0, Box::new(Script::run_loop(class, sender_insts)));
                    }
                    soc.spawn(
                        rc,
                        rs,
                        Box::new(MeasuredLoop::once(recv_class, recv_insts, rec.clone())),
                    );
                }
            }
            // Per-transaction SoC stepping time (out-of-band, like
            // `SymbolRun::run`): each independent run is one rearm
            // simulating a single slot.
            // lint:allow(D002): telemetry-gated span timing; off by
            // default and never part of campaign bytes.
            let stepping = ichannels_obs::enabled().then(std::time::Instant::now);
            soc.run_until_idle(SimTime::from_ms(5.0));
            if let Some(started) = stepping {
                let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                ichannels_obs::observe("soc.step_ns", ns);
                ichannels_obs::counter_add("soc.slots_simulated", 1);
                ichannels_obs::counter_add("soc.rearms", 1);
            }
            out.push(rec.values()[0]);
        }
        out
    }

    /// Calibrates per-level mean durations.
    ///
    /// Served by the same process-wide memo as the four-level
    /// [`crate::channel::Calibration`]: the memo key is the four-level
    /// fingerprint extended with this channel's alphabet, so identical
    /// multi-level configurations train once per process and a memo hit
    /// returns byte-identical means to a fresh training.
    ///
    /// # Panics
    ///
    /// Panics if `reps` is zero.
    pub fn calibrate(&self, reps: usize) -> Vec<f64> {
        assert!(reps > 0, "calibration needs at least one repetition");
        let result = crate::channel::calibration::memoized_means(
            || {
                // lint:allow(D004): audited — like the base fingerprint,
                // the alphabet suffix is a process-local memo key
                // compared only for equality; it is never persisted.
                format!(
                    "{}|ml-alphabet={:?}",
                    crate::channel::calibration::fingerprint(self.kind, &self.cfg, reps),
                    self.alphabet.classes()
                )
            },
            || {
                Ok((0..self.alphabet.len())
                    .map(|d| {
                        let durations = self.run_digits(&vec![d; reps]);
                        durations.iter().map(|&x| x as f64).sum::<f64>() / reps as f64
                    })
                    .collect())
            },
        );
        match result {
            Ok(means) => means,
            // The training closure above is infallible (always `Ok`), so
            // this arm is unreachable; `memoized_means` never fabricates
            // errors of its own.
            // lint:allow(R001): unreachable error arm of an infallible
            // training closure.
            Err(e) => panic!("{e}"),
        }
    }

    /// Nearest-mean decoding.
    pub fn decode(&self, duration: u64, means: &[f64]) -> usize {
        let d = duration as f64;
        means
            .iter()
            .enumerate()
            .min_by(|a, b| (a.1 - d).abs().total_cmp(&(b.1 - d).abs()))
            // lint:allow(R001): the alphabet is non-empty by
            // construction, so `means` always has an entry.
            .expect("non-empty means")
            .0
    }

    /// Evaluates the modulation over `n` random digits.
    pub fn evaluate(&self, means: &[f64], n: usize, seed: u64) -> ExtendedEval {
        let mut rng = SmallRng::seed_from_u64(seed);
        let digits: Vec<usize> = (0..n)
            .map(|_| rng.gen_range(0..self.alphabet.len()))
            .collect();
        let durations = self.run_digits(&digits);
        let mut m = ConfusionMatrix::new(self.alphabet.len());
        for (d, dur) in digits.iter().zip(&durations) {
            m.record(*d, self.decode(*dur, means));
        }
        let symbol_rate = 1.0 / self.cfg.slot_period.as_secs();
        ExtendedEval {
            levels: self.alphabet.len(),
            raw_bits_per_symbol: self.alphabet.bits_per_symbol(),
            mi_bits_per_symbol: m.mutual_information_bits_corrected(),
            capacity_bps: m.mutual_information_bits_corrected() * symbol_rate,
            ser: m.symbol_error_rate(),
        }
    }
}

/// Convenience: evaluate an alphabet on the same-thread channel.
pub fn evaluate_alphabet(alphabet: LevelAlphabet, n: usize, seed: u64) -> ExtendedEval {
    let ch = MultiLevelChannel::new(
        ChannelKind::Thread,
        ChannelConfig::default_cannon_lake(),
        alphabet,
    );
    let means = ch.calibrate(3);
    ch.evaluate(&means, n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphabets() {
        assert_eq!(LevelAlphabet::paper4().len(), 4);
        assert_eq!(LevelAlphabet::phi6().len(), 6);
        assert_eq!(LevelAlphabet::full7().len(), 7);
        assert!((LevelAlphabet::full7().bits_per_symbol() - 2.807).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "duplicate class")]
    fn duplicate_levels_rejected() {
        let _ = LevelAlphabet::new(vec![InstClass::Heavy256, InstClass::Heavy256]);
    }

    #[test]
    fn six_levels_beat_four_in_raw_capacity() {
        let four = evaluate_alphabet(LevelAlphabet::paper4(), 40, 21);
        let six = evaluate_alphabet(LevelAlphabet::phi6(), 40, 21);
        assert!(
            four.mi_bits_per_symbol > 1.8,
            "4-level MI = {}",
            four.mi_bits_per_symbol
        );
        assert!(
            six.mi_bits_per_symbol > four.mi_bits_per_symbol,
            "6-level MI {} !> 4-level MI {}",
            six.mi_bits_per_symbol,
            four.mi_bits_per_symbol
        );
    }

    #[test]
    fn seven_levels_resolvable_on_quiet_system() {
        let seven = evaluate_alphabet(LevelAlphabet::full7(), 35, 22);
        // Some adjacent-level confusion is acceptable; the channel must
        // still clearly beat 2 bits/transaction.
        assert!(
            seven.mi_bits_per_symbol > 2.0,
            "7-level MI = {} (SER {})",
            seven.mi_bits_per_symbol,
            seven.ser
        );
    }
}

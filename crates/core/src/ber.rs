//! Channel evaluation harness: bit-error rate, symbol error rate,
//! confusion matrices, and capacity (paper §6.2, §6.3).

use ichannels_meter::stats::ConfusionMatrix;
use ichannels_soc::sim::Soc;
use ichannels_uarch::time::SimTime;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::channel::{Calibration, IChannel};
use crate::symbols::Symbol;

/// Evaluation result for one channel configuration.
#[derive(Debug, Clone)]
pub struct ChannelEval {
    /// Bit-error rate over the transmitted stream.
    pub ber: f64,
    /// Symbol-error rate.
    pub ser: f64,
    /// Gross throughput (bits/s): 2 bits per transaction.
    pub throughput_bps: f64,
    /// Effective capacity (bits/s): mutual information × symbol rate —
    /// what survives after errors.
    pub capacity_bps: f64,
    /// The 4×4 sent/received confusion matrix.
    pub confusion: ConfusionMatrix,
    /// Number of symbols evaluated.
    pub n_symbols: usize,
}

/// The channel's effective symbol rate (symbols/s): one transaction
/// slot per symbol, stretched by the calibrated receiver's
/// repeat-and-vote count where one is in force.
pub fn symbol_rate(channel: &IChannel) -> f64 {
    1.0 / (channel.config().slot_period.as_secs() * channel.slots_per_symbol() as f64)
}

/// Draws `n` uniform random symbols.
pub fn random_symbols(n: usize, seed: u64) -> Vec<Symbol> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| Symbol::new(rng.gen_range(0..4))).collect()
}

/// Evaluates a channel over `n_symbols` random symbols.
pub fn evaluate(channel: &IChannel, cal: &Calibration, n_symbols: usize, seed: u64) -> ChannelEval {
    evaluate_with(channel, cal, n_symbols, seed, |_| {})
}

/// Evaluates a channel with a SoC setup hook (concurrent applications,
/// the §6.3 noise experiments).
pub fn evaluate_with<F>(
    channel: &IChannel,
    cal: &Calibration,
    n_symbols: usize,
    seed: u64,
    setup: F,
) -> ChannelEval
where
    F: FnOnce(&mut Soc),
{
    assert!(n_symbols > 0, "need at least one symbol");
    let symbols = random_symbols(n_symbols, seed);
    let tx = channel.transmit_symbols_with(&symbols, cal, setup);
    let mut confusion = ConfusionMatrix::new(4);
    for (s, r) in tx.sent.iter().zip(&tx.received) {
        confusion.record(s.value() as usize, r.value() as usize);
    }
    let symbol_rate = symbol_rate(channel);
    ChannelEval {
        ber: confusion.bit_error_rate_2bit(),
        ser: confusion.symbol_error_rate(),
        throughput_bps: tx.throughput_bps(),
        capacity_bps: confusion.mutual_information_bits_corrected() * symbol_rate,
        confusion,
        n_symbols,
    }
}

/// Splits an evaluation into several independent transmissions (fresh
/// SoC per batch) and aggregates — closer to how the paper's 60 s runs
/// repeatedly re-synchronize.
pub fn evaluate_batched(
    channel: &IChannel,
    cal: &Calibration,
    batches: usize,
    symbols_per_batch: usize,
    seed: u64,
) -> ChannelEval {
    assert!(batches > 0 && symbols_per_batch > 0, "empty evaluation");
    let mut confusion = ConfusionMatrix::new(4);
    let mut elapsed = SimTime::ZERO;
    for b in 0..batches {
        let symbols = random_symbols(symbols_per_batch, seed.wrapping_add(b as u64));
        let tx = channel.transmit_symbols(&symbols, cal);
        for (s, r) in tx.sent.iter().zip(&tx.received) {
            confusion.record(s.value() as usize, r.value() as usize);
        }
        elapsed += tx.elapsed;
    }
    let n = batches * symbols_per_batch;
    let symbol_rate = symbol_rate(channel);
    ChannelEval {
        ber: confusion.bit_error_rate_2bit(),
        ser: confusion.symbol_error_rate(),
        throughput_bps: (n as f64 * 2.0) / elapsed.as_secs(),
        capacity_bps: confusion.mutual_information_bits_corrected() * symbol_rate,
        confusion,
        n_symbols: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_system_has_near_zero_ber() {
        let ch = IChannel::icc_thread_covert();
        let cal = ch.calibrate(3);
        let eval = evaluate(&ch, &cal, 40, 1);
        assert!(eval.ber < 0.02, "ber = {}", eval.ber);
        assert!(eval.capacity_bps > 2_500.0, "cap = {}", eval.capacity_bps);
    }

    #[test]
    fn random_symbols_are_deterministic_per_seed() {
        assert_eq!(random_symbols(16, 9), random_symbols(16, 9));
        assert_ne!(random_symbols(16, 9), random_symbols(16, 10));
    }

    #[test]
    fn batched_evaluation_aggregates() {
        let ch = IChannel::icc_smt_covert();
        let cal = ch.calibrate(2);
        let eval = evaluate_batched(&ch, &cal, 2, 8, 77);
        assert_eq!(eval.n_symbols, 16);
        assert_eq!(eval.confusion.total(), 16);
        assert!(eval.throughput_bps > 2_000.0);
    }
}

//! Sender/receiver synchronization (paper §4.3.3).
//!
//! "To correctly transfer data between the Sender and the Receiver
//! threads, it is essential to synchronize their operations precisely.
//! One common way … is by using the wall clock, where each thread can
//! obtain the wall clock using the rdtsc instruction."
//!
//! The channels in [`crate::channel`] assume both parties agree on the
//! slot grid. In practice the receiver's notion of the grid can be off
//! by an unknown offset (process start skew, scheduling). This module
//! provides the recovery protocol: the sender transmits a known
//! *preamble*, and the receiver sweeps candidate offsets, picking the
//! one whose decoded preamble matches best.

use ichannels_uarch::time::SimTime;

use crate::channel::{Calibration, ChannelConfig, ChannelKind, IChannel};
use crate::symbols::Symbol;

/// The default preamble: a level sweep repeated twice. Maximally
/// informative — every level boundary is exercised.
pub fn default_preamble() -> Vec<Symbol> {
    let mut p: Vec<Symbol> = Symbol::ALL.to_vec();
    p.extend([
        Symbol::new(3),
        Symbol::new(0),
        Symbol::new(2),
        Symbol::new(1),
    ]);
    p
}

/// Result of an offset sweep.
#[derive(Debug, Clone)]
pub struct SyncResult {
    /// The offset (applied to the receiver's slot grid) that decoded the
    /// preamble best.
    pub best_offset: SimTime,
    /// Fraction of preamble symbols decoded correctly at that offset.
    pub best_score: f64,
    /// Score per candidate offset (for diagnostics).
    pub scores: Vec<(SimTime, f64)>,
}

/// Builds a channel configuration identical to `cfg` but with the
/// receiver's slot grid shifted by `offset` — the desynchronized
/// receiver under test.
pub fn with_receiver_offset(mut cfg: ChannelConfig, offset: SimTime) -> ChannelConfig {
    // The receiver measures from its (possibly wrong) grid; shifting the
    // cross-core delay models the skew without touching the sender.
    cfg.cross_core_delay += offset;
    cfg
}

/// Scores one candidate offset: transmit the preamble with the receiver
/// shifted by `offset` and count correct decodes.
pub fn score_offset(
    kind: ChannelKind,
    base_cfg: &ChannelConfig,
    cal: &Calibration,
    preamble: &[Symbol],
    offset: SimTime,
) -> f64 {
    let cfg = with_receiver_offset(base_cfg.clone(), offset);
    let ch = IChannel::new(kind, cfg);
    let tx = ch.transmit_symbols(preamble, cal);
    let correct = tx
        .sent
        .iter()
        .zip(&tx.received)
        .filter(|(a, b)| a == b)
        .count();
    correct as f64 / preamble.len() as f64
}

/// Sweeps candidate offsets in `[0, range)` at the given step and
/// returns the best-scoring one. Models a receiver that does not know
/// the true slot phase and recovers it from the preamble.
///
/// # Panics
///
/// Panics if `step` is zero or `range < step`.
pub fn recover_offset(
    kind: ChannelKind,
    base_cfg: &ChannelConfig,
    cal: &Calibration,
    preamble: &[Symbol],
    range: SimTime,
    step: SimTime,
) -> SyncResult {
    assert!(!step.is_zero(), "sweep step must be non-zero");
    assert!(range >= step, "sweep range must cover at least one step");
    let mut scores = Vec::new();
    let mut best_offset = SimTime::ZERO;
    let mut best_score = -1.0;
    let mut offset = SimTime::ZERO;
    while offset < range {
        let score = score_offset(kind, base_cfg, cal, preamble, offset);
        scores.push((offset, score));
        if score > best_score {
            best_score = score;
            best_offset = offset;
        }
        offset += step;
    }
    SyncResult {
        best_offset,
        best_score,
        scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The cross-core channel tolerates small receiver skew but breaks
    /// when the receiver starts after the sender's transition completed.
    #[test]
    fn large_skew_breaks_decoding() {
        let base = ChannelConfig::default_cannon_lake();
        let ch = IChannel::new(ChannelKind::Cores, base.clone());
        let cal = ch.calibrate(2);
        let preamble = default_preamble();
        let aligned = score_offset(ChannelKind::Cores, &base, &cal, &preamble, SimTime::ZERO);
        assert_eq!(aligned, 1.0);
        // Start the receiver ~25 µs late: past the sender's transition,
        // so the queueing signal is gone.
        let skewed = score_offset(
            ChannelKind::Cores,
            &base,
            &cal,
            &preamble,
            SimTime::from_us(25.0),
        );
        assert!(skewed < 0.8, "skewed score = {skewed}");
    }

    /// The preamble sweep finds a working offset again.
    #[test]
    fn preamble_sweep_recovers_alignment() {
        let base = ChannelConfig::default_cannon_lake();
        let ch = IChannel::new(ChannelKind::Cores, base.clone());
        let cal = ch.calibrate(2);
        let preamble = default_preamble();
        let result = recover_offset(
            ChannelKind::Cores,
            &base,
            &cal,
            &preamble,
            SimTime::from_us(20.0),
            SimTime::from_us(4.0),
        );
        assert_eq!(result.best_score, 1.0, "scores = {:?}", result.scores);
        // With the recovered offset, payload transfer works.
        let cfg = with_receiver_offset(base, result.best_offset);
        let ch = IChannel::new(ChannelKind::Cores, cfg);
        let msg = [Symbol::new(2), Symbol::new(0), Symbol::new(3)];
        let tx = ch.transmit_symbols(&msg, &cal);
        assert_eq!(tx.received, msg);
    }
}

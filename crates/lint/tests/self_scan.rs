//! The linter's sharpest test subject is this workspace itself: the
//! committed `lint_baseline.json` must hold against a fresh scan, and
//! seeding a hazard into a pipeline crate must flip the verdict.

use std::path::{Path, PathBuf};
use std::process::Command;

use ichannels_lint::baseline::{count_findings, Baseline};
use ichannels_lint::rules::{run_rules, RuleId};
use ichannels_lint::scanner::scan_str;
use ichannels_lint::{check, find_workspace_root, scan_workspace};

fn root() -> PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("the lint crate lives inside the workspace")
}

fn committed_baseline() -> Baseline {
    let path = root().join("lint_baseline.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} must be committed: {e}", path.display()));
    Baseline::parse(&text).expect("committed baseline parses")
}

#[test]
fn workspace_is_clean_against_the_committed_baseline() {
    let report = check(&root(), &committed_baseline()).expect("scan");
    assert!(
        report.clean(),
        "the workspace must lint clean; regressions: {:#?}, broken allows: {:#?}",
        report.ratchet.regressions,
        report
            .findings
            .iter()
            .filter(|f| f.rule == RuleId::L001)
            .collect::<Vec<_>>()
    );
    assert!(report.files_scanned > 100, "walker found the workspace");
}

#[test]
fn burned_down_crates_hold_at_zero_r001() {
    // PR 9 burned crates/core, crates/lab, and crates/analysis down to
    // zero unsuppressed R001 sites; the baseline must not quietly
    // re-grandfather them.
    let b = committed_baseline();
    for file in scan_workspace(&root()).expect("scan") {
        let prefix_ok = ["crates/core/", "crates/lab/", "crates/analysis/", "src/"]
            .iter()
            .any(|p| file.path.starts_with(p));
        if prefix_ok {
            assert_eq!(
                b.allowed(RuleId::R001, &file.path),
                0,
                "{} must stay fully burned down",
                file.path
            );
        }
    }
}

#[test]
fn seeding_a_hazard_into_a_pipeline_crate_regresses() {
    // Simulate the PR that re-introduces a HashMap iteration and an
    // unwrap into campaign code: merge the injected file's findings
    // with the real scan and the committed baseline must reject it.
    let injected = scan_str(
        "crates/lab/src/injected.rs",
        "use std::collections::HashMap;\nfn f(m: &HashMap<u8, u8>) -> u8 {\n    *m.values().next().unwrap()\n}\n",
    );
    let mut findings = Vec::new();
    for file in scan_workspace(&root()).expect("scan") {
        findings.extend(run_rules(&file));
    }
    findings.extend(run_rules(&injected));
    let ratchet = committed_baseline().compare(&count_findings(&findings));
    let regressed: Vec<(RuleId, &str)> = ratchet
        .regressions
        .iter()
        .map(|d| (d.rule, d.path.as_str()))
        .collect();
    assert!(
        regressed.contains(&(RuleId::D001, "crates/lab/src/injected.rs")),
        "{regressed:?}"
    );
    assert!(
        regressed.contains(&(RuleId::R001, "crates/lab/src/injected.rs")),
        "{regressed:?}"
    );
}

#[test]
fn cli_exits_zero_on_the_workspace_and_nonzero_on_a_seeded_tree() {
    let lint = env!("CARGO_BIN_EXE_ichannels-lint");

    let ok = Command::new(lint)
        .args(["check", "--root"])
        .arg(root())
        .output()
        .expect("run lint");
    assert!(
        ok.status.success(),
        "clean workspace must exit 0: {}{}",
        String::from_utf8_lossy(&ok.stdout),
        String::from_utf8_lossy(&ok.stderr)
    );

    // A miniature workspace with one hazard and an empty baseline: the
    // ratchet must fail the run (exit 1, not an IO error).
    let dir = std::env::temp_dir().join(format!("ichannels-lint-seeded-{}", std::process::id()));
    let src = dir.join("crates/lab/src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("manifest");
    std::fs::write(
        src.join("lib.rs"),
        "pub fn f(v: Option<u8>) -> u8 { v.unwrap() }\n",
    )
    .expect("hazard");
    std::fs::write(
        dir.join("lint_baseline.json"),
        Baseline::default().to_json(),
    )
    .expect("baseline");

    let bad = Command::new(lint)
        .args(["check", "--json", "--root"])
        .arg(&dir)
        .output()
        .expect("run lint");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(bad.status.code(), Some(1), "seeded hazard must exit 1");
    let json = String::from_utf8_lossy(&bad.stdout);
    assert!(json.contains("\"status\": \"regressions\""), "{json}");
    assert!(json.contains("\"rule\": \"R001\""), "{json}");
}

#[test]
fn json_report_of_the_real_tree_is_deterministic() {
    let report = check(&root(), &committed_baseline()).expect("scan");
    let again = check(&root(), &committed_baseline()).expect("scan");
    assert_eq!(report.render_json(), again.render_json());
    assert!(report.render_json().contains("ichannels-lint-report-v1"));
}

// Fixture: seeded RNG construction is the sanctioned pattern.
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn rng_for_cell(seed: u64, cell: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ cell)
}

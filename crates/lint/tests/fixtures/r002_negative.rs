// Fixture: the documented variable set is free to read.
fn knobs() -> bool {
    let regolden = std::env::var_os("ICHANNELS_REGOLDEN").is_some();
    let _results = std::env::var("ICHANNELS_RESULTS");
    regolden
}

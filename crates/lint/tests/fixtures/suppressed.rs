// Fixture: justified suppressions silence the count (but stay visible
// as suppressed findings), while broken ones raise L001.

// lint:allow(D001): probed by exact key only, never iterated.
use std::collections::HashMap;

// lint:allow(D001): same memo, same justification.
fn memo() -> HashMap<String, u64> {
    // lint:allow(D001): same memo, same justification.
    HashMap::new()
}

fn sloppy() {
    let v: Option<u8> = Some(1);
    let _ = v.unwrap(); // lint:allow(R001)
}

// Fixture: wall-clock reads outside the timing allowlist.
use std::time::{Instant, SystemTime};

fn stamp() -> u64 {
    let t = Instant::now();
    let _wall = SystemTime::now();
    t.elapsed().as_nanos() as u64
}

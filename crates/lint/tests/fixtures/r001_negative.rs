// Fixture: typed errors, lookalike method names, test code, and
// mentions in strings are all fine.
fn load(path: &str) -> std::io::Result<String> {
    let text = std::fs::read_to_string(path)?;
    let first = text.lines().next().unwrap_or_default();
    Ok(first.to_string())
}

struct Cursor;
impl Cursor {
    // A domain `expect(char)` helper is not `Result::expect`.
    fn expect(&mut self, _want: char) -> Result<(), String> {
        Ok(())
    }
}

fn parse(cur: &mut Cursor) -> Result<(), String> {
    cur.expect(':')
}

fn doc() -> &'static str {
    "never call .unwrap() in pipeline code; panic! aborts the shard"
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_here() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}

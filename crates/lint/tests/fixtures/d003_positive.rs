// Fixture: ambient entropy sources.
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn rngs() {
    let _a = rand::thread_rng();
    let _b = SmallRng::from_entropy();
    let _c: u64 = rand::random();
}

// Fixture: undocumented environment reads.
fn knobs() {
    let _secret = std::env::var("ICHANNELS_SECRET_KNOB");
    let name = "DYNAMIC";
    let _dynamic = std::env::var(name);
}

// Fixture: unordered collections in an output-producing crate.
use std::collections::HashMap;

fn tally(rows: &[(String, u64)]) -> Vec<String> {
    let mut by_cell: HashMap<String, u64> = HashMap::new();
    for (cell, n) in rows {
        *by_cell.entry(cell.clone()).or_insert(0) += n;
    }
    // Iteration order leaks straight into the emitted lines.
    by_cell.keys().cloned().collect()
}

fn dedupe(keys: &[&str]) -> usize {
    let seen: std::collections::HashSet<&str> = keys.iter().copied().collect();
    seen.len()
}

// Fixture: Debug in diagnostics dies with the process (or lands on
// stderr), never in an artifact — and explicit rendering is clean.
fn check(state: &MyState, ok: bool) -> Result<(), String> {
    assert!(ok, "inconsistent state: {state:?}");
    if state.bad() {
        return Err(format!("rejected state {state:?}"));
    }
    eprintln!("progress: {state:?}");
    Ok(())
}

fn csv_cell(ns: u128) -> String {
    format!("{ns}")
}

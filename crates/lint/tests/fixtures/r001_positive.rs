// Fixture: panicking escape hatches in pipeline code.
fn load(path: &str) -> String {
    let text = std::fs::read_to_string(path).unwrap();
    let first = text.lines().next().expect("at least one line");
    if first.is_empty() {
        panic!("empty header in {path}");
    }
    first.to_string()
}

// Fixture: the ordered replacements and lookalike names are fine.
use std::collections::{BTreeMap, BTreeSet};

fn tally(rows: &[(String, u64)]) -> Vec<String> {
    let mut by_cell: BTreeMap<String, u64> = BTreeMap::new();
    for (cell, n) in rows {
        *by_cell.entry(cell.clone()).or_insert(0) += n;
    }
    by_cell.keys().cloned().collect()
}

// Identifier boundaries: a name merely *containing* the token is not a
// hazard, and neither is the token inside a string or a comment.
struct MyHashMapLike;

fn doc() -> &'static str {
    "prefer BTreeMap over HashMap in output crates"
}

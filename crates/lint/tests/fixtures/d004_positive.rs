// Fixture: Debug formatting feeding a persisted artifact.
fn row_key(kind: MyKind, tuning: &MyTuning) -> String {
    format!("{kind:?}|tuning={tuning:?}")
}

fn csv_cell(v: std::time::Duration) -> String {
    format!("{:#?}", v)
}

// Fixture: simulated time and clock mentions in text are fine.
fn advance(sim_now_cycles: u64, step: u64) -> u64 {
    // The simulator's own clock is deterministic: no wall time here.
    sim_now_cycles + step
}

fn doc() -> &'static str {
    "never call Instant::now in pipeline code"
}

//! Fixture corpus: every rule has a positive fixture (must fire) and a
//! negative one (must stay silent), plus a suppression fixture and a
//! ratchet-regression case. The fixtures live under `tests/fixtures/`
//! as plain `.rs` files scanned under a synthetic output-crate path, so
//! adding a hazard pattern is a one-file change.

use std::collections::BTreeMap;
use std::path::Path;

use ichannels_lint::baseline::{count_findings, Baseline};
use ichannels_lint::rules::{run_rules, Finding, RuleId};
use ichannels_lint::scanner::scan_str;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// Scans a fixture as if it lived in an output-producing crate.
fn scan_fixture(name: &str) -> Vec<Finding> {
    run_rules(&scan_str(
        &format!("crates/core/src/{name}"),
        &fixture(name),
    ))
}

fn active(findings: &[Finding], rule: RuleId) -> usize {
    findings
        .iter()
        .filter(|f| f.rule == rule && !f.suppressed)
        .count()
}

fn suppressed(findings: &[Finding], rule: RuleId) -> usize {
    findings
        .iter()
        .filter(|f| f.rule == rule && f.suppressed)
        .count()
}

fn assert_only(findings: &[Finding], rule: RuleId, at_least: usize) {
    assert!(
        active(findings, rule) >= at_least,
        "{rule:?}: expected >= {at_least} active findings, got {findings:#?}"
    );
    for f in findings {
        assert!(
            f.rule == rule || f.suppressed,
            "unexpected extra finding: {f:#?}"
        );
    }
}

fn assert_silent(findings: &[Finding]) {
    let loud: Vec<&Finding> = findings.iter().filter(|f| !f.suppressed).collect();
    assert!(loud.is_empty(), "negative fixture fired: {loud:#?}");
}

#[test]
fn d001_fixture_pair() {
    assert_only(&scan_fixture("d001_positive.rs"), RuleId::D001, 3);
    assert_silent(&scan_fixture("d001_negative.rs"));
}

#[test]
fn d001_is_scoped_to_output_crates() {
    let outside = run_rules(&scan_str(
        "crates/obs/src/fixture.rs",
        &fixture("d001_positive.rs"),
    ));
    assert_eq!(active(&outside, RuleId::D001), 0);
}

#[test]
fn d002_fixture_pair() {
    assert_only(&scan_fixture("d002_positive.rs"), RuleId::D002, 2);
    assert_silent(&scan_fixture("d002_negative.rs"));
}

#[test]
fn d002_allowlist_covers_bench() {
    let bench = run_rules(&scan_str(
        "crates/bench/src/fixture.rs",
        &fixture("d002_positive.rs"),
    ));
    assert_eq!(active(&bench, RuleId::D002), 0);
}

#[test]
fn d003_fixture_pair() {
    assert_only(&scan_fixture("d003_positive.rs"), RuleId::D003, 3);
    assert_silent(&scan_fixture("d003_negative.rs"));
}

#[test]
fn d004_fixture_pair() {
    assert_only(&scan_fixture("d004_positive.rs"), RuleId::D004, 2);
    assert_silent(&scan_fixture("d004_negative.rs"));
}

#[test]
fn r001_fixture_pair() {
    assert_only(&scan_fixture("r001_positive.rs"), RuleId::R001, 3);
    assert_silent(&scan_fixture("r001_negative.rs"));
}

#[test]
fn r002_fixture_pair() {
    assert_only(&scan_fixture("r002_positive.rs"), RuleId::R002, 2);
    assert_silent(&scan_fixture("r002_negative.rs"));
}

#[test]
fn suppression_fixture_counts_nothing_but_stays_auditable() {
    let findings = scan_fixture("suppressed.rs");
    assert_eq!(active(&findings, RuleId::D001), 0, "{findings:#?}");
    assert_eq!(suppressed(&findings, RuleId::D001), 3);
    // The unjustified allow is broken (L001) and does NOT silence the
    // unwrap it sits on.
    assert_eq!(active(&findings, RuleId::L001), 1);
    assert_eq!(active(&findings, RuleId::R001), 1);
    // Suppressed findings never enter the ratchet counts.
    let counts = count_findings(&findings);
    assert!(!counts.keys().any(|(r, _)| *r == RuleId::D001));
}

#[test]
fn ratchet_regression_case() {
    // Grandfather the positive fixture's R001 count, then "edit" the
    // file to add one more unwrap: the ratchet must fail on exactly
    // that (rule, file) pair, and removing one must register as an
    // improvement eligible for --ratchet-down.
    let path = "crates/core/src/r001_positive.rs";
    let original = fixture("r001_positive.rs");
    let base_counts = count_findings(&run_rules(&scan_str(path, &original)));
    let baseline = Baseline::from_counts(&base_counts);

    let grown = format!("{original}\nfn extra() {{ Some(1).unwrap(); }}\n");
    let grown_counts = count_findings(&run_rules(&scan_str(path, &grown)));
    let ratchet = baseline.compare(&grown_counts);
    assert_eq!(ratchet.regressions.len(), 1, "{ratchet:#?}");
    assert_eq!(ratchet.regressions[0].rule, RuleId::R001);
    assert_eq!(ratchet.regressions[0].path, path);

    let shrunk = original.replacen(".unwrap()", ".unwrap_or_default()", 1);
    let shrunk_counts = count_findings(&run_rules(&scan_str(path, &shrunk)));
    let down = baseline.compare(&shrunk_counts);
    assert!(down.regressions.is_empty(), "{down:#?}");
    assert_eq!(down.improvements.len(), 1);
    // --ratchet-down locks the lower count in.
    let rewritten = Baseline::from_counts(&shrunk_counts);
    assert_eq!(
        rewritten.allowed(RuleId::R001, path),
        baseline.allowed(RuleId::R001, path) - 1
    );
}

#[test]
fn every_fixture_is_exercised() {
    // Catch orphaned fixture files: each .rs under tests/fixtures/ must
    // be referenced by this harness.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let me = include_str!("fixtures.rs");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("fixtures dir")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    let mut missing: BTreeMap<String, ()> = BTreeMap::new();
    for name in names {
        if name.ends_with(".rs") && !me.contains(&format!("\"{name}\"")) {
            missing.insert(name, ());
        }
    }
    assert!(missing.is_empty(), "unreferenced fixtures: {missing:?}");
}

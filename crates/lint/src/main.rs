//! The `lint` CLI: `cargo run -p ichannels-lint -- check [flags]`.
//!
//! Exit codes: 0 clean, 1 baseline regression or broken suppression,
//! 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use ichannels_lint::baseline::{count_findings, Baseline};
use ichannels_lint::{check, find_workspace_root};

const USAGE: &str = "\
usage: lint check [--json] [--out FILE] [--root DIR] [--baseline FILE]
                  [--ratchet-down] [--write-baseline]

  check            scan the workspace and compare against the baseline
  --json           print the JSON report to stdout instead of the summary
  --out FILE       additionally write the JSON report to FILE
  --root DIR       workspace root (default: ascend from the current dir)
  --baseline FILE  baseline path (default: <root>/lint_baseline.json)
  --ratchet-down   rewrite the baseline when counts dropped (never raises)
  --write-baseline re-bless the baseline from this scan (maintainer only)

Rules, suppression syntax (`// lint:allow(RULE): reason`), and the
ratchet workflow are documented in docs/LINTS.md.";

struct Args {
    json: bool,
    out: Option<PathBuf>,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    ratchet_down: bool,
    write_baseline: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        json: false,
        out: None,
        root: None,
        baseline: None,
        ratchet_down: false,
        write_baseline: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--ratchet-down" => args.ratchet_down = true,
            "--write-baseline" => args.write_baseline = true,
            "--out" | "--root" | "--baseline" => {
                let value = it.next().ok_or_else(|| format!("{arg} needs a value"))?;
                let path = PathBuf::from(value);
                match arg.as_str() {
                    "--out" => args.out = Some(path),
                    "--root" => args.root = Some(path),
                    _ => args.baseline = Some(path),
                }
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("check") => {}
        Some("--help" | "-h" | "help") | None => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`\n{USAGE}");
            return ExitCode::from(2);
        }
    }
    let args = match parse_args(&argv[1..]) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let root = match args.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| find_workspace_root(&cwd))
    }) {
        Some(root) => root,
        None => {
            eprintln!("cannot locate the workspace root (pass --root DIR)");
            return ExitCode::from(2);
        }
    };
    let baseline_path = args
        .baseline
        .unwrap_or_else(|| root.join("lint_baseline.json"));
    let baseline = if baseline_path.is_file() {
        match std::fs::read_to_string(&baseline_path).and_then(|t| Baseline::parse(&t)) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        }
    } else if args.write_baseline {
        Baseline::default()
    } else {
        eprintln!(
            "{}: missing baseline — run `lint check --write-baseline` once to seed it",
            baseline_path.display()
        );
        return ExitCode::from(2);
    };

    let report = match check(&root, &baseline) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(out) = &args.out {
        if let Some(parent) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("cannot create {}: {e}", parent.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = std::fs::write(out, report.render_json()) {
            eprintln!("cannot write {}: {e}", out.display());
            return ExitCode::from(2);
        }
    }
    if args.json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_human(&baseline));
    }

    let counts = count_findings(&report.findings);
    if args.write_baseline {
        // Re-bless: record exactly this scan. Deliberate policy
        // changes only — the ratchet exists so this stays rare.
        if let Err(e) = std::fs::write(&baseline_path, Baseline::from_counts(&counts).to_json()) {
            eprintln!("cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!("baseline re-blessed at {}", baseline_path.display());
        return if report.has_broken_allows() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    if !report.clean() {
        return ExitCode::FAILURE;
    }
    if args.ratchet_down && !report.ratchet.improvements.is_empty() {
        // Counts only ever go down here: regressions already failed
        // above, so this rewrite cannot raise any entry.
        if let Err(e) = std::fs::write(&baseline_path, Baseline::from_counts(&counts).to_json()) {
            eprintln!("cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "baseline ratcheted down at {} ({} entries improved)",
            baseline_path.display(),
            report.ratchet.improvements.len()
        );
    }
    ExitCode::SUCCESS
}

//! The CI ratchet: `lint_baseline.json` grandfathers existing finding
//! counts per (rule, file) and fails any increase.
//!
//! Counts may only go down: a PR that fixes sites runs
//! `check --ratchet-down` to rewrite the baseline with the lower
//! counts, and a PR that adds an unsuppressed hazard fails with the
//! exact (rule, file) regression. The file is hand-rolled JSON with
//! sorted keys, so rewrites are deterministic and diff cleanly.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;

use crate::rules::{Finding, RuleId};

/// Schema tag of the baseline file.
pub const BASELINE_SCHEMA: &str = "ichannels-lint-baseline-v1";

/// Grandfathered finding counts: rule name → file → count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<String, BTreeMap<String, usize>>,
}

/// One (rule, file) whose count moved relative to the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    /// Rule that moved.
    pub rule: RuleId,
    /// Workspace-relative file.
    pub path: String,
    /// Grandfathered count.
    pub baseline: usize,
    /// Count found by this scan.
    pub found: usize,
}

/// The scan-vs-baseline comparison.
#[derive(Debug, Clone, Default)]
pub struct Ratchet {
    /// Counts that went up (CI failure).
    pub regressions: Vec<Delta>,
    /// Counts that went down (eligible for `--ratchet-down`).
    pub improvements: Vec<Delta>,
}

/// Tallies unsuppressed findings into (rule, file) counts. L001
/// (broken suppressions) is never grandfathered — it is excluded here
/// and handled as an unconditional failure by the caller.
pub fn count_findings(findings: &[Finding]) -> BTreeMap<(RuleId, String), usize> {
    let mut counts = BTreeMap::new();
    for f in findings {
        if f.suppressed || f.rule == RuleId::L001 {
            continue;
        }
        *counts.entry((f.rule, f.path.clone())).or_insert(0) += 1;
    }
    counts
}

impl Baseline {
    /// Builds a baseline holding exactly `counts`.
    pub fn from_counts(counts: &BTreeMap<(RuleId, String), usize>) -> Self {
        let mut b = Baseline::default();
        for (&(rule, ref path), &n) in counts {
            if n > 0 {
                b.counts
                    .entry(rule.name().to_string())
                    .or_default()
                    .insert(path.clone(), n);
            }
        }
        b
    }

    /// The grandfathered count for one (rule, file); zero when absent.
    pub fn allowed(&self, rule: RuleId, path: &str) -> usize {
        self.counts
            .get(rule.name())
            .and_then(|files| files.get(path))
            .copied()
            .unwrap_or(0)
    }

    /// Total grandfathered count for one rule.
    pub fn total(&self, rule: RuleId) -> usize {
        self.counts
            .get(rule.name())
            .map(|files| files.values().sum())
            .unwrap_or(0)
    }

    /// Compares a scan against the baseline.
    pub fn compare(&self, counts: &BTreeMap<(RuleId, String), usize>) -> Ratchet {
        let mut ratchet = Ratchet::default();
        for (&(rule, ref path), &found) in counts {
            let baseline = self.allowed(rule, path);
            if found > baseline {
                ratchet.regressions.push(Delta {
                    rule,
                    path: path.clone(),
                    baseline,
                    found,
                });
            } else if found < baseline {
                ratchet.improvements.push(Delta {
                    rule,
                    path: path.clone(),
                    baseline,
                    found,
                });
            }
        }
        // Baseline entries with no findings at all are improvements to
        // zero (the file was fixed or deleted).
        for (rule_name, files) in &self.counts {
            let Some(rule) = RuleId::parse(rule_name) else {
                continue;
            };
            for (path, &baseline) in files {
                if !counts.contains_key(&(rule, path.clone())) && baseline > 0 {
                    ratchet.improvements.push(Delta {
                        rule,
                        path: path.clone(),
                        baseline,
                        found: 0,
                    });
                }
            }
        }
        ratchet
            .regressions
            .sort_by(|a, b| (a.rule, &a.path).cmp(&(b.rule, &b.path)));
        ratchet
            .improvements
            .sort_by(|a, b| (a.rule, &a.path).cmp(&(b.rule, &b.path)));
        ratchet
    }

    /// Renders the deterministic JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"{BASELINE_SCHEMA}\",");
        out.push_str("  \"counts\": {");
        let mut first_rule = true;
        for (rule, files) in &self.counts {
            if files.is_empty() {
                continue;
            }
            if !first_rule {
                out.push(',');
            }
            first_rule = false;
            let _ = write!(out, "\n    \"{rule}\": {{");
            let mut first_file = true;
            for (path, n) in files {
                if !first_file {
                    out.push(',');
                }
                first_file = false;
                let _ = write!(out, "\n      \"{path}\": {n}");
            }
            out.push_str("\n    }");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parses the JSON document written by [`Baseline::to_json`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for anything that is not a baseline file
    /// (wrong schema tag, malformed JSON, non-integer counts).
    pub fn parse(text: &str) -> io::Result<Self> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        p.expect(b'{')?;
        let mut schema_seen = false;
        let mut baseline = Baseline::default();
        loop {
            p.skip_ws();
            if p.eat(b'}') {
                break;
            }
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            match key.as_str() {
                "schema" => {
                    let tag = p.string()?;
                    if tag != BASELINE_SCHEMA {
                        return Err(invalid(format!(
                            "schema is `{tag}`, expected `{BASELINE_SCHEMA}`"
                        )));
                    }
                    schema_seen = true;
                }
                "counts" => {
                    p.expect(b'{')?;
                    loop {
                        p.skip_ws();
                        if p.eat(b'}') {
                            break;
                        }
                        let rule = p.string()?;
                        p.skip_ws();
                        p.expect(b':')?;
                        p.skip_ws();
                        p.expect(b'{')?;
                        let files = baseline.counts.entry(rule).or_default();
                        loop {
                            p.skip_ws();
                            if p.eat(b'}') {
                                break;
                            }
                            let path = p.string()?;
                            p.skip_ws();
                            p.expect(b':')?;
                            p.skip_ws();
                            files.insert(path, p.number()?);
                            p.skip_ws();
                            let _ = p.eat(b',');
                        }
                        p.skip_ws();
                        let _ = p.eat(b',');
                    }
                }
                other => return Err(invalid(format!("unexpected key `{other}`"))),
            }
            p.skip_ws();
            let _ = p.eat(b',');
        }
        if !schema_seen {
            return Err(invalid("missing schema tag".to_string()));
        }
        Ok(baseline)
    }
}

fn invalid(message: String) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("lint_baseline: {message}"),
    )
}

/// A byte-cursor parser for the restricted baseline grammar (strings
/// without escapes, unsigned integers, objects).
struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.at += 1;
        }
    }

    fn eat(&mut self, want: u8) -> bool {
        if self.bytes.get(self.at) == Some(&want) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, want: u8) -> io::Result<()> {
        if self.eat(want) {
            Ok(())
        } else {
            Err(invalid(format!(
                "expected `{}` at byte {}",
                want as char, self.at
            )))
        }
    }

    fn string(&mut self) -> io::Result<String> {
        self.expect(b'"')?;
        let start = self.at;
        while let Some(&b) = self.bytes.get(self.at) {
            if b == b'"' {
                let s = String::from_utf8_lossy(&self.bytes[start..self.at]).into_owned();
                self.at += 1;
                return Ok(s);
            }
            if b == b'\\' {
                return Err(invalid("escapes are not used in baseline keys".to_string()));
            }
            self.at += 1;
        }
        Err(invalid("unterminated string".to_string()))
    }

    fn number(&mut self) -> io::Result<usize> {
        let start = self.at;
        while self.bytes.get(self.at).is_some_and(u8::is_ascii_digit) {
            self.at += 1;
        }
        if self.at == start {
            return Err(invalid(format!("expected a count at byte {start}")));
        }
        String::from_utf8_lossy(&self.bytes[start..self.at])
            .parse()
            .map_err(|_| invalid("count out of range".to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(entries: &[(RuleId, &str, usize)]) -> BTreeMap<(RuleId, String), usize> {
        entries
            .iter()
            .map(|&(r, p, n)| ((r, p.to_string()), n))
            .collect()
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let b = Baseline::from_counts(&counts(&[
            (RuleId::R001, "crates/core/src/a.rs", 3),
            (RuleId::D001, "crates/lab/src/b.rs", 1),
        ]));
        let json = b.to_json();
        assert!(json.contains(BASELINE_SCHEMA));
        let back = Baseline::parse(&json).expect("round-trips");
        assert_eq!(back, b);
        assert_eq!(back.allowed(RuleId::R001, "crates/core/src/a.rs"), 3);
        assert_eq!(back.allowed(RuleId::R001, "crates/core/src/zzz.rs"), 0);
    }

    #[test]
    fn regressions_and_improvements_are_detected() {
        let b = Baseline::from_counts(&counts(&[
            (RuleId::R001, "a.rs", 2),
            (RuleId::R001, "b.rs", 2),
            (RuleId::R001, "c.rs", 2),
        ]));
        let now = counts(&[
            (RuleId::R001, "a.rs", 3), // worse
            (RuleId::R001, "b.rs", 1), // better
            // c.rs fixed entirely
            (RuleId::D001, "d.rs", 1), // brand new
        ]);
        let r = b.compare(&now);
        assert_eq!(r.regressions.len(), 2);
        assert_eq!(r.regressions[0].rule, RuleId::D001);
        assert_eq!(r.regressions[1].path, "a.rs");
        assert_eq!(r.improvements.len(), 2);
        assert_eq!(r.improvements[1].found, 0, "cleared file ratchets to zero");
    }

    #[test]
    fn ratchet_down_counts_produce_a_smaller_baseline() {
        let before = Baseline::from_counts(&counts(&[(RuleId::R001, "a.rs", 5)]));
        let now = counts(&[(RuleId::R001, "a.rs", 2)]);
        assert!(before.compare(&now).regressions.is_empty());
        let after = Baseline::from_counts(&now);
        assert_eq!(after.allowed(RuleId::R001, "a.rs"), 2);
        assert!(after.to_json().len() < before.to_json().len() + 16);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let err =
            Baseline::parse("{\"schema\": \"nope\", \"counts\": {}}").expect_err("must reject");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}

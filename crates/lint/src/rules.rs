//! The rule set: determinism hazards (D00x) and robustness hazards
//! (R00x), each documented in `docs/LINTS.md`.
//!
//! Every rule is a line/token-level approximation — the scanner gives
//! lexical truth (code vs comment vs string), not types. Where a rule
//! over-approximates (a `HashMap` that is provably never iterated, a
//! telemetry-gated clock read) the remedy is an inline
//! `// lint:allow(RULE): reason` justification; where it
//! under-approximates, the dynamic golden/invariance suites remain the
//! backstop.

use crate::scanner::{statement_range, Line, SourceFile};

/// Identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Unordered `HashMap`/`HashSet` in an output-producing crate.
    D001,
    /// Wall-clock reads (`Instant::now`/`SystemTime`) outside the
    /// timing allowlist.
    D002,
    /// Ambient entropy: unseeded RNG construction.
    D003,
    /// Debug formatting (`{:?}`) feeding formatted output in an
    /// output-producing crate.
    D004,
    /// Malformed or unjustified `lint:allow` suppression.
    L001,
    /// `unwrap()`/`expect()`/`panic!` in non-test pipeline code.
    R001,
    /// `std::env::var` reads outside the documented variable set.
    R002,
}

impl RuleId {
    /// Every rule, in report order.
    pub const ALL: [RuleId; 7] = [
        RuleId::D001,
        RuleId::D002,
        RuleId::D003,
        RuleId::D004,
        RuleId::L001,
        RuleId::R001,
        RuleId::R002,
    ];

    /// The rule's stable name (`D001`, …).
    pub fn name(self) -> &'static str {
        match self {
            RuleId::D001 => "D001",
            RuleId::D002 => "D002",
            RuleId::D003 => "D003",
            RuleId::D004 => "D004",
            RuleId::L001 => "L001",
            RuleId::R001 => "R001",
            RuleId::R002 => "R002",
        }
    }

    /// One-line summary (the full rationale lives in `docs/LINTS.md`).
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::D001 => "unordered HashMap/HashSet in an output-producing crate",
            RuleId::D002 => "wall-clock read outside the timing allowlist",
            RuleId::D003 => "ambient entropy source (unseeded RNG)",
            RuleId::D004 => "Debug formatting ({:?}) in formatted output",
            RuleId::L001 => "malformed or unjustified lint:allow",
            RuleId::R001 => "unwrap()/expect()/panic! in non-test pipeline code",
            RuleId::R002 => "env var read outside the documented set",
        }
    }

    /// Parses a rule name (`"D001"` → [`RuleId::D001`]).
    pub fn parse(name: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.name() == name)
    }
}

/// One rule hit at one source line.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The rule that fired.
    pub rule: RuleId,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong and what to do instead.
    pub message: String,
    /// The offending line, trimmed and capped.
    pub excerpt: String,
    /// `Some` when an inline `lint:allow` suppresses this finding (the
    /// finding is still reported for audit, but does not count).
    pub suppressed: bool,
}

/// Crates whose artifacts (JSONL/CSV/goldens/stdout contracts) make
/// unordered iteration and Debug formatting byte hazards. Matched as
/// path prefixes on the workspace-relative path.
pub const OUTPUT_CRATE_PREFIXES: [&str; 6] = [
    "src/",
    "crates/core/",
    "crates/lab/",
    "crates/meter/",
    "crates/analysis/",
    "crates/bench/",
];

/// Files allowed to read the wall clock without justification: the obs
/// span probe (off-by-default telemetry) and the bench crate (its whole
/// purpose is timing).
pub const D002_ALLOWLIST: [&str; 2] = ["crates/obs/src/span.rs", "crates/bench/"];

/// Environment variables the workspace documents (README): anything
/// else read via `env::var` is an undeclared knob.
pub const DOCUMENTED_ENV: [&str; 2] = ["ICHANNELS_REGOLDEN", "ICHANNELS_RESULTS"];

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// True when `hay` contains `tok` delimited by non-identifier bytes.
fn has_token(hay: &str, tok: &str) -> bool {
    token_at(hay, tok).is_some()
}

fn token_at(hay: &str, tok: &str) -> Option<usize> {
    let bytes = hay.as_bytes();
    let mut from = 0usize;
    while let Some(rel) = hay[from..].find(tok) {
        let at = from + rel;
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let end = at + tok.len();
        let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + 1;
    }
    None
}

fn in_output_crate(path: &str) -> bool {
    OUTPUT_CRATE_PREFIXES.iter().any(|p| path.starts_with(p))
}

fn excerpt(line: &Line) -> String {
    let t = line.raw.trim();
    if t.chars().count() > 120 {
        let cut: String = t.chars().take(117).collect();
        format!("{cut}...")
    } else {
        t.to_string()
    }
}

/// Diagnostic-context markers: a formatted string whose statement
/// builds a panic, assertion, error value, or stderr message dies with
/// the process (or lands on stderr) instead of in an artifact, so D004
/// exempts it.
const DIAGNOSTIC_MARKERS: [&str; 9] = [
    "panic!",
    "assert",
    "unreachable!",
    "eprint",
    "Err(",
    "err(",
    "Error",
    "message:",
    "reject(",
];

fn statement_text(file: &SourceFile, i: usize) -> String {
    let (start, end) = statement_range(&file.lines, i);
    let mut text = String::new();
    for line in &file.lines[start..=end] {
        text.push_str(&line.masked);
        text.push('\n');
    }
    text
}

fn push(findings: &mut Vec<Finding>, file: &SourceFile, i: usize, rule: RuleId, message: String) {
    let line = &file.lines[i];
    findings.push(Finding {
        rule,
        path: file.path.clone(),
        line: i + 1,
        message,
        excerpt: excerpt(line),
        suppressed: line.allows.contains(&rule),
    });
}

/// Runs every rule over one scanned file.
pub fn run_rules(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let output_crate = in_output_crate(&file.path);
    let d002_allowed = D002_ALLOWLIST.iter().any(|p| file.path.starts_with(p));
    let mut d004_statements_hit: Vec<usize> = Vec::new();

    for (i, line) in file.lines.iter().enumerate() {
        // L001 fires even in test code: a broken suppression anywhere
        // undermines the audit trail.
        for problem in &line.bad_allows {
            push(&mut findings, file, i, RuleId::L001, problem.clone());
        }
        if line.in_test {
            continue;
        }
        let masked = line.masked.as_str();

        // D001 — unordered std collections where bytes are produced.
        if output_crate {
            for coll in ["HashMap", "HashSet"] {
                if has_token(masked, coll) {
                    push(
                        &mut findings,
                        file,
                        i,
                        RuleId::D001,
                        format!(
                            "`{coll}` in an output-producing crate: iteration order is \
                             unordered and can leak into persisted bytes — use \
                             BTreeMap/BTreeSet, or justify a never-iterated use with \
                             lint:allow(D001)"
                        ),
                    );
                }
            }
        }

        // D002 — wall-clock reads.
        if !d002_allowed {
            for clock in ["Instant::now", "SystemTime"] {
                if masked.contains(clock) && token_boundary_ok(masked, clock) {
                    push(
                        &mut findings,
                        file,
                        i,
                        RuleId::D002,
                        format!(
                            "`{clock}` outside the timing allowlist: wall-clock values \
                             must never feed campaign bytes — keep timing in obs \
                             spans/bench, or justify an out-of-band read with \
                             lint:allow(D002)"
                        ),
                    );
                }
            }
        }

        // D003 — ambient entropy.
        for source in ["thread_rng", "from_entropy", "OsRng", "getrandom"] {
            if has_token(masked, source) {
                push(
                    &mut findings,
                    file,
                    i,
                    RuleId::D003,
                    format!(
                        "`{source}` is an ambient entropy source: every RNG must be \
                         seeded from the campaign's (catalog, seed) cell-key \
                         derivation so trials replay bit-identically"
                    ),
                );
            }
        }
        if masked.contains("rand::random") {
            push(
                &mut findings,
                file,
                i,
                RuleId::D003,
                "`rand::random` draws from ambient entropy: derive a seeded SmallRng \
                 from the cell-key rule instead"
                    .to_string(),
            );
        }

        // D004 — Debug specs inside format strings (anchored once per
        // statement; diagnostic statements are exempt).
        if output_crate && has_debug_spec(line) {
            let (start, _) = statement_range(&file.lines, i);
            if !d004_statements_hit.contains(&start) {
                d004_statements_hit.push(start);
                let stmt = statement_text(file, i);
                let diagnostic = DIAGNOSTIC_MARKERS.iter().any(|m| stmt.contains(m));
                if !diagnostic {
                    push(
                        &mut findings,
                        file,
                        i,
                        RuleId::D004,
                        "Debug formatting (`{:?}`) feeding formatted output: Debug is \
                         not a stable serialization and may change across toolchains — \
                         render each field explicitly, or audit the consumer and \
                         justify with lint:allow(D004)"
                            .to_string(),
                    );
                }
            }
        }

        // R001 — panicking escape hatches in pipeline code.
        for (pat, what) in [
            (".unwrap()", "unwrap()"),
            (".expect(\"", "expect()"),
            ("panic!", "panic!"),
        ] {
            let hit = if pat == "panic!" {
                has_token(masked, "panic!")
            } else {
                masked.contains(pat)
            };
            if hit {
                push(
                    &mut findings,
                    file,
                    i,
                    RuleId::R001,
                    format!(
                        "`{what}` in non-test pipeline code aborts the whole shard: \
                         surface a typed error (ChannelError, ResumeCorruption, \
                         io::Error) or justify a structural invariant with \
                         lint:allow(R001)"
                    ),
                );
            }
        }

        // R002 — undocumented environment reads.
        for pat in ["env::var_os(", "env::var("] {
            let Some(at) = masked.find(pat) else { continue };
            let arg = first_string_literal(&line.raw[at + pat.len()..]);
            match arg {
                Some(name) if DOCUMENTED_ENV.contains(&name.as_str()) => {}
                Some(name) => push(
                    &mut findings,
                    file,
                    i,
                    RuleId::R002,
                    format!(
                        "environment variable `{name}` is not in the documented set \
                         ({}): document it in README + docs/LINTS.md or drop the read",
                        DOCUMENTED_ENV.join(", ")
                    ),
                ),
                None => push(
                    &mut findings,
                    file,
                    i,
                    RuleId::R002,
                    "env read with a non-literal variable name cannot be audited \
                     against the documented set"
                        .to_string(),
                ),
            }
            break; // one finding per line is enough
        }
    }
    findings
}

/// `contains` plus an identifier-boundary check on both ends of the
/// match (for multi-segment patterns like `Instant::now`).
fn token_boundary_ok(hay: &str, pat: &str) -> bool {
    let bytes = hay.as_bytes();
    let mut from = 0usize;
    while let Some(rel) = hay[from..].find(pat) {
        let at = from + rel;
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let end = at + pat.len();
        let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = at + 1;
    }
    false
}

/// True when the line holds a `{…:?}` / `{…:#?}` Debug spec *inside a
/// string literal* (masked content shows `_` at that byte position).
fn has_debug_spec(line: &Line) -> bool {
    let raw = line.raw.as_bytes();
    let masked = line.masked.as_bytes();
    for pat in [":?}", ":#?}"] {
        let mut from = 0usize;
        while let Some(rel) = line.raw[from..].find(pat) {
            let at = from + rel;
            if masked.get(at) == Some(&b'_') && raw.get(at) == Some(&b':') {
                return true;
            }
            from = at + 1;
        }
    }
    false
}

/// Extracts the first `"…"` literal from a raw-text slice (used for
/// the R002 variable-name audit).
fn first_string_literal(rest: &str) -> Option<String> {
    let bytes = rest.as_bytes();
    let open = rest.find('"')?;
    // Only accept a literal that starts the argument list (allowing
    // whitespace), so `env::var(name)` stays non-literal.
    if !rest[..open].trim().is_empty() {
        return None;
    }
    let mut out = String::new();
    let mut i = open + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Some(out),
            b'\\' => {
                if i + 1 < bytes.len() {
                    out.push(bytes[i + 1] as char);
                    i += 1;
                }
                i += 1;
            }
            b => {
                out.push(b as char);
                i += 1;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan_str;

    fn findings(path: &str, src: &str) -> Vec<Finding> {
        run_rules(&scan_str(path, src))
    }

    fn rules_of(f: &[Finding]) -> Vec<RuleId> {
        f.iter().filter(|f| !f.suppressed).map(|f| f.rule).collect()
    }

    #[test]
    fn d001_only_fires_in_output_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(
            rules_of(&findings("crates/lab/src/x.rs", src)),
            vec![RuleId::D001]
        );
        assert!(rules_of(&findings("crates/obs/src/x.rs", src)).is_empty());
    }

    #[test]
    fn d002_respects_the_allowlist() {
        let src = "let t = std::time::Instant::now();\n";
        assert_eq!(
            rules_of(&findings("crates/soc/src/x.rs", src)),
            vec![RuleId::D002]
        );
        assert!(rules_of(&findings("crates/obs/src/span.rs", src)).is_empty());
        assert!(rules_of(&findings("crates/bench/src/bin/x.rs", src)).is_empty());
    }

    #[test]
    fn d004_skips_diagnostic_statements_and_anchors_once() {
        let persisted = "let key = format!(\n    \"{a:?}|{b:?}\",\n);\n";
        let hits = findings("crates/core/src/x.rs", persisted);
        assert_eq!(rules_of(&hits), vec![RuleId::D004]);
        let diagnostic = "return Err(format!(\"bad {x:?}\"));\n";
        assert!(rules_of(&findings("crates/core/src/x.rs", diagnostic)).is_empty());
        let assertion = "assert!(ok, \"state = {s:?}\");\n";
        assert!(rules_of(&findings("crates/core/src/x.rs", assertion)).is_empty());
    }

    #[test]
    fn r001_matches_real_panics_not_lookalikes() {
        let src = "x.unwrap();\ny.expect(\"msg\");\npanic!(\"boom\");\ncur.expect(':');\nlet z = x.unwrap_or_default();\n";
        assert_eq!(
            rules_of(&findings("crates/pdn/src/x.rs", src)),
            vec![RuleId::R001, RuleId::R001, RuleId::R001]
        );
    }

    #[test]
    fn r001_skips_test_modules_and_strings() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\n";
        assert!(rules_of(&findings("crates/core/src/x.rs", src)).is_empty());
        let in_string = "let msg = \"call .unwrap() here\";\n";
        assert!(rules_of(&findings("crates/core/src/x.rs", in_string)).is_empty());
    }

    #[test]
    fn r002_audits_the_documented_set() {
        let documented = "let v = std::env::var_os(\"ICHANNELS_REGOLDEN\");\n";
        assert!(rules_of(&findings("crates/core/src/x.rs", documented)).is_empty());
        let rogue = "let v = std::env::var(\"ICHANNELS_SECRET\");\n";
        assert_eq!(
            rules_of(&findings("crates/core/src/x.rs", rogue)),
            vec![RuleId::R002]
        );
        let dynamic = "let v = std::env::var(name);\n";
        assert_eq!(
            rules_of(&findings("crates/core/src/x.rs", dynamic)),
            vec![RuleId::R002]
        );
    }

    #[test]
    fn d003_flags_entropy_sources() {
        let src = "let mut rng = thread_rng();\nlet r = SmallRng::from_entropy();\n";
        assert_eq!(
            rules_of(&findings("crates/soc/src/x.rs", src)),
            vec![RuleId::D003, RuleId::D003]
        );
        let seeded = "let mut rng = SmallRng::seed_from_u64(seed);\n";
        assert!(rules_of(&findings("crates/soc/src/x.rs", seeded)).is_empty());
    }

    #[test]
    fn suppressed_findings_are_reported_but_do_not_count() {
        let src = "// lint:allow(D001): memo cache is keyed lookup only, never iterated\nuse std::collections::HashMap;\n";
        let all = findings("crates/core/src/x.rs", src);
        assert_eq!(all.len(), 1);
        assert!(all[0].suppressed);
        assert!(rules_of(&all).is_empty());
    }

    #[test]
    fn l001_flags_unjustified_allows_even_in_tests() {
        let src = "let a = 1; // lint:allow(R001)\n";
        assert_eq!(
            rules_of(&findings("crates/core/src/x.rs", src)),
            vec![RuleId::L001]
        );
    }
}

//! Report rendering: the human summary printed by `check` and the
//! deterministic JSON document CI uploads as an artifact.

use std::fmt::Write as _;

use crate::baseline::{Baseline, Ratchet};
use crate::rules::{Finding, RuleId};

/// Schema tag of the JSON report.
pub const REPORT_SCHEMA: &str = "ichannels-lint-report-v1";

/// Everything one `check` run produced.
#[derive(Debug, Clone)]
pub struct Report {
    /// Files scanned.
    pub files_scanned: usize,
    /// Every finding (including suppressed ones, for audit).
    pub findings: Vec<Finding>,
    /// The scan-vs-baseline comparison.
    pub ratchet: Ratchet,
}

impl Report {
    /// True when CI should pass: no count above its grandfathered
    /// baseline and no broken suppression.
    pub fn clean(&self) -> bool {
        self.ratchet.regressions.is_empty() && !self.has_broken_allows()
    }

    /// True when any `lint:allow` was malformed or unjustified.
    pub fn has_broken_allows(&self) -> bool {
        self.findings
            .iter()
            .any(|f| f.rule == RuleId::L001 && !f.suppressed)
    }

    /// (active, suppressed) finding totals per rule, in rule order.
    pub fn totals(&self) -> Vec<(RuleId, usize, usize)> {
        RuleId::ALL
            .iter()
            .map(|&rule| {
                let active = self
                    .findings
                    .iter()
                    .filter(|f| f.rule == rule && !f.suppressed)
                    .count();
                let suppressed = self
                    .findings
                    .iter()
                    .filter(|f| f.rule == rule && f.suppressed)
                    .count();
                (rule, active, suppressed)
            })
            .collect()
    }

    /// The human summary. Grandfathered findings are totalled, not
    /// listed — only regressions (and broken suppressions) print line
    /// detail, so a clean run stays a short table.
    pub fn render_human(&self, baseline: &Baseline) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "ichannels-lint: scanned {} files", self.files_scanned);
        let _ = writeln!(out, "  rule  active  suppressed  baseline  summary");
        for (rule, active, suppressed) in self.totals() {
            let _ = writeln!(
                out,
                "  {:<5} {:>6} {:>11} {:>9}  {}",
                rule.name(),
                active,
                suppressed,
                baseline.total(rule),
                rule.summary()
            );
        }
        if self.has_broken_allows() {
            let _ = writeln!(
                out,
                "\nbroken suppressions (fix the comment, L001 is never grandfathered):"
            );
            for f in self.findings.iter().filter(|f| f.rule == RuleId::L001) {
                let _ = writeln!(out, "  {}:{}: {}", f.path, f.line, f.message);
            }
        }
        if self.ratchet.regressions.is_empty() {
            if !self.has_broken_allows() {
                let _ = writeln!(
                    out,
                    "\nOK: no (rule, file) count exceeds lint_baseline.json"
                );
            }
            if !self.ratchet.improvements.is_empty() {
                let _ = writeln!(
                    out,
                    "{} (rule, file) count(s) are below baseline — run `check --ratchet-down` \
                     to lock in the improvement",
                    self.ratchet.improvements.len()
                );
            }
        } else {
            let _ = writeln!(out, "\nbaseline regressions:");
            for delta in &self.ratchet.regressions {
                let _ = writeln!(
                    out,
                    "  {} in {}: {} found, {} grandfathered",
                    delta.rule.name(),
                    delta.path,
                    delta.found,
                    delta.baseline
                );
                for f in self
                    .findings
                    .iter()
                    .filter(|f| f.rule == delta.rule && f.path == delta.path && !f.suppressed)
                {
                    let _ = writeln!(out, "    line {}: {}", f.line, f.excerpt);
                }
                if let Some(f) = self
                    .findings
                    .iter()
                    .find(|f| f.rule == delta.rule && f.path == delta.path)
                {
                    let _ = writeln!(out, "    -> {}", f.message);
                }
            }
            let _ = writeln!(
                out,
                "\nFAIL: fix the site, justify it with `// lint:allow(RULE): reason`, \
                 or (for deliberate policy changes) re-bless via `check --write-baseline` \
                 (see docs/LINTS.md)"
            );
        }
        out
    }

    /// The deterministic JSON document (sorted findings, stable field
    /// order) CI uploads as an artifact.
    pub fn render_json(&self) -> String {
        let mut findings = self.findings.clone();
        findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"{REPORT_SCHEMA}\",");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(
            out,
            "  \"status\": \"{}\",",
            if self.clean() { "clean" } else { "regressions" }
        );
        out.push_str("  \"totals\": {");
        for (i, (rule, active, suppressed)) in self.totals().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    \"{}\": {{\"active\": {active}, \"suppressed\": {suppressed}}}",
                rule.name()
            );
        }
        out.push_str("\n  },\n  \"regressions\": [");
        for (i, d) in self.ratchet.regressions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"found\": {}, \"baseline\": {}}}",
                d.rule.name(),
                escape(&d.path),
                d.found,
                d.baseline
            );
        }
        out.push_str("\n  ],\n  \"improvements\": [");
        for (i, d) in self.ratchet.improvements.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"found\": {}, \"baseline\": {}}}",
                d.rule.name(),
                escape(&d.path),
                d.found,
                d.baseline
            );
        }
        out.push_str("\n  ],\n  \"findings\": [");
        for (i, f) in findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \
                 \"suppressed\": {}, \"message\": \"{}\", \"excerpt\": \"{}\"}}",
                f.rule.name(),
                escape(&f.path),
                f.line,
                f.suppressed,
                escape(&f.message),
                escape(&f.excerpt)
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Minimal JSON string escaping for the report fields.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::count_findings;
    use crate::rules::run_rules;
    use crate::scanner::scan_str;

    fn report_for(src: &str, baseline: &Baseline) -> Report {
        let findings = run_rules(&scan_str("crates/core/src/x.rs", src));
        let ratchet = baseline.compare(&count_findings(&findings));
        Report {
            files_scanned: 1,
            findings,
            ratchet,
        }
    }

    #[test]
    fn clean_report_is_short_and_regressions_carry_detail() {
        let empty = Baseline::default();
        let clean = report_for("let x = 1;\n", &empty);
        assert!(clean.clean());
        assert!(clean.render_human(&empty).contains("OK: no (rule, file)"));

        let dirty = report_for("x.unwrap();\n", &empty);
        assert!(!dirty.clean());
        let human = dirty.render_human(&empty);
        assert!(human.contains("R001 in crates/core/src/x.rs: 1 found, 0 grandfathered"));
        assert!(human.contains("line 1: x.unwrap();"));
    }

    #[test]
    fn json_report_is_deterministic_and_tagged() {
        let empty = Baseline::default();
        let r = report_for(
            "x.unwrap();\nlet m: std::collections::HashMap<u8, u8>;\n",
            &empty,
        );
        let a = r.render_json();
        let b = r.render_json();
        assert_eq!(a, b);
        assert!(a.contains(REPORT_SCHEMA));
        assert!(a.contains("\"status\": \"regressions\""));
        assert!(a.contains("\"rule\": \"D001\""));
    }

    #[test]
    fn broken_allow_fails_even_with_empty_baseline() {
        let empty = Baseline::default();
        let r = report_for("let a = 1; // lint:allow(R001)\n", &empty);
        assert!(!r.clean());
        assert!(r.render_human(&empty).contains("broken suppressions"));
    }
}

//! `ichannels-lint`: a hand-rolled, workspace-aware static analyzer
//! that rejects determinism and robustness hazards before they reach
//! the campaign pipeline.
//!
//! Everything this reproduction ships — goldens, shard merges, fuzz
//! findings, `analysis.jsonl` — rests on one contract: campaign bytes
//! are a pure function of (catalog, seed), invariant under threads,
//! shards, and row order. The golden/invariance suites enforce that
//! contract *dynamically*, after a violation lands; this crate rejects
//! the common hazard classes *statically*, at CI time:
//!
//! | rule | hazard |
//! |------|--------|
//! | D001 | `HashMap`/`HashSet` in output-producing crates |
//! | D002 | `Instant::now`/`SystemTime` outside the timing allowlist |
//! | D003 | ambient entropy (`thread_rng`, `from_entropy`, …) |
//! | D004 | `{:?}` Debug formatting feeding formatted output |
//! | L001 | malformed or unjustified `lint:allow` |
//! | R001 | `unwrap()`/`expect()`/`panic!` in non-test pipeline code |
//! | R002 | `env::var` reads outside the documented set |
//!
//! Findings are suppressible only via an inline justification
//! (`// lint:allow(D001): reason`), and `lint_baseline.json`
//! grandfathers existing counts per (rule, file) while failing CI on
//! any increase — the ratchet. `docs/LINTS.md` documents every rule,
//! the suppression syntax, and the ratchet workflow.
//!
//! Zero dependencies (like `ichannels-obs`): the scanner, rules,
//! baseline JSON, and report rendering are all hand-rolled.

#![deny(missing_docs)]

pub mod baseline;
pub mod report;
pub mod rules;
pub mod scanner;

use std::io;
use std::path::{Path, PathBuf};

use baseline::{count_findings, Baseline};
use report::Report;
use rules::run_rules;
use scanner::{scan_str, SourceFile};

/// Directories under `crates/` that are never scanned: vendored
/// API-compatible stand-ins are third-party idiom, not pipeline code.
pub const SKIP_CRATES: [&str; 1] = ["compat"];

/// Collects every scannable `.rs` file: `src/` (the umbrella crate)
/// plus `crates/<member>/src/` for every member except [`SKIP_CRATES`],
/// in sorted workspace-relative order. Test trees (`tests/`,
/// `examples/`, fixtures) are outside these roots by construction.
///
/// # Errors
///
/// Propagates I/O errors from the directory walk.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let umbrella = root.join("src");
    if umbrella.is_dir() {
        walk(&umbrella, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .filter(|p| {
                !SKIP_CRATES
                    .iter()
                    .any(|skip| p.file_name().and_then(|n| n.to_str()) == Some(skip))
            })
            .collect();
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                walk(&src, &mut files)?;
            }
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, files)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Scans every workspace source file under `root`.
///
/// # Errors
///
/// Propagates I/O errors from the walk and the file reads.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut scanned = Vec::new();
    for path in workspace_sources(root)? {
        let text = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        scanned.push(scan_str(&rel, &text));
    }
    Ok(scanned)
}

/// Runs the full check: scan, rules, baseline comparison.
///
/// # Errors
///
/// Propagates I/O errors from the workspace scan.
pub fn check(root: &Path, baseline: &Baseline) -> io::Result<Report> {
    let files = scan_workspace(root)?;
    let mut findings = Vec::new();
    for file in &files {
        findings.extend(run_rules(file));
    }
    let ratchet = baseline.compare(&count_findings(&findings));
    Ok(Report {
        files_scanned: files.len(),
        findings,
        ratchet,
    })
}

/// Locates the workspace root: ascends from `start` until a directory
/// holding both `Cargo.toml` and `crates/` is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("the lint crate lives inside the workspace")
    }

    #[test]
    fn walker_covers_the_pipeline_and_skips_compat() {
        let files = workspace_sources(&repo_root()).expect("walk");
        let rels: Vec<String> = files
            .iter()
            .map(|p| {
                p.strip_prefix(repo_root())
                    .expect("under root")
                    .to_string_lossy()
                    .replace('\\', "/")
            })
            .collect();
        assert!(rels.iter().any(|p| p == "crates/lab/src/campaigns.rs"));
        assert!(
            rels.iter().any(|p| p == "crates/lint/src/lib.rs"),
            "scans itself"
        );
        assert!(rels.iter().any(|p| p == "src/lib.rs"));
        assert!(
            !rels.iter().any(|p| p.contains("compat")),
            "compat is vendored"
        );
        assert!(!rels.iter().any(|p| p.contains("tests/")), "no test trees");
        let mut sorted = rels.clone();
        sorted.sort();
        assert_eq!(rels, sorted, "deterministic order");
    }
}

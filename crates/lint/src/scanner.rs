//! Line/token-level source model: comment/string masking, `#[cfg(test)]`
//! tracking, statement grouping, and `lint:allow` suppressions.
//!
//! The scanner never parses Rust properly — it maintains just enough
//! lexical state (block comments, string/char literals, brace depth)
//! to answer the questions the rules ask:
//!
//! * "is this token in code, a comment, or a string?" — via the
//!   length-preserving [`Line::masked`] view, where comment bytes
//!   become spaces and string/char *contents* become `_` (quotes are
//!   kept), so byte positions line up with [`Line::raw`];
//! * "is this line test code?" — `#[cfg(test)]` items are tracked by
//!   brace depth and whole test/fixture trees are never scanned;
//! * "is this finding suppressed?" — a `// lint:allow(RULE): reason`
//!   comment covers the statement it precedes (or sits on).

use crate::rules::RuleId;

/// One source line with its lexical annotations.
#[derive(Debug, Clone)]
pub struct Line {
    /// The original line text (no trailing newline).
    pub raw: String,
    /// `raw` with comments blanked to spaces and string/char literal
    /// contents replaced by `_`, byte-for-byte the same length.
    pub masked: String,
    /// True inside a `#[cfg(test)]` item (including the attribute and
    /// closing-brace lines).
    pub in_test: bool,
    /// Rules suppressed on this line by a justified `lint:allow`.
    pub allows: Vec<RuleId>,
    /// `lint:allow` comments on this line that could not be honored
    /// (unknown rule, missing `: reason`), with a description.
    pub bad_allows: Vec<String>,
}

/// A scanned source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// The annotated lines.
    pub lines: Vec<Line>,
}

/// Lexical state carried across lines by the masker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lex {
    Normal,
    /// Nested block comment depth.
    Block(u32),
    /// Inside a `"…"` string literal.
    Str,
    /// Inside a raw string literal closed by `"` + this many `#`.
    RawStr(u32),
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Masks one line, mutating the carried lexical state. Returns the
/// masked bytes (same length as the input).
fn mask_line(raw: &[u8], state: &mut Lex) -> Vec<u8> {
    let mut out = Vec::with_capacity(raw.len());
    let mut i = 0usize;
    while i < raw.len() {
        let b = raw[i];
        match *state {
            Lex::Block(depth) => {
                if b == b'/' && raw.get(i + 1) == Some(&b'*') {
                    *state = Lex::Block(depth + 1);
                    out.extend([b' ', b' ']);
                    i += 2;
                } else if b == b'*' && raw.get(i + 1) == Some(&b'/') {
                    *state = if depth == 1 {
                        Lex::Normal
                    } else {
                        Lex::Block(depth - 1)
                    };
                    out.extend([b' ', b' ']);
                    i += 2;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
            Lex::Str => {
                if b == b'\\' {
                    out.push(b'_');
                    if i + 1 < raw.len() {
                        out.push(b'_');
                        i += 1;
                    }
                    i += 1;
                } else if b == b'"' {
                    *state = Lex::Normal;
                    out.push(b'"');
                    i += 1;
                } else {
                    out.push(b'_');
                    i += 1;
                }
            }
            Lex::RawStr(hashes) => {
                let closes = b == b'"'
                    && raw[i + 1..].len() >= hashes as usize
                    && raw[i + 1..i + 1 + hashes as usize]
                        .iter()
                        .all(|&c| c == b'#');
                if closes {
                    *state = Lex::Normal;
                    out.push(b'"');
                    out.extend(std::iter::repeat_n(b'#', hashes as usize));
                    i += 1 + hashes as usize;
                } else {
                    out.push(b'_');
                    i += 1;
                }
            }
            Lex::Normal => {
                if b == b'/' && raw.get(i + 1) == Some(&b'/') {
                    // Line comment: blank the rest of the line.
                    out.extend(std::iter::repeat_n(b' ', raw.len() - i));
                    i = raw.len();
                } else if b == b'/' && raw.get(i + 1) == Some(&b'*') {
                    *state = Lex::Block(1);
                    out.extend([b' ', b' ']);
                    i += 2;
                } else if b == b'"' {
                    *state = Lex::Str;
                    out.push(b'"');
                    i += 1;
                } else if (b == b'r' || b == b'b') && (i == 0 || !is_ident(raw[i - 1])) {
                    if let Some((prefix_len, hashes)) = raw_string_hashes(&raw[i..]) {
                        // `b"…"` processes escapes like a plain string;
                        // any `r` prefix makes the body raw.
                        let rawish = b == b'r' || raw.get(i + 1) == Some(&b'r');
                        out.extend_from_slice(&raw[i..i + prefix_len]);
                        *state = if rawish {
                            Lex::RawStr(hashes)
                        } else {
                            Lex::Str
                        };
                        i += prefix_len;
                    } else {
                        out.push(b);
                        i += 1;
                    }
                } else if b == b'\'' {
                    if let Some(len) = char_literal_len(&raw[i..]) {
                        out.push(b'\'');
                        out.extend(std::iter::repeat_n(b'_', len - 2));
                        out.push(b'\'');
                        i += len;
                    } else {
                        // A lifetime: keep the tick, scan on.
                        out.push(b'\'');
                        i += 1;
                    }
                } else {
                    out.push(b);
                    i += 1;
                }
            }
        }
    }
    out
}

/// If `bytes` starts a raw/byte string literal (`r"`, `r#"`, `br##"`,
/// `b"` …), returns `(prefix_len_including_quote, hash_count)`.
fn raw_string_hashes(bytes: &[u8]) -> Option<(usize, u32)> {
    let mut i = 0usize;
    if bytes.get(i) == Some(&b'b') {
        i += 1;
    }
    let rawish = bytes.get(i) == Some(&b'r');
    if rawish {
        i += 1;
    }
    let mut hashes = 0u32;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return None;
    }
    if !rawish && hashes > 0 {
        return None;
    }
    // A plain identifier `b` followed by `"` only counts with the
    // leading b/r actually present.
    if i == 0 {
        return None;
    }
    Some((i + 1, hashes))
}

/// If `bytes` (starting at a `'`) is a char literal, returns its total
/// byte length (including both quotes); `None` means it is a lifetime.
fn char_literal_len(bytes: &[u8]) -> Option<usize> {
    debug_assert_eq!(bytes.first(), Some(&b'\''));
    match bytes.get(1)? {
        b'\\' => {
            // Escaped char: skip the escaped byte, then scan (bounded)
            // for the closing quote — covers `'\u{1F600}'`.
            let mut i = 3usize;
            while i < bytes.len().min(12) {
                if bytes[i] == b'\'' {
                    return Some(i + 1);
                }
                i += 1;
            }
            None
        }
        &lead if lead >= 0xC0 => {
            // Multibyte scalar: its UTF-8 length, then the close quote.
            let len = if lead >= 0xF0 {
                4
            } else if lead >= 0xE0 {
                3
            } else {
                2
            };
            (bytes.get(1 + len) == Some(&b'\'')).then_some(len + 3)
        }
        _ => (bytes.get(2) == Some(&b'\'')).then_some(3),
    }
}

/// Parses every `// lint:allow(RULE): reason` on a raw line. Returns
/// `(honored_rules, problems)`.
///
/// Only a *real*, non-doc `//` comment carries directives: a `//`
/// inside a string literal (masked to `_`) is data, and `///`/`//!`
/// doc text merely *describes* the syntax. The masked view is
/// length-preserving, so the comment is found by its blanked bytes.
fn parse_allows(raw: &str, masked: &str) -> (Vec<RuleId>, Vec<String>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    let Some(comment_at) = comment_start(raw, masked) else {
        return (allows, bad);
    };
    if raw[comment_at..].starts_with("///") || raw[comment_at..].starts_with("//!") {
        return (allows, bad);
    }
    let comment = &raw[comment_at..];
    let mut rest = comment;
    while let Some(at) = rest.find("lint:allow(") {
        let tail = &rest[at + "lint:allow(".len()..];
        let Some(close) = tail.find(')') else {
            bad.push("unterminated lint:allow(".to_string());
            break;
        };
        let name = tail[..close].trim();
        let after = &tail[close + 1..];
        match RuleId::parse(name) {
            None => bad.push(format!("lint:allow names unknown rule `{name}`")),
            Some(rule) => {
                let justified = after
                    .strip_prefix(':')
                    .map(|r| {
                        let reason = r.split("lint:allow(").next().unwrap_or("");
                        !reason.trim().is_empty()
                    })
                    .unwrap_or(false);
                if justified {
                    allows.push(rule);
                } else {
                    bad.push(format!(
                        "lint:allow({name}) has no `: reason` justification"
                    ));
                }
            }
        }
        rest = after;
    }
    (allows, bad)
}

/// The byte offset of the line's real `//` comment, if any: the first
/// `//` in `raw` whose bytes the masker blanked to spaces (a `//`
/// kept verbatim is code, one masked to `_` is string content).
fn comment_start(raw: &str, masked: &str) -> Option<usize> {
    let rb = raw.as_bytes();
    let mb = masked.as_bytes();
    (0..rb.len().saturating_sub(1).min(mb.len().saturating_sub(1)))
        .find(|&i| rb[i] == b'/' && rb[i + 1] == b'/' && mb[i] == b' ' && mb[i + 1] == b' ')
}

/// Statement-grouping cap: a suppression or statement window never
/// spans more than this many lines.
pub const STATEMENT_CAP: usize = 16;

fn ends_statement(masked: &str) -> bool {
    matches!(
        masked.trim_end().as_bytes().last(),
        Some(b';' | b'{' | b'}')
    )
}

/// The line range (inclusive) of the statement containing line `i`:
/// back to the previous terminator (`;`/`{`/`}`) or blank line, forward
/// to the next, both capped at [`STATEMENT_CAP`].
pub fn statement_range(lines: &[Line], i: usize) -> (usize, usize) {
    let mut start = i;
    while start > 0 && i - (start - 1) < STATEMENT_CAP {
        let prev = lines[start - 1].masked.trim();
        if prev.is_empty() || ends_statement(&lines[start - 1].masked) {
            break;
        }
        start -= 1;
    }
    let mut end = i;
    while end + 1 < lines.len() && (end - i) < STATEMENT_CAP {
        if ends_statement(&lines[end].masked) {
            break;
        }
        end += 1;
    }
    (start, end)
}

/// Scans `text` under the given workspace-relative `path`.
pub fn scan_str(path: &str, text: &str) -> SourceFile {
    let mut state = Lex::Normal;
    let mut lines: Vec<Line> = Vec::new();
    for raw in text.lines() {
        let masked_bytes = mask_line(raw.as_bytes(), &mut state);
        let masked = String::from_utf8_lossy(&masked_bytes).into_owned();
        let (allows, bad_allows) = parse_allows(raw, &masked);
        lines.push(Line {
            raw: raw.to_string(),
            masked,
            in_test: false,
            allows,
            bad_allows,
        });
    }
    mark_tests(&mut lines);
    spread_allows(&mut lines);
    SourceFile {
        path: path.to_string(),
        lines,
    }
}

/// Marks every line belonging to a `#[cfg(test)]` item by tracking
/// brace depth from the attribute to the item's closing brace.
fn mark_tests(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut pending_attr = false;
    let mut test_entry: Option<i64> = None;
    for line in lines.iter_mut() {
        let was_test = test_entry.is_some();
        let has_attr = test_entry.is_none() && line.masked.contains("#[cfg(test)]");
        if has_attr {
            pending_attr = true;
        }
        let mut entered = false;
        for &b in line.masked.as_bytes() {
            match b {
                b'{' => {
                    if pending_attr && test_entry.is_none() {
                        test_entry = Some(depth);
                        pending_attr = false;
                        entered = true;
                    }
                    depth += 1;
                }
                b'}' => {
                    depth -= 1;
                    if test_entry == Some(depth) {
                        test_entry = None;
                        entered = true; // the closing line is still test code
                    }
                }
                _ => {}
            }
        }
        // A braceless `#[cfg(test)] use …;` item ends at the semicolon.
        if pending_attr && test_entry.is_none() && ends_statement(&line.masked) && !has_attr {
            pending_attr = false;
        }
        line.in_test = was_test || test_entry.is_some() || has_attr || pending_attr || entered;
    }
}

/// Extends each `lint:allow` to cover the statement it precedes: from
/// the first code line at/after the comment through the statement
/// terminator, capped at [`STATEMENT_CAP`] lines.
fn spread_allows(lines: &mut [Line]) {
    // Spread from a snapshot of the comment-authored allows only, so a
    // line that merely *received* coverage does not re-spread past its
    // own statement terminator.
    let authored: Vec<Vec<RuleId>> = lines.iter().map(|l| l.allows.clone()).collect();
    for (i, allows) in authored.iter().enumerate() {
        if allows.is_empty() {
            continue;
        }
        // Find the first code-bearing line at or after the comment.
        let mut j = i;
        while j < lines.len() && lines[j].masked.trim().is_empty() {
            j += 1;
            if j - i >= STATEMENT_CAP {
                break;
            }
        }
        let mut covered = 0usize;
        while j < lines.len() && covered < STATEMENT_CAP {
            for &rule in allows {
                if !lines[j].allows.contains(&rule) {
                    lines[j].allows.push(rule);
                }
            }
            if j > i && ends_statement(&lines[j].masked) {
                break;
            }
            j += 1;
            covered += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn masked(src: &str) -> Vec<String> {
        scan_str("crates/core/src/x.rs", src)
            .lines
            .iter()
            .map(|l| l.masked.clone())
            .collect()
    }

    #[test]
    fn comments_and_strings_are_masked_length_preserving() {
        let src = "let x = \"HashMap\"; // HashMap here\nlet y = 1; /* multi\nline */ let z = 2;";
        let m = masked(src);
        assert!(!m[0].contains("HashMap"), "{}", m[0]);
        assert!(m[0].contains("\"_______\""), "{}", m[0]);
        assert!(!m[1].contains("multi"), "{}", m[1]);
        assert!(
            m[2].contains("let z = 2;") && !m[2].contains("line"),
            "{}",
            m[2]
        );
        for (r, mm) in src.lines().zip(&m) {
            assert_eq!(r.len(), mm.len(), "masking must preserve byte length");
        }
    }

    #[test]
    fn char_literals_mask_but_lifetimes_survive() {
        let m = masked("fn f<'a>(x: &'a str) -> char { '\\'' }\nlet c = 'x'; let u = '\u{3a9}';");
        assert!(m[0].contains("<'a>"), "{}", m[0]);
        assert!(m[0].contains("'__'"), "{}", m[0]);
        assert!(m[1].contains("'_'"), "{}", m[1]);
    }

    #[test]
    fn raw_strings_mask_to_the_matching_terminator() {
        let m = masked("let s = r#\"a \"quoted\" {:?}\"#; let t = 1;");
        assert!(m[0].contains("let t = 1;"), "{}", m[0]);
        assert!(!m[0].contains("quoted"), "{}", m[0]);
    }

    #[test]
    fn cfg_test_items_are_marked_to_their_closing_brace() {
        let f = scan_str(
            "crates/core/src/x.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn live2() {}\n",
        );
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn allow_comment_covers_the_following_statement() {
        let f = scan_str(
            "crates/core/src/x.rs",
            "// lint:allow(D004): audited\nlet s = format!(\n    \"{x:?}\",\n);\nlet t = 1;\n",
        );
        assert!(f.lines[1].allows.contains(&RuleId::D004));
        assert!(f.lines[2].allows.contains(&RuleId::D004));
        assert!(!f.lines[4].allows.contains(&RuleId::D004));
    }

    #[test]
    fn allows_in_strings_and_doc_comments_are_inert() {
        let f = scan_str(
            "crates/core/src/x.rs",
            "/// Suppress with `// lint:allow(RULE): reason`.\nlet u = \"// lint:allow(D999)\";\n//! syntax: lint:allow(RULE)\n",
        );
        for line in &f.lines {
            assert!(line.allows.is_empty(), "{:?}", line.raw);
            assert!(line.bad_allows.is_empty(), "{:?}", line.raw);
        }
    }

    #[test]
    fn unjustified_or_unknown_allows_are_reported() {
        let f = scan_str(
            "crates/core/src/x.rs",
            "let a = 1; // lint:allow(D001)\nlet b = 2; // lint:allow(D999): whatever\n",
        );
        assert!(f.lines[0].allows.is_empty());
        assert_eq!(f.lines[0].bad_allows.len(), 1);
        assert!(f.lines[1].bad_allows[0].contains("D999"));
    }
}

//! Software programs: the code that runs on simulated hardware threads.
//!
//! A [`Program`] is a state machine the simulator drives: at every action
//! boundary the simulator calls [`Program::next`] with the current
//! `rdtsc` value and the program returns its next [`Action`]. Covert
//! channel senders/receivers, micro-benchmarks, and noise applications
//! are all `Program`s; the timing a receiver observes between two `next`
//! calls *is* its measurement (the `start = rdtsc; loop; tp = rdtsc −
//! start` pattern of Figure 3).

use ichannels_uarch::isa::InstClass;
use ichannels_uarch::time::SimTime;

/// What a program asks the hardware thread to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Execute a tight loop: `instructions` instructions of `class`.
    Run {
        /// Instruction class of the loop body.
        class: InstClass,
        /// Number of dynamic instructions to retire.
        instructions: u64,
    },
    /// Busy-wait (`rdtsc` spin) until the TSC reaches the given value —
    /// the wall-clock synchronization of §4.3.3.
    WaitUntilTsc(u64),
    /// Idle (sleep) for a fixed duration.
    SleepFor(SimTime),
    /// Terminate the program.
    Halt,
}

/// Context passed to [`Program::next`] at each action boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgCtx {
    /// Current simulated instant.
    pub now: SimTime,
    /// Current `rdtsc` value.
    pub tsc: u64,
    /// Physical core index this program is pinned to.
    pub core: usize,
    /// SMT hardware-thread index on that core (0 or 1).
    pub smt: usize,
}

/// A software thread, driven by the simulator.
///
/// Implementors typically record `ctx.tsc` across a `Run` action to
/// measure its duration — exactly how the IChannels receiver measures
/// its throttling period.
pub trait Program {
    /// Returns the next action. Called once at spawn and then at every
    /// action boundary.
    fn next(&mut self, ctx: &ProgCtx) -> Action;

    /// Short label for traces and debugging.
    fn name(&self) -> &str {
        "program"
    }
}

impl std::fmt::Debug for dyn Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Program({})", self.name())
    }
}

/// A program built from a fixed list of actions (runs them in order,
/// then halts). Handy for tests and simple workloads.
#[derive(Debug, Clone)]
pub struct Script {
    actions: std::vec::IntoIter<Action>,
    label: String,
}

impl Script {
    /// Creates a script that performs `actions` in order, then halts.
    pub fn new(actions: Vec<Action>, label: impl Into<String>) -> Self {
        Script {
            actions: actions.into_iter(),
            label: label.into(),
        }
    }

    /// A single `Run` loop.
    pub fn run_loop(class: InstClass, instructions: u64) -> Self {
        Script::new(
            vec![Action::Run {
                class,
                instructions,
            }],
            format!("{class} loop"),
        )
    }
}

impl Program for Script {
    fn next(&mut self, _ctx: &ProgCtx) -> Action {
        self.actions.next().unwrap_or(Action::Halt)
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// A program that calls a closure for each action — the quickest way to
/// write ad-hoc measurement programs.
pub struct FnProgram<F> {
    f: F,
    label: String,
}

impl<F> FnProgram<F>
where
    F: FnMut(&ProgCtx) -> Action,
{
    /// Wraps a closure as a program.
    pub fn new(label: impl Into<String>, f: F) -> Self {
        FnProgram {
            f,
            label: label.into(),
        }
    }
}

impl<F> std::fmt::Debug for FnProgram<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FnProgram({})", self.label)
    }
}

impl<F> Program for FnProgram<F>
where
    F: FnMut(&ProgCtx) -> Action,
{
    fn next(&mut self, ctx: &ProgCtx) -> Action {
        (self.f)(ctx)
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ProgCtx {
        ProgCtx {
            now: SimTime::ZERO,
            tsc: 0,
            core: 0,
            smt: 0,
        }
    }

    #[test]
    fn script_plays_in_order_then_halts() {
        let mut s = Script::new(
            vec![
                Action::Run {
                    class: InstClass::Heavy256,
                    instructions: 100,
                },
                Action::SleepFor(SimTime::from_us(1.0)),
            ],
            "test",
        );
        assert!(matches!(s.next(&ctx()), Action::Run { .. }));
        assert!(matches!(s.next(&ctx()), Action::SleepFor(_)));
        assert_eq!(s.next(&ctx()), Action::Halt);
        assert_eq!(s.next(&ctx()), Action::Halt);
    }

    #[test]
    fn fn_program_sees_ctx() {
        let mut calls = 0;
        {
            let mut p = FnProgram::new("counter", |c: &ProgCtx| {
                calls += 1;
                assert_eq!(c.core, 0);
                Action::Halt
            });
            let _ = p.next(&ctx());
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn run_loop_label() {
        let s = Script::run_loop(InstClass::Heavy512, 1000);
        assert_eq!(s.name(), "512b Heavy loop");
    }
}

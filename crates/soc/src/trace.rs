//! Time-series tracing of the simulated SoC.
//!
//! The trace plays the role of the paper's NI-DAQ measurement
//! infrastructure (§5.1): a uniform-rate record of package voltage,
//! current, frequency, temperature, and per-core throttle state, from
//! which the characterization figures are regenerated.

use ichannels_uarch::time::{Freq, SimTime};

/// One trace sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Sample instant.
    pub time: SimTime,
    /// Package (rail 0) voltage, mV.
    pub vcc_mv: f64,
    /// Package current, A.
    pub icc_a: f64,
    /// Core clock frequency.
    pub freq: Freq,
    /// Junction temperature, °C.
    pub temp_c: f64,
    /// Per-core: is the core currently throttled?
    pub throttled: Vec<bool>,
    /// Per-core: effective instantaneous IPC summed over its hardware
    /// threads (0 when idle).
    pub core_ipc: Vec<f64>,
}

/// A recorded simulation trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    samples: Vec<Sample>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends a sample (monotonically increasing time enforced).
    ///
    /// # Panics
    ///
    /// Panics if `sample.time` precedes the last recorded sample.
    pub fn push(&mut self, sample: Sample) {
        if let Some(last) = self.samples.last() {
            assert!(
                sample.time >= last.time,
                "trace samples must be time-ordered"
            );
        }
        self.samples.push(sample);
    }

    /// All samples, time-ordered.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Discards all samples, retaining the storage allocation (used
    /// when a simulator is re-armed for another run).
    pub fn clear(&mut self) {
        self.samples.clear();
    }

    /// Voltage series as `(seconds, mV)` pairs.
    pub fn vcc_series(&self) -> Vec<(f64, f64)> {
        self.samples
            .iter()
            .map(|s| (s.time.as_secs(), s.vcc_mv))
            .collect()
    }

    /// Current series as `(seconds, A)` pairs.
    pub fn icc_series(&self) -> Vec<(f64, f64)> {
        self.samples
            .iter()
            .map(|s| (s.time.as_secs(), s.icc_a))
            .collect()
    }

    /// Frequency series as `(seconds, GHz)` pairs.
    pub fn freq_series(&self) -> Vec<(f64, f64)> {
        self.samples
            .iter()
            .map(|s| (s.time.as_secs(), s.freq.as_ghz()))
            .collect()
    }

    /// Temperature series as `(seconds, °C)` pairs.
    pub fn temp_series(&self) -> Vec<(f64, f64)> {
        self.samples
            .iter()
            .map(|s| (s.time.as_secs(), s.temp_c))
            .collect()
    }

    /// Minimum recorded voltage (mV); `None` if the trace is empty.
    pub fn vcc_min(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|s| s.vcc_mv)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Maximum recorded voltage (mV); `None` if the trace is empty.
    pub fn vcc_max(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|s| s.vcc_mv)
            .max_by(|a, b| a.total_cmp(b))
    }

    /// Restricts the trace to `[from, to)`.
    pub fn window(&self, from: SimTime, to: SimTime) -> Trace {
        Trace {
            samples: self
                .samples
                .iter()
                .filter(|s| s.time >= from && s.time < to)
                .cloned()
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(us: f64, vcc: f64) -> Sample {
        Sample {
            time: SimTime::from_us(us),
            vcc_mv: vcc,
            icc_a: 1.0,
            freq: Freq::from_ghz(2.0),
            temp_c: 50.0,
            throttled: vec![false, false],
            core_ipc: vec![0.0, 0.0],
        }
    }

    #[test]
    fn push_and_query() {
        let mut t = Trace::new();
        t.push(sample(0.0, 780.0));
        t.push(sample(1.0, 790.0));
        assert_eq!(t.len(), 2);
        assert_eq!(t.vcc_min(), Some(780.0));
        assert_eq!(t.vcc_max(), Some(790.0));
        assert_eq!(t.vcc_series()[1].1, 790.0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_out_of_order() {
        let mut t = Trace::new();
        t.push(sample(2.0, 780.0));
        t.push(sample(1.0, 780.0));
    }

    #[test]
    fn window_filters() {
        let mut t = Trace::new();
        for i in 0..10 {
            t.push(sample(i as f64, 700.0 + i as f64));
        }
        let w = t.window(SimTime::from_us(3.0), SimTime::from_us(6.0));
        assert_eq!(w.len(), 3);
        assert_eq!(w.samples()[0].vcc_mv, 703.0);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.vcc_min(), None);
    }
}

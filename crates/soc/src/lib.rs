//! # `ichannels-soc` — event-driven SoC simulator
//!
//! The integration layer of the IChannels (ISCA 2021) reproduction: a
//! multi-core Intel-client-style SoC with
//!
//! * per-core pipelines using the analytic IPC/throttle model
//!   (`ichannels-uarch`), including SMT hardware threads;
//! * the central PMU, guardband licenses with 650 µs hysteresis, and
//!   serialized VR transitions (`ichannels-pmu` / `ichannels-pdn`);
//! * turbo licenses, P-states with Vccmax/Iccmax protection, an RC
//!   thermal model, and software governors;
//! * AVX power-gates with ns-scale staggered wake;
//! * Poisson OS noise (interrupts, context switches);
//! * a NI-DAQ-style trace of voltage/current/frequency/temperature.
//!
//! Programs ([`program::Program`]) are pinned to hardware threads and
//! drive the simulation; covert channel senders and receivers are just
//! programs that time their own loops with `rdtsc`.
//!
//! # Example
//!
//! ```
//! use ichannels_soc::config::{PlatformSpec, SocConfig};
//! use ichannels_soc::program::Script;
//! use ichannels_soc::sim::Soc;
//! use ichannels_uarch::isa::InstClass;
//! use ichannels_uarch::time::{Freq, SimTime};
//!
//! // Cannon Lake pinned at 1.4 GHz (the Figure 10 setup).
//! let cfg = SocConfig::pinned(PlatformSpec::cannon_lake(), Freq::from_ghz(1.4));
//! let mut soc = Soc::new(cfg);
//! soc.spawn(0, 0, Box::new(Script::run_loop(InstClass::Heavy512, 14_000)));
//! let end = soc.run_until_idle(SimTime::from_ms(1.0));
//! assert!(end.as_us() > 15.0); // the multi-µs throttling period
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod noise;
pub mod program;
pub mod sim;
pub mod trace;

pub use config::{PlatformSpec, SocConfig, TraceConfig};
pub use noise::{NoiseConfig, NoiseKind};
pub use program::{Action, FnProgram, ProgCtx, Program, Script};
pub use sim::Soc;
pub use trace::{Sample, Trace};

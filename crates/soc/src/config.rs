//! SoC configuration and the three platform presets of the paper
//! (§5.1): Intel Haswell (i7-4770K), Coffee Lake (i7-9700K), and Cannon
//! Lake (i3-8121U).
//!
//! All electrical/timing constants are calibrated against the paper's
//! measured values, not datasheets: AVX2 TP of 12–15 µs on MBVR parts
//! and ~9 µs on Haswell (Figure 8(a)), a 650 µs reset-time (§4.1.2),
//! 8–15 ns AVX power-gate wake on Skylake+ (§5.4), Vccmax = 1.27 V /
//! Iccmax = 100 A on the desktop part and Vccmax = 1.15 V / Iccmax = 29 A
//! on the mobile part (Figure 7(a)).

use ichannels_pdn::current::CurrentModel;
use ichannels_pdn::guardband::{CdynTable, GuardbandModel};
use ichannels_pdn::limits::ElectricalLimits;
use ichannels_pdn::regulator::VrModel;
use ichannels_pdn::vf_curve::VfCurve;
use ichannels_pmu::governor::Governor;
use ichannels_pmu::pstate::PStateTable;
use ichannels_pmu::thermal::ThermalModel;
use ichannels_pmu::turbo::TurboTable;
use ichannels_uarch::idq::ThrottlePolicy;
use ichannels_uarch::time::{Freq, SimTime};

use crate::noise::NoiseConfig;

/// Static description of a processor platform.
#[derive(Debug, Clone)]
pub struct PlatformSpec {
    /// Marketing name ("Cannon Lake i3-8121U", …).
    pub name: &'static str,
    /// Number of physical cores.
    pub n_cores: usize,
    /// Whether each core exposes two SMT hardware threads.
    pub smt: bool,
    /// Fused voltage/frequency curve.
    pub vf_curve: VfCurve,
    /// Discrete P-states.
    pub pstates: PStateTable,
    /// Turbo license table.
    pub turbo: TurboTable,
    /// Package electrical limits.
    pub limits: ElectricalLimits,
    /// Voltage regulator model (MBVR / FIVR / LDO).
    pub vr_model: VrModel,
    /// Load-line impedance (mΩ).
    pub rll_mohm: f64,
    /// Per-class dynamic capacitances.
    pub cdyn: CdynTable,
    /// Always-on core-domain current (A).
    pub base_current_a: f64,
    /// Leakage at 1 V / 50 °C (A).
    pub leakage_a: f64,
    /// Invariant TSC frequency.
    pub tsc_freq: Freq,
    /// AVX power-gate staggered wake latency; `None` on parts without
    /// AVX power gating (pre-Skylake, e.g. Haswell).
    pub avx_pg_wake: Option<SimTime>,
    /// License hysteresis window (the paper's 650 µs reset-time).
    pub reset_time: SimTime,
}

impl PlatformSpec {
    /// Cannon Lake mobile part (Core i3-8121U): 2 cores / 4 threads,
    /// MBVR, Vccmax = 1.15 V, Iccmax = 29 A, 2.2 GHz base / 3.1 GHz
    /// turbo. The platform of Figures 7(b), 9, 10, 11, 13.
    pub fn cannon_lake() -> Self {
        PlatformSpec {
            name: "Cannon Lake i3-8121U",
            n_cores: 2,
            smt: true,
            vf_curve: VfCurve::new(vec![
                (Freq::from_ghz(0.8), 650.0),
                (Freq::from_ghz(1.0), 700.0),
                (Freq::from_ghz(1.4), 760.0),
                (Freq::from_ghz(1.8), 830.0),
                (Freq::from_ghz(2.2), 900.0),
                // Mobile parts run a lower V/F envelope at turbo: the
                // i3-8121U is *current*-limited at 3.1 GHz (Fig. 7(a)),
                // its voltage stays under Vccmax = 1.15 V.
                (Freq::from_ghz(2.6), 980.0),
                (Freq::from_ghz(3.1), 1060.0),
            ])
            // lint:allow(R001): the V/F points above are static
            // platform constants; `VfCurve::new` validates them once
            // and the catalog unit tests construct every platform.
            .expect("valid curve"),
            pstates: PStateTable::new(
                vec![
                    Freq::from_ghz(3.1),
                    Freq::from_ghz(2.8),
                    Freq::from_ghz(2.6),
                    Freq::from_ghz(2.4),
                    Freq::from_ghz(2.2),
                    Freq::from_ghz(2.0),
                    Freq::from_ghz(1.8),
                    Freq::from_ghz(1.6),
                    Freq::from_ghz(1.4),
                    Freq::from_ghz(1.2),
                    Freq::from_ghz(1.0),
                    Freq::from_ghz(0.8),
                ],
                SimTime::from_us(12.0),
            ),
            turbo: TurboTable::new(
                vec![Freq::from_ghz(3.1), Freq::from_ghz(3.1)],
                vec![Freq::from_ghz(2.8), Freq::from_ghz(2.6)],
                vec![Freq::from_ghz(2.4), Freq::from_ghz(2.0)],
                SimTime::from_us(50.0),
                SimTime::from_ms(2.0),
            ),
            limits: ElectricalLimits::new(1150.0, 29.0),
            vr_model: VrModel::mbvr(),
            rll_mohm: 1.9,
            cdyn: CdynTable::default(),
            base_current_a: 2.0,
            leakage_a: 1.5,
            tsc_freq: Freq::from_ghz(2.2),
            avx_pg_wake: Some(SimTime::from_ns(10.0)),
            reset_time: SimTime::from_us(650.0),
        }
    }

    /// Coffee Lake desktop part (Core i7-9700K): 8 cores, no SMT, MBVR,
    /// Vccmax = 1.27 V, Iccmax = 100 A, 3.6 GHz base / 4.9 GHz turbo.
    /// The platform of Figures 6, 7(a) desktop, 8.
    pub fn coffee_lake() -> Self {
        PlatformSpec {
            name: "Coffee Lake i7-9700K",
            n_cores: 8,
            smt: false,
            vf_curve: VfCurve::new(vec![
                (Freq::from_ghz(0.8), 620.0),
                (Freq::from_ghz(1.0), 660.0),
                (Freq::from_ghz(2.0), 788.0),
                (Freq::from_ghz(3.0), 940.0),
                (Freq::from_ghz(3.6), 1020.0),
                (Freq::from_ghz(4.3), 1120.0),
                (Freq::from_ghz(4.8), 1200.0),
                (Freq::from_ghz(4.9), 1250.0),
            ])
            // lint:allow(R001): the V/F points above are static
            // platform constants; `VfCurve::new` validates them once
            // and the catalog unit tests construct every platform.
            .expect("valid curve"),
            pstates: PStateTable::new(
                vec![
                    Freq::from_ghz(4.9),
                    Freq::from_ghz(4.8),
                    Freq::from_ghz(4.6),
                    Freq::from_ghz(4.3),
                    Freq::from_ghz(4.0),
                    Freq::from_ghz(3.6),
                    Freq::from_ghz(3.0),
                    Freq::from_ghz(2.0),
                    Freq::from_ghz(1.0),
                ],
                SimTime::from_us(12.0),
            ),
            turbo: TurboTable::new(
                vec![
                    Freq::from_ghz(4.9),
                    Freq::from_ghz(4.8),
                    Freq::from_ghz(4.7),
                    Freq::from_ghz(4.7),
                    Freq::from_ghz(4.6),
                    Freq::from_ghz(4.6),
                    Freq::from_ghz(4.6),
                    Freq::from_ghz(4.6),
                ],
                vec![
                    Freq::from_ghz(4.8),
                    Freq::from_ghz(4.6),
                    Freq::from_ghz(4.5),
                    Freq::from_ghz(4.4),
                    Freq::from_ghz(4.3),
                    Freq::from_ghz(4.3),
                    Freq::from_ghz(4.2),
                    Freq::from_ghz(4.2),
                ],
                vec![
                    Freq::from_ghz(4.4),
                    Freq::from_ghz(4.3),
                    Freq::from_ghz(4.1),
                    Freq::from_ghz(4.0),
                    Freq::from_ghz(3.9),
                    Freq::from_ghz(3.8),
                    Freq::from_ghz(3.8),
                    Freq::from_ghz(3.7),
                ],
                SimTime::from_us(50.0),
                SimTime::from_ms(2.0),
            ),
            limits: ElectricalLimits::new(1270.0, 100.0),
            vr_model: VrModel::mbvr(),
            rll_mohm: 1.6,
            cdyn: CdynTable::default(),
            base_current_a: 3.0,
            leakage_a: 3.0,
            tsc_freq: Freq::from_ghz(3.6),
            avx_pg_wake: Some(SimTime::from_ns(12.0)),
            reset_time: SimTime::from_us(650.0),
        }
    }

    /// Haswell desktop part (Core i7-4770K): 4 cores / 8 threads, FIVR
    /// (faster, so TP ≈ 9 µs), **no** AVX power gating (pre-Skylake —
    /// Figure 8(c) shows no first-iteration penalty).
    pub fn haswell() -> Self {
        PlatformSpec {
            name: "Haswell i7-4770K",
            n_cores: 4,
            smt: true,
            vf_curve: VfCurve::new(vec![
                (Freq::from_ghz(0.8), 700.0),
                (Freq::from_ghz(1.0), 730.0),
                (Freq::from_ghz(2.0), 850.0),
                (Freq::from_ghz(3.0), 1000.0),
                (Freq::from_ghz(3.5), 1080.0),
                (Freq::from_ghz(3.9), 1180.0),
            ])
            // lint:allow(R001): the V/F points above are static
            // platform constants; `VfCurve::new` validates them once
            // and the catalog unit tests construct every platform.
            .expect("valid curve"),
            pstates: PStateTable::new(
                vec![
                    Freq::from_ghz(3.9),
                    Freq::from_ghz(3.5),
                    Freq::from_ghz(3.0),
                    Freq::from_ghz(2.0),
                    Freq::from_ghz(1.0),
                ],
                SimTime::from_us(12.0),
            ),
            turbo: TurboTable::new(
                vec![
                    Freq::from_ghz(3.9),
                    Freq::from_ghz(3.8),
                    Freq::from_ghz(3.7),
                    Freq::from_ghz(3.7),
                ],
                vec![
                    Freq::from_ghz(3.7),
                    Freq::from_ghz(3.6),
                    Freq::from_ghz(3.5),
                    Freq::from_ghz(3.5),
                ],
                vec![
                    Freq::from_ghz(3.5),
                    Freq::from_ghz(3.4),
                    Freq::from_ghz(3.3),
                    Freq::from_ghz(3.3),
                ],
                SimTime::from_us(50.0),
                SimTime::from_ms(2.0),
            ),
            limits: ElectricalLimits::new(1250.0, 80.0),
            vr_model: VrModel::fivr(),
            rll_mohm: 1.8,
            cdyn: CdynTable::default(),
            base_current_a: 2.5,
            leakage_a: 2.5,
            tsc_freq: Freq::from_ghz(3.5),
            avx_pg_wake: None,
            reset_time: SimTime::from_us(650.0),
        }
    }

    /// A Skylake-SP-style server part (§6.4: "an Intel CPU core has
    /// nearly the same microarchitecture for client and server
    /// processors" — the mechanisms, and therefore the channels, carry
    /// over). 28 cores / 56 threads, higher Iccmax, lower all-core
    /// turbo, same MBVR-style shared rail per socket.
    pub fn skylake_server() -> Self {
        let turbo_row = |one: f64, all: f64| -> Vec<Freq> {
            // Linear taper from the 1-core bin to the 28-core bin,
            // snapped to 100 MHz bins like real parts.
            (0..28)
                .map(|i| {
                    let t = i as f64 / 27.0;
                    let ghz = one + (all - one) * t;
                    Freq::from_mhz((ghz * 10.0).round() * 100.0)
                })
                .collect()
        };
        PlatformSpec {
            name: "Skylake-SP Xeon (server)",
            n_cores: 28,
            smt: true,
            vf_curve: VfCurve::new(vec![
                (Freq::from_ghz(1.0), 680.0),
                (Freq::from_ghz(2.0), 800.0),
                (Freq::from_ghz(2.7), 900.0),
                (Freq::from_ghz(3.2), 1000.0),
                (Freq::from_ghz(3.8), 1100.0),
            ])
            // lint:allow(R001): the V/F points above are static
            // platform constants; `VfCurve::new` validates them once
            // and the catalog unit tests construct every platform.
            .expect("valid curve"),
            pstates: PStateTable::new(
                vec![
                    Freq::from_ghz(3.8),
                    Freq::from_ghz(3.5),
                    Freq::from_ghz(3.2),
                    Freq::from_ghz(3.0),
                    Freq::from_ghz(2.7),
                    Freq::from_ghz(2.4),
                    Freq::from_ghz(2.0),
                    Freq::from_ghz(1.6),
                    Freq::from_ghz(1.2),
                    Freq::from_ghz(1.0),
                ],
                SimTime::from_us(12.0),
            ),
            turbo: TurboTable::new(
                turbo_row(3.8, 3.2),
                turbo_row(3.5, 2.8),
                turbo_row(3.2, 2.4),
                SimTime::from_us(50.0),
                SimTime::from_ms(2.0),
            ),
            limits: ElectricalLimits::new(1200.0, 250.0),
            vr_model: VrModel::mbvr(),
            rll_mohm: 0.9, // beefier server VR: lower load-line impedance
            cdyn: CdynTable::default(),
            base_current_a: 12.0,
            leakage_a: 10.0,
            tsc_freq: Freq::from_ghz(2.7),
            avx_pg_wake: Some(SimTime::from_ns(12.0)),
            reset_time: SimTime::from_us(650.0),
        }
    }

    /// All three characterized platforms (Figure 8(a)).
    pub fn all() -> Vec<PlatformSpec> {
        vec![
            PlatformSpec::haswell(),
            PlatformSpec::coffee_lake(),
            PlatformSpec::cannon_lake(),
        ]
    }

    /// Every platform the workspace can simulate: the three paper
    /// platforms plus the §6.4 server extrapolation. This is the
    /// catalog campaign sweeps draw from.
    pub fn catalog() -> Vec<PlatformSpec> {
        vec![
            PlatformSpec::haswell(),
            PlatformSpec::coffee_lake(),
            PlatformSpec::cannon_lake(),
            PlatformSpec::skylake_server(),
        ]
    }

    /// Looks a catalog platform up by a case-insensitive substring of
    /// its marketing name (`"cannon"`, `"coffee"`, `"haswell"`,
    /// `"server"`, …); `None` when nothing matches.
    pub fn by_name(name: &str) -> Option<PlatformSpec> {
        let needle = name.to_ascii_lowercase();
        PlatformSpec::catalog()
            .into_iter()
            .find(|p| p.name.to_ascii_lowercase().contains(&needle))
    }

    /// Builds the guardband model of this platform.
    pub fn guardband(&self) -> GuardbandModel {
        GuardbandModel::new(self.cdyn.clone(), self.rll_mohm)
    }

    /// Builds the current model of this platform.
    pub fn current_model(&self) -> CurrentModel {
        CurrentModel::new(
            self.cdyn.clone(),
            self.base_current_a,
            self.leakage_a,
            0.004,
        )
    }

    /// Number of hardware threads per core (1 or 2).
    pub fn threads_per_core(&self) -> usize {
        if self.smt {
            2
        } else {
            1
        }
    }
}

/// Trace recording configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceConfig {
    /// Uniform sampling period, `None` disables the trace.
    pub sample_period: Option<SimTime>,
}

/// Full simulator configuration: platform + policies + mitigations.
#[derive(Debug, Clone)]
pub struct SocConfig {
    /// The processor being simulated.
    pub platform: PlatformSpec,
    /// Software frequency governor.
    pub governor: Governor,
    /// Mitigation §7: per-core (LDO) voltage regulators.
    pub per_core_vr: bool,
    /// Mitigation §7: secure mode (pinned worst-case guardband).
    pub secure_mode: bool,
    /// Mitigation §7: improved (per-thread, PHI-only) core throttling.
    pub throttle_policy: ThrottlePolicy,
    /// OS noise injection.
    pub noise: NoiseConfig,
    /// Trace recording.
    pub trace: TraceConfig,
    /// RNG seed (simulations are deterministic given the seed).
    pub seed: u64,
}

impl SocConfig {
    /// A quiet (noise-free) configuration for `platform` with the
    /// performance governor and no mitigations.
    pub fn quiet(platform: PlatformSpec) -> Self {
        SocConfig {
            platform,
            governor: Governor::Performance,
            per_core_vr: false,
            secure_mode: false,
            throttle_policy: ThrottlePolicy::BlockEntireCore,
            noise: NoiseConfig::quiet(),
            trace: TraceConfig::default(),
            seed: 0x1C4A_77E1,
        }
    }

    /// Same, but with the userspace governor pinned to `freq` — the
    /// paper's fixed-frequency characterization setup (Figures 6, 10).
    pub fn pinned(platform: PlatformSpec, freq: Freq) -> Self {
        let mut cfg = SocConfig::quiet(platform);
        cfg.governor = Governor::Userspace(freq);
        cfg
    }

    /// Applies the per-core-VR mitigation (LDO rails, no shared SVID).
    pub fn with_per_core_vr(mut self) -> Self {
        self.per_core_vr = true;
        self.platform.vr_model = VrModel::ldo();
        self
    }

    /// Applies the secure-mode mitigation.
    pub fn with_secure_mode(mut self) -> Self {
        self.secure_mode = true;
        self
    }

    /// Applies the improved-throttling mitigation.
    pub fn with_improved_throttling(mut self) -> Self {
        self.throttle_policy = ThrottlePolicy::PerThreadPhiOnly;
        self
    }

    /// Enables trace recording at the given period.
    pub fn with_trace(mut self, period: SimTime) -> Self {
        self.trace.sample_period = Some(period);
        self
    }

    /// Sets the OS noise configuration.
    pub fn with_noise(mut self, noise: NoiseConfig) -> Self {
        self.noise = noise;
        self
    }

    /// Thermal model (same RC constants across the client platforms).
    pub fn thermal_model(&self) -> ThermalModel {
        ThermalModel::client_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_lookup_by_name() {
        assert_eq!(
            PlatformSpec::by_name("cannon").unwrap().name,
            PlatformSpec::cannon_lake().name
        );
        assert_eq!(
            PlatformSpec::by_name("SERVER").unwrap().name,
            PlatformSpec::skylake_server().name
        );
        assert!(PlatformSpec::by_name("pentium").is_none());
        assert_eq!(PlatformSpec::catalog().len(), 4);
    }

    #[test]
    fn presets_are_consistent() {
        for p in PlatformSpec::catalog() {
            assert!(p.n_cores >= 2);
            assert!(p.pstates.max() <= p.vf_curve.max_freq());
            assert!(p.tsc_freq.as_hz() > 0);
            // Turbo table covers at least min(4, n_cores) core counts.
            assert!(p.turbo.core_counts() >= p.n_cores.min(4));
        }
    }

    #[test]
    fn cannon_lake_matches_paper_numbers() {
        let p = PlatformSpec::cannon_lake();
        assert_eq!(p.n_cores, 2);
        assert!(p.smt);
        assert_eq!(p.limits.vccmax_mv(), 1150.0);
        assert_eq!(p.limits.iccmax_a(), 29.0);
        assert_eq!(p.pstates.max(), Freq::from_ghz(3.1));
    }

    #[test]
    fn coffee_lake_matches_paper_numbers() {
        let p = PlatformSpec::coffee_lake();
        assert_eq!(p.n_cores, 8);
        assert!(
            !p.smt,
            "i7-9700K has no SMT (the paper tests IccSMTcovert only on Cannon Lake)"
        );
        assert_eq!(p.limits.vccmax_mv(), 1270.0);
        assert_eq!(p.limits.iccmax_a(), 100.0);
    }

    #[test]
    fn haswell_has_no_avx_power_gate() {
        let p = PlatformSpec::haswell();
        assert!(p.avx_pg_wake.is_none());
        // FIVR is faster than the MBVR parts (Figure 8(a)).
        let d = 30.0;
        assert!(
            p.vr_model.transition_time(d) < PlatformSpec::coffee_lake().vr_model.transition_time(d)
        );
    }

    #[test]
    fn mitigation_builders() {
        let cfg = SocConfig::quiet(PlatformSpec::cannon_lake())
            .with_per_core_vr()
            .with_secure_mode()
            .with_improved_throttling();
        assert!(cfg.per_core_vr);
        assert!(cfg.secure_mode);
        assert_eq!(cfg.throttle_policy, ThrottlePolicy::PerThreadPhiOnly);
    }

    #[test]
    fn pinned_config_uses_userspace_governor() {
        let cfg = SocConfig::pinned(PlatformSpec::coffee_lake(), Freq::from_ghz(2.0));
        match cfg.governor {
            Governor::Userspace(f) => assert_eq!(f, Freq::from_ghz(2.0)),
            g => panic!("unexpected governor {g:?}"),
        }
    }
}

//! OS noise injection: interrupts and context switches.
//!
//! §6.3 of the paper analyzes channel accuracy under "system activity,
//! such as interrupts and context switches, which can extend the
//! execution time measured by the Receiver, causing errors in decoding".
//! It cites interrupt latencies "within few microseconds" and
//! context-switch latencies of "few tens of microseconds", at rates from
//! a few hundred to thousands of events per second.
//!
//! Noise events arrive as independent Poisson processes per hardware
//! thread; an event pauses the *currently running* program for its
//! service time (the TSC keeps counting — that is exactly the measured
//! inflation).

use ichannels_uarch::time::SimTime;
use rand::Rng;

/// Rates and service times for OS noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseConfig {
    /// Interrupt arrival rate per hardware thread (events/s).
    pub interrupt_rate_hz: f64,
    /// Interrupt service time (paper: a few µs).
    pub interrupt_service: SimTime,
    /// Context-switch arrival rate per hardware thread (events/s).
    pub ctx_switch_rate_hz: f64,
    /// Context-switch service time (paper: a few tens of µs).
    pub ctx_switch_service: SimTime,
}

impl NoiseConfig {
    /// No noise at all.
    pub fn quiet() -> Self {
        NoiseConfig {
            interrupt_rate_hz: 0.0,
            interrupt_service: SimTime::from_us(2.0),
            ctx_switch_rate_hz: 0.0,
            ctx_switch_service: SimTime::from_us(15.0),
        }
    }

    /// The paper's "relatively low noise" client system: interrupt and
    /// context-switch rates below 1000 events/s (§6.3).
    pub fn low() -> Self {
        NoiseConfig {
            interrupt_rate_hz: 300.0,
            interrupt_service: SimTime::from_us(2.0),
            ctx_switch_rate_hz: 100.0,
            ctx_switch_service: SimTime::from_us(15.0),
        }
    }

    /// A highly noisy system (thousands of events/s).
    pub fn high() -> Self {
        NoiseConfig {
            interrupt_rate_hz: 5_000.0,
            interrupt_service: SimTime::from_us(2.0),
            ctx_switch_rate_hz: 2_000.0,
            ctx_switch_service: SimTime::from_us(15.0),
        }
    }

    /// Only interrupts, at the given rate (Figure 14(a) sweeps).
    pub fn interrupts_only(rate_hz: f64) -> Self {
        let mut n = NoiseConfig::quiet();
        n.interrupt_rate_hz = rate_hz;
        n
    }

    /// Only context switches, at the given rate (Figure 14(a) sweeps).
    pub fn ctx_switches_only(rate_hz: f64) -> Self {
        let mut n = NoiseConfig::quiet();
        n.ctx_switch_rate_hz = rate_hz;
        n
    }

    /// True if both rates are zero.
    pub fn is_quiet(&self) -> bool {
        self.interrupt_rate_hz == 0.0 && self.ctx_switch_rate_hz == 0.0
    }
}

/// Kind of OS noise event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NoiseKind {
    /// Device/timer interrupt.
    Interrupt,
    /// Scheduler context switch.
    ContextSwitch,
}

/// Samples the gap to the next Poisson arrival at `rate_hz`, or `None`
/// for a zero rate.
pub fn sample_gap<R: Rng + ?Sized>(rng: &mut R, rate_hz: f64) -> Option<SimTime> {
    if rate_hz <= 0.0 {
        return None;
    }
    // Inverse-CDF exponential sampling; clamp u away from 0.
    let u: f64 = rng.gen_range(1e-12..1.0);
    let gap_s = -u.ln() / rate_hz;
    Some(SimTime::from_secs(gap_s))
}

/// Per-hardware-thread noise arrival state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoiseArrivals {
    /// Next interrupt arrival (absolute), if interrupts are enabled.
    pub next_interrupt: Option<SimTime>,
    /// Next context-switch arrival (absolute), if enabled.
    pub next_ctx_switch: Option<SimTime>,
}

impl NoiseArrivals {
    /// Samples initial arrivals from `now`.
    pub fn init<R: Rng + ?Sized>(cfg: &NoiseConfig, rng: &mut R, now: SimTime) -> Self {
        NoiseArrivals {
            next_interrupt: sample_gap(rng, cfg.interrupt_rate_hz).map(|g| now + g),
            next_ctx_switch: sample_gap(rng, cfg.ctx_switch_rate_hz).map(|g| now + g),
        }
    }

    /// Earliest pending arrival, if any.
    pub fn next(&self) -> Option<(SimTime, NoiseKind)> {
        match (self.next_interrupt, self.next_ctx_switch) {
            (Some(i), Some(c)) => Some(if i <= c {
                (i, NoiseKind::Interrupt)
            } else {
                (c, NoiseKind::ContextSwitch)
            }),
            (Some(i), None) => Some((i, NoiseKind::Interrupt)),
            (None, Some(c)) => Some((c, NoiseKind::ContextSwitch)),
            (None, None) => None,
        }
    }

    /// Consumes every arrival due at or before `now`, returning the total
    /// service time incurred and resampling the streams.
    pub fn consume_due<R: Rng + ?Sized>(
        &mut self,
        cfg: &NoiseConfig,
        rng: &mut R,
        now: SimTime,
    ) -> SimTime {
        let mut service = SimTime::ZERO;
        while let Some(t) = self.next_interrupt {
            if t > now {
                break;
            }
            service += cfg.interrupt_service;
            self.next_interrupt = sample_gap(rng, cfg.interrupt_rate_hz).map(|g| t + g);
        }
        while let Some(t) = self.next_ctx_switch {
            if t > now {
                break;
            }
            service += cfg.ctx_switch_service;
            self.next_ctx_switch = sample_gap(rng, cfg.ctx_switch_rate_hz).map(|g| t + g);
        }
        service
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn quiet_config_samples_nothing() {
        let mut rng = SmallRng::seed_from_u64(1);
        let a = NoiseArrivals::init(&NoiseConfig::quiet(), &mut rng, SimTime::ZERO);
        assert_eq!(a.next(), None);
    }

    #[test]
    fn poisson_rate_is_respected() {
        // 1000 events/s over 1 simulated second ⇒ ~1000 arrivals.
        let cfg = NoiseConfig::interrupts_only(1000.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut arrivals = NoiseArrivals::init(&cfg, &mut rng, SimTime::ZERO);
        let mut count = 0u32;
        let horizon = SimTime::from_secs(1.0);
        while let Some((t, _)) = arrivals.next() {
            if t > horizon {
                break;
            }
            arrivals.consume_due(&cfg, &mut rng, t);
            count += 1;
        }
        assert!(
            (800..1200).contains(&count),
            "expected ~1000 arrivals, got {count}"
        );
    }

    #[test]
    fn consume_due_accumulates_service() {
        let cfg = NoiseConfig {
            interrupt_rate_hz: 1e6, // very frequent: several due at once
            interrupt_service: SimTime::from_us(2.0),
            ctx_switch_rate_hz: 0.0,
            ctx_switch_service: SimTime::from_us(15.0),
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let mut arrivals = NoiseArrivals::init(&cfg, &mut rng, SimTime::ZERO);
        let service = arrivals.consume_due(&cfg, &mut rng, SimTime::from_us(100.0));
        // ~100 arrivals in 100 µs at 1 MHz ⇒ ~200 µs of service.
        assert!(service.as_us() > 50.0, "service = {service}");
        // The streams were resampled into the future.
        assert!(arrivals.next().unwrap().0 > SimTime::from_us(100.0));
    }

    #[test]
    fn next_picks_earliest_kind() {
        let a = NoiseArrivals {
            next_interrupt: Some(SimTime::from_us(5.0)),
            next_ctx_switch: Some(SimTime::from_us(3.0)),
        };
        assert_eq!(
            a.next(),
            Some((SimTime::from_us(3.0), NoiseKind::ContextSwitch))
        );
    }

    #[test]
    fn determinism_given_seed() {
        let cfg = NoiseConfig::low();
        let sample = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            NoiseArrivals::init(&cfg, &mut rng, SimTime::ZERO)
        };
        assert_eq!(sample(42), sample(42));
    }
}

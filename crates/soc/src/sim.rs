//! The event-driven SoC simulator.
//!
//! [`Soc`] composes the substrates — per-core pipelines (analytic IPC
//! model from `ichannels-uarch`), the central PMU with its voltage rails
//! (`ichannels-pmu` / `ichannels-pdn`), turbo licenses, P-states, the
//! thermal model, and OS noise — under a single continuous timeline.
//!
//! State only changes at *events* (block start/end, voltage-ramp
//! completion, hysteresis expiry, P-state settle, noise arrival, governor
//! tick, trace sample); between events every rate is constant, so
//! progress advances analytically. This is what makes the paper's 60 s
//! covert-channel runs (§6.3) tractable at picosecond resolution.

use ichannels_pdn::current::{CoreActivity, CurrentModel};
use ichannels_pdn::power_gate::PowerGate;
use ichannels_pmu::central::{CentralPmu, PmuConfig};
use ichannels_pmu::pstate::PStateEngine;
use ichannels_pmu::thermal::ThermalModel;
use ichannels_pmu::turbo::{TurboLicense, TurboState};
use ichannels_uarch::idq::ThrottlePolicy;
use ichannels_uarch::ipc::effective_ipc;
use ichannels_uarch::isa::InstClass;
use ichannels_uarch::time::{Freq, SimTime};
use ichannels_uarch::tsc::Tsc;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::config::SocConfig;
use crate::noise::NoiseArrivals;
use crate::program::{Action, ProgCtx, Program};
use crate::trace::{Sample, Trace};

/// Execution state of one hardware thread.
#[derive(Debug)]
enum CtxState {
    /// No program, or program halted.
    Idle,
    /// Blocked until an instant (TSC spin or sleep).
    Waiting {
        /// Wake-up instant.
        until: SimTime,
    },
    /// Executing a tight instruction loop.
    Running {
        /// Loop body class.
        class: InstClass,
        /// Instructions left to retire.
        remaining: f64,
    },
}

/// One hardware thread (SMT context).
struct HwCtx {
    program: Option<Box<dyn Program>>,
    state: CtxState,
    arrivals: NoiseArrivals,
    /// Noise service (or power-gate wake) in progress until this instant.
    paused_until: SimTime,
    /// Total instructions retired (statistics).
    inst_retired: f64,
}

impl std::fmt::Debug for HwCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HwCtx")
            .field("state", &self.state)
            .field("has_program", &self.program.is_some())
            .finish()
    }
}

/// One physical core.
#[derive(Debug)]
struct CoreState {
    ctxs: Vec<HwCtx>,
    /// Core-wide throttle (license transition in flight) until this
    /// instant.
    throttled_until: SimTime,
    /// SMT index of the thread whose PHI caused the throttle.
    throttle_cause: usize,
    avx_gate: PowerGate,
}

/// Safety bound on program re-activations within a single instant.
const MAX_ACTIVATION_LOOPS: usize = 1_000_000;

/// Completion slack, in instructions: a block is done when fewer than
/// this many instructions remain (absorbs f64 rounding).
const COMPLETION_EPS: f64 = 1e-3;

/// The simulated system-on-chip.
///
/// # Examples
///
/// Measuring the throttling period of an AVX2 loop (the core of
/// Figure 8(a)):
///
/// ```
/// use ichannels_soc::config::{PlatformSpec, SocConfig};
/// use ichannels_soc::program::Script;
/// use ichannels_soc::sim::Soc;
/// use ichannels_uarch::isa::InstClass;
/// use ichannels_uarch::time::{Freq, SimTime};
///
/// let cfg = SocConfig::pinned(PlatformSpec::cannon_lake(), Freq::from_ghz(1.4));
/// let mut soc = Soc::new(cfg);
/// soc.spawn(0, 0, Box::new(Script::run_loop(InstClass::Heavy256, 20_000)));
/// let end = soc.run_until_idle(SimTime::from_ms(1.0));
/// assert!(end.as_us() > 10.0); // throttled at 1/4 IPC during the ramp
/// ```
#[derive(Debug)]
pub struct Soc {
    cfg: SocConfig,
    pmu: CentralPmu,
    pstate: PStateEngine,
    turbo: TurboState,
    thermal: ThermalModel,
    current_model: CurrentModel,
    tsc: Tsc,
    now: SimTime,
    cores: Vec<CoreState>,
    trace: Trace,
    next_sample: Option<SimTime>,
    next_governor_tick: Option<SimTime>,
    rng: SmallRng,
    /// Scratch buffers reused across events so the hot paths (`step`,
    /// `retarget_frequency`, `record_sample`) never allocate. Cleared
    /// before every use; never observable.
    acts_scratch: Vec<CoreActivity>,
    proj_scratch: Vec<Option<InstClass>>,
    proj_acts_scratch: Vec<CoreActivity>,
    rate_scratch: Vec<f64>,
    /// Earliest pending noise arrival seen during the last event search,
    /// across every context that carries a program. Arrivals are not
    /// mutated between the search and `process_due`, so when this lies
    /// beyond the new instant the per-context arrival scan is provably a
    /// no-op and is skipped. `SimTime::ZERO` (always due) when unknown.
    next_noise_due: SimTime,
    /// Count of contexts currently carrying a program, maintained by
    /// `spawn`/halt so `all_idle` (checked once per event in
    /// `run_until_idle`) is a comparison instead of a full scan.
    live_programs: usize,
}

impl Soc {
    /// Builds a SoC from a configuration, settled at the governor's
    /// initial frequency, at time zero.
    pub fn new(cfg: SocConfig) -> Self {
        let p = &cfg.platform;
        let initial_freq = cfg.governor.requested_freq(&p.pstates, 0.0);
        let base_mv = p.vf_curve.voltage_mv(initial_freq);
        let pmu = CentralPmu::new(
            PmuConfig {
                n_cores: p.n_cores,
                guardband: p.guardband(),
                vr_model: p.vr_model,
                reset_time: p.reset_time,
                per_core_vr: cfg.per_core_vr,
                secure_mode: cfg.secure_mode,
            },
            initial_freq,
            base_mv,
        );
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let cores = (0..p.n_cores)
            .map(|_| CoreState {
                ctxs: (0..p.threads_per_core())
                    .map(|_| HwCtx {
                        program: None,
                        state: CtxState::Idle,
                        arrivals: NoiseArrivals::init(&cfg.noise, &mut rng, SimTime::ZERO),
                        paused_until: SimTime::ZERO,
                        inst_retired: 0.0,
                    })
                    .collect(),
                throttled_until: SimTime::ZERO,
                throttle_cause: 0,
                avx_gate: match p.avx_pg_wake {
                    Some(wake) => PowerGate::new(wake),
                    None => PowerGate::always_open(),
                },
            })
            .collect();
        let next_sample = cfg.trace.sample_period.map(|p| SimTime::ZERO.max(p));
        let next_governor_tick = cfg.governor.sampling_period();
        let current_model = p.current_model();
        let thermal = cfg.thermal_model();
        let tsc = Tsc::new(p.tsc_freq);
        Soc {
            pmu,
            pstate: PStateEngine::new(initial_freq),
            turbo: TurboState::new(),
            thermal,
            current_model,
            tsc,
            now: SimTime::ZERO,
            cores,
            trace: Trace::new(),
            next_sample,
            next_governor_tick,
            rng,
            cfg,
            acts_scratch: Vec::new(),
            proj_scratch: Vec::new(),
            proj_acts_scratch: Vec::new(),
            rate_scratch: Vec::new(),
            next_noise_due: SimTime::ZERO,
            live_programs: 0,
        }
    }

    /// Resets the SoC to its exactly-as-constructed state while reusing
    /// every existing allocation (core/context storage, the PMU's
    /// voltage-rail segment buffers, trace storage, scratch buffers).
    ///
    /// Bit-identical to dropping this SoC and calling `Soc::new` with
    /// the same config: the RNG is reseeded and the per-context noise
    /// arrivals are redrawn in construction order (cores outer, SMT
    /// contexts inner), so every subsequent draw sequence matches a
    /// fresh simulator. Pinned by the `rearm_identity` proptest suite.
    pub fn rearm(&mut self) {
        let initial_freq = self
            .cfg
            .governor
            .requested_freq(&self.cfg.platform.pstates, 0.0);
        let base_mv = self.cfg.platform.vf_curve.voltage_mv(initial_freq);
        self.pmu.reset(initial_freq, base_mv);
        self.pstate = PStateEngine::new(initial_freq);
        self.turbo = TurboState::new();
        self.thermal = self.cfg.thermal_model();
        // `current_model` and `tsc` are pure functions of the platform
        // spec and carry no run state — left untouched.
        self.now = SimTime::ZERO;
        self.rng = SmallRng::seed_from_u64(self.cfg.seed);
        for core in &mut self.cores {
            for ctx in &mut core.ctxs {
                ctx.program = None;
                ctx.state = CtxState::Idle;
                ctx.arrivals = NoiseArrivals::init(&self.cfg.noise, &mut self.rng, SimTime::ZERO);
                ctx.paused_until = SimTime::ZERO;
                ctx.inst_retired = 0.0;
            }
            core.throttled_until = SimTime::ZERO;
            core.throttle_cause = 0;
            core.avx_gate = match self.cfg.platform.avx_pg_wake {
                Some(wake) => PowerGate::new(wake),
                None => PowerGate::always_open(),
            };
        }
        self.trace.clear();
        self.next_sample = self.cfg.trace.sample_period.map(|p| SimTime::ZERO.max(p));
        self.next_governor_tick = self.cfg.governor.sampling_period();
        self.acts_scratch.clear();
        self.proj_scratch.clear();
        self.proj_acts_scratch.clear();
        self.rate_scratch.clear();
        self.next_noise_due = SimTime::ZERO;
        self.live_programs = 0;
    }

    // ----- accessors -------------------------------------------------

    /// Current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Current `rdtsc` value.
    pub fn tsc_now(&self) -> u64 {
        self.tsc.read(self.now)
    }

    /// The invariant TSC.
    pub fn tsc(&self) -> &Tsc {
        &self.tsc
    }

    /// Core clock frequency in force right now.
    pub fn freq(&self) -> Freq {
        self.pstate.freq_at(self.now)
    }

    /// Junction temperature (°C).
    pub fn temp_c(&self) -> f64 {
        self.thermal.temp_c()
    }

    /// Package voltage (rail 0) right now, mV.
    pub fn vcc_mv(&self) -> f64 {
        self.pmu.core_voltage_mv(0, self.now)
    }

    /// Package current right now, A.
    pub fn icc_a(&self) -> f64 {
        let acts = self.core_activities();
        self.current_model
            .icc_a(&acts, self.vcc_mv(), self.freq(), self.thermal.temp_c())
    }

    /// The central PMU (read access).
    pub fn pmu(&self) -> &CentralPmu {
        &self.pmu
    }

    /// Current turbo license.
    pub fn turbo_license(&self) -> TurboLicense {
        self.turbo.current()
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SocConfig {
        &self.cfg
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the SoC, returning the trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Whether `core` is throttled right now.
    pub fn core_throttled(&self, core: usize) -> bool {
        self.now < self.cores[core].throttled_until || self.pstate.in_transition(self.now)
    }

    /// Total instructions retired by a hardware thread.
    pub fn inst_retired(&self, core: usize, smt: usize) -> f64 {
        self.cores[core].ctxs[smt].inst_retired
    }

    /// True if every spawned program has halted.
    pub fn all_idle(&self) -> bool {
        self.live_programs == 0
    }

    // ----- program management ----------------------------------------

    /// Pins `program` to hardware thread (`core`, `smt`) and starts it at
    /// the current instant.
    ///
    /// # Panics
    ///
    /// Panics if the slot is occupied or out of range.
    pub fn spawn(&mut self, core: usize, smt: usize, program: Box<dyn Program>) {
        assert!(core < self.cores.len(), "core {core} out of range");
        assert!(
            smt < self.cores[core].ctxs.len(),
            "smt {smt} out of range on core {core}"
        );
        assert!(
            self.cores[core].ctxs[smt].program.is_none(),
            "hardware thread ({core},{smt}) already occupied"
        );
        self.cores[core].ctxs[smt].program = Some(program);
        self.live_programs += 1;
        self.activate(core, smt);
    }

    /// Calls the program until it issues a blocking action.
    fn activate(&mut self, core: usize, smt: usize) {
        for _ in 0..MAX_ACTIVATION_LOOPS {
            let ctx = ProgCtx {
                now: self.now,
                tsc: self.tsc.read(self.now),
                core,
                smt,
            };
            let action = match self.cores[core].ctxs[smt].program.as_mut() {
                Some(p) => p.next(&ctx),
                None => return,
            };
            match action {
                Action::Run {
                    class,
                    instructions,
                } => {
                    self.start_run(core, smt, class, instructions);
                    return;
                }
                Action::WaitUntilTsc(v) => {
                    let until = self.tsc.to_time(v);
                    if until <= self.now {
                        continue; // already reached: ask again
                    }
                    self.cores[core].ctxs[smt].state = CtxState::Waiting { until };
                    return;
                }
                Action::SleepFor(d) => {
                    if d.is_zero() {
                        continue;
                    }
                    self.cores[core].ctxs[smt].state = CtxState::Waiting {
                        until: self.now + d,
                    };
                    return;
                }
                Action::Halt => {
                    self.cores[core].ctxs[smt].program = None;
                    self.cores[core].ctxs[smt].state = CtxState::Idle;
                    self.live_programs -= 1;
                    return;
                }
            }
        }
        // lint:allow(R001): livelock backstop — a program issuing a
        // million non-blocking actions at one instant violates the
        // Program contract and has no recoverable state to surface.
        panic!(
            "program on ({core},{smt}) livelocked at {now}",
            now = self.now
        );
    }

    /// Begins a `Run` block: power-gate wake, turbo/frequency management,
    /// PMU license request, then the block itself.
    fn start_run(&mut self, core: usize, smt: usize, class: InstClass, instructions: u64) {
        // 1. AVX power-gate (ns-scale; Figure 8(b), Figure 9(b)).
        if class.uses_avx_unit() {
            let ready = self.cores[core].avx_gate.request_open(self.now);
            self.cores[core].avx_gate.tick(ready);
            let ctx = &mut self.cores[core].ctxs[smt];
            ctx.paused_until = ctx.paused_until.max(ready);
        }

        // 2. Turbo license + frequency management (Figure 7).
        self.turbo
            .on_execute(class, self.now, &self.cfg.platform.turbo);
        self.cores[core].ctxs[smt].state = CtxState::Running {
            class,
            remaining: instructions as f64,
        };
        self.retarget_frequency();

        // 3. Voltage-guardband license (the IChannels mechanism).
        let grant = self.pmu.on_execute(core, class, self.now);
        if grant.transition.is_some() {
            let c = &mut self.cores[core];
            c.throttled_until = c.throttled_until.max(grant.ready_at);
            c.throttle_cause = smt;
            // §5.5: on a shared VR "the processor PMU stops throttling
            // the cores once the shared VR is settled at the required
            // level by both cores" — a new transition extends the
            // throttle of every core that is still waiting on the rail.
            if !self.cfg.per_core_vr {
                let ready = grant.ready_at;
                let now = self.now;
                for other in self.cores.iter_mut() {
                    if other.throttled_until > now {
                        other.throttled_until = other.throttled_until.max(ready);
                    }
                }
            }
        }
    }

    // ----- frequency management ---------------------------------------

    /// Per-core activity descriptors for the current model.
    fn core_activities(&self) -> Vec<CoreActivity> {
        let mut out = Vec::with_capacity(self.cores.len());
        self.core_activities_into(&mut out);
        out
    }

    /// Fills `out` with the per-core activity descriptors, reusing its
    /// allocation (the event-loop path).
    fn core_activities_into(&self, out: &mut Vec<CoreActivity>) {
        out.clear();
        out.extend(self.cores.iter().map(|core| {
            let mut best: Option<InstClass> = None;
            for ctx in &core.ctxs {
                if let CtxState::Running { class, .. } = ctx.state {
                    best = Some(match best {
                        Some(b) if b >= class => b,
                        _ => class,
                    });
                }
            }
            match best {
                Some(class) => {
                    let act =
                        if self.now < core.throttled_until || self.pstate.in_transition(self.now) {
                            0.25
                        } else {
                            1.0
                        };
                    CoreActivity::partial(class, act)
                }
                None => CoreActivity::IDLE,
            }
        }));
    }

    /// Picks the highest frequency satisfying governor, turbo license,
    /// and electrical limits; requests a P-state change if needed.
    fn retarget_frequency(&mut self) {
        let mut projected = std::mem::take(&mut self.proj_scratch);
        let mut acts = std::mem::take(&mut self.proj_acts_scratch);
        let p = &self.cfg.platform;
        // One pass over the cores gathers everything the search needs:
        // the demanded turbo license, the active-core count, and the
        // worst-case projection (Key Conclusion 2) — unthrottled
        // activity, and the license each core is *about* to hold (its
        // current effective license or the class it is running,
        // whichever is higher).
        projected.clear();
        acts.clear();
        let mut lic = self.turbo.current();
        let mut active = 0usize;
        for (i, core) in self.cores.iter().enumerate() {
            let licensed = self.pmu.effective_class(i, self.now);
            let mut running: Option<InstClass> = None;
            for x in &core.ctxs {
                if let CtxState::Running { class, .. } = x.state {
                    running = Some(match running {
                        Some(r) if r >= class => r,
                        _ => class,
                    });
                    lic = lic.max(TurboLicense::for_class(class));
                }
            }
            if running.is_some() {
                active += 1;
            }
            let proj = Some(match running {
                Some(r) if r > licensed => r,
                _ => licensed,
            });
            projected.push(proj);
            acts.push(match (running.is_some(), proj) {
                (true, Some(class)) => CoreActivity::busy(class),
                _ => CoreActivity::IDLE,
            });
        }
        let load = if active > 0 { 1.0 } else { 0.0 };
        let desired = self.cfg.governor.requested_freq(&p.pstates, load);
        let cap = p.turbo.max_freq(lic, active.max(1));
        let mut candidate = desired.min(cap);
        // Electrical limit search: walk down the P-state table until the
        // projected operating point fits.
        let gb = p.guardband();
        loop {
            let base = p.vf_curve.voltage_mv(candidate);
            let vcc = base + gb.package_guardband_mv(&projected, base, candidate);
            let icc = self
                .current_model
                .icc_a(&acts, vcc, candidate, self.thermal.temp_c());
            if p.limits.check(vcc, icc).is_none() {
                break;
            }
            match p.pstates.next_below(candidate) {
                Some(f) => candidate = f,
                None => break,
            }
        }
        if candidate != self.pstate.target() {
            self.pstate.request(self.now, candidate, &p.pstates);
        }
        self.proj_scratch = projected;
        self.proj_acts_scratch = acts;
    }

    // ----- rates -------------------------------------------------------

    /// Whether the IDQ gate throttles (`core`,`smt`) running `class`.
    fn ctx_throttled(&self, core: usize, smt: usize, class: InstClass) -> bool {
        // P-state transitions throttle the whole core regardless of
        // policy (clock relock, Figure 9(c)).
        if self.pstate.in_transition(self.now) {
            return true;
        }
        let c = &self.cores[core];
        let gated = self.now < c.throttled_until;
        match self.cfg.throttle_policy {
            ThrottlePolicy::BlockEntireCore => gated,
            ThrottlePolicy::PerThreadPhiOnly => gated && c.throttle_cause == smt && class.is_phi(),
        }
    }

    /// Retirement rate (instructions/second) of a hardware thread, valid
    /// until the next event.
    fn ctx_rate(&self, core: usize, smt: usize) -> f64 {
        let ctx = &self.cores[core].ctxs[smt];
        let CtxState::Running { class, .. } = ctx.state else {
            return 0.0;
        };
        if self.now < ctx.paused_until {
            return 0.0;
        }
        let sibling_active = self.cores[core]
            .ctxs
            .iter()
            .enumerate()
            .any(|(i, x)| i != smt && matches!(x.state, CtxState::Running { .. }));
        let throttled = self.ctx_throttled(core, smt, class);
        effective_ipc(class, throttled, sibling_active) * self.freq().as_hz() as f64
    }

    // ----- the event loop ----------------------------------------------

    /// Advances to the next event (bounded by `limit`) and processes it.
    /// Returns `false` once `now >= limit`.
    fn step(&mut self, limit: SimTime) -> bool {
        if self.now >= limit {
            return false;
        }
        // --- 1. find the next event time ---
        // Retirement rates computed during the event search are cached
        // per hardware thread and replayed in phase 2: rates are
        // constant until the next event by construction, so the second
        // `ctx_rate` pass the loop used to do is pure redundancy.
        let mut rates = std::mem::take(&mut self.rate_scratch);
        let mut acts = std::mem::take(&mut self.acts_scratch);
        rates.clear();
        acts.clear();
        let mut t_next = limit;
        let mut noise_min = SimTime::MAX;
        let now = self.now;
        let in_transition = self.pstate.in_transition(now);
        let mut consider = |t: SimTime| {
            if t > now && t < t_next {
                t_next = t;
            }
        };
        for (ci, core) in self.cores.iter().enumerate() {
            if core.throttled_until > now {
                consider(core.throttled_until);
            }
            // The per-core activity descriptor for the phase-2 power
            // computation is accumulated in the same pass (it reads the
            // same pre-event state this search does).
            let mut best: Option<InstClass> = None;
            for (si, ctx) in core.ctxs.iter().enumerate() {
                let mut rate = 0.0;
                match ctx.state {
                    CtxState::Running { class, remaining } => {
                        best = Some(match best {
                            Some(b) if b >= class => b,
                            _ => class,
                        });
                        if ctx.paused_until > now {
                            consider(ctx.paused_until);
                        } else {
                            rate = self.ctx_rate(ci, si);
                            if rate > 0.0 {
                                let dt = SimTime::from_secs(remaining.max(0.0) / rate)
                                    .max(SimTime::from_ps(1));
                                consider(now + dt);
                            }
                        }
                    }
                    CtxState::Waiting { until } => consider(until),
                    CtxState::Idle => {}
                }
                rates.push(rate);
                if ctx.program.is_some() {
                    if let Some((t, _)) = ctx.arrivals.next() {
                        consider(t);
                        noise_min = noise_min.min(t);
                    }
                }
            }
            acts.push(match best {
                Some(class) => {
                    let act = if now < core.throttled_until || in_transition {
                        0.25
                    } else {
                        1.0
                    };
                    CoreActivity::partial(class, act)
                }
                None => CoreActivity::IDLE,
            });
        }
        if self.pstate.in_transition(now) {
            consider(self.pstate.settle_at());
        }
        if let Some(d) = self.pmu.next_decay(now) {
            consider(d);
        }
        if let Some(t) = self.turbo.next_event(&self.cfg.platform.turbo) {
            consider(t);
        }
        if let Some(t) = self.next_governor_tick {
            consider(t);
        }
        if let Some(t) = self.next_sample {
            consider(t);
        }
        self.next_noise_due = noise_min;

        // --- 2. advance state analytically across [now, t_next] ---
        let dt = t_next - self.now;
        let power = self.current_model.power_w(
            &acts,
            self.pmu.core_voltage_mv(0, self.now),
            self.freq(),
            self.thermal.temp_c(),
        );
        self.acts_scratch = acts;
        let dt_secs = dt.as_secs();
        let mut slot = 0;
        for ci in 0..self.cores.len() {
            for si in 0..self.cores[ci].ctxs.len() {
                let rate = rates[slot];
                slot += 1;
                if rate > 0.0 {
                    if let CtxState::Running {
                        ref mut remaining, ..
                    } = self.cores[ci].ctxs[si].state
                    {
                        let done = rate * dt_secs;
                        *remaining -= done;
                        self.cores[ci].ctxs[si].inst_retired += done;
                    }
                }
            }
        }
        self.rate_scratch = rates;
        self.thermal.advance(power, dt);
        self.now = t_next;

        // --- 3. process everything due at the new instant ---
        self.process_due();
        self.now < limit
    }

    /// Handles all conditions that have become due at `self.now`.
    fn process_due(&mut self) {
        let now = self.now;

        // (a) P-state settle → commit the new operating point to the PMU.
        if !self.pstate.in_transition(now) {
            let f = self.pstate.freq_at(now);
            if self.pmu.freq() != f {
                let base = self.cfg.platform.vf_curve.voltage_mv(f);
                self.pmu.set_operating_point(now, f, base);
            }
        }

        // (b) License hysteresis decays (reset-time expiry). Invoked
        // unconditionally: `next_decay` already reports `None` once a
        // license has fully expired, yet the rail may still need its
        // ramp-down scheduled.
        if self.pmu.process_decays(now) {
            // Close AVX power-gates on cores whose license dropped below
            // the 256-bit classes.
            for ci in 0..self.cores.len() {
                if self.pmu.effective_level(ci, now) < InstClass::Light256.intensity_rank() {
                    self.cores[ci].avx_gate.close();
                }
            }
        }

        // (c) Turbo license grant/release.
        let lic_before = self.turbo.current();
        self.turbo.advance(now, &self.cfg.platform.turbo);
        if self.turbo.current() != lic_before {
            self.retarget_frequency();
        }

        // (d) OS noise arrivals pause running programs. The scan is
        // skipped outright when the event search saw no arrival at or
        // before the new instant (arrivals are untouched in between, so
        // every per-context due-check below would be false).
        let noise = self.cfg.noise;
        if self.next_noise_due <= now {
            for ci in 0..self.cores.len() {
                for si in 0..self.cores[ci].ctxs.len() {
                    if self.cores[ci].ctxs[si].program.is_none() {
                        continue;
                    }
                    let due = self.cores[ci].ctxs[si]
                        .arrivals
                        .next()
                        .is_some_and(|(t, _)| t <= now);
                    if due {
                        let service = {
                            let ctx = &mut self.cores[ci].ctxs[si];
                            ctx.arrivals.consume_due(&noise, &mut self.rng, now)
                        };
                        if !service.is_zero() {
                            let ctx = &mut self.cores[ci].ctxs[si];
                            if matches!(ctx.state, CtxState::Running { .. }) {
                                ctx.paused_until = ctx.paused_until.max(now) + service;
                            }
                        }
                    }
                }
            }
        }

        // (e) Block completions and (f) wait expiries → reactivate.
        for ci in 0..self.cores.len() {
            for si in 0..self.cores[ci].ctxs.len() {
                let due = match self.cores[ci].ctxs[si].state {
                    CtxState::Running { remaining, .. } => {
                        remaining <= COMPLETION_EPS && self.cores[ci].ctxs[si].paused_until <= now
                    }
                    CtxState::Waiting { until } => until <= now,
                    CtxState::Idle => false,
                };
                if due {
                    self.cores[ci].ctxs[si].state = CtxState::Idle;
                    self.activate(ci, si);
                }
            }
        }

        // (g) Governor sampling tick. A pending tick implies a sampling
        // period was configured; destructuring both keeps that tie
        // structural instead of asserted.
        if let (Some(t), Some(period)) =
            (self.next_governor_tick, self.cfg.governor.sampling_period())
        {
            if t <= now {
                self.retarget_frequency();
                self.next_governor_tick = Some(now + period);
            }
        }

        // (h) Trace sample (same pending-implies-period structure).
        if let (Some(t), Some(period)) = (self.next_sample, self.cfg.trace.sample_period) {
            if t <= now {
                self.record_sample();
                let mut next = t + period;
                if next <= now {
                    next = now + period;
                }
                self.next_sample = Some(next);
            }
        }
    }

    fn record_sample(&mut self) {
        let freq = self.freq();
        let throttled: Vec<bool> = (0..self.cores.len())
            .map(|c| self.core_throttled(c))
            .collect();
        let core_ipc: Vec<f64> = (0..self.cores.len())
            .map(|c| {
                (0..self.cores[c].ctxs.len())
                    .map(|s| self.ctx_rate(c, s) / freq.as_hz() as f64)
                    .sum()
            })
            .collect();
        let mut acts = std::mem::take(&mut self.acts_scratch);
        self.core_activities_into(&mut acts);
        let vcc = self.pmu.core_voltage_mv(0, self.now);
        let icc = self
            .current_model
            .icc_a(&acts, vcc, freq, self.thermal.temp_c());
        self.acts_scratch = acts;
        self.trace.push(Sample {
            time: self.now,
            vcc_mv: vcc,
            icc_a: icc,
            freq,
            temp_c: self.thermal.temp_c(),
            throttled,
            core_ipc,
        });
    }

    /// Runs the simulation up to (and exactly to) `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while self.step(t) {}
        if self.now < t {
            self.now = t;
        }
    }

    /// Runs until every program has halted or `max` is reached; returns
    /// the instant the simulation stopped.
    pub fn run_until_idle(&mut self, max: SimTime) -> SimTime {
        while !self.all_idle() && self.now < max {
            if !self.step(max) {
                break;
            }
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlatformSpec;
    use crate::program::Script;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn pinned_cannon(freq_ghz: f64) -> Soc {
        Soc::new(SocConfig::pinned(
            PlatformSpec::cannon_lake(),
            Freq::from_ghz(freq_ghz),
        ))
    }

    /// Runs a loop of `class` on (0,0) and returns its wall duration.
    fn loop_duration(soc: &mut Soc, class: InstClass, insts: u64) -> SimTime {
        let start = soc.now();
        soc.spawn(0, 0, Box::new(Script::run_loop(class, insts)));
        let end = soc.run_until_idle(SimTime::from_ms(5.0));
        end - start
    }

    #[test]
    fn scalar_loop_runs_at_full_ipc() {
        let mut soc = pinned_cannon(1.4);
        // 2.8e6 inst at IPC 2 @1.4 GHz = 1 ms.
        let d = loop_duration(&mut soc, InstClass::Scalar64, 2_800_000);
        assert!((d.as_ms() - 1.0).abs() < 0.01, "d = {d}");
    }

    #[test]
    fn phi_loop_pays_throttling_period() {
        let mut soc = pinned_cannon(1.4);
        // 14_000 inst at IPC 1 @1.4 GHz = 10 µs unthrottled.
        let d = loop_duration(&mut soc, InstClass::Heavy512, 14_000);
        // Throttled at 1/4 rate during the ~12 µs ramp: expect ≫ 10 µs.
        assert!(d.as_us() > 18.0, "d = {d}");
        // And the TP is bounded (< 40 µs transaction budget, §6.2).
        assert!(d.as_us() < 40.0, "d = {d}");
    }

    #[test]
    fn second_loop_of_same_class_is_unthrottled() {
        let mut soc = pinned_cannon(1.4);
        let d1 = loop_duration(&mut soc, InstClass::Heavy256, 14_000);
        // Within the reset-time: no new transition.
        let d2 = loop_duration(&mut soc, InstClass::Heavy256, 14_000);
        assert!(d2 < d1, "d1 = {d1}, d2 = {d2}");
        assert!((d2.as_us() - 10.0).abs() < 0.5, "d2 = {d2}");
    }

    #[test]
    fn license_decays_after_reset_time() {
        let mut soc = pinned_cannon(1.4);
        let d1 = loop_duration(&mut soc, InstClass::Heavy256, 14_000);
        // Wait past the 650 µs reset-time.
        let resume = soc.now() + SimTime::from_us(700.0);
        soc.run_until(resume);
        let d2 = loop_duration(&mut soc, InstClass::Heavy256, 14_000);
        assert!(
            (d1.as_us() - d2.as_us()).abs() < 1.0,
            "d1 = {d1}, d2 = {d2}"
        );
    }

    #[test]
    fn smt_sibling_is_throttled_too() {
        // Observation 2: a 64b loop on the sibling thread slows down
        // while the other thread's PHI is being licensed.
        let mut soc = pinned_cannon(1.4);
        // Baseline: scalar loop alone (28k inst @ IPC2 @1.4GHz = 10 µs).
        let d_alone = loop_duration(&mut soc, InstClass::Scalar64, 28_000);
        soc.run_until(soc.now() + SimTime::from_ms(1.0)); // decay

        let mut soc = pinned_cannon(1.4);
        soc.spawn(
            0,
            1,
            Box::new(Script::run_loop(InstClass::Heavy512, 14_000)),
        );
        let start = soc.now();
        soc.spawn(
            0,
            0,
            Box::new(Script::run_loop(InstClass::Scalar64, 28_000)),
        );
        // Run until the scalar loop's thread is done.
        while soc.inst_retired(0, 0) < 27_999.0 && soc.now() < SimTime::from_ms(5.0) {
            soc.run_until(soc.now() + SimTime::from_us(1.0));
        }
        let d_shared = soc.now() - start;
        assert!(
            d_shared > d_alone + SimTime::from_us(5.0),
            "alone = {d_alone}, with PHI sibling = {d_shared}"
        );
    }

    #[test]
    fn improved_throttling_spares_smt_sibling() {
        let cfg = SocConfig::pinned(PlatformSpec::cannon_lake(), Freq::from_ghz(1.4))
            .with_improved_throttling();
        let mut soc = Soc::new(cfg);
        soc.spawn(
            0,
            1,
            Box::new(Script::run_loop(InstClass::Heavy512, 14_000)),
        );
        let start = soc.now();
        soc.spawn(
            0,
            0,
            Box::new(Script::run_loop(InstClass::Scalar64, 28_000)),
        );
        while soc.inst_retired(0, 0) < 27_999.0 && soc.now() < SimTime::from_ms(5.0) {
            soc.run_until(soc.now() + SimTime::from_us(1.0));
        }
        let d = soc.now() - start;
        // Sibling runs at full speed: ~10 µs.
        assert!(d.as_us() < 11.0, "d = {d}");
    }

    #[test]
    fn cross_core_requests_extend_receiver_tp() {
        // Observation 3.
        let mut soc = pinned_cannon(1.4);
        soc.spawn(
            0,
            0,
            Box::new(Script::run_loop(InstClass::Heavy512, 30_000)),
        );
        soc.run_until(SimTime::from_ns(200.0)); // "within a few hundred cycles"
        let start = soc.now();
        soc.spawn(
            1,
            0,
            Box::new(Script::run_loop(InstClass::Heavy128, 10_000)),
        );
        let end = soc.run_until_idle(SimTime::from_ms(5.0));
        let d_both = end - start;

        // Same receiver loop without the other core's PHI.
        let mut soc = pinned_cannon(1.4);
        let d_alone = loop_duration(&mut soc, InstClass::Heavy128, 10_000);
        assert!(
            d_both > d_alone + SimTime::from_us(5.0),
            "alone = {d_alone}, contended = {d_both}"
        );
    }

    #[test]
    fn secure_mode_eliminates_throttling() {
        let cfg =
            SocConfig::pinned(PlatformSpec::cannon_lake(), Freq::from_ghz(1.4)).with_secure_mode();
        let mut soc = Soc::new(cfg);
        let d = loop_duration(&mut soc, InstClass::Heavy512, 14_000);
        assert!((d.as_us() - 10.0).abs() < 0.5, "d = {d}");
    }

    #[test]
    fn wall_clock_sync_via_tsc() {
        let mut soc = pinned_cannon(2.2);
        let observed = Rc::new(RefCell::new(0u64));
        let obs = observed.clone();
        let mut sent = false;
        let prog = crate::program::FnProgram::new("sync", move |ctx: &ProgCtx| {
            if !sent {
                sent = true;
                Action::WaitUntilTsc(220_000) // 100 µs at 2.2 GHz TSC
            } else {
                *obs.borrow_mut() = ctx.tsc;
                Action::Halt
            }
        });
        soc.spawn(0, 0, Box::new(prog));
        soc.run_until_idle(SimTime::from_ms(1.0));
        let tsc = *observed.borrow();
        assert!(
            (220_000..220_400).contains(&tsc),
            "woke at tsc {tsc}, expected ~220000"
        );
    }

    #[test]
    fn turbo_protection_reduces_frequency_for_phis() {
        // Figure 7(b): at the performance governor, AVX2/AVX-512 force
        // the mobile part below its 3.1 GHz max turbo.
        let mut soc = Soc::new(SocConfig::quiet(PlatformSpec::cannon_lake()));
        assert_eq!(soc.freq(), Freq::from_ghz(3.1));
        soc.spawn(
            0,
            0,
            Box::new(Script::run_loop(InstClass::Heavy512, 3_000_000)),
        );
        soc.run_until(SimTime::from_ms(1.0));
        assert!(
            soc.freq() <= Freq::from_ghz(2.4),
            "freq = {} under AVX-512",
            soc.freq()
        );
        // Temperature is nowhere near Tjmax (Key Conclusion 2).
        assert!(soc.temp_c() < 70.0);
    }

    #[test]
    fn trace_records_voltage_steps() {
        let cfg = SocConfig::pinned(PlatformSpec::coffee_lake(), Freq::from_ghz(2.0))
            .with_trace(SimTime::from_us(5.0));
        let mut soc = Soc::new(cfg);
        let v0 = soc.vcc_mv();
        soc.spawn(
            0,
            0,
            Box::new(Script::run_loop(InstClass::Heavy256, 1_000_000)),
        );
        soc.run_until(SimTime::from_ms(1.0));
        let trace = soc.trace();
        assert!(!trace.is_empty());
        let vmax = trace.vcc_max().unwrap();
        assert!(vmax > v0 + 3.0, "v0 = {v0}, vmax = {vmax}");
        // Frequency stayed pinned (Figure 6(a), fifth observation).
        assert!(trace
            .freq_series()
            .iter()
            .all(|(_, f)| (*f - 2.0).abs() < 1e-9));
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let cfg = SocConfig::pinned(PlatformSpec::cannon_lake(), Freq::from_ghz(1.4))
                .with_noise(crate::noise::NoiseConfig::low());
            let mut soc = Soc::new(cfg);
            soc.spawn(
                0,
                0,
                Box::new(Script::run_loop(InstClass::Heavy256, 50_000)),
            );
            soc.run_until_idle(SimTime::from_ms(10.0))
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn power_gate_pause_is_nanoseconds() {
        let mut soc = pinned_cannon(1.4);
        // Tiny AVX loop: duration dominated by throttle, but the PG wake
        // adds its ns-scale latency to the very first block only.
        let d1 = loop_duration(&mut soc, InstClass::Light256, 100);
        soc.run_until(soc.now() + SimTime::from_us(1.0));
        let d2 = loop_duration(&mut soc, InstClass::Light256, 100);
        // Same license now: second run has no ramp AND no PG wake.
        assert!(d1 > d2);
    }
}

//! Figure 9 — fine-grained timelines of one AVX2 PHI loop on Cannon
//! Lake (paper §5.4).
//!
//! (a) At a sub-nominal frequency: the core throttles (IPC drops to 1/4)
//! while the VR ramps the guardband; frequency is untouched.
//! (b) ns-zoom: the AVX power-gate opens within ~10 ns, 0.1 % of the TP.
//! (c) At turbo: the Vccmax/Iccmax protection initiates a P-state
//! transition — throttling plus a frequency step down.

use ichannels_meter::export::CsvTable;
use ichannels_soc::config::{PlatformSpec, SocConfig};
use ichannels_soc::program::Script;
use ichannels_soc::sim::Soc;
use ichannels_uarch::isa::InstClass;
use ichannels_uarch::time::{Freq, SimTime};
use ichannels_workload::loops::instructions_for_duration;

use crate::{banner, write_csv};

fn timeline(cfg: SocConfig, label: &str, horizon: SimTime, csv_name: &str) -> CsvTable {
    let mut soc = Soc::new(cfg);
    let v0 = soc.vcc_mv();
    let freq = soc.freq();
    let insts = instructions_for_duration(InstClass::Heavy256, freq, SimTime::from_us(30.0));
    soc.spawn(0, 0, Box::new(Script::run_loop(InstClass::Heavy256, insts)));
    soc.run_until(horizon);
    let trace = soc.trace();
    let mut csv = CsvTable::new(["time_us", "ipc", "freq_ghz", "vcc_delta_mv", "throttled"]);
    for s in trace.samples() {
        csv.push_floats([
            s.time.as_us(),
            s.core_ipc[0],
            s.freq.as_ghz(),
            s.vcc_mv - v0,
            if s.throttled[0] { 1.0 } else { 0.0 },
        ]);
    }
    // Locate the throttle window for the printed summary.
    let t_start = trace
        .samples()
        .iter()
        .find(|s| s.throttled[0])
        .map(|s| s.time.as_us());
    let t_end = trace
        .samples()
        .iter()
        .rfind(|s| s.throttled[0])
        .map(|s| s.time.as_us());
    let f_final = trace
        .samples()
        .last()
        .map(|s| s.freq.as_ghz())
        .unwrap_or(0.0);
    let v_final = trace.samples().last().map(|s| s.vcc_mv - v0).unwrap_or(0.0);
    match (t_start, t_end) {
        (Some(a), Some(b)) => println!(
            "  {label}: throttled {a:.1}–{b:.1} µs, final freq {f_final:.2} GHz, Vcc +{v_final:.1} mV"
        ),
        _ => println!("  {label}: no throttling observed"),
    }
    write_csv(&csv, csv_name);
    csv
}

/// Runs the three Figure 9 panels.
pub fn run(_quick: bool) {
    banner("Figure 9: AVX2 PHI timelines on Cannon Lake");
    // (a) Sub-nominal frequency: guardband ramp throttling only.
    let cfg = SocConfig::pinned(PlatformSpec::cannon_lake(), Freq::from_ghz(1.4))
        .with_trace(SimTime::from_ns(200.0));
    timeline(
        cfg,
        "(a) 1.4 GHz (di/dt guardband ramp)",
        SimTime::from_us(40.0),
        "fig09a_guardband.csv",
    );

    // (b) ns zoom: the power-gate wake.
    let wake = PlatformSpec::cannon_lake()
        .avx_pg_wake
        .expect("cannon lake has an AVX power gate");
    println!(
        "  (b) AVX power-gate staggered wake: {} (~0.1% of the {}-µs TP)",
        wake, 12
    );

    // (c) Turbo: Vccmax/Iccmax protection with a P-state transition.
    let cfg = SocConfig::quiet(PlatformSpec::cannon_lake()).with_trace(SimTime::from_ns(200.0));
    timeline(
        cfg,
        "(c) turbo (P-state transition)",
        SimTime::from_us(60.0),
        "fig09c_pstate.csv",
    );
}

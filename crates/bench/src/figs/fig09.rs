//! Figure 9 — fine-grained timelines of one AVX2 PHI loop on Cannon
//! Lake (paper §5.4).
//!
//! (a) At a sub-nominal frequency: the core throttles (IPC drops to 1/4)
//! while the VR ramps the guardband; frequency is untouched.
//! (b) ns-zoom: the AVX power-gate opens within ~10 ns, 0.1 % of the TP.
//! (c) At turbo: the Vccmax/Iccmax protection initiates a P-state
//! transition — throttling plus a frequency step down.
//!
//! Both timelines are `ichannels-lab` trace experiments executed on the
//! engine's worker pool; this module only post-processes the series.

use ichannels_lab::scenario::PlatformId;
use ichannels_lab::{Executor, TraceProgram, TraceRun, TraceSpec};
use ichannels_meter::export::CsvTable;
use ichannels_soc::config::PlatformSpec;
use ichannels_uarch::isa::InstClass;
use ichannels_uarch::time::SimTime;

use crate::{banner, write_csv};

fn timeline(run: &TraceRun, label: &str, csv_name: &str) -> CsvTable {
    let mut csv = CsvTable::new(["time_us", "ipc", "freq_ghz", "vcc_delta_mv", "throttled"]);
    for s in run.trace.samples() {
        csv.push_floats([
            s.time.as_us(),
            s.core_ipc[0],
            s.freq.as_ghz(),
            s.vcc_mv - run.v0_mv,
            if s.throttled[0] { 1.0 } else { 0.0 },
        ]);
    }
    // Locate the throttle window for the printed summary.
    let samples = run.trace.samples();
    let t_start = samples
        .iter()
        .find(|s| s.throttled[0])
        .map(|s| s.time.as_us());
    let t_end = samples
        .iter()
        .rfind(|s| s.throttled[0])
        .map(|s| s.time.as_us());
    let f_final = samples.last().map(|s| s.freq.as_ghz()).unwrap_or(0.0);
    let v_final = samples.last().map(|s| s.vcc_mv - run.v0_mv).unwrap_or(0.0);
    match (t_start, t_end) {
        (Some(a), Some(b)) => println!(
            "  {label}: throttled {a:.1}–{b:.1} µs, final freq {f_final:.2} GHz, Vcc +{v_final:.1} mV"
        ),
        _ => println!("  {label}: no throttling observed"),
    }
    write_csv(&csv, csv_name);
    csv
}

/// Runs the three Figure 9 panels.
pub fn run(_quick: bool) {
    banner("Figure 9: AVX2 PHI timelines on Cannon Lake");
    let burst = || TraceProgram::Burst {
        class: InstClass::Heavy256,
        duration: SimTime::from_us(30.0),
    };
    let specs = [
        // (a) Sub-nominal frequency: guardband ramp throttling only.
        TraceSpec {
            name: "fig09a".to_string(),
            platform: PlatformId::CannonLake,
            freq_ghz: Some(1.4),
            sample_every: SimTime::from_ns(200.0),
            horizon: SimTime::from_us(40.0),
            cores: vec![(0, burst())],
        },
        // (c) Turbo: Vccmax/Iccmax protection with a P-state transition.
        TraceSpec {
            name: "fig09c".to_string(),
            platform: PlatformId::CannonLake,
            freq_ghz: None,
            sample_every: SimTime::from_ns(200.0),
            horizon: SimTime::from_us(60.0),
            cores: vec![(0, burst())],
        },
    ];
    let runs = Executor::auto().map(&specs, TraceSpec::run);
    timeline(
        &runs[0],
        "(a) 1.4 GHz (di/dt guardband ramp)",
        "fig09a_guardband.csv",
    );

    // (b) ns zoom: the power-gate wake.
    let wake = PlatformSpec::cannon_lake()
        .avx_pg_wake
        .expect("cannon lake has an AVX power gate");
    println!(
        "  (b) AVX power-gate staggered wake: {} (~0.1% of the {}-µs TP)",
        wake, 12
    );

    timeline(
        &runs[1],
        "(c) turbo (P-state transition)",
        "fig09c_pstate.csv",
    );
}

//! Table 1 — effectiveness and overhead of the three mitigations
//! (paper §7).
//!
//! The 3 channels × (1 + 3 mitigation sets) evaluation runs as one
//! `ichannels-lab` grid on the worker pool; effectiveness is classified
//! from the engine's per-cell capacities via
//! `ichannels::mitigations::classify_capacity`.

use ichannels::channel::ChannelKind;
use ichannels::mitigations::{
    classify_capacity, secure_mode_power_overhead, Effectiveness, Mitigation,
};
use ichannels_lab::{Executor, Grid};
use ichannels_meter::export::CsvTable;
use ichannels_soc::config::PlatformSpec;
use ichannels_uarch::isa::InstClass;

use crate::{banner, write_csv};

/// One Table 1 cell, measured through the campaign engine.
#[derive(Debug, Clone)]
pub struct Table1Cell {
    /// The mitigation applied.
    pub mitigation: Mitigation,
    /// The channel evaluated.
    pub channel: ChannelKind,
    /// Unmitigated capacity (bits/s).
    pub baseline_capacity_bps: f64,
    /// Capacity with the mitigation applied (bits/s).
    pub mitigated_capacity_bps: f64,
    /// BER with the mitigation applied.
    pub mitigated_ber: f64,
    /// Verdict.
    pub effectiveness: Effectiveness,
}

/// Runs the full 3×3 Table 1 evaluation on the campaign engine.
pub fn run(quick: bool) -> Vec<Table1Cell> {
    banner("Table 1: mitigation effectiveness and overhead");
    // Quick mode still needs ≥32 symbols: below that the Miller–Madow
    // correction leaves enough residual MI on a dead channel to blur
    // the Full/Partial boundary.
    let n = if quick { 32 } else { 60 };
    let reps = if quick { 2 } else { 3 };
    let kinds = [ChannelKind::Thread, ChannelKind::Smt, ChannelKind::Cores];

    // One grid: channels × (unmitigated + each single mitigation). The
    // attacker recalibrates per cell (Scenario::run always calibrates
    // against the cell's own configuration).
    let grid = Grid::new()
        .kinds(&kinds)
        .mitigation_sets(vec![
            vec![],
            vec![Mitigation::PerCoreVr],
            vec![Mitigation::ImprovedThrottling],
            vec![Mitigation::SecureMode],
        ])
        .payload_symbols(n)
        .calib_reps(reps)
        .base_seed(0xAB);
    let records = Executor::auto().run(&grid.scenarios());

    let cell = |kind: ChannelKind, set: &[Mitigation]| {
        records
            .iter()
            .find(|r| {
                matches!(
                    r.scenario.channel,
                    ichannels_lab::ChannelSelect::Icc(k) if k == kind
                ) && r.scenario.mitigations == set
            })
            .expect("grid covers every cell")
    };

    let mut outcomes = Vec::new();
    let mut csv = CsvTable::new([
        "mitigation",
        "channel",
        "baseline_capacity_bps",
        "mitigated_capacity_bps",
        "mitigated_ber",
        "effective",
        "overhead",
    ]);
    println!(
        "  {:<22} {:>17} {:>15} {:>15}   overhead",
        "mitigation", "IccThreadCovert", "IccSMTcovert", "IccCoresCovert"
    );
    for mitigation in Mitigation::ALL {
        let mut cells = Vec::new();
        for kind in kinds {
            let baseline = cell(kind, &[]);
            let mitigated = cell(kind, &[mitigation]);
            let effectiveness = classify_capacity(
                mitigated.metrics.capacity_bps,
                baseline.metrics.capacity_bps,
            );
            csv.push_row([
                mitigation.name().to_string(),
                kind.name().to_string(),
                format!("{:.1}", baseline.metrics.capacity_bps),
                format!("{:.1}", mitigated.metrics.capacity_bps),
                format!("{:.3}", mitigated.metrics.ber),
                effectiveness.to_string(),
                mitigation.overhead().to_string(),
            ]);
            cells.push(effectiveness.to_string());
            outcomes.push(Table1Cell {
                mitigation,
                channel: kind,
                baseline_capacity_bps: baseline.metrics.capacity_bps,
                mitigated_capacity_bps: mitigated.metrics.capacity_bps,
                mitigated_ber: mitigated.metrics.ber,
                effectiveness,
            });
        }
        println!(
            "  {:<22} {:>17} {:>15} {:>15}   {}",
            mitigation.name(),
            cells[0],
            cells[1],
            cells[2],
            mitigation.overhead()
        );
    }
    // Secure-mode power overhead, quantified from the guardband model.
    let p = PlatformSpec::cannon_lake();
    println!(
        "  secure-mode static power overhead: AVX2 system {:.1}%, AVX-512 system {:.1}% (paper: 4%/11%)",
        secure_mode_power_overhead(&p, InstClass::Heavy256) * 100.0,
        secure_mode_power_overhead(&p, InstClass::Heavy512) * 100.0
    );
    write_csv(&csv, "table1_mitigations.csv");
    outcomes
}

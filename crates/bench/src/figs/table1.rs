//! Table 1 — effectiveness and overhead of the three mitigations
//! (paper §7).

use ichannels::channel::{ChannelConfig, ChannelKind};
use ichannels::mitigations::{
    evaluate_mitigation, secure_mode_power_overhead, Mitigation, MitigationOutcome,
};
use ichannels_meter::export::CsvTable;
use ichannels_soc::config::PlatformSpec;
use ichannels_uarch::isa::InstClass;

use crate::{banner, write_csv};

/// Runs the full 3×3 Table 1 evaluation.
pub fn run(quick: bool) -> Vec<MitigationOutcome> {
    banner("Table 1: mitigation effectiveness and overhead");
    let n = if quick { 24 } else { 60 };
    let reps = if quick { 2 } else { 3 };
    let base = ChannelConfig::default_cannon_lake();
    let kinds = [ChannelKind::Thread, ChannelKind::Smt, ChannelKind::Cores];

    let mut outcomes = Vec::new();
    let mut csv = CsvTable::new([
        "mitigation",
        "channel",
        "baseline_capacity_bps",
        "mitigated_capacity_bps",
        "mitigated_ber",
        "effective",
        "overhead",
    ]);
    println!(
        "  {:<22} {:>17} {:>15} {:>15}   overhead",
        "mitigation", "IccThreadCovert", "IccSMTcovert", "IccCoresCovert"
    );
    for mitigation in Mitigation::ALL {
        let mut cells = Vec::new();
        for kind in kinds {
            let o = evaluate_mitigation(mitigation, kind, &base, n, reps, 0xAB);
            csv.push_row([
                mitigation.name().to_string(),
                kind.name().to_string(),
                format!("{:.1}", o.baseline.capacity_bps),
                format!("{:.1}", o.mitigated.capacity_bps),
                format!("{:.3}", o.mitigated.ber),
                o.effectiveness.to_string(),
                mitigation.overhead().to_string(),
            ]);
            cells.push(o.effectiveness.to_string());
            outcomes.push(o);
        }
        println!(
            "  {:<22} {:>17} {:>15} {:>15}   {}",
            mitigation.name(),
            cells[0],
            cells[1],
            cells[2],
            mitigation.overhead()
        );
    }
    // Secure-mode power overhead, quantified from the guardband model.
    let p = PlatformSpec::cannon_lake();
    println!(
        "  secure-mode static power overhead: AVX2 system {:.1}%, AVX-512 system {:.1}% (paper: 4%/11%)",
        secure_mode_power_overhead(&p, InstClass::Heavy256) * 100.0,
        secure_mode_power_overhead(&p, InstClass::Heavy512) * 100.0
    );
    write_csv(&csv, "table1_mitigations.csv");
    outcomes
}

//! Figure 12 — covert-channel throughput vs the state of the art
//! (paper §6.2).
//!
//! (a) IccThreadCovert transmits **two** bits per reset-time cycle where
//! NetSpectre's single-level gadget transmits one ⇒ 2× throughput.
//! (b) IccSMTcovert/IccCoresCovert (~2.9 kb/s) vs DFScovert (~20 b/s),
//! TurboCC (~61 b/s), POWERT (~122 b/s): 145×/47×/24×.
//!
//! All seven channels run as one `ichannels-lab` campaign: the three
//! IChannels and the four baselines form the channel axis of a
//! single-platform grid executed on the worker pool.

use ichannels::channel::ChannelKind;
use ichannels_lab::scenario::{BaselineKind, ChannelSelect};
use ichannels_lab::{campaigns, Executor};
use ichannels_meter::export::CsvTable;

use crate::{banner, write_csv};

/// Measured throughput of one channel.
#[derive(Debug, Clone)]
pub struct Throughput {
    /// Channel name.
    pub name: String,
    /// Bits per second (error-free transmission measured).
    pub bps: f64,
    /// Measured bit error rate during the run.
    pub ber: f64,
}

/// Runs both panels; returns all measured throughputs.
pub fn run(quick: bool) -> Vec<Throughput> {
    banner("Figure 12: channel throughput vs state of the art");
    let n = if quick { 12 } else { 40 };

    let channels = vec![
        ChannelSelect::Icc(ChannelKind::Thread),
        ChannelSelect::Baseline(BaselineKind::NetSpectre),
        ChannelSelect::Icc(ChannelKind::Smt),
        ChannelSelect::Icc(ChannelKind::Cores),
        ChannelSelect::Baseline(BaselineKind::DfsCovert),
        ChannelSelect::Baseline(BaselineKind::TurboCc),
        ChannelSelect::Baseline(BaselineKind::Powert),
    ];
    let grid = campaigns::channel_shootout(channels.clone(), n, 42);
    let report = campaigns::run("fig12_shootout", &grid, Executor::auto());

    // One record per channel (single platform, one trial per cell), in
    // grid axis order.
    let out: Vec<Throughput> = report
        .records
        .iter()
        .map(|r| Throughput {
            name: r.scenario.channel.label(),
            bps: r.metrics.throughput_bps,
            ber: r.metrics.ber,
        })
        .collect();
    assert_eq!(out.len(), channels.len(), "one record per channel");

    // Report.
    let find = |n: &str| out.iter().find(|t| t.name == n).expect("present");
    let icc = find("IccSMTcovert").bps;
    println!(
        "  {:<16} {:>12} {:>8} {:>10}",
        "channel", "bits/s", "BER", "IChannels×"
    );
    let mut csv = CsvTable::new(["channel", "bps", "ber", "ichannels_ratio"]);
    for t in &out {
        let ratio = icc / t.bps;
        println!(
            "  {:<16} {:>12.1} {:>8.3} {:>9.1}x",
            t.name, t.bps, t.ber, ratio
        );
        csv.push_row([
            t.name.clone(),
            format!("{:.2}", t.bps),
            format!("{:.4}", t.ber),
            format!("{ratio:.1}"),
        ]);
    }
    let ns_ratio = find("IccThreadCovert").bps / find("NetSpectre").bps;
    println!("  IccThreadCovert / NetSpectre = {ns_ratio:.2}x (paper: 2x)");
    println!(
        "  IccSMT / DFScovert = {:.0}x, / TurboCC = {:.0}x, / POWERT = {:.0}x (paper: 145x/47x/24x)",
        icc / find("DFScovert").bps,
        icc / find("TurboCC").bps,
        icc / find("POWERT").bps
    );
    write_csv(&csv, "fig12_throughput.csv");
    out
}

//! Figure 12 — covert-channel throughput vs the state of the art
//! (paper §6.2).
//!
//! (a) IccThreadCovert transmits **two** bits per reset-time cycle where
//! NetSpectre's single-level gadget transmits one ⇒ 2× throughput.
//! (b) IccSMTcovert/IccCoresCovert (~2.9 kb/s) vs DFScovert (~20 b/s),
//! TurboCC (~61 b/s), POWERT (~122 b/s): 145×/47×/24×.

use ichannels::baselines::dfscovert::DfsCovertChannel;
use ichannels::baselines::netspectre::NetSpectreChannel;
use ichannels::baselines::powert::PowerTChannel;
use ichannels::baselines::turbocc::TurboCcChannel;
use ichannels::ber::evaluate;
use ichannels::channel::IChannel;
use ichannels_meter::export::CsvTable;

use crate::{banner, write_csv};

/// Measured throughput of one channel.
#[derive(Debug, Clone)]
pub struct Throughput {
    /// Channel name.
    pub name: String,
    /// Bits per second (error-free transmission measured).
    pub bps: f64,
    /// Measured bit error rate during the run.
    pub ber: f64,
}

/// Runs both panels; returns all measured throughputs.
pub fn run(quick: bool) -> Vec<Throughput> {
    banner("Figure 12: channel throughput vs state of the art");
    let n = if quick { 12 } else { 40 };
    let mut out = Vec::new();

    // (a) IccThreadCovert vs NetSpectre.
    let icc_thread = IChannel::icc_thread_covert();
    let cal = icc_thread.calibrate(3);
    let ev = evaluate(&icc_thread, &cal, n, 42);
    out.push(Throughput {
        name: "IccThreadCovert".into(),
        bps: ev.throughput_bps,
        ber: ev.ber,
    });

    let ns = NetSpectreChannel::default_cannon_lake();
    let ns_cal = ns.calibrate(3);
    let ns_bits: Vec<bool> = (0..n).map(|i| i % 3 != 0).collect();
    let ns_tx = ns.transmit(&ns_bits, ns_cal);
    out.push(Throughput {
        name: "NetSpectre".into(),
        bps: ns_tx.throughput_bps,
        ber: ns_tx.bit_error_rate(),
    });

    // (b) IccSMTcovert / IccCoresCovert vs DFScovert / TurboCC / POWERT.
    for (label, ch) in [
        ("IccSMTcovert", IChannel::icc_smt_covert()),
        ("IccCoresCovert", IChannel::icc_cores_covert()),
    ] {
        let cal = ch.calibrate(3);
        let ev = evaluate(&ch, &cal, n, 43);
        out.push(Throughput {
            name: label.into(),
            bps: ev.throughput_bps,
            ber: ev.ber,
        });
    }

    let dfs = DfsCovertChannel::default();
    let bits: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
    let (dec, bps) = dfs.transmit(&bits);
    let ber = bits.iter().zip(&dec).filter(|(a, b)| a != b).count() as f64 / bits.len() as f64;
    out.push(Throughput {
        name: "DFScovert".into(),
        bps,
        ber,
    });

    let turbo = TurboCcChannel::default();
    let t_cal = turbo.calibrate(2);
    let t_bits = [true, false, true, true, false];
    let t_tx = turbo.transmit(&t_bits, t_cal);
    out.push(Throughput {
        name: "TurboCC".into(),
        bps: t_tx.throughput_bps,
        ber: t_tx.bit_error_rate(),
    });

    let pt = PowerTChannel::default();
    let (dec, bps) = pt.transmit(&bits);
    let ber = bits.iter().zip(&dec).filter(|(a, b)| a != b).count() as f64 / bits.len() as f64;
    out.push(Throughput {
        name: "POWERT".into(),
        bps,
        ber,
    });

    // Report.
    let find = |n: &str| out.iter().find(|t| t.name == n).expect("present");
    let icc = find("IccSMTcovert").bps;
    println!("  {:<16} {:>12} {:>8} {:>10}", "channel", "bits/s", "BER", "IChannels×");
    let mut csv = CsvTable::new(["channel", "bps", "ber", "ichannels_ratio"]);
    for t in &out {
        let ratio = icc / t.bps;
        println!(
            "  {:<16} {:>12.1} {:>8.3} {:>9.1}x",
            t.name, t.bps, t.ber, ratio
        );
        csv.push_row([
            t.name.clone(),
            format!("{:.2}", t.bps),
            format!("{:.4}", t.ber),
            format!("{ratio:.1}"),
        ]);
    }
    let ns_ratio = find("IccThreadCovert").bps / find("NetSpectre").bps;
    println!("  IccThreadCovert / NetSpectre = {ns_ratio:.2}x (paper: 2x)");
    println!(
        "  IccSMT / DFScovert = {:.0}x, / TurboCC = {:.0}x, / POWERT = {:.0}x (paper: 145x/47x/24x)",
        icc / find("DFScovert").bps,
        icc / find("TurboCC").bps,
        icc / find("POWERT").bps
    );
    write_csv(&csv, "fig12_throughput.csv");
    out
}

//! Figure 7 — maximum Icc/Vcc limit protection (paper §5.3).
//!
//! (a) Projected operating points: on the desktop part, AVX2 at 4.9 GHz
//! exceeds **Vccmax** while staying under Iccmax; on the mobile part,
//! AVX2 at 3.1 GHz exceeds **Iccmax** while staying under Vccmax. One
//! P-state down, both fit.
//!
//! (b) Running Non-AVX → AVX2 → AVX512 phases at the performance
//! governor: the frequency steps down per phase, Icc stays below Iccmax,
//! and the junction temperature stays far below Tjmax (Key Conclusion 2:
//! this is current management, not thermal management).

use ichannels_meter::export::CsvTable;
use ichannels_pdn::current::CoreActivity;
use ichannels_soc::config::{PlatformSpec, SocConfig};
use ichannels_soc::sim::Soc;
use ichannels_uarch::isa::InstClass;
use ichannels_uarch::time::{Freq, SimTime};
use ichannels_workload::phases::PhaseProgram;

use crate::{banner, write_csv};

/// One projected operating point for Figure 7(a).
#[derive(Debug, Clone)]
pub struct OperatingPoint {
    /// System label.
    pub system: String,
    /// Core frequency.
    pub freq: Freq,
    /// Workload label (`Non-AVX` / `AVX2`).
    pub workload: String,
    /// Projected VR output voltage (mV) incl. guardband.
    pub vcc_mv: f64,
    /// Projected package current (A).
    pub icc_a: f64,
    /// Violated limit, if any.
    pub violation: Option<String>,
}

/// Computes the projected (unprotected) operating point — the paper's
/// green-bordered bars.
fn project(
    platform: &PlatformSpec,
    freq: Freq,
    class: InstClass,
    active_cores: usize,
    system: &str,
    workload: &str,
) -> OperatingPoint {
    let base = platform.vf_curve.voltage_mv(freq);
    let classes: Vec<Option<InstClass>> = (0..platform.n_cores)
        .map(|i| if i < active_cores { Some(class) } else { None })
        .collect();
    let vcc = base
        + platform
            .guardband()
            .package_guardband_mv(&classes, base, freq);
    let acts: Vec<CoreActivity> = (0..platform.n_cores)
        .map(|i| {
            if i < active_cores {
                CoreActivity::busy(class)
            } else {
                CoreActivity::IDLE
            }
        })
        .collect();
    let icc = platform.current_model().icc_a(&acts, vcc, freq, 60.0);
    OperatingPoint {
        system: system.to_string(),
        freq,
        workload: workload.to_string(),
        vcc_mv: vcc,
        icc_a: icc,
        violation: platform.limits.check(vcc, icc).map(|v| v.to_string()),
    }
}

/// Runs Figure 7(a); returns the operating-point table.
pub fn run_limits(_quick: bool) -> Vec<OperatingPoint> {
    banner("Figure 7(a): Vccmax/Iccmax protection — projected operating points");
    let desktop = PlatformSpec::coffee_lake();
    let mobile = PlatformSpec::cannon_lake();
    let mut rows = Vec::new();
    for (freq, label) in [(4.9, "4.9GHz"), (4.8, "4.8GHz")] {
        for (class, wl) in [
            (InstClass::Scalar64, "Non-AVX"),
            (InstClass::Heavy256, "AVX2"),
        ] {
            rows.push(project(
                &desktop,
                Freq::from_ghz(freq),
                class,
                1,
                &format!("Desktop i7-9700K {label}"),
                wl,
            ));
        }
    }
    for (freq, label) in [(3.1, "3.1GHz"), (2.2, "2.2GHz")] {
        for (class, wl) in [
            (InstClass::Scalar64, "Non-AVX"),
            (InstClass::Heavy256, "AVX2"),
        ] {
            rows.push(project(
                &mobile,
                Freq::from_ghz(freq),
                class,
                2,
                &format!("Mobile i3-8121U {label}"),
                wl,
            ));
        }
    }
    let mut csv = CsvTable::new([
        "system",
        "workload",
        "freq_ghz",
        "vcc_mv",
        "icc_a",
        "violation",
    ]);
    println!(
        "  {:<26} {:<8} {:>9} {:>9} {:>9}  violation",
        "system", "workload", "freq", "Vcc(mV)", "Icc(A)"
    );
    for r in &rows {
        println!(
            "  {:<26} {:<8} {:>9} {:>9.1} {:>9.1}  {}",
            r.system,
            r.workload,
            format!("{}", r.freq),
            r.vcc_mv,
            r.icc_a,
            r.violation.as_deref().unwrap_or("-")
        );
        csv.push_row([
            r.system.clone(),
            r.workload.clone(),
            format!("{:.2}", r.freq.as_ghz()),
            format!("{:.2}", r.vcc_mv),
            format!("{:.2}", r.icc_a),
            r.violation.clone().unwrap_or_else(|| "-".to_string()),
        ]);
    }
    write_csv(&csv, "fig07a_limits.csv");
    rows
}

/// Phase summary row for Figure 7(b).
#[derive(Debug, Clone)]
pub struct PhasePoint {
    /// Phase label.
    pub phase: String,
    /// Sustained frequency (GHz) at the phase midpoint.
    pub freq_ghz: f64,
    /// Package current (A) at the midpoint.
    pub icc_a: f64,
    /// Junction temperature (°C) at the midpoint.
    pub temp_c: f64,
}

/// Runs Figure 7(b); returns per-phase midpoint summaries.
pub fn run_phases(quick: bool) -> Vec<PhasePoint> {
    banner("Figure 7(b): Non-AVX → AVX2 → AVX512 at the performance governor (mobile)");
    // Long phases (2 s each in full mode) let the RC thermal model show
    // the paper's 58–62 °C band — and that it never approaches Tjmax.
    let per_phase = if quick {
        SimTime::from_ms(8.0)
    } else {
        SimTime::from_secs(2.0)
    };
    let cfg = SocConfig::quiet(PlatformSpec::cannon_lake()).with_trace(per_phase.scale(0.02));
    let mut soc = Soc::new(cfg);
    for core in 0..2 {
        soc.spawn(
            core,
            0,
            Box::new(PhaseProgram::three_phase(per_phase, 20_000)),
        );
    }
    soc.run_until(per_phase.scale(3.2));
    let trace = soc.trace();
    let mut csv = CsvTable::new(["time_s", "freq_ghz", "vcc_mv", "icc_a", "temp_c"]);
    for s in trace.samples() {
        csv.push_floats([
            s.time.as_secs(),
            s.freq.as_ghz(),
            s.vcc_mv,
            s.icc_a,
            s.temp_c,
        ]);
    }
    write_csv(&csv, "fig07b_phases.csv");

    let mid = |k: f64| per_phase.scale(k);
    let probe = |t: SimTime| trace.samples().iter().rfind(|s| s.time <= t).cloned();
    let mut rows = Vec::new();
    for (k, label) in [(0.5, "Non-AVX"), (1.5, "AVX2"), (2.5, "AVX512")] {
        if let Some(s) = probe(mid(k)) {
            rows.push(PhasePoint {
                phase: label.to_string(),
                freq_ghz: s.freq.as_ghz(),
                icc_a: s.icc_a,
                temp_c: s.temp_c,
            });
        }
    }
    let iccmax = PlatformSpec::cannon_lake().limits.iccmax_a();
    println!(
        "  {:<9} {:>9} {:>9} {:>9}   (Iccmax = {iccmax} A, Tjmax = 100 C)",
        "phase", "freq", "Icc(A)", "Tj(C)"
    );
    for r in &rows {
        println!(
            "  {:<9} {:>8.2}G {:>9.1} {:>9.1}",
            r.phase, r.freq_ghz, r.icc_a, r.temp_c
        );
    }
    rows
}

/// Runs both parts of Figure 7.
pub fn run(quick: bool) {
    let _ = run_limits(quick);
    let _ = run_phases(quick);
}

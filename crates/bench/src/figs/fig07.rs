//! Figure 7 — maximum Icc/Vcc limit protection (paper §5.3).
//!
//! (a) Projected operating points: on the desktop part, AVX2 at 4.9 GHz
//! exceeds **Vccmax** while staying under Iccmax; on the mobile part,
//! AVX2 at 3.1 GHz exceeds **Iccmax** while staying under Vccmax. One
//! P-state down, both fit.
//!
//! (b) Running Non-AVX → AVX2 → AVX512 phases at the performance
//! governor: the frequency steps down per phase, Icc stays below Iccmax,
//! and the junction temperature stays far below Tjmax (Key Conclusion 2:
//! this is current management, not thermal management).
//!
//! (a) is an `ichannels-lab` grid of operating-point probes (one grid
//! per platform so each sweeps its own frequencies); (b) is a trace
//! experiment executed by the engine.

use ichannels_lab::scenario::{ChannelSelect, PlatformId, ProbeKind};
use ichannels_lab::{Executor, Grid, TraceProgram, TraceSpec, TrialRecord};
use ichannels_meter::export::CsvTable;
use ichannels_soc::config::PlatformSpec;
use ichannels_uarch::isa::InstClass;
use ichannels_uarch::time::{Freq, SimTime};

use crate::{banner, write_csv};

/// One projected operating point for Figure 7(a).
#[derive(Debug, Clone)]
pub struct OperatingPoint {
    /// System label.
    pub system: String,
    /// Core frequency.
    pub freq: Freq,
    /// Workload label (`Non-AVX` / `AVX2`).
    pub workload: String,
    /// Projected VR output voltage (mV) incl. guardband.
    pub vcc_mv: f64,
    /// Projected package current (A).
    pub icc_a: f64,
    /// Violated limit, if any.
    pub violation: Option<String>,
}

/// The Figure 7(a) probe grid of one platform: both workloads at both
/// candidate frequencies.
fn limits_grid(platform: PlatformId, freqs_mhz: [u32; 2], cores: u8) -> Grid {
    let mut channels = Vec::new();
    for freq_mhz in freqs_mhz {
        for class in [InstClass::Scalar64, InstClass::Heavy256] {
            channels.push(ChannelSelect::Probe(ProbeKind::OperatingPoint {
                class,
                freq_mhz,
                cores,
            }));
        }
    }
    Grid::new()
        .platforms(vec![platform])
        .channels(channels)
        .base_seed(0x07A)
}

/// Renders one operating-point record as a Figure 7(a) row.
fn to_row(record: &TrialRecord, system_prefix: &str) -> OperatingPoint {
    let ChannelSelect::Probe(ProbeKind::OperatingPoint {
        class, freq_mhz, ..
    }) = record.scenario.channel
    else {
        unreachable!("operating-point grid only")
    };
    let spec = record.scenario.platform.spec();
    let vcc_mv = record.metrics.probe_value;
    let icc_a = record.metrics.probe_aux;
    OperatingPoint {
        system: format!("{system_prefix} {:.1}GHz", f64::from(freq_mhz) / 1000.0),
        freq: Freq::from_mhz(f64::from(freq_mhz)),
        workload: if class == InstClass::Heavy256 {
            "AVX2".to_string()
        } else {
            "Non-AVX".to_string()
        },
        vcc_mv,
        icc_a,
        violation: spec.limits.check(vcc_mv, icc_a).map(|v| v.to_string()),
    }
}

/// Runs Figure 7(a); returns the operating-point table.
pub fn run_limits(_quick: bool) -> Vec<OperatingPoint> {
    banner("Figure 7(a): Vccmax/Iccmax protection — projected operating points");
    let executor = Executor::auto();
    let mut rows: Vec<OperatingPoint> = executor
        .run(&limits_grid(PlatformId::CoffeeLake, [4900, 4800], 1).scenarios())
        .iter()
        .map(|r| to_row(r, "Desktop i7-9700K"))
        .collect();
    rows.extend(
        executor
            .run(&limits_grid(PlatformId::CannonLake, [3100, 2200], 2).scenarios())
            .iter()
            .map(|r| to_row(r, "Mobile i3-8121U")),
    );

    let mut csv = CsvTable::new([
        "system",
        "workload",
        "freq_ghz",
        "vcc_mv",
        "icc_a",
        "violation",
    ]);
    println!(
        "  {:<26} {:<8} {:>9} {:>9} {:>9}  violation",
        "system", "workload", "freq", "Vcc(mV)", "Icc(A)"
    );
    for r in &rows {
        println!(
            "  {:<26} {:<8} {:>9} {:>9.1} {:>9.1}  {}",
            r.system,
            r.workload,
            format!("{}", r.freq),
            r.vcc_mv,
            r.icc_a,
            r.violation.as_deref().unwrap_or("-")
        );
        csv.push_row([
            r.system.clone(),
            r.workload.clone(),
            format!("{:.2}", r.freq.as_ghz()),
            format!("{:.2}", r.vcc_mv),
            format!("{:.2}", r.icc_a),
            r.violation.clone().unwrap_or_else(|| "-".to_string()),
        ]);
    }
    write_csv(&csv, "fig07a_limits.csv");
    rows
}

/// Phase summary row for Figure 7(b).
#[derive(Debug, Clone)]
pub struct PhasePoint {
    /// Phase label.
    pub phase: String,
    /// Sustained frequency (GHz) at the phase midpoint.
    pub freq_ghz: f64,
    /// Package current (A) at the midpoint.
    pub icc_a: f64,
    /// Junction temperature (°C) at the midpoint.
    pub temp_c: f64,
}

/// Runs Figure 7(b); returns per-phase midpoint summaries.
pub fn run_phases(quick: bool) -> Vec<PhasePoint> {
    banner("Figure 7(b): Non-AVX → AVX2 → AVX512 at the performance governor (mobile)");
    // Long phases (2 s each in full mode) let the RC thermal model show
    // the paper's 58–62 °C band — and that it never approaches Tjmax.
    let per_phase = if quick {
        SimTime::from_ms(8.0)
    } else {
        SimTime::from_secs(2.0)
    };
    let program = || TraceProgram::ThreePhase {
        per_phase,
        block_insts: 20_000,
    };
    let spec = TraceSpec {
        name: "fig07b".to_string(),
        platform: PlatformId::CannonLake,
        freq_ghz: None,
        sample_every: per_phase.scale(0.02),
        horizon: per_phase.scale(3.2),
        cores: vec![(0, program()), (1, program())],
    };
    let run = &Executor::serial().map(std::slice::from_ref(&spec), TraceSpec::run)[0];
    let mut csv = CsvTable::new(["time_s", "freq_ghz", "vcc_mv", "icc_a", "temp_c"]);
    for s in run.trace.samples() {
        csv.push_floats([
            s.time.as_secs(),
            s.freq.as_ghz(),
            s.vcc_mv,
            s.icc_a,
            s.temp_c,
        ]);
    }
    write_csv(&csv, "fig07b_phases.csv");

    let mut rows = Vec::new();
    for (k, label) in [(0.5, "Non-AVX"), (1.5, "AVX2"), (2.5, "AVX512")] {
        if let Some(point) = run.probe(per_phase.scale(k), |s| PhasePoint {
            phase: label.to_string(),
            freq_ghz: s.freq.as_ghz(),
            icc_a: s.icc_a,
            temp_c: s.temp_c,
        }) {
            rows.push(point);
        }
    }
    let iccmax = PlatformSpec::cannon_lake().limits.iccmax_a();
    println!(
        "  {:<9} {:>9} {:>9} {:>9}   (Iccmax = {iccmax} A, Tjmax = 100 C)",
        "phase", "freq", "Icc(A)", "Tj(C)"
    );
    for r in &rows {
        println!(
            "  {:<9} {:>8.2}G {:>9.1} {:>9.1}",
            r.phase, r.freq_ghz, r.icc_a, r.temp_c
        );
    }
    rows
}

/// Runs both parts of Figure 7.
pub fn run(quick: bool) {
    let _ = run_limits(quick);
    let _ = run_phases(quick);
}

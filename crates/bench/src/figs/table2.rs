//! Table 2 — comparison with state-of-the-art throttling covert channels
//! (NetSpectre, TurboCC), combining structural facts with bandwidths
//! measured by a dedicated `ichannels-lab` campaign (the three
//! compared channels form the channel axis of one grid).

use ichannels::channel::ChannelKind;
use ichannels_lab::scenario::{BaselineKind, ChannelSelect};
use ichannels_lab::{campaigns, Executor};
use ichannels_meter::export::CsvTable;

use crate::{banner, write_csv};

/// One comparison row.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Proposal name.
    pub proposal: &'static str,
    /// Same-core (same hardware thread) channel?
    pub same_core: bool,
    /// Cross-SMT channel?
    pub cross_smt: bool,
    /// Cross-core channel?
    pub cross_core: bool,
    /// Measured bandwidth (b/s).
    pub bw_bps: f64,
    /// User or kernel privileges required.
    pub privilege: &'static str,
    /// Underlying mechanism.
    pub mechanism: &'static str,
    /// Works outside turbo frequencies?
    pub turbo_independent: bool,
    /// Identifies the root cause?
    pub root_cause: bool,
    /// Proposes effective mitigations?
    pub mitigations: bool,
}

/// Runs the comparison (re-measuring bandwidths); returns the rows.
pub fn run(quick: bool) -> Vec<ComparisonRow> {
    banner("Table 2: comparison with state-of-the-art covert channels");
    let n = if quick { 12 } else { 40 };
    let grid = campaigns::channel_shootout(
        vec![
            ChannelSelect::Baseline(BaselineKind::NetSpectre),
            ChannelSelect::Baseline(BaselineKind::TurboCc),
            ChannelSelect::Icc(ChannelKind::Smt),
        ],
        n,
        42,
    );
    let report = campaigns::run("table2_comparison", &grid, Executor::auto());
    let bw = |name: &str| {
        report
            .records
            .iter()
            .find(|r| r.scenario.channel.label() == name)
            .map(|r| r.metrics.throughput_bps)
            .unwrap_or(0.0)
    };
    let rows = vec![
        ComparisonRow {
            proposal: "NetSpectre",
            same_core: true,
            cross_smt: false,
            cross_core: false,
            bw_bps: bw("NetSpectre"),
            privilege: "U",
            mechanism: "Single-level thread throttling",
            turbo_independent: true,
            root_cause: false,
            mitigations: false,
        },
        ComparisonRow {
            proposal: "TurboCC",
            same_core: false,
            cross_smt: false,
            cross_core: true,
            bw_bps: bw("TurboCC"),
            privilege: "K",
            mechanism: "Turbo frequency change",
            turbo_independent: false,
            root_cause: false,
            mitigations: false,
        },
        ComparisonRow {
            proposal: "IChannels",
            same_core: true,
            cross_smt: true,
            cross_core: true,
            bw_bps: bw("IccSMTcovert"),
            privilege: "U",
            mechanism: "Multi-level thread, SMT, and core (VR) throttling",
            turbo_independent: true,
            root_cause: true,
            mitigations: true,
        },
    ];
    let tick = |b: bool| if b { "yes" } else { "no" };
    println!(
        "  {:<12} {:>5} {:>5} {:>6} {:>10} {:>5} {:>6} {:>5} {:>5}  mechanism",
        "proposal", "same", "SMT", "cores", "BW(b/s)", "priv", "turbo-", "root", "mitig"
    );
    let mut csv = CsvTable::new([
        "proposal",
        "same_core",
        "cross_smt",
        "cross_core",
        "bw_bps",
        "privilege",
        "mechanism",
        "turbo_independent",
        "root_cause",
        "mitigations",
    ]);
    for r in &rows {
        println!(
            "  {:<12} {:>5} {:>5} {:>6} {:>10.0} {:>5} {:>6} {:>5} {:>5}  {}",
            r.proposal,
            tick(r.same_core),
            tick(r.cross_smt),
            tick(r.cross_core),
            r.bw_bps,
            r.privilege,
            tick(r.turbo_independent),
            tick(r.root_cause),
            tick(r.mitigations),
            r.mechanism
        );
        csv.push_row([
            r.proposal.to_string(),
            tick(r.same_core).to_string(),
            tick(r.cross_smt).to_string(),
            tick(r.cross_core).to_string(),
            format!("{:.0}", r.bw_bps),
            r.privilege.to_string(),
            r.mechanism.to_string(),
            tick(r.turbo_independent).to_string(),
            tick(r.root_cause).to_string(),
            tick(r.mitigations).to_string(),
        ]);
    }
    write_csv(&csv, "table2_comparison.csv");
    rows
}

//! Figure 10 — multi-level throttling periods (paper §5.5).
//!
//! (a) TP of each of the seven instruction classes at 1.0/1.2/1.4 GHz on
//! one and two Cannon Lake cores: the TP grows with intensity, with
//! frequency, and with the number of PHI cores (Key Conclusion 4).
//!
//! (b) TP of a 512b-Heavy loop preceded by each class at 1.4 GHz: the
//! lighter the preceding class, the longer the remaining ramp — at least
//! five distinct levels (L1–L5).

use ichannels_meter::export::CsvTable;
use ichannels_meter::stats::distinct_levels;
use ichannels_soc::config::{PlatformSpec, SocConfig};
use ichannels_soc::sim::Soc;
use ichannels_uarch::ipc::nominal_ipc;
use ichannels_uarch::isa::InstClass;
use ichannels_uarch::time::{Freq, SimTime};
use ichannels_workload::loops::{instructions_for_duration, PrecededLoop, Recorder};

use crate::figs::{inflation_to_tp_us, measure_tp_us};
use crate::{banner, write_csv};

/// Runs Figure 10(a): TP per class × frequency × core count.
/// Returns `(class, freq_ghz, cores, tp_us)` rows.
pub fn run_sweep(_quick: bool) -> Vec<(InstClass, f64, usize, f64)> {
    banner("Figure 10(a): throttling period vs class, frequency, core count");
    let platform = PlatformSpec::cannon_lake();
    let mut rows = Vec::new();
    let mut csv = CsvTable::new(["class", "freq_ghz", "cores", "tp_us"]);
    println!(
        "  {:<12} {:>8} {:>8} {:>8}   {:>8} {:>8} {:>8}",
        "class", "1.0GHz", "1.2GHz", "1.4GHz", "1.0GHz", "1.2GHz", "1.4GHz"
    );
    println!("  {:<12} {:-^26}   {:-^26}", "", " 1 core ", " 2 cores ");
    for class in InstClass::ALL {
        let mut line = format!("  {:<12}", class.to_string());
        for cores in [1usize, 2] {
            for ghz in [1.0, 1.2, 1.4] {
                let tp = measure_tp_us(&platform, Freq::from_ghz(ghz), class, cores);
                rows.push((class, ghz, cores, tp));
                csv.push_row([
                    class.to_string(),
                    format!("{ghz}"),
                    cores.to_string(),
                    format!("{tp:.3}"),
                ]);
                line.push_str(&format!(" {tp:>8.2}"));
            }
            line.push_str("  ");
        }
        println!("{line}");
    }
    write_csv(&csv, "fig10a_tp_sweep.csv");
    rows
}

/// Runs Figure 10(b): TP of 512b-Heavy after each preceding class.
/// Returns `(preceding_class, tp_us)` pairs.
pub fn run_preceded(_quick: bool) -> Vec<(InstClass, f64)> {
    banner("Figure 10(b): 512b-Heavy TP vs preceding instruction class (1.4 GHz)");
    let platform = PlatformSpec::cannon_lake();
    let freq = Freq::from_ghz(1.4);
    let main_insts = instructions_for_duration(InstClass::Heavy512, freq, SimTime::from_us(60.0));
    let prev_insts = instructions_for_duration(InstClass::Heavy256, freq, SimTime::from_us(15.0));
    let base_us = main_insts as f64 / nominal_ipc(InstClass::Heavy512) / freq.as_hz() as f64 * 1e6;
    let mut rows = Vec::new();
    let mut csv = CsvTable::new(["preceding_class", "tp_us"]);
    for prev in InstClass::ALL {
        let cfg = SocConfig::pinned(platform.clone(), freq);
        let mut soc = Soc::new(cfg);
        let rec = Recorder::new();
        soc.spawn(
            0,
            0,
            Box::new(PrecededLoop::new(
                prev,
                prev_insts,
                InstClass::Heavy512,
                main_insts,
                SimTime::from_us(30.0),
                rec.clone(),
            )),
        );
        soc.run_until_idle(SimTime::from_ms(5.0));
        let tp = inflation_to_tp_us(rec.durations_us(soc.tsc())[0], base_us);
        println!("  preceded by {:<12} → TP = {tp:>6.2} µs", prev.to_string());
        csv.push_row([prev.to_string(), format!("{tp:.3}")]);
        rows.push((prev, tp));
    }
    let tps: Vec<f64> = rows.iter().map(|(_, t)| *t).collect();
    let levels = distinct_levels(&tps, 0.5);
    println!("  distinct throttling levels (0.5 µs tolerance): {levels} (paper: ≥5)");
    write_csv(&csv, "fig10b_preceded.csv");
    rows
}

/// Runs both parts of Figure 10.
pub fn run(quick: bool) {
    let _ = run_sweep(quick);
    let _ = run_preceded(quick);
}

//! Figure 10 — multi-level throttling periods (paper §5.5).
//!
//! (a) TP of each of the seven instruction classes at 1.0/1.2/1.4 GHz on
//! one and two Cannon Lake cores: the TP grows with intensity, with
//! frequency, and with the number of PHI cores (Key Conclusion 4).
//!
//! (b) TP of a 512b-Heavy loop preceded by each class at 1.4 GHz: the
//! lighter the preceding class, the longer the remaining ramp — at least
//! five distinct levels (L1–L5).
//!
//! Both panels are `ichannels-lab` grids: (a) sweeps TP probes over the
//! class × core-count channel axis and the engine's frequency axis; (b)
//! sweeps the preceded-TP probe over the class axis.

use ichannels_lab::scenario::{ChannelSelect, ProbeKind};
use ichannels_lab::{Executor, Grid};
use ichannels_meter::export::CsvTable;
use ichannels_meter::stats::distinct_levels;
use ichannels_uarch::isa::InstClass;

use crate::{banner, write_csv};

/// Runs Figure 10(a): TP per class × frequency × core count.
/// Returns `(class, freq_ghz, cores, tp_us)` rows.
pub fn run_sweep(_quick: bool) -> Vec<(InstClass, f64, usize, f64)> {
    banner("Figure 10(a): throttling period vs class, frequency, core count");
    let mut channels = Vec::new();
    for class in InstClass::ALL {
        for cores in [1u8, 2] {
            channels.push(ChannelSelect::Probe(ProbeKind::Tp { class, cores }));
        }
    }
    let grid = Grid::new()
        .channels(channels)
        .freqs(vec![Some(1.0), Some(1.2), Some(1.4)])
        .base_seed(0x10A);
    let records = Executor::auto().run(&grid.scenarios());
    let tp_of = |class: InstClass, cores: u8, ghz: f64| {
        records
            .iter()
            .find(|r| {
                r.scenario.freq_ghz == Some(ghz)
                    && r.scenario.channel == ChannelSelect::Probe(ProbeKind::Tp { class, cores })
            })
            .expect("grid covers every cell")
            .metrics
            .probe_value
    };

    let mut rows = Vec::new();
    let mut csv = CsvTable::new(["class", "freq_ghz", "cores", "tp_us"]);
    println!(
        "  {:<12} {:>8} {:>8} {:>8}   {:>8} {:>8} {:>8}",
        "class", "1.0GHz", "1.2GHz", "1.4GHz", "1.0GHz", "1.2GHz", "1.4GHz"
    );
    println!("  {:<12} {:-^26}   {:-^26}", "", " 1 core ", " 2 cores ");
    for class in InstClass::ALL {
        let mut line = format!("  {:<12}", class.to_string());
        for cores in [1usize, 2] {
            for ghz in [1.0, 1.2, 1.4] {
                let tp = tp_of(class, cores as u8, ghz);
                rows.push((class, ghz, cores, tp));
                csv.push_row([
                    class.to_string(),
                    format!("{ghz}"),
                    cores.to_string(),
                    format!("{tp:.3}"),
                ]);
                line.push_str(&format!(" {tp:>8.2}"));
            }
            line.push_str("  ");
        }
        println!("{line}");
    }
    write_csv(&csv, "fig10a_tp_sweep.csv");
    rows
}

/// Runs Figure 10(b): TP of 512b-Heavy after each preceding class.
/// Returns `(preceding_class, tp_us)` pairs.
pub fn run_preceded(_quick: bool) -> Vec<(InstClass, f64)> {
    banner("Figure 10(b): 512b-Heavy TP vs preceding instruction class (1.4 GHz)");
    let grid = Grid::new()
        .channels(
            InstClass::ALL
                .iter()
                .map(|&prev| ChannelSelect::Probe(ProbeKind::PrecededTp { prev }))
                .collect(),
        )
        .freq_ghz(1.4)
        .base_seed(0x10B);
    let records = Executor::auto().run(&grid.scenarios());

    let mut rows = Vec::new();
    let mut csv = CsvTable::new(["preceding_class", "tp_us"]);
    for (prev, record) in InstClass::ALL.iter().zip(&records) {
        debug_assert_eq!(
            record.scenario.channel,
            ChannelSelect::Probe(ProbeKind::PrecededTp { prev: *prev })
        );
        let tp = record.metrics.probe_value;
        println!("  preceded by {:<12} → TP = {tp:>6.2} µs", prev.to_string());
        csv.push_row([prev.to_string(), format!("{tp:.3}")]);
        rows.push((*prev, tp));
    }
    let tps: Vec<f64> = rows.iter().map(|(_, t)| *t).collect();
    let levels = distinct_levels(&tps, 0.5);
    println!("  distinct throttling levels (0.5 µs tolerance): {levels} (paper: ≥5)");
    write_csv(&csv, "fig10b_preceded.csv");
    rows
}

/// Runs both parts of Figure 10.
pub fn run(quick: bool) {
    let _ = run_sweep(quick);
    let _ = run_preceded(quick);
}

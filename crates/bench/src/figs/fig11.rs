//! Figure 11 — the IDQ throttling mechanism (paper §5.6).
//!
//! Normalized `IDQ_UOPS_NOT_DELIVERED / (4·CPU_CLK_UNHALTED)` over many
//! loop iterations: ~0.75 while throttled (the gate blocks 3 of every 4
//! cycles) vs ~0 unthrottled — and the gate sits on the *shared*
//! IDQ→back-end interface, so the SMT sibling is equally blocked.

use ichannels_meter::export::CsvTable;
use ichannels_meter::stats::{summarize, Histogram};
use ichannels_uarch::idq::{Idq, SmtId, ThreadDemand};
use ichannels_uarch::isa::InstClass;

use crate::{banner, write_csv};

/// Runs the Figure 11(a) distributions via the cycle-accurate IDQ model.
/// Returns `(throttled_mean, unthrottled_mean, sibling_mean)`.
pub fn run(quick: bool) -> (f64, f64, f64) {
    banner("Figure 11: normalized undelivered uops, throttled vs unthrottled");
    let windows = if quick { 50 } else { 500 };
    let window_cycles = 1_000;

    let collect = |throttled: bool, sibling: bool, observe: SmtId| -> Vec<f64> {
        (0..windows)
            .map(|_| {
                let mut idq = Idq::new();
                idq.set_throttled(throttled, Some(SmtId::T0));
                let t1 = if sibling {
                    ThreadDemand::busy(InstClass::Scalar64)
                } else {
                    ThreadDemand::IDLE
                };
                idq.run_normalized_undelivered(
                    ThreadDemand::busy(InstClass::Heavy256),
                    t1,
                    window_cycles,
                    observe,
                )
            })
            .collect()
    };

    let throttled = collect(true, false, SmtId::T0);
    let unthrottled = collect(false, false, SmtId::T0);
    let sibling = collect(true, true, SmtId::T1);

    let mut csv = CsvTable::new(["condition", "window", "normalized_undelivered"]);
    let mut hist_t = Histogram::new(0.0, 1.0, 50);
    let mut hist_u = Histogram::new(0.0, 1.0, 50);
    for (i, v) in throttled.iter().enumerate() {
        csv.push_row(["throttled".to_string(), i.to_string(), format!("{v:.4}")]);
        hist_t.add(*v);
    }
    for (i, v) in unthrottled.iter().enumerate() {
        csv.push_row(["unthrottled".to_string(), i.to_string(), format!("{v:.4}")]);
        hist_u.add(*v);
    }
    for (i, v) in sibling.iter().enumerate() {
        csv.push_row(["smt_sibling".to_string(), i.to_string(), format!("{v:.4}")]);
    }
    let st = summarize(&throttled);
    let su = summarize(&unthrottled);
    let ss = summarize(&sibling);
    println!(
        "  throttled iteration:    {:.3} ± {:.3}  (paper: ~0.75 — 3 of 4 cycles blocked)",
        st.mean, st.std_dev
    );
    println!(
        "  unthrottled iteration:  {:.3} ± {:.3}  (paper: ~0)",
        su.mean, su.std_dev
    );
    println!(
        "  SMT sibling (64b loop): {:.3} ± {:.3}  (shared interface ⇒ equally blocked)",
        ss.mean, ss.std_dev
    );
    println!("  window pattern: deliver on 1 cycle, block 3, per 4-cycle window (Fig. 11(b))");
    write_csv(&csv, "fig11_idq_undelivered.csv");
    (st.mean, su.mean, ss.mean)
}

//! Figure 11 — the IDQ throttling mechanism (paper §5.6).
//!
//! Normalized `IDQ_UOPS_NOT_DELIVERED / (4·CPU_CLK_UNHALTED)` over many
//! loop iterations: ~0.75 while throttled (the gate blocks 3 of every 4
//! cycles) vs ~0 unthrottled — and the gate sits on the *shared*
//! IDQ→back-end interface, so the SMT sibling is equally blocked.
//!
//! The three conditions are `Idq` probe cells of one `ichannels-lab`
//! grid; each measurement window is one engine trial. The IDQ model is
//! deterministic, so every window of a condition measures the same
//! value — the paper's Figure 11(a) distributions are equally tight;
//! the per-window rows are kept for the figure's file format, not for
//! statistical spread.

use ichannels_lab::scenario::{ChannelSelect, IdqCondition, ProbeKind};
use ichannels_lab::{Executor, Grid};
use ichannels_meter::export::CsvTable;
use ichannels_meter::stats::summarize;

use crate::{banner, write_csv};

/// The CSV/report label of one IDQ condition.
const fn condition_label(cond: IdqCondition) -> &'static str {
    match cond {
        IdqCondition::Throttled => "throttled",
        IdqCondition::Unthrottled => "unthrottled",
        IdqCondition::SmtSibling => "smt_sibling",
    }
}

/// Runs the Figure 11(a) distributions via the cycle-accurate IDQ model.
/// Returns `(throttled_mean, unthrottled_mean, sibling_mean)`.
pub fn run(quick: bool) -> (f64, f64, f64) {
    banner("Figure 11: normalized undelivered uops, throttled vs unthrottled");
    let windows = if quick { 50 } else { 500 };

    let channels: Vec<ChannelSelect> = IdqCondition::ALL
        .iter()
        .map(|&cond| ChannelSelect::Probe(ProbeKind::Idq(cond)))
        .collect();
    let grid = Grid::new()
        .channels(channels)
        .trials(windows)
        .base_seed(0x1D8);
    let records = Executor::auto().run(&grid.scenarios());

    let values_of = |cond: IdqCondition| -> Vec<f64> {
        records
            .iter()
            .filter(|r| r.scenario.channel == ChannelSelect::Probe(ProbeKind::Idq(cond)))
            .map(|r| r.metrics.probe_value)
            .collect()
    };

    let mut csv = CsvTable::new(["condition", "window", "normalized_undelivered"]);
    let mut means = Vec::new();
    for cond in IdqCondition::ALL {
        let values = values_of(cond);
        assert_eq!(values.len(), windows as usize, "one value per window");
        for (i, v) in values.iter().enumerate() {
            csv.push_row([
                condition_label(cond).to_string(),
                i.to_string(),
                format!("{v:.4}"),
            ]);
        }
        means.push(summarize(&values));
    }
    let (st, su, ss) = (means[0], means[1], means[2]);
    println!(
        "  throttled iteration:    {:.3} ± {:.3}  (paper: ~0.75 — 3 of 4 cycles blocked)",
        st.mean, st.std_dev
    );
    println!(
        "  unthrottled iteration:  {:.3} ± {:.3}  (paper: ~0)",
        su.mean, su.std_dev
    );
    println!(
        "  SMT sibling (64b loop): {:.3} ± {:.3}  (shared interface ⇒ equally blocked)",
        ss.mean, ss.std_dev
    );
    println!("  window pattern: deliver on 1 cycle, block 3, per 4-cycle window (Fig. 11(b))");
    write_csv(&csv, "fig11_idq_undelivered.csv");
    (st.mean, su.mean, ss.mean)
}

//! Figure/table regeneration modules (see crate docs for the index).

pub mod ablation;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod table1;
pub mod table2;

use ichannels_soc::config::{PlatformSpec, SocConfig};
use ichannels_soc::sim::Soc;
use ichannels_uarch::ipc::{nominal_ipc, THROTTLE_BLOCKED_FRACTION};
use ichannels_uarch::isa::InstClass;
use ichannels_uarch::time::{Freq, SimTime};
use ichannels_workload::loops::{instructions_for_duration, MeasuredLoop, Recorder};

/// Converts a measured loop-duration inflation into a throttling period:
/// during the TP the loop retires at 1/4 rate, so the inflation is
/// `TP · 3/4` (provided the loop outlasts the TP) and
/// `TP = inflation / (3/4)`.
pub fn inflation_to_tp_us(measured_us: f64, base_us: f64) -> f64 {
    (measured_us - base_us).max(0.0) / THROTTLE_BLOCKED_FRACTION
}

/// Measures the throttling period (µs) of a loop of `class` at `freq`
/// with `active_cores` cores running the same loop concurrently, on a
/// fresh instance of `platform`.
///
/// # Panics
///
/// Panics if `active_cores` is zero or exceeds the platform core count.
pub fn measure_tp_us(
    platform: &PlatformSpec,
    freq: Freq,
    class: InstClass,
    active_cores: usize,
) -> f64 {
    assert!(
        active_cores >= 1 && active_cores <= platform.n_cores,
        "active_cores {active_cores} out of range"
    );
    let cfg = SocConfig::pinned(platform.clone(), freq);
    let mut soc = Soc::new(cfg);
    // Loop long enough to outlast any TP (≥ 60 µs of work).
    let insts = instructions_for_duration(class, freq, SimTime::from_us(60.0));
    let rec = Recorder::new();
    soc.spawn(
        0,
        0,
        Box::new(MeasuredLoop::once(class, insts, rec.clone())),
    );
    for core in 1..active_cores {
        let other = Recorder::new();
        soc.spawn(core, 0, Box::new(MeasuredLoop::once(class, insts, other)));
    }
    soc.run_until_idle(SimTime::from_ms(5.0));
    let measured_us = rec.durations_us(soc.tsc())[0];
    let base_us = insts as f64 / nominal_ipc(class) / freq.as_hz() as f64 * 1e6;
    inflation_to_tp_us(measured_us, base_us)
}

//! Figure/table regeneration modules (see crate docs for the index).
//!
//! Every module expresses its sweep as an `ichannels-lab` campaign —
//! a [`ichannels_lab::Grid`] of scenarios (channel trials, probes, or
//! knob ablations) or a list of [`ichannels_lab::TraceSpec`] trace
//! experiments — executed by the engine's worker pool. No module drives
//! a channel or the SoC simulator directly.

pub mod ablation;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod table1;
pub mod table2;

//! Ablation studies over the design parameters DESIGN.md calls out:
//! what property of the hardware actually gives the channel its
//! capacity, and which knob a defender would want to turn.
//!
//! * **VR slew rate** — faster ramps compress the TP levels toward the
//!   noise floor (the quantitative version of the §7 LDO argument).
//! * **Reset-time (hysteresis)** — directly sets the transaction period
//!   and hence the throughput ceiling.
//! * **Receiver measurement jitter** — how much timing noise the 4-level
//!   decoding tolerates.
//!
//! Each sweep is one `ichannels-lab` grid over the engine's design-knob
//! axis, executed on the worker pool.

use ichannels_lab::scenario::Knob;
use ichannels_lab::{Executor, Grid};
use ichannels_meter::export::CsvTable;

use crate::{banner, write_csv};

/// Runs a knob sweep of the same-thread channel and returns one record
/// per knob value, in axis order.
fn knob_sweep(
    knobs: Vec<Knob>,
    payload_symbols: usize,
    base_seed: u64,
) -> Vec<(Knob, ichannels_lab::TrialMetrics)> {
    let grid = Grid::new()
        .knobs(knobs.into_iter().map(Some).collect())
        .payload_symbols(payload_symbols)
        .calib_reps(3)
        .base_seed(base_seed);
    Executor::auto()
        .run(&grid.scenarios())
        .into_iter()
        .map(|r| (r.scenario.knob.expect("knob axis set"), r.metrics))
        .collect()
}

/// Sweeps the VR slew rate; returns `(slew_mv_per_us, capacity_bps, ber)`.
pub fn run_slew_sweep(quick: bool) -> Vec<(f64, f64, f64)> {
    banner("Ablation: VR slew rate vs channel capacity (IccThreadCovert)");
    let n = if quick { 30 } else { 80 };
    let knobs = [1.2, 2.4, 4.8, 9.6, 19.2, 80.0]
        .iter()
        .map(|&v| Knob::VrSlew(v))
        .collect();
    let mut rows = Vec::new();
    let mut csv = CsvTable::new(["slew_mv_per_us", "capacity_bps", "ber"]);
    for (knob, metrics) in knob_sweep(knobs, n, 0x51E) {
        let Knob::VrSlew(slew) = knob else {
            unreachable!("slew axis only")
        };
        println!(
            "  slew {slew:>5.1} mV/µs → capacity {:>7.0} b/s, BER {:.3}, min separation {:>6.0} cycles",
            metrics.capacity_bps, metrics.ber, metrics.min_separation_cycles
        );
        csv.push_floats([slew, metrics.capacity_bps, metrics.ber]);
        rows.push((slew, metrics.capacity_bps, metrics.ber));
    }
    println!("  (faster regulators compress the levels: the §7 LDO mitigation, quantified)");
    write_csv(&csv, "ablation_slew.csv");
    rows
}

/// Sweeps the license hysteresis (reset-time); returns
/// `(reset_us, throughput_bps, ber)`.
pub fn run_reset_time_sweep(quick: bool) -> Vec<(f64, f64, f64)> {
    banner("Ablation: reset-time vs throughput (the transaction-period floor)");
    let n = if quick { 20 } else { 60 };
    let knobs = [150.0, 325.0, 650.0, 1_300.0]
        .iter()
        .map(|&us| Knob::ResetTimeUs(us))
        .collect();
    let mut rows = Vec::new();
    let mut csv = CsvTable::new(["reset_time_us", "throughput_bps", "ber"]);
    for (knob, metrics) in knob_sweep(knobs, n, 0x7E5) {
        let Knob::ResetTimeUs(reset_us) = knob else {
            unreachable!("reset axis only")
        };
        println!(
            "  reset {reset_us:>6.0} µs → throughput {:>7.0} b/s, BER {:.3}",
            metrics.throughput_bps, metrics.ber
        );
        csv.push_floats([reset_us, metrics.throughput_bps, metrics.ber]);
        rows.push((reset_us, metrics.throughput_bps, metrics.ber));
    }
    println!("  (a processor with a shorter hysteresis would leak *faster*)");
    write_csv(&csv, "ablation_reset_time.csv");
    rows
}

/// Sweeps receiver measurement jitter; returns `(sigma_ns, ber)`.
pub fn run_jitter_sweep(quick: bool) -> Vec<(f64, f64)> {
    banner("Ablation: receiver timing jitter vs BER");
    let n = if quick { 30 } else { 100 };
    let knobs = [0.0, 150.0, 400.0, 800.0, 1_600.0]
        .iter()
        .map(|&ns| Knob::MeasurementJitterNs(ns))
        .collect();
    let mut rows = Vec::new();
    let mut csv = CsvTable::new(["jitter_sigma_ns", "ber"]);
    for (knob, metrics) in knob_sweep(knobs, n, 0x717) {
        let Knob::MeasurementJitterNs(sigma_ns) = knob else {
            unreachable!("jitter axis only")
        };
        println!("  σ = {sigma_ns:>6.0} ns → BER {:.3}", metrics.ber);
        csv.push_floats([sigma_ns, metrics.ber]);
        rows.push((sigma_ns, metrics.ber));
    }
    write_csv(&csv, "ablation_jitter.csv");
    rows
}

/// Runs all ablations.
pub fn run(quick: bool) {
    let _ = run_slew_sweep(quick);
    let _ = run_reset_time_sweep(quick);
    let _ = run_jitter_sweep(quick);
}

//! Ablation studies over the design parameters DESIGN.md calls out:
//! what property of the hardware actually gives the channel its
//! capacity, and which knob a defender would want to turn.
//!
//! * **VR slew rate** — faster ramps compress the TP levels toward the
//!   noise floor (the quantitative version of the §7 LDO argument).
//! * **Reset-time (hysteresis)** — directly sets the transaction period
//!   and hence the throughput ceiling.
//! * **Receiver measurement jitter** — how much timing noise the 4-level
//!   decoding tolerates.

use ichannels::ber::evaluate;
use ichannels::channel::{ChannelConfig, ChannelKind, IChannel};
use ichannels_meter::export::CsvTable;
use ichannels_uarch::time::SimTime;

use crate::{banner, write_csv};

/// Sweeps the VR slew rate; returns `(slew_mv_per_us, capacity_bps, ber)`.
pub fn run_slew_sweep(quick: bool) -> Vec<(f64, f64, f64)> {
    banner("Ablation: VR slew rate vs channel capacity (IccThreadCovert)");
    let n = if quick { 30 } else { 80 };
    let mut rows = Vec::new();
    let mut csv = CsvTable::new(["slew_mv_per_us", "capacity_bps", "ber"]);
    for slew in [1.2, 2.4, 4.8, 9.6, 19.2, 80.0] {
        let mut cfg = ChannelConfig::default_cannon_lake();
        cfg.soc.platform.vr_model.slew_mv_per_us = slew;
        let ch = IChannel::new(ChannelKind::Thread, cfg);
        let cal = ch.calibrate(3);
        let ev = evaluate(&ch, &cal, n, 0x51E);
        println!(
            "  slew {slew:>5.1} mV/µs → capacity {:>7.0} b/s, BER {:.3}, min separation {:>6.0} cycles",
            ev.capacity_bps,
            ev.ber,
            cal.min_separation_cycles()
        );
        csv.push_floats([slew, ev.capacity_bps, ev.ber]);
        rows.push((slew, ev.capacity_bps, ev.ber));
    }
    println!("  (faster regulators compress the levels: the §7 LDO mitigation, quantified)");
    write_csv(&csv, "ablation_slew.csv");
    rows
}

/// Sweeps the license hysteresis (reset-time); returns
/// `(reset_us, throughput_bps, ber)`.
pub fn run_reset_time_sweep(quick: bool) -> Vec<(f64, f64, f64)> {
    banner("Ablation: reset-time vs throughput (the transaction-period floor)");
    let n = if quick { 20 } else { 60 };
    let mut rows = Vec::new();
    let mut csv = CsvTable::new(["reset_time_us", "throughput_bps", "ber"]);
    for reset_us in [150.0, 325.0, 650.0, 1_300.0] {
        let mut cfg = ChannelConfig::default_cannon_lake();
        cfg.soc.platform.reset_time = SimTime::from_us(reset_us);
        // The protocol adapts: slot = reset-time + 40 µs transaction.
        cfg.slot_period = SimTime::from_us(reset_us + 40.0);
        let ch = IChannel::new(ChannelKind::Thread, cfg);
        let cal = ch.calibrate(3);
        let ev = evaluate(&ch, &cal, n, 0x7E5);
        println!(
            "  reset {reset_us:>6.0} µs → throughput {:>7.0} b/s, BER {:.3}",
            ev.throughput_bps, ev.ber
        );
        csv.push_floats([reset_us, ev.throughput_bps, ev.ber]);
        rows.push((reset_us, ev.throughput_bps, ev.ber));
    }
    println!("  (a processor with a shorter hysteresis would leak *faster*)");
    write_csv(&csv, "ablation_reset_time.csv");
    rows
}

/// Sweeps receiver measurement jitter; returns `(sigma_ns, ber)`.
pub fn run_jitter_sweep(quick: bool) -> Vec<(f64, f64)> {
    banner("Ablation: receiver timing jitter vs BER");
    let n = if quick { 30 } else { 100 };
    let mut rows = Vec::new();
    let mut csv = CsvTable::new(["jitter_sigma_ns", "ber"]);
    for sigma_ns in [0.0, 150.0, 400.0, 800.0, 1_600.0] {
        let mut cfg = ChannelConfig::default_cannon_lake();
        cfg.measurement_jitter = SimTime::from_ns(sigma_ns);
        let ch = IChannel::new(ChannelKind::Thread, cfg);
        let cal = ch.calibrate(3);
        let ev = evaluate(&ch, &cal, n, 0x717);
        println!("  σ = {sigma_ns:>6.0} ns → BER {:.3}", ev.ber);
        csv.push_floats([sigma_ns, ev.ber]);
        rows.push((sigma_ns, ev.ber));
    }
    write_csv(&csv, "ablation_jitter.csv");
    rows
}

/// Runs all ablations.
pub fn run(quick: bool) {
    let _ = run_slew_sweep(quick);
    let _ = run_reset_time_sweep(quick);
    let _ = run_jitter_sweep(quick);
}

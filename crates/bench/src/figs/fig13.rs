//! Figure 13 — distribution of the receiver's throttling-period
//! measurement for each of the four levels on a low-noise system
//! (paper §6.3).
//!
//! Expected shape: four non-overlapping clusters (L1..L4) separated by
//! more than 2 000 TSC cycles ⇒ near-zero error rate.
//!
//! The four levels form the channel axis of an `ichannels-lab` grid
//! (one `LevelDuration` probe per level) and the repetitions are engine
//! trials, executed on the worker pool.

use ichannels::symbols::Symbol;
use ichannels_lab::scenario::{ChannelSelect, NoiseSpec, ProbeKind};
use ichannels_lab::{Executor, Grid};
use ichannels_meter::export::CsvTable;
use ichannels_meter::stats::summarize;

use crate::{banner, write_csv};

/// Per-level cluster summary.
#[derive(Debug, Clone)]
pub struct LevelCluster {
    /// The level (paper labels L4..L1 = symbols 00..11).
    pub symbol: Symbol,
    /// Mean receiver duration (TSC cycles).
    pub mean_cycles: f64,
    /// Standard deviation (cycles).
    pub std_cycles: f64,
}

/// Runs the Figure 13 experiment; returns the four clusters and the
/// minimum separation.
pub fn run(quick: bool) -> (Vec<LevelCluster>, f64) {
    banner("Figure 13: receiver TP distribution per level (low-noise system)");
    let reps = if quick { 10 } else { 100 };
    // "relatively low noise (interrupt and context-switch rates below
    // 1000 events per second) while other non-AVX applications run".
    let channels: Vec<ChannelSelect> = Symbol::ALL
        .iter()
        .map(|s| ChannelSelect::Probe(ProbeKind::LevelDuration { level: s.value() }))
        .collect();
    let grid = Grid::new()
        .channels(channels)
        .noises(vec![NoiseSpec::Low])
        .trials(reps)
        .base_seed(0xF1_13);
    let records = Executor::auto().run(&grid.scenarios());

    let mut csv = CsvTable::new(["level", "bits", "duration_cycles"]);
    let mut clusters = Vec::new();
    for s in Symbol::ALL {
        let durations: Vec<f64> = records
            .iter()
            .filter(|r| {
                r.scenario.channel
                    == ChannelSelect::Probe(ProbeKind::LevelDuration { level: s.value() })
            })
            .map(|r| r.metrics.probe_value)
            .collect();
        assert_eq!(durations.len(), reps as usize, "one duration per trial");
        for d in &durations {
            csv.push_row([
                format!("L{}", 4 - s.value()),
                s.to_string(),
                format!("{d:.0}"),
            ]);
        }
        let sum = summarize(&durations);
        println!(
            "  L{} (bits {}): {:>8.0} ± {:>5.0} cycles  [{:.0}, {:.0}]",
            4 - s.value(),
            s,
            sum.mean,
            sum.std_dev,
            sum.min,
            sum.max
        );
        clusters.push(LevelCluster {
            symbol: s,
            mean_cycles: sum.mean,
            std_cycles: sum.std_dev,
        });
    }
    let mut means: Vec<f64> = clusters.iter().map(|c| c.mean_cycles).collect();
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let min_sep = means
        .windows(2)
        .map(|w| w[1] - w[0])
        .fold(f64::INFINITY, f64::min);
    println!("  minimum level separation: {min_sep:.0} cycles (paper: > 2000)");
    write_csv(&csv, "fig13_tp_distribution.csv");
    (clusters, min_sep)
}

//! Figure 14 — channel accuracy under system noise (paper §6.3).
//!
//! (a) BER vs interrupt/context-switch rate: low even at thousands of
//! events per second, because a hit must land in the µs-scale decode
//! window. (b) 4×4 error matrix: a concurrent app's PHI corrupts a
//! transaction only when its level exceeds the channel's. (c) BER vs
//! App-PHI injection rate: grows with rate. Plus the 7-zip experiment:
//! BER < 0.07 with a real AVX2 app for 60 s.
//!
//! Every panel is one `ichannels-lab` grid: noise rates, interfering
//! apps, and payload shapes are scenario axes, executed on the worker
//! pool instead of the former hand-rolled serial loops.

use ichannels::channel::ChannelKind;
use ichannels::symbols::Symbol;
use ichannels_lab::scenario::{AppKind, AppSpec, NoiseSpec, PayloadSpec};
use ichannels_lab::{Executor, Grid};
use ichannels_meter::export::CsvTable;

use crate::{banner, write_csv};

/// Runs Figure 14(a): BER vs OS-event rate. Returns
/// `(kind, rate, ber)` rows.
pub fn run_event_noise(quick: bool) -> Vec<(String, f64, f64)> {
    banner("Figure 14(a): BER vs interrupt / context-switch rate");
    let n = if quick { 40 } else { 250 };
    let rates = [1.0, 10.0, 100.0, 1_000.0, 10_000.0];
    let mut noises = Vec::new();
    for rate in rates {
        noises.push(NoiseSpec::Interrupts(rate));
    }
    for rate in rates {
        noises.push(NoiseSpec::CtxSwitches(rate));
    }
    let grid = Grid::new()
        .kinds(&[ChannelKind::Thread])
        .noises(noises)
        .payload_symbols(n)
        .calib_reps(3)
        .base_seed(1234);
    let records = Executor::auto().run(&grid.scenarios());

    let mut rows = Vec::new();
    let mut csv = CsvTable::new(["event_kind", "events_per_second", "ber"]);
    for record in &records {
        let (label, rate) = match record.scenario.noise {
            NoiseSpec::Interrupts(rate) => ("interrupts", rate),
            NoiseSpec::CtxSwitches(rate) => ("context_switches", rate),
            other => unreachable!("unexpected noise axis value {other:?}"),
        };
        csv.push_row([
            label.to_string(),
            format!("{rate}"),
            format!("{:.4}", record.metrics.ber),
        ]);
        rows.push((label.to_string(), rate, record.metrics.ber));
    }
    for label in ["interrupts", "context_switches"] {
        print!("  {label:<18}");
        for (_, rate, ber) in rows.iter().filter(|(l, _, _)| l == label) {
            print!("  {rate:>7.0}/s: {ber:.3}");
        }
        println!();
    }
    write_csv(&csv, "fig14a_ber_vs_event_rate.csv");
    rows
}

/// Runs Figure 14(b): the App-PHI × ICh-PHI error matrix. Returns the
/// per-cell symbol error rates (`[app_level][channel_level]`).
pub fn run_error_matrix(quick: bool) -> Vec<Vec<f64>> {
    banner("Figure 14(b): App-PHI level vs ICh-PHI level error matrix");
    let reps = if quick { 8 } else { 25 };
    // App level and channel level are two grid axes: the interfering
    // app's fixed PHI level × the constant symbol the channel sends.
    let apps: Vec<Option<AppSpec>> = Symbol::ALL
        .iter()
        .map(|s| {
            Some(AppSpec {
                kind: AppKind::FixedLevel(s.value()),
                rate_hz: 2_000.0,
                burst_insts: 20_000,
            })
        })
        .collect();
    let payloads: Vec<PayloadSpec> = Symbol::ALL
        .iter()
        .map(|s| PayloadSpec::Constant(s.value()))
        .collect();
    let grid = Grid::new()
        .kinds(&[ChannelKind::Thread])
        .apps(apps)
        .payloads(payloads)
        .payload_symbols(reps)
        .calib_reps(2)
        .base_seed(99);
    let records = Executor::auto().run(&grid.scenarios());
    assert_eq!(records.len(), 16, "4 app levels x 4 channel levels");

    let mut matrix = Vec::new();
    let mut csv = CsvTable::new(["app_level", "ich_level", "symbol_error_rate"]);
    println!("  rows: App-PHI level; cols: ICh-PHI (sender) level; cell: SER");
    print!("  {:<10}", "");
    for s in Symbol::ALL {
        print!(" ICh-L{}", 4 - s.value());
    }
    println!();
    // Grid order: app axis outer, payload axis inner.
    for (a, app_level) in Symbol::ALL.iter().enumerate() {
        let mut row = Vec::new();
        print!("  App-L{:<5}", 4 - app_level.value());
        for (i, ich_level) in Symbol::ALL.iter().enumerate() {
            let ser = records[a * 4 + i].metrics.ser;
            print!(" {ser:>6.2}");
            csv.push_row([
                format!("L{}", 4 - app_level.value()),
                format!("L{}", 4 - ich_level.value()),
                format!("{ser:.3}"),
            ]);
            row.push(ser);
        }
        println!();
        matrix.push(row);
    }
    println!("  (paper: errors concentrate where the app level exceeds the channel level)");
    write_csv(&csv, "fig14b_error_matrix.csv");
    matrix
}

/// Runs Figure 14(c): BER vs App-PHI rate. Returns `(rate, ber)` rows.
pub fn run_app_rate(quick: bool) -> Vec<(f64, f64)> {
    banner("Figure 14(c): BER vs concurrent App-PHI injection rate");
    let n = if quick { 40 } else { 200 };
    let rates = [10.0, 100.0, 1_000.0, 10_000.0];
    let apps: Vec<Option<AppSpec>> = rates
        .iter()
        .map(|&rate_hz| {
            Some(AppSpec {
                kind: AppKind::RandomLevels,
                rate_hz,
                burst_insts: 20_000,
            })
        })
        .collect();
    let grid = Grid::new()
        .kinds(&[ChannelKind::Thread])
        .apps(apps)
        .payload_symbols(n)
        .calib_reps(3)
        .base_seed(777);
    let records = Executor::auto().run(&grid.scenarios());

    let mut rows = Vec::new();
    let mut csv = CsvTable::new(["app_phis_per_second", "ber"]);
    for (rate, record) in rates.iter().zip(&records) {
        let ber = record.metrics.ber;
        println!("  {rate:>7.0} App-PHIs/s → BER = {ber:.3}");
        csv.push_row([format!("{rate}"), format!("{ber:.4}")]);
        rows.push((*rate, ber));
    }
    write_csv(&csv, "fig14c_ber_vs_app_rate.csv");
    rows
}

/// Runs the §6.3 7-zip experiment; returns the measured BER.
pub fn run_sevenzip(quick: bool) -> f64 {
    banner("§6.3: 60 s transmission beside a 7-zip-like AVX2 app");
    let seconds = if quick { 2.0 } else { 60.0 };
    let slot_period_s = ichannels::channel::ChannelConfig::default_cannon_lake()
        .slot_period
        .as_secs();
    let n = (seconds / slot_period_s) as usize;
    let grid = Grid::new()
        .kinds(&[ChannelKind::Thread])
        .apps(vec![Some(AppSpec {
            kind: AppKind::SevenZip,
            rate_hz: 0.0,
            burst_insts: 0,
        })])
        .payload_symbols(n)
        .calib_reps(3)
        .base_seed(2021);
    let records = Executor::serial().run(&grid.scenarios());
    let ber = records[0].metrics.ber;
    println!(
        "  {} symbols over {seconds} s beside 7-zip (AVX2-only): BER = {ber:.4} (paper: < 0.07)",
        n
    );
    ber
}

/// Runs all Figure 14 parts.
pub fn run(quick: bool) {
    let _ = run_event_noise(quick);
    let _ = run_error_matrix(quick);
    let _ = run_app_rate(quick);
    let _ = run_sevenzip(quick);
}

//! Figure 14 — channel accuracy under system noise (paper §6.3).
//!
//! (a) BER vs interrupt/context-switch rate: low even at thousands of
//! events per second, because a hit must land in the µs-scale decode
//! window. (b) 4×4 error matrix: a concurrent app's PHI corrupts a
//! transaction only when its level exceeds the channel's. (c) BER vs
//! App-PHI injection rate: grows with rate. Plus the 7-zip experiment:
//! BER < 0.07 with a real AVX2 app for 60 s.

use ichannels::ber::{evaluate_with, random_symbols};
use ichannels::channel::IChannel;
use ichannels::symbols::Symbol;
use ichannels_meter::export::CsvTable;
use ichannels_meter::stats::ConfusionMatrix;
use ichannels_soc::noise::NoiseConfig;
use ichannels_uarch::isa::InstClass;
use ichannels_workload::apps::{RandomPhiApp, SevenZipApp};

use crate::{banner, write_csv};

fn channel_with_noise(noise: NoiseConfig) -> IChannel {
    let mut ch = IChannel::icc_thread_covert();
    ch.config_mut().soc = ch.config().soc.clone().with_noise(noise);
    ch
}

/// Runs Figure 14(a): BER vs OS-event rate. Returns
/// `(kind, rate, ber)` rows.
pub fn run_event_noise(quick: bool) -> Vec<(String, f64, f64)> {
    banner("Figure 14(a): BER vs interrupt / context-switch rate");
    let n = if quick { 40 } else { 250 };
    let rates = [1.0, 10.0, 100.0, 1_000.0, 10_000.0];
    let mut rows = Vec::new();
    let mut csv = CsvTable::new(["event_kind", "events_per_second", "ber"]);
    for (label, mk) in [
        (
            "interrupts",
            NoiseConfig::interrupts_only as fn(f64) -> NoiseConfig,
        ),
        ("context_switches", NoiseConfig::ctx_switches_only),
    ] {
        print!("  {label:<18}");
        for rate in rates {
            let ch = channel_with_noise(mk(rate));
            let cal = ch.calibrate(3);
            let ev = ichannels::ber::evaluate(&ch, &cal, n, 1234);
            print!("  {rate:>7.0}/s: {:.3}", ev.ber);
            csv.push_row([label.to_string(), format!("{rate}"), format!("{:.4}", ev.ber)]);
            rows.push((label.to_string(), rate, ev.ber));
        }
        println!();
    }
    write_csv(&csv, "fig14a_ber_vs_event_rate.csv");
    rows
}

/// Runs Figure 14(b): the App-PHI × ICh-PHI error matrix. Returns the
/// per-cell symbol error rates (`[app_level][channel_level]`).
pub fn run_error_matrix(quick: bool) -> Vec<Vec<f64>> {
    banner("Figure 14(b): App-PHI level vs ICh-PHI level error matrix");
    let reps = if quick { 8 } else { 25 };
    let mut matrix = Vec::new();
    let mut csv = CsvTable::new(["app_level", "ich_level", "symbol_error_rate"]);
    println!("  rows: App-PHI level; cols: ICh-PHI (sender) level; cell: SER");
    print!("  {:<10}", "");
    for s in Symbol::ALL {
        print!(" ICh-L{}", 4 - s.value());
    }
    println!();
    for app_level in Symbol::ALL {
        let mut row = Vec::new();
        print!("  App-L{:<5}", 4 - app_level.value());
        for ich_level in Symbol::ALL {
            let ch = IChannel::icc_thread_covert();
            let cal = ch.calibrate(2);
            let symbols = vec![ich_level; reps];
            let app_class = app_level.sender_class();
            let deadline = ch.config().start_offset
                + ch.config().slot_period.scale((reps + 2) as f64);
            let tx = ch.transmit_symbols_with(&symbols, &cal, |soc| {
                soc.spawn(
                    1,
                    0,
                    Box::new(RandomPhiApp::new(
                        2_000.0,
                        20_000,
                        vec![app_class],
                        deadline,
                        99,
                    )),
                );
            });
            let errors = tx
                .sent
                .iter()
                .zip(&tx.received)
                .filter(|(a, b)| a != b)
                .count();
            let ser = errors as f64 / reps as f64;
            print!(" {ser:>6.2}");
            csv.push_row([
                format!("L{}", 4 - app_level.value()),
                format!("L{}", 4 - ich_level.value()),
                format!("{ser:.3}"),
            ]);
            row.push(ser);
        }
        println!();
        matrix.push(row);
    }
    println!("  (paper: errors concentrate where the app level exceeds the channel level)");
    write_csv(&csv, "fig14b_error_matrix.csv");
    matrix
}

/// Runs Figure 14(c): BER vs App-PHI rate. Returns `(rate, ber)` rows.
pub fn run_app_rate(quick: bool) -> Vec<(f64, f64)> {
    banner("Figure 14(c): BER vs concurrent App-PHI injection rate");
    let n = if quick { 40 } else { 200 };
    let rates = [10.0, 100.0, 1_000.0, 10_000.0];
    let mut rows = Vec::new();
    let mut csv = CsvTable::new(["app_phis_per_second", "ber"]);
    for rate in rates {
        let ch = IChannel::icc_thread_covert();
        let cal = ch.calibrate(3);
        let deadline =
            ch.config().start_offset + ch.config().slot_period.scale((n + 2) as f64);
        let ev = evaluate_with(&ch, &cal, n, 777, |soc| {
            soc.spawn(
                1,
                0,
                Box::new(RandomPhiApp::sender_levels(rate, 20_000, deadline, 55)),
            );
        });
        println!("  {rate:>7.0} App-PHIs/s → BER = {:.3}", ev.ber);
        csv.push_row([format!("{rate}"), format!("{:.4}", ev.ber)]);
        rows.push((rate, ev.ber));
    }
    write_csv(&csv, "fig14c_ber_vs_app_rate.csv");
    rows
}

/// Runs the §6.3 7-zip experiment; returns the measured BER.
pub fn run_sevenzip(quick: bool) -> f64 {
    banner("§6.3: 60 s transmission beside a 7-zip-like AVX2 app");
    let seconds = if quick { 2.0 } else { 60.0 };
    let ch = IChannel::icc_thread_covert();
    let cal = ch.calibrate(3);
    let n = (seconds / ch.config().slot_period.as_secs()) as usize;
    let symbols = random_symbols(n, 2021);
    let deadline =
        ch.config().start_offset + ch.config().slot_period.scale((n + 2) as f64);
    let tx = ch.transmit_symbols_with(&symbols, &cal, |soc| {
        soc.spawn(1, 0, Box::new(SevenZipApp::typical(deadline, 11)));
    });
    let mut m = ConfusionMatrix::new(4);
    for (s, r) in tx.sent.iter().zip(&tx.received) {
        m.record(s.value() as usize, r.value() as usize);
    }
    let ber = m.bit_error_rate_2bit();
    println!(
        "  {} symbols over {seconds} s beside 7-zip (AVX2-only): BER = {ber:.4} (paper: < 0.07)",
        n
    );
    let _ = InstClass::Heavy256; // the app's PHI alphabet
    ber
}

/// Runs all Figure 14 parts.
pub fn run(quick: bool) {
    let _ = run_event_noise(quick);
    let _ = run_error_matrix(quick);
    let _ = run_app_rate(quick);
    let _ = run_sevenzip(quick);
}

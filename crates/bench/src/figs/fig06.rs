//! Figure 6 — supply-voltage steps as cores start/stop AVX2 at a fixed
//! (sub-nominal) 2 GHz on Coffee Lake.
//!
//! Expected shape (paper §5.2): when core 1 starts AVX2 the package Vcc
//! rises by a one-core guardband step; when core 0 joins, by a second
//! comparable step; the steps reverse when the cores stop; and the clock
//! frequency never moves. `--calculix` runs the 454.calculix-like phase
//! trace instead (Figure 6(b)).

use ichannels_meter::export::CsvTable;
use ichannels_soc::config::{PlatformSpec, SocConfig};
use ichannels_soc::sim::Soc;
use ichannels_uarch::isa::InstClass;
use ichannels_uarch::time::{Freq, SimTime};
use ichannels_workload::phases::{Phase, PhaseProgram};

use crate::{banner, write_csv};

/// Runs the Figure 6(a) experiment; returns (series CSV, step summary).
pub fn run_avx2_steps(quick: bool) -> (CsvTable, Vec<(String, f64)>) {
    banner("Figure 6(a): Vcc steps under staggered multi-core AVX2 @ 2 GHz");
    let scale = if quick { 0.1 } else { 1.0 };
    let t = |s: f64| SimTime::from_secs(s * scale);
    let cfg = SocConfig::pinned(PlatformSpec::coffee_lake(), Freq::from_ghz(2.0))
        .with_trace(SimTime::from_us(500.0 * scale.max(0.05)));
    let mut soc = Soc::new(cfg);
    let v0 = soc.vcc_mv();
    let block = 100_000;
    // Core 1: scalar until 0.4 s, AVX2 0.4–2.0 s, scalar after.
    soc.spawn(
        1,
        0,
        Box::new(PhaseProgram::new(
            vec![
                Phase::busy(InstClass::Scalar64, t(0.4)),
                Phase::busy(InstClass::Heavy256, t(1.6)),
                Phase::busy(InstClass::Scalar64, t(0.4)),
            ],
            block,
        )),
    );
    // Core 0: scalar until 0.8 s, AVX2 0.8–2.1 s, scalar after.
    soc.spawn(
        0,
        0,
        Box::new(PhaseProgram::new(
            vec![
                Phase::busy(InstClass::Scalar64, t(0.8)),
                Phase::busy(InstClass::Heavy256, t(1.3)),
                Phase::busy(InstClass::Scalar64, t(0.3)),
            ],
            block,
        )),
    );
    soc.run_until(t(2.5));

    let trace = soc.trace();
    let mut csv = CsvTable::new(["time_s", "vcc_delta_mv", "freq_ghz"]);
    for s in trace.samples() {
        csv.push_floats([s.time.as_secs(), s.vcc_mv - v0, s.freq.as_ghz()]);
    }

    // Quantify the steps at the four transition points.
    let probe = |sec: f64| -> f64 {
        trace
            .samples()
            .iter()
            .rfind(|s| s.time <= t(sec))
            .map(|s| s.vcc_mv - v0)
            .unwrap_or(0.0)
    };
    let steps = vec![
        ("baseline".to_string(), probe(0.35)),
        ("core1 AVX2 (+1 step)".to_string(), probe(0.75)),
        ("core0+core1 AVX2 (+2 steps)".to_string(), probe(1.9)),
        ("core0 only".to_string(), probe(2.05)),
        ("back to baseline".to_string(), probe(2.45)),
    ];
    println!("  {:<30} {:>12}", "phase", "Vcc delta (mV)");
    for (name, v) in &steps {
        println!("  {name:<30} {v:>12.2}");
    }
    let freqs = trace.freq_series();
    let fmin = freqs.iter().map(|(_, f)| *f).fold(f64::INFINITY, f64::min);
    let fmax = freqs.iter().map(|(_, f)| *f).fold(0.0, f64::max);
    println!("  frequency range: {fmin:.2}–{fmax:.2} GHz (paper: flat)");
    // Automatic step detection over the Vcc series.
    let series: ichannels_meter::series::Series = trace.vcc_series().into_iter().collect();
    let detected = series.detect_steps(8, 3.0);
    println!("  detected {} voltage steps:", detected.len());
    for st in &detected {
        println!(
            "    t = {:>6.3} s: {:+.1} mV ({:.1} → {:.1})",
            st.time_s,
            st.amplitude(),
            st.before,
            st.after
        );
    }
    write_csv(&csv, "fig06a_vcc_steps.csv");
    (csv, steps)
}

/// Runs the Figure 6(b) calculix-like experiment; returns the series.
pub fn run_calculix(quick: bool) -> CsvTable {
    banner("Figure 6(b): Vcc tracking 454.calculix-like AVX2 phases");
    let total = if quick {
        SimTime::from_secs(0.3)
    } else {
        SimTime::from_secs(2.0)
    };
    let cfg = SocConfig::pinned(PlatformSpec::coffee_lake(), Freq::from_ghz(2.0))
        .with_trace(SimTime::from_ms(1.0));
    let mut soc = Soc::new(cfg);
    let v0 = soc.vcc_mv();
    soc.spawn(0, 0, Box::new(PhaseProgram::calculix_like(total, 100_000)));
    soc.spawn(1, 0, Box::new(PhaseProgram::calculix_like(total, 100_000)));
    soc.run_until(total + SimTime::from_ms(10.0));
    let trace = soc.trace();
    let mut csv = CsvTable::new(["time_s", "vcc_delta_mv", "freq_ghz"]);
    for s in trace.samples() {
        csv.push_floats([s.time.as_secs(), s.vcc_mv - v0, s.freq.as_ghz()]);
    }
    let vmax = trace.vcc_max().unwrap_or(v0) - v0;
    println!(
        "  peak Vcc delta: {vmax:.2} mV over {} samples",
        trace.len()
    );
    write_csv(&csv, "fig06b_calculix.csv");
    csv
}

/// Runs both Figure 6 experiments.
pub fn run(quick: bool) {
    let _ = run_avx2_steps(quick);
    let _ = run_calculix(quick);
}

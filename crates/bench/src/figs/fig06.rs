//! Figure 6 — supply-voltage steps as cores start/stop AVX2 at a fixed
//! (sub-nominal) 2 GHz on Coffee Lake.
//!
//! Expected shape (paper §5.2): when core 1 starts AVX2 the package Vcc
//! rises by a one-core guardband step; when core 0 joins, by a second
//! comparable step; the steps reverse when the cores stop; and the clock
//! frequency never moves. `--calculix` runs the 454.calculix-like phase
//! trace instead (Figure 6(b)).
//!
//! Both panels are `ichannels-lab` trace experiments ([`TraceSpec`])
//! executed by the engine; this module only post-processes the returned
//! series.

use ichannels_lab::scenario::PlatformId;
use ichannels_lab::{Executor, TraceProgram, TraceRun, TraceSpec};
use ichannels_meter::export::CsvTable;
use ichannels_uarch::isa::InstClass;
use ichannels_uarch::time::SimTime;
use ichannels_workload::phases::Phase;

use crate::{banner, write_csv};

fn series_csv(run: &TraceRun) -> CsvTable {
    let mut csv = CsvTable::new(["time_s", "vcc_delta_mv", "freq_ghz"]);
    for s in run.trace.samples() {
        csv.push_floats([s.time.as_secs(), s.vcc_mv - run.v0_mv, s.freq.as_ghz()]);
    }
    csv
}

/// Runs the Figure 6(a) experiment; returns (series CSV, step summary).
pub fn run_avx2_steps(quick: bool) -> (CsvTable, Vec<(String, f64)>) {
    banner("Figure 6(a): Vcc steps under staggered multi-core AVX2 @ 2 GHz");
    let scale = if quick { 0.1 } else { 1.0 };
    let t = |s: f64| SimTime::from_secs(s * scale);
    let block = 100_000;
    let spec = TraceSpec {
        name: "fig06a".to_string(),
        platform: PlatformId::CoffeeLake,
        freq_ghz: Some(2.0),
        sample_every: SimTime::from_us(if quick { 250.0 } else { 500.0 }),
        horizon: t(2.5),
        cores: vec![
            // Core 1: scalar until 0.4 s, AVX2 0.4–2.0 s, scalar after.
            (
                1,
                TraceProgram::Phases {
                    phases: vec![
                        Phase::busy(InstClass::Scalar64, t(0.4)),
                        Phase::busy(InstClass::Heavy256, t(1.6)),
                        Phase::busy(InstClass::Scalar64, t(0.4)),
                    ],
                    block_insts: block,
                },
            ),
            // Core 0: scalar until 0.8 s, AVX2 0.8–2.1 s, scalar after.
            (
                0,
                TraceProgram::Phases {
                    phases: vec![
                        Phase::busy(InstClass::Scalar64, t(0.8)),
                        Phase::busy(InstClass::Heavy256, t(1.3)),
                        Phase::busy(InstClass::Scalar64, t(0.3)),
                    ],
                    block_insts: block,
                },
            ),
        ],
    };
    let run = &Executor::serial().map(std::slice::from_ref(&spec), TraceSpec::run)[0];
    let csv = series_csv(run);

    // Quantify the steps at the four transition points.
    let steps = vec![
        ("baseline".to_string(), run.vcc_delta_at(t(0.35))),
        (
            "core1 AVX2 (+1 step)".to_string(),
            run.vcc_delta_at(t(0.75)),
        ),
        (
            "core0+core1 AVX2 (+2 steps)".to_string(),
            run.vcc_delta_at(t(1.9)),
        ),
        ("core0 only".to_string(), run.vcc_delta_at(t(2.05))),
        ("back to baseline".to_string(), run.vcc_delta_at(t(2.45))),
    ];
    println!("  {:<30} {:>12}", "phase", "Vcc delta (mV)");
    for (name, v) in &steps {
        println!("  {name:<30} {v:>12.2}");
    }
    let freqs = run.trace.freq_series();
    let fmin = freqs.iter().map(|(_, f)| *f).fold(f64::INFINITY, f64::min);
    let fmax = freqs.iter().map(|(_, f)| *f).fold(0.0, f64::max);
    println!("  frequency range: {fmin:.2}–{fmax:.2} GHz (paper: flat)");
    // Automatic step detection over the Vcc series.
    let series: ichannels_meter::series::Series = run.trace.vcc_series().into_iter().collect();
    let detected = series.detect_steps(8, 3.0);
    println!("  detected {} voltage steps:", detected.len());
    for st in &detected {
        println!(
            "    t = {:>6.3} s: {:+.1} mV ({:.1} → {:.1})",
            st.time_s,
            st.amplitude(),
            st.before,
            st.after
        );
    }
    write_csv(&csv, "fig06a_vcc_steps.csv");
    (csv, steps)
}

/// Runs the Figure 6(b) calculix-like experiment; returns the series.
pub fn run_calculix(quick: bool) -> CsvTable {
    banner("Figure 6(b): Vcc tracking 454.calculix-like AVX2 phases");
    let total = if quick {
        SimTime::from_secs(0.3)
    } else {
        SimTime::from_secs(2.0)
    };
    let program = || TraceProgram::CalculixLike {
        total,
        block_insts: 100_000,
    };
    let spec = TraceSpec {
        name: "fig06b".to_string(),
        platform: PlatformId::CoffeeLake,
        freq_ghz: Some(2.0),
        sample_every: SimTime::from_ms(1.0),
        horizon: total + SimTime::from_ms(10.0),
        cores: vec![(0, program()), (1, program())],
    };
    let run = &Executor::serial().map(std::slice::from_ref(&spec), TraceSpec::run)[0];
    let csv = series_csv(run);
    let vmax = run.trace.vcc_max().unwrap_or(run.v0_mv) - run.v0_mv;
    println!(
        "  peak Vcc delta: {vmax:.2} mV over {} samples",
        run.trace.len()
    );
    write_csv(&csv, "fig06b_calculix.csv");
    csv
}

/// Runs both Figure 6 experiments.
pub fn run(quick: bool) {
    let _ = run_avx2_steps(quick);
    let _ = run_calculix(quick);
}

//! Figure 8 — throttling-period distributions per platform, and the AVX
//! power-gate wake penalty (paper §5.4).
//!
//! Expected shape: (a) Haswell (FIVR) has a shorter AVX2 TP (~9 µs) than
//! the MBVR parts (12–15 µs), and throttling exists on Haswell even
//! though it has **no** AVX power gate; (b,c) the first loop iteration
//! on Coffee Lake is 8–15 ns longer than subsequent ones (gate wake),
//! while on Haswell all iterations are equal — power gating explains
//! only ~0.1 % of the TP (Key Conclusion 3).

use ichannels_meter::export::CsvTable;
use ichannels_meter::stats::summarize;
use ichannels_soc::config::{PlatformSpec, SocConfig};
use ichannels_soc::program::{Action, ProgCtx, Program};
use ichannels_soc::sim::Soc;
use ichannels_uarch::ipc::nominal_ipc;
use ichannels_uarch::isa::InstClass;
use ichannels_uarch::time::{Freq, SimTime};
use ichannels_workload::loops::{instructions_for_duration, MeasuredLoop, Recorder};

use crate::figs::inflation_to_tp_us;
use crate::{banner, write_csv};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// TP distribution summary for one platform.
#[derive(Debug, Clone)]
pub struct TpDistribution {
    /// Platform name.
    pub platform: String,
    /// Mean TP (µs).
    pub mean_us: f64,
    /// Standard deviation (µs).
    pub std_us: f64,
    /// Min/max (µs).
    pub min_us: f64,
    /// Max (µs).
    pub max_us: f64,
}

/// Runs the Figure 8(a) TP distributions (AVX2 loop, many trials).
pub fn run_distributions(quick: bool) -> Vec<TpDistribution> {
    banner("Figure 8(a): AVX2 throttling-period distribution per platform");
    let trials = if quick { 8 } else { 50 };
    let mut out = Vec::new();
    let mut csv = CsvTable::new(["platform", "trial", "tp_us"]);
    for platform in PlatformSpec::all() {
        let freq = Freq::from_ghz(3.0).min(platform.pstates.max());
        let freq = platform.pstates.highest_not_above(freq);
        let cfg = SocConfig::pinned(platform.clone(), freq);
        let mut soc = Soc::new(cfg);
        let insts = instructions_for_duration(InstClass::Heavy256, freq, SimTime::from_us(60.0));
        let rec = Recorder::new();
        soc.spawn(
            0,
            0,
            Box::new(MeasuredLoop::new(
                InstClass::Heavy256,
                insts,
                trials,
                SimTime::from_us(700.0), // past the reset-time: fresh TP each rep
                rec.clone(),
            )),
        );
        soc.run_until_idle(SimTime::from_ms(800.0));
        let base_us = insts as f64 / nominal_ipc(InstClass::Heavy256) / freq.as_hz() as f64 * 1e6;
        // Real measurements carry rdtsc/pipeline jitter (the box widths
        // of the paper's Figure 8(a)); the simulator's TPs are exact, so
        // apply the same measurement-noise model the channels use.
        let mut rng = SmallRng::seed_from_u64(0xF18A);
        let mut gauss = move || {
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let tps: Vec<f64> = rec
            .durations_us(soc.tsc())
            .iter()
            .map(|&d| (inflation_to_tp_us(d, base_us) + gauss() * 0.35).max(0.0))
            .collect();
        for (i, tp) in tps.iter().enumerate() {
            csv.push_row([platform.name.to_string(), i.to_string(), format!("{tp:.4}")]);
        }
        let s = summarize(&tps);
        println!(
            "  {:<24} TP = {:>6.2} ± {:>4.2} µs  (min {:.2}, max {:.2}, {} trials @ {})",
            platform.name, s.mean, s.std_dev, s.min, s.max, trials, freq
        );
        out.push(TpDistribution {
            platform: platform.name.to_string(),
            mean_us: s.mean,
            std_us: s.std_dev,
            min_us: s.min,
            max_us: s.max,
        });
    }
    write_csv(&csv, "fig08a_tp_distribution.csv");
    out
}

/// Iteration-timing program: times three back-to-back loop iterations
/// of 300 `VMULPD`-class instructions (the paper's §5.4 experiment).
#[derive(Debug)]
struct IterationTimer {
    iter: usize,
    t_start: u64,
    recorder: Recorder,
    started: bool,
}

impl Program for IterationTimer {
    fn next(&mut self, ctx: &ProgCtx) -> Action {
        if self.started {
            self.recorder.push(ctx.tsc.saturating_sub(self.t_start));
            self.iter += 1;
        }
        if self.iter >= 3 {
            return Action::Halt;
        }
        self.started = true;
        self.t_start = ctx.tsc;
        Action::Run {
            class: InstClass::Heavy256,
            instructions: 300,
        }
    }

    fn name(&self) -> &str {
        "VMULPD iteration timer"
    }
}

/// First-iteration deltas for one platform (Figure 8(b,c)).
#[derive(Debug, Clone)]
pub struct IterationDeltas {
    /// Platform name.
    pub platform: String,
    /// Per-iteration duration minus the steady-state iteration (ns).
    pub delta_ns: [f64; 3],
}

/// Runs the Figure 8(b,c) power-gate wake measurement.
pub fn run_power_gate(_quick: bool) -> Vec<IterationDeltas> {
    banner("Figure 8(b,c): first-iteration power-gate wake penalty");
    let mut out = Vec::new();
    for platform in [PlatformSpec::coffee_lake(), PlatformSpec::haswell()] {
        let freq = platform.pstates.highest_not_above(Freq::from_ghz(3.0));
        let cfg = SocConfig::pinned(platform.clone(), freq);
        let mut soc = Soc::new(cfg);
        let rec = Recorder::new();
        soc.spawn(
            0,
            0,
            Box::new(IterationTimer {
                iter: 0,
                t_start: 0,
                recorder: rec.clone(),
                started: false,
            }),
        );
        soc.run_until_idle(SimTime::from_ms(1.0));
        let d = rec.durations_us(soc.tsc());
        let steady = d[2];
        let deltas = [
            (d[0] - steady) * 1e3,
            (d[1] - steady) * 1e3,
            (d[2] - steady) * 1e3,
        ];
        println!(
            "  {:<24} iteration deltas vs steady-state: {:+.1} ns, {:+.1} ns, {:+.1} ns",
            platform.name, deltas[0], deltas[1], deltas[2]
        );
        out.push(IterationDeltas {
            platform: platform.name.to_string(),
            delta_ns: deltas,
        });
    }
    // Key Conclusion 3: gate wake ≈ 0.1 % of the TP.
    let wake_ns = 12.0;
    let tp_us = 13.0;
    println!(
        "  gate wake ({wake_ns} ns) / throttling period ({tp_us} µs) = {:.2}% (paper: ~0.1%)",
        wake_ns / (tp_us * 1000.0) * 100.0
    );
    out
}

/// Runs both parts of Figure 8.
pub fn run(quick: bool) {
    let _ = run_distributions(quick);
    let _ = run_power_gate(quick);
}

//! Figure 8 — throttling-period distributions per platform, and the AVX
//! power-gate wake penalty (paper §5.4).
//!
//! Expected shape: (a) Haswell (FIVR) has a shorter AVX2 TP (~9 µs) than
//! the MBVR parts (12–15 µs), and throttling exists on Haswell even
//! though it has **no** AVX power gate; (b,c) the first loop iteration
//! on Coffee Lake is 8–15 ns longer than subsequent ones (gate wake),
//! while on Haswell all iterations are equal — power gating explains
//! only ~0.1 % of the TP (Key Conclusion 3).
//!
//! Both panels are `ichannels-lab` grids (TP and gate-iteration probes
//! over the platform axis), executed on the worker pool.

use ichannels_lab::scenario::{ChannelSelect, PlatformId, ProbeKind};
use ichannels_lab::{Executor, Grid, TrialRecord};
use ichannels_meter::export::CsvTable;
use ichannels_meter::stats::summarize;
use ichannels_uarch::isa::InstClass;
use ichannels_uarch::time::Freq;

use crate::{banner, write_csv};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// TP distribution summary for one platform.
#[derive(Debug, Clone)]
pub struct TpDistribution {
    /// Platform name.
    pub platform: String,
    /// Mean TP (µs).
    pub mean_us: f64,
    /// Standard deviation (µs).
    pub std_us: f64,
    /// Min/max (µs).
    pub min_us: f64,
    /// Max (µs).
    pub max_us: f64,
}

/// One standard-normal draw seeded from the trial (Box–Muller): the
/// rdtsc/pipeline measurement jitter real runs carry — the box widths
/// of the paper's Figure 8(a). The simulator's TPs are exact, so the
/// noise model the channels use is applied per engine trial.
fn measurement_noise_us(record: &TrialRecord) -> f64 {
    let mut rng = SmallRng::seed_from_u64(record.scenario.seed);
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos() * 0.35
}

/// Runs the Figure 8(a) TP distributions (AVX2 loop, many trials).
pub fn run_distributions(quick: bool) -> Vec<TpDistribution> {
    banner("Figure 8(a): AVX2 throttling-period distribution per platform");
    let trials = if quick { 8 } else { 50 };
    let platforms = [
        PlatformId::Haswell,
        PlatformId::CoffeeLake,
        PlatformId::CannonLake,
    ];
    let grid = Grid::new()
        .platforms(platforms.to_vec())
        .channels(vec![ChannelSelect::Probe(ProbeKind::Tp {
            class: InstClass::Heavy256,
            cores: 1,
        })])
        .freq_ghz(3.0)
        .trials(trials)
        .base_seed(0xF18A);
    let records = Executor::auto().run(&grid.scenarios());

    let mut out = Vec::new();
    let mut csv = CsvTable::new(["platform", "trial", "tp_us"]);
    for platform in platforms {
        let spec = platform.spec();
        let freq = spec.pstates.highest_not_above(Freq::from_ghz(3.0));
        let tps: Vec<f64> = records
            .iter()
            .filter(|r| r.scenario.platform == platform)
            .map(|r| (r.metrics.probe_value + measurement_noise_us(r)).max(0.0))
            .collect();
        assert_eq!(tps.len(), trials as usize, "one TP per trial");
        for (i, tp) in tps.iter().enumerate() {
            csv.push_row([spec.name.to_string(), i.to_string(), format!("{tp:.4}")]);
        }
        let s = summarize(&tps);
        println!(
            "  {:<24} TP = {:>6.2} ± {:>4.2} µs  (min {:.2}, max {:.2}, {} trials @ {})",
            spec.name, s.mean, s.std_dev, s.min, s.max, trials, freq
        );
        out.push(TpDistribution {
            platform: spec.name.to_string(),
            mean_us: s.mean,
            std_us: s.std_dev,
            min_us: s.min,
            max_us: s.max,
        });
    }
    write_csv(&csv, "fig08a_tp_distribution.csv");
    out
}

/// First-iteration deltas for one platform (Figure 8(b,c)).
#[derive(Debug, Clone)]
pub struct IterationDeltas {
    /// Platform name.
    pub platform: String,
    /// Per-iteration duration minus the steady-state iteration (ns).
    pub delta_ns: [f64; 3],
}

/// Runs the Figure 8(b,c) power-gate wake measurement.
pub fn run_power_gate(_quick: bool) -> Vec<IterationDeltas> {
    banner("Figure 8(b,c): first-iteration power-gate wake penalty");
    let platforms = [PlatformId::CoffeeLake, PlatformId::Haswell];
    let grid = Grid::new()
        .platforms(platforms.to_vec())
        .channels(
            (0..3)
                .map(|iter| ChannelSelect::Probe(ProbeKind::GateIteration { iter }))
                .collect(),
        )
        .freq_ghz(3.0)
        .base_seed(0x6A7E);
    let records = Executor::auto().run(&grid.scenarios());

    let mut out = Vec::new();
    for platform in platforms {
        let duration_us = |iter: u8| {
            records
                .iter()
                .find(|r| {
                    r.scenario.platform == platform
                        && r.scenario.channel
                            == ChannelSelect::Probe(ProbeKind::GateIteration { iter })
                })
                .expect("grid covers every iteration")
                .metrics
                .probe_value
        };
        let steady = duration_us(2);
        let deltas = [
            (duration_us(0) - steady) * 1e3,
            (duration_us(1) - steady) * 1e3,
            (duration_us(2) - steady) * 1e3,
        ];
        let name = platform.spec().name;
        println!(
            "  {:<24} iteration deltas vs steady-state: {:+.1} ns, {:+.1} ns, {:+.1} ns",
            name, deltas[0], deltas[1], deltas[2]
        );
        out.push(IterationDeltas {
            platform: name.to_string(),
            delta_ns: deltas,
        });
    }
    // Key Conclusion 3: gate wake ≈ 0.1 % of the TP.
    let wake_ns = 12.0;
    let tp_us = 13.0;
    println!(
        "  gate wake ({wake_ns} ns) / throttling period ({tp_us} µs) = {:.2}% (paper: ~0.1%)",
        wake_ns / (tp_us * 1000.0) * 100.0
    );
    out
}

/// Runs both parts of Figure 8.
pub fn run(quick: bool) {
    let _ = run_distributions(quick);
    let _ = run_power_gate(quick);
}

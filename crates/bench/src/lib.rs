//! # `ichannels-bench` — the paper-regeneration harness
//!
//! One module per evaluation artifact of the IChannels paper. Each
//! module exposes `run(quick)` used both by its dedicated binary
//! (`cargo run -p ichannels-bench --bin figNN_…`) and by the all-in-one
//! `repro_all` binary. `quick = true` shrinks trial counts for smoke
//! tests; the binaries default to full fidelity.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`figs::fig06`] | Fig. 6 — Vcc steps under multi-core AVX2 / calculix |
//! | [`figs::fig07`] | Fig. 7 — Vccmax/Iccmax protection, 3-phase timeline |
//! | [`figs::fig08`] | Fig. 8 — TP distributions, AVX power-gate wake |
//! | [`figs::fig09`] | Fig. 9 — throttling timelines (guardband & P-state) |
//! | [`figs::fig10`] | Fig. 10 — multi-level throttling periods |
//! | [`figs::fig11`] | Fig. 11 — IDQ undelivered-uops distributions |
//! | [`figs::fig12`] | Fig. 12 — channel throughput vs state of the art |
//! | [`figs::fig13`] | Fig. 13 — receiver TP distribution per level |
//! | [`figs::fig14`] | Fig. 14 — BER under noise / concurrent apps |
//! | [`figs::table1`] | Table 1 — mitigation effectiveness & overhead |
//! | [`figs::table2`] | Table 2 — comparison with NetSpectre/TurboCC |

#![warn(missing_docs)]

pub mod figs;

use ichannels_meter::export::CsvTable;
use std::path::PathBuf;

/// Directory where harness binaries write `*.csv` (default `results/`,
/// overridable via `ICHANNELS_RESULTS`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("ICHANNELS_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Writes a table under the results dir and logs the path. A missing
/// results directory is created by [`CsvTable::write_to`] (it creates
/// every parent of the target path).
pub fn write_csv(table: &CsvTable, name: &str) {
    let path = results_dir().join(name);
    match table.write_to(&path) {
        Ok(()) => println!("  wrote {} ({} rows)", path.display(), table.len()),
        Err(e) => eprintln!("  FAILED to write {}: {e}", path.display()),
    }
}

/// Prints a banner for one artifact.
pub fn banner(title: &str) {
    println!();
    println!("==== {title} ====");
}

/// The per-campaign one-liner `campaign analyze` and the `repro_all`
/// analysis stage print: trial/cell counts, the pooled error rate with
/// its bootstrap CI, the mean model capacity, and the most sensitive
/// grid axis.
pub fn print_analysis_summary(report: &ichannels_analysis::CampaignAnalysis) {
    print!(
        "{}: {} trial(s), {} cell(s), {} errored",
        report.campaign,
        report.trials,
        report.cells.len(),
        report.errored
    );
    if let (Some(stats), Some(ci)) = (&report.error_rate.stats, &report.error_rate.ci) {
        print!(
            "; error rate {:.4} [{:.4}, {:.4}]",
            stats.mean, ci.lo, ci.hi
        );
    }
    if let Some(capacity) = report.capacity_model_mean_bits_per_symbol {
        print!("; model capacity {capacity:.3} bits/symbol");
    }
    println!();
    if let Some(top) = report.sensitivity.first() {
        println!(
            "  most sensitive axis: {} (error-rate range {:.4} across {} value(s): \
             {} {:.4} .. {} {:.4})",
            top.axis,
            top.range,
            top.values,
            top.min_value,
            top.min_mean,
            top.max_value,
            top.max_mean
        );
    }
}

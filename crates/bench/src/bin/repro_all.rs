//! Runs every figure/table harness in sequence, writing all CSVs to
//! `results/` — the one-shot paper reproduction.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!(
        "IChannels (ISCA 2021) full reproduction{}",
        if quick { " (quick mode)" } else { "" }
    );
    use ichannels_bench::figs;
    figs::fig06::run(quick);
    figs::fig07::run(quick);
    figs::fig08::run(quick);
    figs::fig09::run(quick);
    figs::fig10::run(quick);
    let _ = figs::fig11::run(quick);
    let _ = figs::fig12::run(quick);
    let _ = figs::fig13::run(quick);
    figs::fig14::run(quick);
    let _ = figs::table1::run(quick);
    let _ = figs::table2::run(quick);
    figs::ablation::run(quick);
    println!();
    println!(
        "All artifacts regenerated; CSVs in {}",
        ichannels_bench::results_dir().display()
    );
}

//! Runs every figure/table harness in sequence, then regenerates the
//! catalog campaign artifacts, writing all CSVs to `results/` — the
//! one-shot paper reproduction.
//!
//! ```text
//! repro_all [--quick] [--merged DIR]
//! ```
//!
//! With `--merged DIR`, a campaign whose merged trial stream
//! `DIR/<name>_trials.jsonl` exists (e.g. assembled by
//! `campaign merge` from a sharded CI matrix) is **not** re-simulated:
//! its trial/cell CSVs are re-derived from the stream instead, which
//! is byte-identical to running the campaign here.
//!
//! After the campaigns, an analysis stage runs the
//! `ichannels-analysis` statistics layer over every campaign's trial
//! stream (merged or locally produced) and writes
//! `results/analysis.jsonl` — the same report `campaign analyze`
//! produces, byte for byte (see `docs/METHODOLOGY.md`).

use std::process::ExitCode;

use ichannels_analysis::AnalysisConfig;
use ichannels_lab::campaigns;
use ichannels_lab::report::summarize_rows;
use ichannels_lab::Executor;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut merged_dir: Option<std::path::PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => {}
            "--merged" => match iter.next() {
                Some(dir) => merged_dir = Some(dir.into()),
                None => {
                    eprintln!("usage: repro_all [--quick] [--merged DIR]");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}\nusage: repro_all [--quick] [--merged DIR]");
                return ExitCode::from(2);
            }
        }
    }
    println!(
        "IChannels (ISCA 2021) full reproduction{}",
        if quick { " (quick mode)" } else { "" }
    );
    use ichannels_bench::figs;
    figs::fig06::run(quick);
    figs::fig07::run(quick);
    figs::fig08::run(quick);
    figs::fig09::run(quick);
    figs::fig10::run(quick);
    let _ = figs::fig11::run(quick);
    let _ = figs::fig12::run(quick);
    let _ = figs::fig13::run(quick);
    figs::fig14::run(quick);
    let _ = figs::table1::run(quick);
    let _ = figs::table2::run(quick);
    figs::ablation::run(quick);

    let results_dir = ichannels_bench::results_dir();
    let mut trial_streams: Vec<(&str, std::path::PathBuf)> = Vec::new();
    for (name, grid) in campaigns::catalog(quick) {
        let merged = merged_dir
            .as_ref()
            .map(|dir| dir.join(format!("{name}_trials.jsonl")))
            .filter(|p| p.exists());
        if let Some(stream) = merged {
            trial_streams.push((name, stream.clone()));
            ichannels_bench::banner(&format!(
                "campaign {name}: consuming merged stream {}",
                stream.display()
            ));
            let rows = match campaigns::load_trials(&stream) {
                Ok(rows) => rows,
                Err(e) => {
                    eprintln!("  FAILED to load merged stream: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // The stream must be this grid's run: same trials, same
            // order, same seeds. A count/key/seed mismatch means a
            // stale stream or a quick-vs-full mode mix-up — deriving
            // CSVs from it would silently mislabel the reproduction.
            let scenarios = grid.scenarios();
            let mismatch = if rows.len() != scenarios.len() {
                Some(format!(
                    "{} trial row(s), grid expects {}",
                    rows.len(),
                    scenarios.len()
                ))
            } else {
                rows.iter().zip(&scenarios).find_map(|(row, scenario)| {
                    (row.trial_key() != scenario.label() || row.seed != scenario.seed).then(|| {
                        format!(
                            "trial {} does not match {}",
                            row.trial_key(),
                            scenario.label()
                        )
                    })
                })
            };
            if let Some(why) = mismatch {
                eprintln!(
                    "  FAILED: merged stream {} does not match the {} grid ({why}); \
                     was it produced with a different --quick mode or an older grid?",
                    stream.display(),
                    if quick { "quick" } else { "full" }
                );
                return ExitCode::FAILURE;
            }
            match campaigns::write_trial_csvs(&rows, &summarize_rows(&rows), &results_dir, name) {
                Ok(paths) => {
                    for p in paths {
                        println!("  wrote {}", p.display());
                    }
                }
                Err(e) => {
                    eprintln!("  FAILED to write campaign CSVs: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            ichannels_bench::banner(&format!("campaign {name}"));
            if let Err(e) = campaigns::run_to_dir(
                name,
                &grid,
                Executor::auto(),
                &results_dir,
                Default::default(),
            ) {
                eprintln!("  FAILED to run campaign {name}: {e}");
                return ExitCode::FAILURE;
            }
            trial_streams.push((name, results_dir.join(format!("{name}_trials.jsonl"))));
        }
    }

    ichannels_bench::banner("campaign analysis");
    let mut document = String::new();
    for (name, stream) in &trial_streams {
        let text = match std::fs::read_to_string(stream) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("  FAILED to read {}: {e}", stream.display());
                return ExitCode::FAILURE;
            }
        };
        let analysis =
            match ichannels_analysis::analyze_stream(name, &text, AnalysisConfig::default()) {
                Ok(analysis) => analysis,
                Err((line, e)) => {
                    eprintln!("  FAILED: {}:{line}: {e}", stream.display());
                    return ExitCode::FAILURE;
                }
            };
        let report = analysis.finish();
        ichannels_bench::print_analysis_summary(&report);
        document.push_str(&report.to_jsonl());
    }
    let analysis_path = results_dir.join("analysis.jsonl");
    if let Err(e) = std::fs::write(&analysis_path, &document) {
        eprintln!("  FAILED to write {}: {e}", analysis_path.display());
        return ExitCode::FAILURE;
    }
    println!("  wrote {}", analysis_path.display());

    println!();
    println!(
        "All artifacts regenerated; CSVs in {}",
        ichannels_bench::results_dir().display()
    );
    ExitCode::SUCCESS
}

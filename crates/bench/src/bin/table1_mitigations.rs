//! Regenerates Table 1: mitigation effectiveness and overhead.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let _ = ichannels_bench::figs::table1::run(quick);
}

//! Regenerates Figure 10: multi-level throttling periods.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    ichannels_bench::figs::fig10::run(quick);
}

//! Ablation sweeps: VR slew rate, reset-time, and measurement jitter
//! vs channel capacity/BER.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    ichannels_bench::figs::ablation::run(quick);
}

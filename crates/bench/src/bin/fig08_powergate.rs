//! Regenerates Figure 8: TP distributions and AVX power-gate wake.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    ichannels_bench::figs::fig08::run(quick);
}

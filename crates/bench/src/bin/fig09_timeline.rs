//! Regenerates Figure 9: fine-grained AVX2 throttling timelines.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    ichannels_bench::figs::fig09::run(quick);
}

//! Regenerates Figure 7: Vccmax/Iccmax protection (and, with
//! `--phases`, only the 3-phase timeline).
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    if args.iter().any(|a| a == "--phases") {
        let _ = ichannels_bench::figs::fig07::run_phases(quick);
    } else {
        ichannels_bench::figs::fig07::run(quick);
    }
}

//! Regenerates Figure 14: BER under OS noise and concurrent apps
//! (`--sevenzip` runs only the §6.3 7-zip experiment).
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    if args.iter().any(|a| a == "--sevenzip") {
        let _ = ichannels_bench::figs::fig14::run_sevenzip(quick);
    } else {
        ichannels_bench::figs::fig14::run(quick);
    }
}

//! Regenerates Figure 12: channel throughput vs the state of the art.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let _ = ichannels_bench::figs::fig12::run(quick);
}

//! Regenerates Figure 11: IDQ undelivered-uops distributions.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let _ = ichannels_bench::figs::fig11::run(quick);
}

//! Regenerates Figure 13: receiver TP distribution per level.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let _ = ichannels_bench::figs::fig13::run(quick);
}

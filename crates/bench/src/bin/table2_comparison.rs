//! Regenerates Table 2: comparison with NetSpectre and TurboCC.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let _ = ichannels_bench::figs::table2::run(quick);
}

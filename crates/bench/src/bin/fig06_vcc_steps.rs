//! Regenerates Figure 6: Vcc steps under multi-core AVX2 (and, with
//! `--calculix`, the 454.calculix-like trace).
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    if args.iter().any(|a| a == "--calculix") {
        let _ = ichannels_bench::figs::fig06::run_calculix(quick);
    } else {
        ichannels_bench::figs::fig06::run(quick);
    }
}

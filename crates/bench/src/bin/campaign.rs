//! Runs `ichannels-lab` experiment campaigns from the command line.
//!
//! ```text
//! campaign [--campaign NAME|all] [--threads N] [--quick] [--list]
//! ```
//!
//! Campaigns: `client_vs_server`, `noise_robustness`,
//! `mitigation_coverage`, `modulation_capacity`, or `all`. Results
//! stream to
//! `results/<name>_trials.jsonl` plus per-trial and per-cell CSVs
//! (override the directory with `ICHANNELS_RESULTS`).

use ichannels_lab::{campaigns, Executor};

fn usage() -> ! {
    eprintln!(
        "usage: campaign [--campaign NAME|all] [--threads N] [--quick] [--list]\n\
         campaigns: client_vs_server, noise_robustness, mitigation_coverage, modulation_capacity"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut threads: Option<usize> = None;
    let mut quick = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--campaign" | "-c" => match iter.next() {
                Some(name) => which = name.clone(),
                None => usage(),
            },
            "--threads" | "-j" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => threads = Some(n),
                _ => usage(),
            },
            "--quick" => quick = true,
            "--list" => {
                for (name, grid) in campaigns::catalog(true) {
                    println!("{name} ({} quick scenarios)", grid.scenarios().len());
                }
                return;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    let executor = threads.map_or_else(Executor::auto, Executor::new);
    let catalog = campaigns::catalog(quick);
    let selected: Vec<_> = catalog
        .into_iter()
        .filter(|(name, _)| which == "all" || which == *name)
        .collect();
    if selected.is_empty() {
        eprintln!("no campaign named {which:?}");
        usage();
    }

    let results_dir = ichannels_bench::results_dir();
    for (name, grid) in selected {
        ichannels_bench::banner(&format!(
            "campaign {name}: {} scenarios on {} threads",
            grid.scenarios().len(),
            executor.threads()
        ));
        let report = campaigns::run(name, &grid, executor);
        for cell in &report.cells {
            let ber = cell
                .ber
                .map_or_else(|| "-".to_string(), |s| format!("{:.4}", s.mean));
            let tp = cell
                .throughput
                .map_or_else(|| "-".to_string(), |s| format!("{:.0}", s.mean));
            println!("  {:<64} ber {ber:>8}  tp {tp:>8} b/s", cell.cell);
        }
        match report.write_to(&results_dir) {
            Ok(paths) => {
                for p in paths {
                    println!("  wrote {}", p.display());
                }
            }
            Err(e) => eprintln!("  FAILED to write report: {e}"),
        }
    }
}

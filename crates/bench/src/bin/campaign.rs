//! Runs `ichannels-lab` experiment campaigns from the command line,
//! optionally sharded across processes and resumable after an
//! interruption.
//!
//! ```text
//! campaign [--campaign NAME|all] [--threads N] [--quick] [--list]
//!          [--shard I/N] [--resume]
//! campaign merge <out-dir> <shard_trials.jsonl>...
//! ```
//!
//! Campaigns: `client_vs_server`, `noise_robustness`,
//! `mitigation_coverage`, `modulation_capacity`,
//! `receiver_calibration`, or `all`. Results
//! stream to `results/<name>_trials.jsonl` (plus per-trial and
//! per-cell CSVs for unsharded runs; override the directory with
//! `ICHANNELS_RESULTS`). `--shard I/N` runs the deterministic
//! round-robin slice `I` of `N` and suffixes the stream
//! `<name>_shardIofN_trials.jsonl`; `merge` reassembles N such streams
//! into artifacts byte-identical to an unsharded run. `--resume` scans
//! an existing stream and skips its completed trials.

use std::path::PathBuf;
use std::process::ExitCode;

use ichannels_lab::campaigns::{self, RunConfig};
use ichannels_lab::{Executor, ShardSpec};

fn campaign_names() -> String {
    campaigns::catalog(true)
        .iter()
        .map(|(name, _)| *name)
        .collect::<Vec<_>>()
        .join(", ")
}

fn usage_text() -> String {
    format!(
        "usage: campaign [--campaign NAME|all] [--threads N] [--quick] [--list]\n\
         \x20                [--shard I/N] [--resume]\n\
         \x20      campaign merge <out-dir> <shard_trials.jsonl>...\n\
         campaigns: {}",
        campaign_names()
    )
}

fn usage() -> ExitCode {
    eprintln!("{}", usage_text());
    ExitCode::from(2)
}

fn merge_main(args: &[String]) -> ExitCode {
    let (out_dir, inputs) = match args {
        [] => {
            eprintln!("merge needs an output directory and at least two shard streams");
            return usage();
        }
        [out_dir] => {
            eprintln!(
                "merge {out_dir}: no shard streams given — pass every \
                 <name>_shardIofN_trials.jsonl of one campaign"
            );
            return usage();
        }
        [out_dir, single] => {
            eprintln!(
                "merge {out_dir}: only one shard stream given ({single}) — a lone stream \
                 is either already complete (unsharded) or missing its sibling shards; \
                 pass every shard of the campaign, or copy the file instead of merging"
            );
            return usage();
        }
        [out_dir, inputs @ ..] => (PathBuf::from(out_dir), inputs),
    };
    let inputs: Vec<PathBuf> = inputs.iter().map(PathBuf::from).collect();
    match campaigns::merge_files(&out_dir, &inputs) {
        Ok(merged) => {
            println!(
                "merged {} shard stream(s) of campaign {}: {} trials, {} cells",
                inputs.len(),
                merged.name,
                merged.rows.len(),
                merged.cells.len()
            );
            for p in &merged.paths {
                println!("  wrote {}", p.display());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("merge failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("merge") {
        return merge_main(&args[1..]);
    }
    let mut which = "all".to_string();
    let mut threads: Option<usize> = None;
    let mut quick = false;
    let mut shard = ShardSpec::full();
    let mut resume = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--campaign" | "-c" => match iter.next() {
                Some(name) => which = name.clone(),
                None => return usage(),
            },
            "--threads" | "-j" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => threads = Some(n),
                _ => return usage(),
            },
            "--quick" => quick = true,
            "--shard" => match iter.next() {
                Some(spec) => match ShardSpec::parse(spec) {
                    Ok(parsed) => shard = parsed,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::from(2);
                    }
                },
                None => return usage(),
            },
            "--resume" => resume = true,
            "--list" => {
                for (name, grid) in campaigns::catalog(true) {
                    println!("{name} ({} quick scenarios)", grid.scenarios().len());
                }
                return ExitCode::SUCCESS;
            }
            // Requested help is a success; only bad invocations exit 2.
            "--help" | "-h" => {
                println!("{}", usage_text());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return usage();
            }
        }
    }

    let executor = threads.map_or_else(Executor::auto, Executor::new);
    let catalog = campaigns::catalog(quick);
    let selected: Vec<_> = catalog
        .into_iter()
        .filter(|(name, _)| which == "all" || which == *name)
        .collect();
    if selected.is_empty() {
        eprintln!(
            "unknown campaign {which:?}; valid campaigns: {}, all",
            campaign_names()
        );
        return ExitCode::from(2);
    }

    let results_dir = ichannels_bench::results_dir();
    let config = RunConfig { shard, resume };
    for (name, grid) in selected {
        let scheduled = shard.len_of(grid.scenarios().len());
        ichannels_bench::banner(&format!(
            "campaign {name}{}: {scheduled} scenario(s) on {} threads{}",
            if shard.is_full() {
                String::new()
            } else {
                format!(" [shard {shard}]")
            },
            executor.threads(),
            if resume { ", resuming" } else { "" }
        ));
        match campaigns::run_to_dir(name, &grid, executor, &results_dir, config) {
            Ok(run) => {
                if run.resumed > 0 {
                    println!(
                        "  resumed {} completed trial(s), executed {}",
                        run.resumed, run.executed
                    );
                }
                for cell in &run.cells {
                    let ber = cell
                        .ber
                        .map_or_else(|| "-".to_string(), |s| format!("{:.4}", s.mean));
                    let tp = cell
                        .throughput
                        .map_or_else(|| "-".to_string(), |s| format!("{:.0}", s.mean));
                    println!("  {:<64} ber {ber:>8}  tp {tp:>8} b/s", cell.cell);
                }
                for p in &run.paths {
                    println!("  wrote {}", p.display());
                }
            }
            Err(e) => {
                eprintln!("  FAILED to run campaign {name}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

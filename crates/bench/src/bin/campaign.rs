//! Runs `ichannels-lab` experiment campaigns from the command line,
//! optionally sharded across processes and resumable after an
//! interruption.
//!
//! ```text
//! campaign [--campaign NAME|all] [--threads N] [--quick] [--list]
//!          [--shard I/N] [--resume] [--telemetry DIR] [--progress]
//!          [--fail-on-error]
//! campaign list [--json] [--quick]
//! campaign bench [--quick|--full] [--samples N] [--threads N]
//!                [--out FILE.json] [--check BASELINE.json]
//! campaign merge [--fail-on-error] <out-dir> <shard_trials.jsonl>...
//! campaign fuzz [--seed S] [--cases N] [--tolerance T] [--shard I/N]
//!               [--threads N]
//! campaign fuzz merge <out.jsonl> <shard_findings.jsonl>...
//! campaign profile [--campaign NAME|all] [--quick] [--threads N]
//! campaign telemetry <out.json> <telemetry.json>...
//! campaign analyze [--json] [--seed S] [--resamples B] <dir>
//! ```
//!
//! Campaigns: `client_vs_server`, `noise_robustness`,
//! `mitigation_coverage`, `modulation_capacity`,
//! `receiver_calibration`, or `all`. Results
//! stream to `results/<name>_trials.jsonl` (plus per-trial and
//! per-cell CSVs for unsharded runs; override the directory with
//! `ICHANNELS_RESULTS`). `--shard I/N` runs the deterministic
//! round-robin slice `I` of `N` and suffixes the stream
//! `<name>_shardIofN_trials.jsonl`; `merge` reassembles N such streams
//! into artifacts byte-identical to an unsharded run. `--resume` scans
//! an existing stream and skips its completed trials.
//!
//! `--fail-on-error` (on `run` and `merge`) exits nonzero when any
//! trial recorded a typed `ChannelError`, so CI catches error cells
//! instead of scrolling past the "N trial(s), K errored" line.
//!
//! `fuzz` samples `--cases` randomized scenarios from `--seed` across
//! every lab axis, judges each against the load-line/guard-band
//! envelope model and the engine invariants, shrinks anything flagged
//! to a minimal reproducer, and writes the replayable
//! `results/fuzz_findings.jsonl` (suffixed `_shardIofN` when sharded;
//! `fuzz merge` reassembles shard findings byte-identically).
//!
//! `list --json` prints the machine-readable catalog (name, axes with
//! value labels, cell and scenario counts) so a dispatcher can
//! enumerate work without parsing human output. `bench` times the
//! catalog end-to-end with the calibration memo off vs on and records
//! the perf point as a one-line JSON file (`BENCH_5.json` for the
//! `--quick` catalog, `BENCH_10.json` for the full catalog — `--full`
//! spells the default out); `--check` compares the cache-on wall-clock
//! against a recorded baseline and fails on a >2× regression.
//!
//! `analyze` runs the `ichannels-analysis` statistics layer over every
//! `<name>_trials.jsonl` stream in a directory (an unsharded results
//! dir or a `campaign merge` output dir — lone shard streams are
//! rejected with a pointer to `merge`) and writes the per-cell /
//! per-axis capacity and error-rate report to `<dir>/analysis.jsonl`;
//! the bytes depend only on the trial-row set and the analysis
//! configuration (see `docs/METHODOLOGY.md`). `--json` echoes the
//! report to stdout.
//!
//! Observability (all strictly out-of-band — artifacts are
//! byte-identical with every flag on or off): `--telemetry DIR` runs
//! with the `ichannels-obs` layer enabled and writes the merged
//! snapshot to `DIR/telemetry.json` (suffixed `_shardIofN` when
//! sharded) next to — never inside — the JSONL; `--progress` paints a
//! stderr ticker (cells done/total, ETA, error cells); `profile` runs
//! campaigns with spans enabled and prints the per-phase time
//! breakdown; `telemetry` merges shard snapshots back into one and
//! sanity-checks the schema.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use ichannels::channel::calibration;
use ichannels_analysis::AnalysisConfig;
use ichannels_lab::campaigns::{self, RunConfig};
use ichannels_lab::fuzz::{self, findings};
use ichannels_lab::{Executor, FuzzConfig, Grid, Scenario, ShardSpec};
use ichannels_meter::export::JsonlRow;
use ichannels_meter::parse::{field, parse_jsonl_line, JsonValue};

fn campaign_names() -> String {
    campaigns::catalog(true)
        .iter()
        .map(|(name, _)| *name)
        .collect::<Vec<_>>()
        .join(", ")
}

fn usage_text() -> String {
    format!(
        "usage: campaign [--campaign NAME|all] [--threads N] [--quick] [--list]\n\
         \x20                [--shard I/N] [--resume] [--telemetry DIR] [--progress]\n\
         \x20                [--fail-on-error]\n\
         \x20      campaign list [--json] [--quick]\n\
         \x20      campaign bench [--quick|--full] [--samples N] [--threads N]\n\
         \x20                     [--out FILE.json] [--check BASELINE.json]\n\
         \x20      campaign merge [--fail-on-error] <out-dir> <shard_trials.jsonl>...\n\
         \x20      campaign fuzz [--seed S] [--cases N] [--tolerance T] [--shard I/N]\n\
         \x20                    [--threads N]\n\
         \x20      campaign fuzz merge <out.jsonl> <shard_findings.jsonl>...\n\
         \x20      campaign profile [--campaign NAME|all] [--quick] [--threads N]\n\
         \x20      campaign telemetry <out.json> <telemetry.json>...\n\
         \x20      campaign analyze [--json] [--seed S] [--resamples B] <dir>\n\
         campaigns: {}",
        campaign_names()
    )
}

fn usage() -> ExitCode {
    eprintln!("{}", usage_text());
    ExitCode::from(2)
}

fn merge_main(args: &[String]) -> ExitCode {
    let mut fail_on_error = false;
    let args: Vec<String> = args
        .iter()
        .filter(|a| {
            let flag = a.as_str() == "--fail-on-error";
            fail_on_error |= flag;
            !flag
        })
        .cloned()
        .collect();
    let (out_dir, inputs) = match &args[..] {
        [] => {
            eprintln!("merge needs an output directory and at least two shard streams");
            return usage();
        }
        [out_dir] => {
            eprintln!(
                "merge {out_dir}: no shard streams given — pass every \
                 <name>_shardIofN_trials.jsonl of one campaign"
            );
            return usage();
        }
        [out_dir, single] => {
            eprintln!(
                "merge {out_dir}: only one shard stream given ({single}) — a lone stream \
                 is either already complete (unsharded) or missing its sibling shards; \
                 pass every shard of the campaign, or copy the file instead of merging"
            );
            return usage();
        }
        [out_dir, inputs @ ..] => (PathBuf::from(out_dir), inputs),
    };
    let inputs: Vec<PathBuf> = inputs.iter().map(PathBuf::from).collect();
    match campaigns::merge_files(&out_dir, &inputs) {
        Ok(merged) => {
            println!(
                "merged {} shard stream(s) of campaign {}: {} trials, {} cells",
                inputs.len(),
                merged.name,
                merged.rows.len(),
                merged.cells.len()
            );
            println!("  {}", error_summary(&merged.rows));
            for p in &merged.paths {
                println!("  wrote {}", p.display());
            }
            let errored = errored_count(&merged.rows);
            if fail_on_error && errored > 0 {
                eprintln!("merge failed --fail-on-error: {errored} trial(s) errored");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("merge failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Trials that recorded a typed `ChannelError` — what `--fail-on-error`
/// gates on.
fn errored_count(rows: &[ichannels_lab::TrialRow]) -> usize {
    rows.iter().filter(|r| r.error.is_some()).count()
}

/// The one-line error-cell summary printed after `run` and `merge`
/// so typed `ChannelError`s are visible without grepping JSONL.
fn error_summary(rows: &[ichannels_lab::TrialRow]) -> String {
    format!("{} trial(s), {} errored", rows.len(), errored_count(rows))
}

/// Minimal JSON string escaping for the hand-rendered `list --json`
/// nesting (axis arrays inside campaign objects — beyond the flat
/// objects `JsonlRow` covers).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one catalog entry as a JSON object: name, cell/scenario
/// counts, per-cell shape, and every axis with its value labels.
fn campaign_json(name: &str, grid: &Grid, quick: bool) -> String {
    let scenarios = grid.scenarios();
    let cells: BTreeSet<String> = scenarios.iter().map(Scenario::cell_key).collect();
    let axes = grid
        .axes()
        .iter()
        .map(|a| {
            let values = a
                .values
                .iter()
                .map(|v| format!("\"{}\"", json_escape(v)))
                .collect::<Vec<_>>()
                .join(",");
            format!("\"{}\":[{values}]", a.axis)
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"name\":\"{}\",\"quick\":{quick},\"cells\":{},\"scenarios\":{},\
         \"trials_per_cell\":{},\"payload_symbols\":{},\"axes\":{{{axes}}}}}",
        json_escape(name),
        cells.len(),
        scenarios.len(),
        grid.trials_per_cell(),
        grid.payload_symbols_per_trial(),
    )
}

fn list_main(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut quick = false;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            "--quick" => quick = true,
            other => {
                eprintln!("unknown list argument: {other}");
                return usage();
            }
        }
    }
    let catalog = campaigns::catalog(quick);
    if json {
        let entries: Vec<String> = catalog
            .iter()
            .map(|(name, grid)| campaign_json(name, grid, quick))
            .collect();
        println!("[\n{}\n]", entries.join(",\n"));
    } else {
        for (name, grid) in catalog {
            println!(
                "{name} ({} {} scenario(s), {} trial(s)/cell)",
                grid.scenarios().len(),
                if quick { "quick" } else { "full" },
                grid.trials_per_cell()
            );
        }
    }
    ExitCode::SUCCESS
}

/// One timed end-to-end pass over the whole catalog.
fn run_catalog(sets: &[(&'static str, Vec<Scenario>)], executor: Executor) -> Duration {
    let start = Instant::now();
    for (_, scenarios) in sets {
        criterion::black_box(executor.run(scenarios));
    }
    start.elapsed()
}

fn stats_fields(row: JsonlRow, prefix: &str, stats: &criterion::Stats) -> JsonlRow {
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    row.num(&format!("{prefix}_mean_ms"), ms(stats.mean))
        .num(&format!("{prefix}_median_ms"), ms(stats.median))
        .num(&format!("{prefix}_stddev_ms"), ms(stats.std_dev))
        .num(&format!("{prefix}_p95_ms"), ms(stats.p95))
        .num(&format!("{prefix}_best_ms"), ms(stats.best))
}

fn bench_main(args: &[String]) -> ExitCode {
    let mut quick = false;
    let mut full = false;
    let mut samples = 3usize;
    let mut threads: Option<usize> = None;
    let mut out: Option<PathBuf> = None;
    let mut check: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--full" => full = true,
            "--samples" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => samples = n,
                _ => return usage(),
            },
            "--threads" | "-j" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => threads = Some(n),
                _ => return usage(),
            },
            "--out" => match iter.next() {
                Some(path) => out = Some(PathBuf::from(path)),
                None => return usage(),
            },
            "--check" => match iter.next() {
                Some(path) => check = Some(PathBuf::from(path)),
                None => return usage(),
            },
            other => {
                eprintln!("unknown bench argument: {other}");
                return usage();
            }
        }
    }
    if quick && full {
        eprintln!("--quick and --full are mutually exclusive");
        return usage();
    }
    // The full catalog is already the default; `--full` spells it out
    // (and pins the BENCH_10.json default below). Each catalog records
    // its own perf point so the two baselines never overwrite each
    // other.
    let out = out.unwrap_or_else(|| {
        PathBuf::from(if quick {
            "BENCH_5.json"
        } else {
            "BENCH_10.json"
        })
    });

    // Read the baseline up front so `--out` may safely overwrite the
    // same file the baseline was read from.
    let baseline = match &check {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => {
                let line = text.lines().next().unwrap_or_default();
                let fields = parse_jsonl_line(line).unwrap_or_default();
                let Some(value) = field(&fields, "cache_on_median_ms")
                    .and_then(JsonValue::as_f64_or_nan)
                    .filter(|v| v.is_finite() && *v > 0.0)
                else {
                    eprintln!(
                        "{}: no finite cache_on_median_ms field — not a campaign bench record?",
                        path.display()
                    );
                    return ExitCode::from(2);
                };
                let threads = field(&fields, "threads").and_then(JsonValue::as_u64);
                Some((value, threads))
            }
            Err(e) => {
                eprintln!("cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
        None => None,
    };

    let executor = threads.map_or_else(Executor::auto, Executor::new);
    let sets: Vec<(&'static str, Vec<Scenario>)> = campaigns::catalog(quick)
        .into_iter()
        .map(|(name, grid)| (name, grid.scenarios()))
        .collect();
    let scenario_total: usize = sets.iter().map(|(_, s)| s.len()).sum();
    ichannels_bench::banner(&format!(
        "campaign bench: {} campaign(s), {scenario_total} scenario(s), {samples} sample(s) \
         per arm on {} threads",
        sets.len(),
        executor.threads()
    ));

    // Cache-off arm: every trial re-simulates its four training runs.
    // An untimed warm-up pass precedes each arm so cold-start costs
    // (page cache, allocator growth) never skew either side.
    calibration::set_memo_enabled(false);
    calibration::reset_memo();
    run_catalog(&sets, executor);
    calibration::reset_memo();
    let off_samples: Vec<Duration> = (0..samples).map(|_| run_catalog(&sets, executor)).collect();
    let trainings_off = calibration::memo_stats().misses / samples as u64;

    // Cache-on arm: the warm-up run trains every distinct
    // configuration, then the timed samples decode from the memo.
    calibration::set_memo_enabled(true);
    calibration::reset_memo();
    run_catalog(&sets, executor);
    let warmup_trainings = calibration::memo_stats().misses;
    let on_samples: Vec<Duration> = (0..samples).map(|_| run_catalog(&sets, executor)).collect();
    let on_stats_raw = calibration::memo_stats();
    let trainings_on = (on_stats_raw.misses - warmup_trainings) / samples as u64;

    let off = criterion::summarize_samples(&off_samples);
    let on = criterion::summarize_samples(&on_samples);
    // Medians: one preempted sample in a noisy container must not
    // define the recorded perf point.
    let speedup = off.median.as_secs_f64() / on.median.as_secs_f64();
    // lint:allow(D004): human-facing stdout progress only; the
    // recorded perf point below renders durations as integer ns.
    println!(
        "  cache-off: median {:?}, mean {:?}, p95 {:?} ({trainings_off} trainings/run)",
        off.median, off.mean, off.p95
    );
    // lint:allow(D004): human-facing stdout progress only; the
    // recorded perf point below renders durations as integer ns.
    println!(
        "  cache-on:  median {:?}, mean {:?}, p95 {:?} ({warmup_trainings} warm-up trainings, \
         {trainings_on} trainings/run)",
        on.median, on.mean, on.p95
    );
    println!("  speedup: {speedup:.2}x (median over {samples} samples)");

    let mut row = JsonlRow::new()
        .str("bench", "campaign_catalog_end_to_end")
        .bool("quick", quick)
        .int("samples", samples as u64)
        .int("threads", executor.threads() as u64)
        .int("campaigns", sets.len() as u64)
        .int("scenarios", scenario_total as u64);
    row = stats_fields(row, "cache_off", &off);
    row = stats_fields(row, "cache_on", &on);
    row = row
        .num("speedup", speedup)
        .int("calib_trainings_per_run_cache_off", trainings_off)
        .int("calib_trainings_warmup", warmup_trainings)
        .int("calib_trainings_per_run_cache_on", trainings_on);
    if let Some(parent) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("cannot create {}: {e}", parent.display());
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = std::fs::write(&out, format!("{}\n", row.to_json())) {
        eprintln!("cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!("  wrote {}", out.display());

    if let Some((baseline_ms, baseline_threads)) = baseline {
        let baseline_path = check.as_ref().expect("baseline implies --check");
        if let Some(recorded) = baseline_threads {
            if recorded != executor.threads() as u64 {
                eprintln!(
                    "  WARNING: baseline {} was recorded on {recorded} thread(s) but this \
                     run used {} — the 2x gate is only meaningful at matched thread counts \
                     (pass --threads {recorded})",
                    baseline_path.display(),
                    executor.threads()
                );
            }
        }
        let measured = on.median.as_secs_f64() * 1e3;
        let ratio = measured / baseline_ms;
        println!(
            "  regression check: {measured:.1} ms vs recorded {baseline_ms:.1} ms ({ratio:.2}x)"
        );
        if ratio > 2.0 {
            eprintln!(
                "  FAILED: {} catalog regressed {ratio:.2}x over the recorded baseline \
                 (limit 2x)",
                if quick { "quick" } else { "full" }
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// The five trial phases `campaign profile` breaks a run into, in
/// pipeline order. Span histograms record nanoseconds under these
/// exact names.
const TRIAL_PHASES: [&str; 5] = [
    "trial.resolve",
    "trial.config",
    "trial.calibration",
    "trial.transmit",
    "trial.metrics",
];

/// `campaign profile [--campaign NAME|all] [--quick] [--threads N]`:
/// runs each selected campaign with spans enabled and prints the
/// per-phase time breakdown. Defaults to one thread so the phase sums
/// are directly comparable to wall time (on N threads the busy sums
/// exceed one wall clock).
fn profile_main(args: &[String]) -> ExitCode {
    let mut which = "all".to_string();
    let mut quick = false;
    let mut threads = 1usize;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--campaign" | "-c" => match iter.next() {
                Some(name) => which = name.clone(),
                None => return usage(),
            },
            "--quick" => quick = true,
            "--threads" | "-j" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => threads = n,
                _ => return usage(),
            },
            other => {
                eprintln!("unknown profile argument: {other}");
                return usage();
            }
        }
    }
    let selected: Vec<_> = campaigns::catalog(quick)
        .into_iter()
        .filter(|(name, _)| which == "all" || which == *name)
        .collect();
    if selected.is_empty() {
        eprintln!(
            "unknown campaign {which:?}; valid campaigns: {}, all",
            campaign_names()
        );
        return ExitCode::from(2);
    }

    let executor = Executor::new(threads);
    for (name, grid) in selected {
        let scenarios = grid.scenarios();
        ichannels_bench::banner(&format!(
            "campaign profile {name}: {} scenario(s) on {threads} thread(s)",
            scenarios.len()
        ));
        ichannels_obs::reset();
        ichannels_obs::set_enabled(true);
        let started = Instant::now();
        let records = executor.run(&scenarios);
        let wall = started.elapsed();
        ichannels_obs::set_enabled(false);
        let snap = ichannels_obs::global().snapshot();

        let wall_ns = wall.as_nanos() as f64;
        println!(
            "  {:<18} {:>12} {:>7} {:>8} {:>12}",
            "phase", "total ms", "share", "samples", "mean µs"
        );
        let mut phase_sum_ns = 0u64;
        for phase in TRIAL_PHASES {
            let h = snap.histogram(phase);
            phase_sum_ns += h.sum;
            println!(
                "  {:<18} {:>12.1} {:>6.1}% {:>8} {:>12.1}",
                phase.trim_start_matches("trial."),
                h.sum as f64 / 1e6,
                h.sum as f64 / wall_ns * 100.0,
                h.count,
                h.mean() / 1e3,
            );
        }
        let total = snap.histogram("trial.total");
        println!(
            "  {:<18} {:>12.1} {:>6.1}% {:>8} {:>12.1}",
            "(trial total)",
            total.sum as f64 / 1e6,
            total.sum as f64 / wall_ns * 100.0,
            total.count,
            total.mean() / 1e3,
        );
        println!(
            "  phases sum to {:.1} ms = {:.1}% of {:.1} ms wall",
            phase_sum_ns as f64 / 1e6,
            phase_sum_ns as f64 / wall_ns * 100.0,
            wall_ns / 1e6,
        );
        let step = snap.histogram("soc.step_ns");
        println!(
            "  soc stepping: {:.1} ms over {} rearm(s), {} slot(s) simulated",
            step.sum as f64 / 1e6,
            snap.counter("soc.rearms"),
            snap.counter("soc.slots_simulated"),
        );
        println!(
            "  calibration memo: {} request(s) = {} hit(s) + {} miss(es)",
            snap.counter("calibration.requests"),
            snap.counter("calibration.memo_hits"),
            snap.counter("calibration.memo_misses"),
        );
        let errored = records.iter().filter(|r| r.error.is_some()).count();
        println!("  {} trial(s), {errored} errored", records.len());
    }
    ExitCode::SUCCESS
}

/// `campaign telemetry <out.json> <telemetry.json>...`: merges shard
/// telemetry snapshots back into one (associatively — any grouping
/// gives the same bytes) and sanity-checks the result: the schema tag,
/// a non-zero trial count, and the memo invariant
/// `calibration.requests == memo_hits + memo_misses`. The CI merge job
/// runs this over the shard artifacts.
fn telemetry_main(args: &[String]) -> ExitCode {
    let [out, inputs @ ..] = args else {
        eprintln!("telemetry needs an output path and at least one snapshot");
        return usage();
    };
    if inputs.is_empty() {
        eprintln!("telemetry {out}: no input snapshots given");
        return usage();
    }
    let mut merged = ichannels_obs::MetricsSnapshot::new();
    for input in inputs {
        let text = match std::fs::read_to_string(input) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read {input}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match ichannels_obs::MetricsSnapshot::parse(&text) {
            Ok(snap) => merged.merge(&snap),
            Err(e) => {
                eprintln!("{input}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let trials = merged.counter("trial.runs");
    let requests = merged.counter("calibration.requests");
    let hits = merged.counter("calibration.memo_hits");
    let misses = merged.counter("calibration.memo_misses");
    if trials == 0 {
        eprintln!("sanity check failed: merged snapshot records zero trials (trial.runs)");
        return ExitCode::FAILURE;
    }
    if requests != hits + misses {
        eprintln!(
            "sanity check failed: calibration.requests = {requests} but memo_hits + \
             memo_misses = {hits} + {misses} = {}",
            hits + misses
        );
        return ExitCode::FAILURE;
    }
    let out = PathBuf::from(out);
    if let Some(parent) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("cannot create {}: {e}", parent.display());
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = std::fs::write(&out, format!("{}\n", merged.to_json())) {
        eprintln!("cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!(
        "merged {} snapshot(s): {trials} trial(s), {requests} calibration request(s) \
         ({hits} memo hit(s), {misses} miss(es)), {} error(s)",
        inputs.len(),
        merged.counter("trial.errors"),
    );
    println!("  wrote {}", out.display());
    ExitCode::SUCCESS
}

fn analyze_main(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut config = AnalysisConfig::default();
    let mut dir: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--seed" => match iter.next().and_then(|v| parse_seed(v)) {
                Some(seed) => config.seed = seed,
                None => return usage(),
            },
            "--resamples" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.resamples = n,
                None => return usage(),
            },
            other if dir.is_none() && !other.starts_with('-') => dir = Some(PathBuf::from(other)),
            other => {
                eprintln!("unknown analyze argument: {other}");
                return usage();
            }
        }
    }
    let Some(dir) = dir else {
        eprintln!("analyze needs a directory of <name>_trials.jsonl streams");
        return usage();
    };

    // Every `<name>_trials.jsonl` in the directory, in name order, so
    // the report's campaign order (and its bytes) never depends on
    // directory enumeration order.
    let mut streams: Vec<(String, PathBuf)> = match std::fs::read_dir(&dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .filter_map(|entry| {
                let name = entry.file_name().into_string().ok()?;
                let campaign = name.strip_suffix("_trials.jsonl")?;
                Some((campaign.to_string(), entry.path()))
            })
            .collect(),
        Err(e) => {
            eprintln!("cannot read {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    streams.sort();
    if streams.is_empty() {
        eprintln!(
            "analyze {}: no <name>_trials.jsonl streams found — point it at an \
             unsharded results directory or a `campaign merge` output directory",
            dir.display()
        );
        return ExitCode::FAILURE;
    }

    let mut document = String::new();
    for (campaign, path) in &streams {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let analysis = match ichannels_analysis::analyze_stream(campaign, &text, config) {
            Ok(analysis) => analysis,
            Err((line, e)) => {
                eprintln!("{}:{line}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let report = analysis.finish();
        ichannels_bench::print_analysis_summary(&report);
        document.push_str(&report.to_jsonl());
    }

    let out = dir.join("analysis.jsonl");
    if let Err(e) = std::fs::write(&out, &document) {
        eprintln!("cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    if json {
        print!("{document}");
    }
    println!("wrote {}", out.display());
    ExitCode::SUCCESS
}

/// Parses a seed argument (`fuzz --seed`, `analyze --seed`): decimal
/// or `0x`-prefixed hex.
fn parse_seed(s: &str) -> Option<u64> {
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// `campaign fuzz merge <out.jsonl> <shard_findings.jsonl>...`:
/// reassembles shard findings into the unsharded report. Findings are
/// pure in their case index, so sorting by case re-interleaves the
/// shards into exactly the bytes an unsharded run writes.
fn fuzz_merge_main(args: &[String]) -> ExitCode {
    let [out, inputs @ ..] = args else {
        eprintln!("fuzz merge needs an output path and at least one shard findings file");
        return usage();
    };
    if inputs.is_empty() {
        eprintln!("fuzz merge {out}: no shard findings given");
        return usage();
    }
    let mut all = Vec::new();
    for input in inputs {
        let text = match std::fs::read_to_string(input) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read {input}: {e}");
                return ExitCode::FAILURE;
            }
        };
        for (n, line) in text.lines().enumerate() {
            match findings::Finding::parse(line) {
                Ok(f) => all.push(f),
                Err(e) => {
                    eprintln!("{input}:{}: {e}", n + 1);
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    let merged = findings::merge_findings(all);
    let out = PathBuf::from(out);
    if let Some(parent) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("cannot create {}: {e}", parent.display());
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = std::fs::write(&out, findings::findings_to_jsonl(&merged)) {
        eprintln!("cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!(
        "merged {} shard findings file(s): {} finding(s)",
        inputs.len(),
        merged.len()
    );
    println!("  wrote {}", out.display());
    ExitCode::SUCCESS
}

/// `campaign fuzz [--seed S] [--cases N] [--tolerance T] [--shard I/N]
/// [--threads N]`: the randomized-scenario anomaly hunter. Samples,
/// judges, and shrinks on the worker pool, then writes the replayable
/// findings report under the results directory. Exit code reflects the
/// run, not the findings — a finding is a report row to triage into a
/// pinned test, not a CI failure by itself.
fn fuzz_main(args: &[String]) -> ExitCode {
    if args.first().map(String::as_str) == Some("merge") {
        return fuzz_merge_main(&args[1..]);
    }
    let mut config = FuzzConfig::default();
    let mut threads: Option<usize> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seed" => match iter.next().map(String::as_str).and_then(parse_seed) {
                Some(seed) => config.seed = seed,
                None => return usage(),
            },
            "--cases" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.cases = n,
                None => return usage(),
            },
            "--tolerance" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(t) if (0.0..=1.0).contains(&t) => config.tolerance = t,
                _ => return usage(),
            },
            "--shard" => match iter.next() {
                Some(spec) => match ShardSpec::parse(spec) {
                    Ok(parsed) => config.shard = parsed,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::from(2);
                    }
                },
                None => return usage(),
            },
            "--threads" | "-j" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => threads = Some(n),
                _ => return usage(),
            },
            other => {
                eprintln!("unknown fuzz argument: {other}");
                return usage();
            }
        }
    }
    let executor = threads.map_or_else(Executor::auto, Executor::new);
    ichannels_bench::banner(&format!(
        "campaign fuzz: {} case(s), seed {:#x}{} on {} threads",
        config.cases,
        config.seed,
        if config.shard.is_full() {
            String::new()
        } else {
            format!(" [shard {}]", config.shard)
        },
        executor.threads()
    ));
    let report = fuzz::run(&config, &executor);
    for f in &report.findings {
        println!(
            "  case {:>5}: {} at {} (measured {:.4}, allowed {:.4}; shrunk from {})",
            f.case, f.kind, f.shrunk_cell, f.shrunk_measured, f.shrunk_allowed, f.cell
        );
    }
    println!(
        "  {} case(s) judged, {} finding(s)",
        report.cases_run,
        report.findings.len()
    );
    let results_dir = ichannels_bench::results_dir();
    if let Err(e) = std::fs::create_dir_all(&results_dir) {
        eprintln!("cannot create {}: {e}", results_dir.display());
        return ExitCode::FAILURE;
    }
    let path = results_dir.join(format!("{}.jsonl", config.shard.file_stem("fuzz_findings")));
    if let Err(e) = std::fs::write(&path, report.to_jsonl()) {
        eprintln!("cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("  wrote {}", path.display());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("merge") => return merge_main(&args[1..]),
        Some("fuzz") => return fuzz_main(&args[1..]),
        Some("list") => return list_main(&args[1..]),
        Some("bench") => return bench_main(&args[1..]),
        Some("profile") => return profile_main(&args[1..]),
        Some("telemetry") => return telemetry_main(&args[1..]),
        Some("analyze") => return analyze_main(&args[1..]),
        _ => {}
    }
    let mut which = "all".to_string();
    let mut threads: Option<usize> = None;
    let mut quick = false;
    let mut shard = ShardSpec::full();
    let mut resume = false;
    let mut progress = false;
    let mut fail_on_error = false;
    let mut telemetry: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--campaign" | "-c" => match iter.next() {
                Some(name) => which = name.clone(),
                None => return usage(),
            },
            "--threads" | "-j" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => threads = Some(n),
                _ => return usage(),
            },
            "--quick" => quick = true,
            "--shard" => match iter.next() {
                Some(spec) => match ShardSpec::parse(spec) {
                    Ok(parsed) => shard = parsed,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::from(2);
                    }
                },
                None => return usage(),
            },
            "--resume" => resume = true,
            "--progress" => progress = true,
            "--fail-on-error" => fail_on_error = true,
            "--telemetry" => match iter.next() {
                Some(dir) => telemetry = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--list" => {
                for (name, grid) in campaigns::catalog(true) {
                    println!("{name} ({} quick scenarios)", grid.scenarios().len());
                }
                return ExitCode::SUCCESS;
            }
            // Requested help is a success; only bad invocations exit 2.
            "--help" | "-h" => {
                println!("{}", usage_text());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return usage();
            }
        }
    }

    let executor = threads.map_or_else(Executor::auto, Executor::new);
    let catalog = campaigns::catalog(quick);
    let selected: Vec<_> = catalog
        .into_iter()
        .filter(|(name, _)| which == "all" || which == *name)
        .collect();
    if selected.is_empty() {
        eprintln!(
            "unknown campaign {which:?}; valid campaigns: {}, all",
            campaign_names()
        );
        return ExitCode::from(2);
    }

    if telemetry.is_some() {
        ichannels_obs::set_enabled(true);
    }
    let results_dir = ichannels_bench::results_dir();
    let config = RunConfig {
        shard,
        resume,
        progress,
    };
    let mut total_errored = 0usize;
    for (name, grid) in selected {
        let scheduled = shard.len_of(grid.scenarios().len());
        ichannels_bench::banner(&format!(
            "campaign {name}{}: {scheduled} scenario(s) on {} threads{}",
            if shard.is_full() {
                String::new()
            } else {
                format!(" [shard {shard}]")
            },
            executor.threads(),
            if resume { ", resuming" } else { "" }
        ));
        match campaigns::run_to_dir(name, &grid, executor, &results_dir, config) {
            Ok(run) => {
                if run.resumed > 0 {
                    println!(
                        "  resumed {} completed trial(s), executed {}",
                        run.resumed, run.executed
                    );
                }
                for cell in &run.cells {
                    let ber = cell
                        .ber
                        .map_or_else(|| "-".to_string(), |s| format!("{:.4}", s.mean));
                    let tp = cell
                        .throughput
                        .map_or_else(|| "-".to_string(), |s| format!("{:.0}", s.mean));
                    println!("  {:<64} ber {ber:>8}  tp {tp:>8} b/s", cell.cell);
                }
                println!("  {}", error_summary(&run.rows));
                total_errored += errored_count(&run.rows);
                for p in &run.paths {
                    println!("  wrote {}", p.display());
                }
            }
            Err(e) => {
                eprintln!("  FAILED to run campaign {name}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(dir) = telemetry {
        // One snapshot per invocation, covering every selected
        // campaign, written next to the JSONL — never inside it.
        ichannels_obs::set_enabled(false);
        let snap = ichannels_obs::global().snapshot();
        let path = dir.join(format!("{}.json", shard.file_stem("telemetry")));
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("cannot create {}: {e}", parent.display());
                return ExitCode::FAILURE;
            }
        }
        if let Err(e) = std::fs::write(&path, format!("{}\n", snap.to_json())) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("  wrote {}", path.display());
    }
    if fail_on_error && total_errored > 0 {
        eprintln!("run failed --fail-on-error: {total_errored} trial(s) errored");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

//! CLI contract tests of the `campaign` binary: argument validation
//! exits nonzero with actionable messages, and the sharded
//! multi-process workflow (`--shard` runs + `merge`) reproduces the
//! unsharded artifacts byte for byte.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn campaign_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_campaign"))
}

fn run_in(results_dir: &Path, args: &[&str]) -> Output {
    campaign_bin()
        .args(args)
        .env("ICHANNELS_RESULTS", results_dir)
        .output()
        .expect("campaign binary runs")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ichannels_campaign_cli_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn unknown_campaign_exits_nonzero_with_the_catalog() {
    let dir = temp_dir("unknown");
    let out = run_in(&dir, &["--quick", "--campaign", "no_such_campaign"]);
    assert!(!out.status.success());
    let err = stderr_of(&out);
    assert!(err.contains("unknown campaign"), "{err}");
    for name in [
        "client_vs_server",
        "noise_robustness",
        "mitigation_coverage",
        "modulation_capacity",
        "receiver_calibration",
    ] {
        assert!(
            err.contains(name),
            "catalog name {name} missing from: {err}"
        );
    }
}

#[test]
fn malformed_shard_specs_are_rejected() {
    let dir = temp_dir("badshard");
    for bad in ["0/0", "3/2", "2/2", "x/3", "1", "1/2/3"] {
        let out = run_in(&dir, &["--quick", "--shard", bad]);
        assert!(!out.status.success(), "--shard {bad} accepted");
        let err = stderr_of(&out);
        assert!(err.contains("invalid shard spec"), "--shard {bad}: {err}");
    }
    assert!(!dir.exists(), "rejected runs must not write results");
}

#[test]
fn sharded_processes_merge_byte_identical_to_unsharded() {
    let full_dir = temp_dir("merge_full");
    let shard_dir = temp_dir("merge_shards");
    let merged_dir = temp_dir("merge_out");
    let campaign = "noise_robustness";

    let full = run_in(&full_dir, &["--quick", "--campaign", campaign]);
    assert!(full.status.success(), "{}", stderr_of(&full));

    // Three separate OS processes, one per shard.
    let mut shard_paths = Vec::new();
    for i in 0..3 {
        let spec = format!("{i}/3");
        let out = run_in(
            &shard_dir,
            &["--quick", "--campaign", campaign, "--shard", &spec],
        );
        assert!(out.status.success(), "shard {spec}: {}", stderr_of(&out));
        shard_paths.push(shard_dir.join(format!("{campaign}_shard{i}of3_trials.jsonl")));
    }

    let mut merge = campaign_bin();
    merge.arg("merge").arg(&merged_dir).args(&shard_paths);
    let out = merge.output().expect("merge runs");
    assert!(out.status.success(), "merge: {}", stderr_of(&out));

    for artifact in [
        format!("{campaign}_trials.jsonl"),
        format!("{campaign}_trials.csv"),
        format!("{campaign}_cells.csv"),
    ] {
        assert_eq!(
            std::fs::read(full_dir.join(&artifact)).expect("unsharded artifact"),
            std::fs::read(merged_dir.join(&artifact)).expect("merged artifact"),
            "{artifact} diverges between unsharded and merged"
        );
    }

    // Merging a wrong subset fails loudly.
    let mut partial = campaign_bin();
    partial
        .arg("merge")
        .arg(&merged_dir)
        .args(&shard_paths[..2]);
    let out = partial.output().expect("merge runs");
    assert!(!out.status.success(), "partial merge must fail");
    assert!(
        stderr_of(&out).contains("merge failed"),
        "{}",
        stderr_of(&out)
    );

    for dir in [&full_dir, &shard_dir, &merged_dir] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn merge_without_enough_streams_fails_actionably() {
    let dir = temp_dir("merge_contract");
    std::fs::create_dir_all(&dir).expect("dir created");
    let out_dir = dir.join("out");

    // Zero inputs after the output directory.
    let out = campaign_bin()
        .arg("merge")
        .arg(&out_dir)
        .output()
        .expect("merge runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr_of(&out).contains("no shard streams given"),
        "{}",
        stderr_of(&out)
    );

    // A single input: a lone stream is never a mergeable campaign.
    let lone = dir.join("demo_trials.jsonl");
    std::fs::write(&lone, "{\"cell\":\"x\"}\n").expect("lone stream written");
    let out = campaign_bin()
        .arg("merge")
        .arg(&out_dir)
        .arg(&lone)
        .output()
        .expect("merge runs");
    assert_eq!(out.status.code(), Some(2));
    let err = stderr_of(&out);
    assert!(err.contains("only one shard stream given"), "{err}");
    assert!(err.contains("copy the file"), "{err}");

    // Neither rejected invocation may leave artifacts behind.
    assert!(
        !out_dir.exists(),
        "rejected merges must not write artifacts"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_completes_a_truncated_stream_identically() {
    let dir = temp_dir("resume");
    let campaign = "noise_robustness";
    let out = run_in(&dir, &["--quick", "--campaign", campaign]);
    assert!(out.status.success(), "{}", stderr_of(&out));
    let stream = dir.join(format!("{campaign}_trials.jsonl"));
    let pristine = std::fs::read_to_string(&stream).expect("stream readable");

    // Tear the stream mid-line, as an interrupted process would.
    let cut = pristine.len() * 2 / 5;
    std::fs::write(&stream, &pristine[..cut]).expect("torn stream written");

    let out = run_in(&dir, &["--quick", "--campaign", campaign, "--resume"]);
    assert!(out.status.success(), "{}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("resumed"), "{stdout}");
    assert_eq!(
        std::fs::read_to_string(&stream).expect("stream readable"),
        pristine,
        "resumed stream must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn list_json_is_machine_readable() {
    let dir = temp_dir("list_json");
    let out = run_in(&dir, &["list", "--json", "--quick"]);
    assert!(out.status.success(), "{}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let trimmed = stdout.trim();
    assert!(
        trimmed.starts_with('[') && trimmed.ends_with(']'),
        "not a JSON array: {trimmed}"
    );
    // One object per catalog campaign, each parseable as a flat-ish
    // JSON line once the array framing and separators are stripped.
    let entries: Vec<&str> = trimmed
        .lines()
        .filter(|l| l.trim_start().starts_with('{'))
        .collect();
    assert_eq!(entries.len(), 5, "{trimmed}");
    for entry in entries {
        for key in [
            "\"name\"",
            "\"cells\"",
            "\"scenarios\"",
            "\"axes\"",
            "\"trials_per_cell\"",
        ] {
            assert!(entry.contains(key), "{key} missing from {entry}");
        }
    }
    assert!(
        trimmed.contains("\"name\":\"client_vs_server\""),
        "{trimmed}"
    );
    assert!(trimmed.contains("\"platforms\":["), "{trimmed}");
    // An unknown flag is rejected, not ignored.
    let out = run_in(&dir, &["list", "--jsn"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn telemetry_flag_writes_a_snapshot_next_to_the_jsonl() {
    let dir = temp_dir("telemetry_run");
    let campaign = "noise_robustness";

    // A plain run first: the telemetry flag must not move its bytes.
    let plain = run_in(&dir, &["--quick", "--campaign", campaign]);
    assert!(plain.status.success(), "{}", stderr_of(&plain));
    let stream = dir.join(format!("{campaign}_trials.jsonl"));
    let pristine = std::fs::read(&stream).expect("stream readable");

    let out = run_in(
        &dir,
        &[
            "--quick",
            "--campaign",
            campaign,
            "--telemetry",
            dir.to_str().unwrap(),
            "--progress",
        ],
    );
    assert!(out.status.success(), "{}", stderr_of(&out));
    assert_eq!(
        std::fs::read(&stream).expect("stream readable"),
        pristine,
        "--telemetry/--progress moved trial bytes"
    );
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("trial(s), 0 errored"), "{stdout}");
    // The ticker paints cells/ETA on stderr only.
    let err = stderr_of(&out);
    assert!(err.contains("cells"), "{err}");
    assert!(err.contains("ETA"), "{err}");

    let snapshot_path = dir.join("telemetry.json");
    let text = std::fs::read_to_string(&snapshot_path).expect("telemetry.json written");
    assert_eq!(text.lines().count(), 1, "one-line snapshot: {text}");
    assert!(
        text.contains("\"schema\":\"ichannels-telemetry-v1\""),
        "{text}"
    );
    for key in [
        "\"trial.runs\"",
        "\"calibration.requests\"",
        "\"trial.transmit\"",
        "\"soc.step_ns\"",
    ] {
        assert!(text.contains(key), "{key} missing from {text}");
    }
    assert!(
        !String::from_utf8_lossy(&pristine).contains("schema"),
        "telemetry must never land inside the JSONL"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_telemetry_snapshots_merge_and_sanity_check() {
    let dir = temp_dir("telemetry_shards");
    let campaign = "noise_robustness";
    let mut snapshot_paths = Vec::new();
    for i in 0..2 {
        let spec = format!("{i}/2");
        let out = run_in(
            &dir,
            &[
                "--quick",
                "--campaign",
                campaign,
                "--shard",
                &spec,
                "--telemetry",
                dir.to_str().unwrap(),
            ],
        );
        assert!(out.status.success(), "shard {spec}: {}", stderr_of(&out));
        snapshot_paths.push(dir.join(format!("telemetry_shard{i}of2.json")));
    }
    for p in &snapshot_paths {
        assert!(p.exists(), "{} missing", p.display());
    }

    let merged_path = dir.join("merged_telemetry.json");
    let mut merge = campaign_bin();
    merge
        .arg("telemetry")
        .arg(&merged_path)
        .args(&snapshot_paths);
    let out = merge.output().expect("telemetry merge runs");
    assert!(out.status.success(), "{}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("merged 2 snapshot(s)"), "{stdout}");
    assert!(std::fs::read_to_string(&merged_path)
        .expect("merged snapshot written")
        .contains("\"schema\":\"ichannels-telemetry-v1\""),);

    // The sanity checks fail loudly: an empty snapshot has no trials…
    let empty = dir.join("empty.json");
    std::fs::write(
        &empty,
        "{\"schema\":\"ichannels-telemetry-v1\",\"counters\":{},\"gauges\":{},\"histograms\":{}}\n",
    )
    .expect("empty snapshot written");
    let out = campaign_bin()
        .arg("telemetry")
        .arg(dir.join("nope.json"))
        .arg(&empty)
        .output()
        .expect("telemetry runs");
    assert!(!out.status.success(), "zero-trial snapshot must fail");
    assert!(
        stderr_of(&out).contains("zero trials"),
        "{}",
        stderr_of(&out)
    );
    // …and garbage is rejected as not-a-snapshot.
    let junk = dir.join("junk.json");
    std::fs::write(&junk, "{\"schema\":\"something-else\"}\n").expect("junk written");
    let out = campaign_bin()
        .arg("telemetry")
        .arg(dir.join("nope.json"))
        .arg(&junk)
        .output()
        .expect("telemetry runs");
    assert!(!out.status.success(), "wrong schema must fail");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn profile_prints_a_phase_breakdown_covering_the_wall_clock() {
    let dir = temp_dir("profile");
    // The acceptance bar: phase times sum to ≥90% of wall time. Wall
    // time includes involuntary descheduling between phases, so under
    // CPU contention (the rest of this suite spawns campaign binaries
    // concurrently) an individual run can honestly fall short; the bar
    // must be reachable, not reached every time, so retry a few times.
    let mut last_percent = 0.0;
    for attempt in 0..3 {
        let out = run_in(&dir, &["profile", "--campaign", "modulation_capacity"]);
        assert!(out.status.success(), "{}", stderr_of(&out));
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        for phase in ["resolve", "config", "calibration", "transmit", "metrics"] {
            assert!(stdout.contains(phase), "phase {phase} missing: {stdout}");
        }
        assert!(stdout.contains("soc stepping"), "{stdout}");
        assert!(stdout.contains("calibration memo"), "{stdout}");
        // Re-arm reuse (PR 10) must not break the telemetry ledger:
        // every trial re-arms at least once, and every rearm simulates
        // at least one slot, so `trials <= rearms <= slots`.
        let stepping_line = stdout
            .lines()
            .find(|l| l.contains("soc stepping"))
            .unwrap_or_else(|| panic!("no soc stepping line in {stdout}"));
        let count_before = |marker: &str| -> u64 {
            stepping_line
                .split(marker)
                .next()
                .and_then(|s| s.rsplit(' ').find(|w| !w.is_empty()))
                .and_then(|w| w.parse().ok())
                .unwrap_or_else(|| panic!("unparseable stepping line: {stepping_line}"))
        };
        let rearms = count_before(" rearm(s)");
        let slots = count_before(" slot(s)");
        let trials = stdout
            .lines()
            .find_map(|l| l.strip_suffix(" errored")?.trim().split(' ').next())
            .and_then(|w| w.parse::<u64>().ok())
            .unwrap_or_else(|| panic!("no trial count line in {stdout}"));
        assert!(rearms >= trials, "{rearms} rearm(s) < {trials} trial(s)");
        assert!(slots >= rearms, "{slots} slot(s) < {rearms} rearm(s)");
        let coverage_line = stdout
            .lines()
            .find(|l| l.contains("phases sum to"))
            .unwrap_or_else(|| panic!("no coverage line in {stdout}"));
        last_percent = coverage_line
            .split('=')
            .nth(1)
            .and_then(|s| s.trim().split('%').next())
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or_else(|| panic!("unparseable coverage line: {coverage_line}"));
        if last_percent >= 90.0 {
            break;
        }
        eprintln!("attempt {attempt}: phase coverage {last_percent}% below the 90% bar; retrying");
    }
    assert!(
        last_percent >= 90.0,
        "phase coverage {last_percent}% below the 90% bar on every attempt"
    );
    // An unknown campaign is rejected like the run path rejects it.
    let out = run_in(&dir, &["profile", "--campaign", "no_such_campaign"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn fuzz_findings_are_replayable_and_shards_merge_byte_identical() {
    let dir_a = temp_dir("fuzz_a");
    let dir_b = temp_dir("fuzz_b");
    // Seed 7 flags a case within the first 64, so the byte comparisons
    // below cover a real shrunk finding row, not just empty files.
    let args = ["fuzz", "--cases", "96", "--seed", "7", "--threads", "2"];
    for dir in [&dir_a, &dir_b] {
        let out = run_in(dir, &args);
        assert!(out.status.success(), "{}", stderr_of(&out));
    }
    let findings =
        std::fs::read_to_string(dir_a.join("fuzz_findings.jsonl")).expect("findings written");
    assert!(
        findings.contains("\"kind\":"),
        "expected at least one finding row, got: {findings:?}"
    );
    assert_eq!(
        findings,
        std::fs::read_to_string(dir_b.join("fuzz_findings.jsonl")).expect("findings written"),
        "two identical invocations wrote different findings"
    );

    // Two shard processes, then `fuzz merge` back into the unsharded
    // bytes. Hex and decimal seeds must mean the same run.
    let shard_dir = temp_dir("fuzz_shards");
    let mut shard_paths = Vec::new();
    for i in 0..2 {
        let spec = format!("{i}/2");
        let out = run_in(
            &shard_dir,
            &["fuzz", "--cases", "96", "--seed", "0x7", "--shard", &spec],
        );
        assert!(out.status.success(), "shard {spec}: {}", stderr_of(&out));
        shard_paths.push(shard_dir.join(format!("fuzz_findings_shard{i}of2.jsonl")));
    }
    let merged_path = shard_dir.join("merged_findings.jsonl");
    let mut merge = campaign_bin();
    merge
        .arg("fuzz")
        .arg("merge")
        .arg(&merged_path)
        .args(&shard_paths);
    let out = merge.output().expect("fuzz merge runs");
    assert!(out.status.success(), "{}", stderr_of(&out));
    assert_eq!(
        std::fs::read_to_string(&merged_path).expect("merged findings"),
        findings,
        "sharded findings did not merge back into the unsharded bytes"
    );

    for dir in [&dir_a, &dir_b, &shard_dir] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn fuzz_rejects_bad_arguments() {
    let dir = temp_dir("fuzz_bad");
    for bad in [
        &["fuzz", "--seed", "not-a-seed"][..],
        &["fuzz", "--cases", "many"],
        &["fuzz", "--tolerance", "2.0"],
        &["fuzz", "--shard", "3/2"],
        &["fuzz", "--frobnicate"],
        &["fuzz", "merge"],
        &["fuzz", "merge", "out.jsonl"],
    ] {
        let out = run_in(&dir, bad);
        assert_eq!(out.status.code(), Some(2), "{bad:?} was accepted");
    }
    assert!(!dir.exists(), "rejected fuzz runs must not write results");
}

#[test]
fn fail_on_error_gates_run_and_merge() {
    // A clean catalog campaign passes the gate.
    let dir = temp_dir("fail_on_error_clean");
    let out = run_in(
        &dir,
        &[
            "--quick",
            "--campaign",
            "noise_robustness",
            "--fail-on-error",
        ],
    );
    assert!(out.status.success(), "{}", stderr_of(&out));
    let _ = std::fs::remove_dir_all(&dir);

    // An errored campaign fails it. The catalog has no error cells, so
    // build shard streams of one through the lab API: a collapsed
    // transaction-reset override under a heavy constant payload breaks
    // the slot schedule into a typed `ChannelError` on every trial.
    use ichannels_lab::campaigns::run_to_dir;
    use ichannels_lab::scenario::{Knob, PayloadSpec};
    use ichannels_lab::{Executor, Grid, RunConfig, ShardSpec};
    let dir = temp_dir("fail_on_error_merge");
    let grid = Grid::new()
        .knobs(vec![Some(Knob::ResetTimeUs(0.001))])
        .payloads(vec![PayloadSpec::Constant(3)])
        .trials(2)
        .payload_symbols(24);
    let mut shard_paths = Vec::new();
    for i in 0..2 {
        let config = RunConfig {
            shard: ShardSpec::new(i, 2).expect("valid shard"),
            ..RunConfig::default()
        };
        let run = run_to_dir("errored", &grid, Executor::serial(), &dir, config)
            .expect("errored campaign still streams");
        assert!(run.rows.iter().any(|r| r.error.is_some()));
        shard_paths.push(dir.join(format!("errored_shard{i}of2_trials.jsonl")));
    }
    let merged_dir = dir.join("merged");
    let mut gated = campaign_bin();
    gated
        .arg("merge")
        .arg("--fail-on-error")
        .arg(&merged_dir)
        .args(&shard_paths);
    let out = gated.output().expect("merge runs");
    assert!(
        !out.status.success(),
        "--fail-on-error must gate error cells"
    );
    let err = stderr_of(&out);
    assert!(err.contains("--fail-on-error"), "{err}");
    assert!(err.contains("errored"), "{err}");

    // Without the flag the same merge succeeds and only reports.
    let mut plain = campaign_bin();
    plain.arg("merge").arg(&merged_dir).args(&shard_paths);
    let out = plain.output().expect("merge runs");
    assert!(out.status.success(), "{}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("errored"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bench_records_a_perf_point_and_checks_regressions() {
    let dir = temp_dir("bench");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let point = dir.join("BENCH_test.json");
    let out = run_in(
        &dir,
        &[
            "bench",
            "--quick",
            "--samples",
            "1",
            "--out",
            point.to_str().unwrap(),
        ],
    );
    assert!(out.status.success(), "{}", stderr_of(&out));
    let text = std::fs::read_to_string(&point).expect("bench point written");
    assert_eq!(text.lines().count(), 1, "one flat JSON object: {text}");
    for key in [
        "\"bench\":\"campaign_catalog_end_to_end\"",
        "\"cache_off_median_ms\"",
        "\"cache_on_median_ms\"",
        "\"speedup\"",
        "\"calib_trainings_per_run_cache_off\"",
        "\"calib_trainings_per_run_cache_on\":0",
    ] {
        assert!(text.contains(key), "{key} missing from {text}");
    }
    // Checking against its own fresh point passes (ratio ≈ 1x ≤ 2x)…
    let out = run_in(
        &dir,
        &[
            "bench",
            "--quick",
            "--samples",
            "1",
            "--out",
            point.to_str().unwrap(),
            "--check",
            point.to_str().unwrap(),
        ],
    );
    assert!(out.status.success(), "{}", stderr_of(&out));
    // …an absurdly fast recorded baseline fails the 2x gate…
    let fast = dir.join("BENCH_fast.json");
    std::fs::write(&fast, "{\"cache_on_median_ms\":0.000001}\n").expect("baseline written");
    let out = run_in(
        &dir,
        &[
            "bench",
            "--quick",
            "--samples",
            "1",
            "--out",
            point.to_str().unwrap(),
            "--check",
            fast.to_str().unwrap(),
        ],
    );
    assert!(!out.status.success(), "2x regression gate must fail");
    assert!(stderr_of(&out).contains("regressed"), "{}", stderr_of(&out));
    // …and a baseline without the field is rejected up front.
    let junk = dir.join("BENCH_junk.json");
    std::fs::write(&junk, "{\"nope\":1}\n").expect("baseline written");
    let out = run_in(
        &dir,
        &[
            "bench",
            "--quick",
            "--samples",
            "1",
            "--check",
            junk.to_str().unwrap(),
        ],
    );
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn analyze_writes_a_deterministic_report() {
    let dir = temp_dir("analyze");
    let out = run_in(&dir, &["--quick", "--campaign", "noise_robustness"]);
    assert!(out.status.success(), "{}", stderr_of(&out));

    let analyze = |extra: &[&str]| {
        let mut args = vec!["analyze"];
        args.extend_from_slice(extra);
        args.push(dir.to_str().unwrap());
        run_in(&dir, &args)
    };
    let out = analyze(&["--json"]);
    assert!(out.status.success(), "{}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let report_path = dir.join("analysis.jsonl");
    let report = std::fs::read_to_string(&report_path).expect("analysis.jsonl written");
    // --json echoes exactly the written report.
    assert!(
        stdout.contains(&report),
        "stdout lacks the report: {stdout}"
    );
    for key in [
        "\"record\":\"campaign\"",
        "\"record\":\"cell\"",
        "\"record\":\"axis\"",
        "\"record\":\"sensitivity\"",
        "\"error_rate_ci_lo\"",
        "\"error_rate_ci_hi\"",
        "\"capacity_model_bits_per_symbol\"",
    ] {
        assert!(report.contains(key), "{key} missing from {report}");
    }

    // A second invocation reproduces the report byte for byte.
    let out = analyze(&[]);
    assert!(out.status.success(), "{}", stderr_of(&out));
    assert_eq!(
        std::fs::read_to_string(&report_path).expect("analysis.jsonl rewritten"),
        report,
        "two analyze invocations wrote different bytes"
    );

    // A different seed moves the CIs: the report is a function of the
    // analysis configuration too.
    let out = analyze(&["--seed", "0x9"]);
    assert!(out.status.success(), "{}", stderr_of(&out));
    assert_ne!(
        std::fs::read_to_string(&report_path).expect("analysis.jsonl rewritten"),
        report,
        "--seed must reseed the bootstrap"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn analyze_rejects_shard_streams_and_bad_arguments() {
    // No directory → usage.
    let no_dir = campaign_bin().arg("analyze").output().expect("runs");
    assert_eq!(no_dir.status.code(), Some(2));
    assert!(
        stderr_of(&no_dir).contains("_trials.jsonl"),
        "{}",
        stderr_of(&no_dir)
    );
    // Unknown flags and unparseable values → usage.
    let dir = temp_dir("analyze_bad");
    for bad in [
        &["analyze", "--frobnicate", "."][..],
        &["analyze", "--seed", "not-a-seed", "."],
        &["analyze", "--resamples", "many", "."],
    ] {
        let out = run_in(&dir, bad);
        assert_eq!(out.status.code(), Some(2), "{bad:?} was accepted");
    }

    // An empty directory has nothing to analyze.
    std::fs::create_dir_all(&dir).expect("dir created");
    let out = run_in(&dir, &["analyze", dir.to_str().unwrap()]);
    assert!(!out.status.success(), "empty dir must fail");
    assert!(
        stderr_of(&out).contains("no <name>_trials.jsonl"),
        "{}",
        stderr_of(&out)
    );

    // A lone shard stream is a slice, not a campaign: point at merge.
    let out = run_in(
        &dir,
        &[
            "--quick",
            "--campaign",
            "noise_robustness",
            "--shard",
            "0/3",
        ],
    );
    assert!(out.status.success(), "{}", stderr_of(&out));
    let out = run_in(&dir, &["analyze", dir.to_str().unwrap()]);
    assert!(!out.status.success(), "shard stream must be rejected");
    let err = stderr_of(&out);
    assert!(err.contains("campaign merge"), "{err}");
    assert!(!dir.join("analysis.jsonl").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

//! Criterion microbenchmarks of the simulator substrate: event-loop
//! throughput, IDQ cycle model, PMU request path, and VR scheduling.

use criterion::{criterion_group, criterion_main, Criterion};
use ichannels_pdn::guardband::{CdynTable, GuardbandModel};
use ichannels_pdn::regulator::VrModel;
use ichannels_pmu::central::{CentralPmu, PmuConfig};
use ichannels_soc::config::{PlatformSpec, SocConfig};
use ichannels_soc::program::Script;
use ichannels_soc::sim::Soc;
use ichannels_uarch::idq::{Idq, SmtId, ThreadDemand};
use ichannels_uarch::isa::InstClass;
use ichannels_uarch::time::{Freq, SimTime};

fn bench_soc(c: &mut Criterion) {
    let mut group = c.benchmark_group("soc");
    group.sample_size(10);
    group.bench_function("phi_loop_1ms", |b| {
        b.iter(|| {
            let cfg = SocConfig::pinned(PlatformSpec::cannon_lake(), Freq::from_ghz(1.4));
            let mut soc = Soc::new(cfg);
            soc.spawn(
                0,
                0,
                Box::new(Script::run_loop(InstClass::Heavy256, 1_400_000)),
            );
            soc.run_until_idle(SimTime::from_ms(5.0))
        })
    });
    group.bench_function("idle_60s_fast_forward", |b| {
        b.iter(|| {
            let cfg = SocConfig::pinned(PlatformSpec::cannon_lake(), Freq::from_ghz(1.4));
            let mut soc = Soc::new(cfg);
            soc.run_until(SimTime::from_secs(60.0));
            soc.now()
        })
    });
    group.finish();
}

fn bench_idq(c: &mut Criterion) {
    c.bench_function("idq_100k_cycles_throttled", |b| {
        b.iter(|| {
            let mut idq = Idq::new();
            idq.set_throttled(true, Some(SmtId::T0));
            let mut total = 0u64;
            for _ in 0..100_000 {
                total += u64::from(
                    idq.cycle(
                        ThreadDemand::busy(InstClass::Heavy256),
                        ThreadDemand::busy(InstClass::Scalar64),
                    )
                    .total(),
                );
            }
            total
        })
    });
}

fn bench_pmu(c: &mut Criterion) {
    c.bench_function("pmu_license_request", |b| {
        let cfg = PmuConfig {
            n_cores: 2,
            guardband: GuardbandModel::new(CdynTable::default(), 1.9),
            vr_model: VrModel::mbvr(),
            reset_time: SimTime::from_us(650.0),
            per_core_vr: false,
            secure_mode: false,
        };
        b.iter(|| {
            let mut pmu = CentralPmu::new(cfg.clone(), Freq::from_ghz(1.4), 760.0);
            let mut t = SimTime::ZERO;
            for _ in 0..100 {
                let g = pmu.on_execute(0, InstClass::Heavy512, t);
                t = g.ready_at + SimTime::from_us(700.0);
                pmu.process_decays(t);
            }
            pmu.package_setpoint_mv()
        })
    });
}

criterion_group!(benches, bench_soc, bench_idq, bench_pmu);
criterion_main!(benches);

//! Criterion microbenchmarks of the covert-channel hot paths: one full
//! transaction per channel kind, calibration, and symbol coding.

use criterion::{criterion_group, criterion_main, Criterion};
use ichannels::ber::random_symbols;
use ichannels::channel::IChannel;
use ichannels::ecc::{Hamming74, Repetition3};
use ichannels::symbols::{bits_to_symbols, symbols_to_bits, Symbol};

fn bench_transactions(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel_transaction");
    group.sample_size(10);
    for (name, ch) in [
        ("icc_thread_covert", IChannel::icc_thread_covert()),
        ("icc_smt_covert", IChannel::icc_smt_covert()),
        ("icc_cores_covert", IChannel::icc_cores_covert()),
    ] {
        let cal = ch.calibrate(2);
        let symbols = random_symbols(4, 7);
        group.bench_function(name, |b| {
            b.iter(|| {
                let tx = ch.transmit_symbols(&symbols, &cal);
                assert_eq!(tx.sent.len(), 4);
                tx
            })
        });
    }
    group.finish();
}

fn bench_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("calibration");
    group.sample_size(10);
    let ch = IChannel::icc_thread_covert();
    group.bench_function("calibrate_2_reps", |b| b.iter(|| ch.calibrate(2)));
    group.finish();
}

fn bench_coding(c: &mut Criterion) {
    let bits: Vec<bool> = (0..1024).map(|i| i % 3 == 0).collect();
    c.bench_function("symbol_coding_1kbit", |b| {
        b.iter(|| {
            let symbols = bits_to_symbols(&bits);
            symbols_to_bits(&symbols)
        })
    });
    c.bench_function("hamming74_1kbit", |b| {
        b.iter(|| {
            let coded = Hamming74.encode(&bits);
            Hamming74.decode(&coded)
        })
    });
    c.bench_function("repetition3_1kbit", |b| {
        b.iter(|| {
            let coded = Repetition3.encode(&bits);
            Repetition3.decode(&coded)
        })
    });
    let ch = IChannel::icc_thread_covert();
    let cal = ch.calibrate(2);
    c.bench_function("nearest_mean_decode", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for d in [10_000u64, 20_000, 30_000, 40_000] {
                acc ^= cal.decode(d).value();
            }
            acc
        })
    });
    let _ = Symbol::ALL;
}

criterion_group!(benches, bench_transactions, bench_calibration, bench_coding);
criterion_main!(benches);

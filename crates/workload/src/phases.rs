//! Phase workloads: programs whose instruction class changes over time.
//!
//! Used to regenerate Figure 6 (cores starting/stopping AVX2 phases;
//! 454.calculix-like behaviour) and Figure 7(b) (the
//! Non-AVX → AVX2 → AVX512 sequence).

use ichannels_soc::program::{Action, ProgCtx, Program};
use ichannels_uarch::isa::InstClass;
use ichannels_uarch::time::SimTime;

/// One workload phase: a class executed (in repeated blocks) for a
/// duration, or an idle period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phase {
    /// Instruction class of the phase; `None` = idle (sleep).
    pub class: Option<InstClass>,
    /// Phase length (wall-clock).
    pub duration: SimTime,
}

impl Phase {
    /// A busy phase.
    pub fn busy(class: InstClass, duration: SimTime) -> Self {
        Phase {
            class: Some(class),
            duration,
        }
    }

    /// An idle phase.
    pub fn idle(duration: SimTime) -> Self {
        Phase {
            class: None,
            duration,
        }
    }
}

/// A program that walks through a list of phases, issuing fixed-size
/// instruction blocks until each phase's wall-clock budget elapses.
#[derive(Debug)]
pub struct PhaseProgram {
    phases: Vec<Phase>,
    block_insts: u64,
    idx: usize,
    phase_end: Option<SimTime>,
    label: String,
}

impl PhaseProgram {
    /// Creates a phase program; `block_insts` controls the granularity at
    /// which the phase boundary is honoured (smaller = more precise, more
    /// simulator events).
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or `block_insts` is zero.
    pub fn new(phases: Vec<Phase>, block_insts: u64) -> Self {
        assert!(!phases.is_empty(), "phase program needs phases");
        assert!(block_insts > 0, "block size must be non-zero");
        PhaseProgram {
            phases,
            block_insts,
            idx: 0,
            phase_end: None,
            label: "phase program".to_string(),
        }
    }

    /// The three-phase Figure 7(b) workload: Non-AVX, then AVX2, then
    /// AVX512, each for the given duration.
    pub fn three_phase(per_phase: SimTime, block_insts: u64) -> Self {
        PhaseProgram::new(
            vec![
                Phase::busy(InstClass::Scalar64, per_phase),
                Phase::busy(InstClass::Heavy256, per_phase),
                Phase::busy(InstClass::Heavy512, per_phase),
            ],
            block_insts,
        )
    }

    /// A 454.calculix-like trace (Figure 6(b)): alternating AVX2 solver
    /// phases and scalar assembly phases.
    pub fn calculix_like(total: SimTime, block_insts: u64) -> Self {
        let mut phases = Vec::new();
        let mut elapsed = SimTime::ZERO;
        let mut avx = false;
        // Irregular-ish alternation (solver bursts longer than assembly).
        let pattern_us = [
            180_000.0, 120_000.0, 260_000.0, 90_000.0, 210_000.0, 140_000.0,
        ];
        let mut k = 0usize;
        while elapsed < total {
            let d = SimTime::from_us(pattern_us[k % pattern_us.len()]);
            let d = if elapsed + d > total {
                total - elapsed
            } else {
                d
            };
            phases.push(Phase {
                class: Some(if avx {
                    InstClass::Heavy256
                } else {
                    InstClass::Scalar64
                }),
                duration: d,
            });
            elapsed += d;
            avx = !avx;
            k += 1;
        }
        PhaseProgram::new(phases, block_insts)
    }
}

impl Program for PhaseProgram {
    fn next(&mut self, ctx: &ProgCtx) -> Action {
        loop {
            if self.idx >= self.phases.len() {
                return Action::Halt;
            }
            let phase = self.phases[self.idx];
            let end = *self.phase_end.get_or_insert(ctx.now + phase.duration);
            if ctx.now >= end {
                self.idx += 1;
                self.phase_end = None;
                continue;
            }
            match phase.class {
                Some(class) => {
                    return Action::Run {
                        class,
                        instructions: self.block_insts,
                    }
                }
                None => {
                    let remaining = end - ctx.now;
                    return Action::SleepFor(remaining);
                }
            }
        }
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ichannels_soc::config::{PlatformSpec, SocConfig};
    use ichannels_soc::sim::Soc;
    use ichannels_uarch::time::Freq;

    #[test]
    fn phases_run_for_their_duration() {
        let cfg = SocConfig::pinned(PlatformSpec::cannon_lake(), Freq::from_ghz(1.4));
        let mut soc = Soc::new(cfg);
        let prog = PhaseProgram::new(
            vec![
                Phase::busy(InstClass::Scalar64, SimTime::from_us(100.0)),
                Phase::idle(SimTime::from_us(50.0)),
                Phase::busy(InstClass::Heavy256, SimTime::from_us(100.0)),
            ],
            1_000,
        );
        soc.spawn(0, 0, Box::new(prog));
        let end = soc.run_until_idle(SimTime::from_ms(5.0));
        // Total ≈ 250 µs plus the AVX2 throttle stretch of the last phase
        // blocks (bounded by a block length).
        assert!(end.as_us() >= 250.0, "end = {end}");
        assert!(end.as_us() < 300.0, "end = {end}");
        // Both classes actually retired instructions.
        assert!(soc.inst_retired(0, 0) > 100_000.0);
    }

    #[test]
    fn three_phase_sequence_steps_frequency_down() {
        // Figure 7(b): at the performance governor on the mobile part,
        // each successive phase lowers the sustained frequency.
        let cfg = SocConfig::quiet(PlatformSpec::cannon_lake()).with_trace(SimTime::from_us(200.0));
        let mut soc = Soc::new(cfg);
        soc.spawn(
            0,
            0,
            Box::new(PhaseProgram::three_phase(SimTime::from_ms(20.0), 20_000)),
        );
        soc.run_until_idle(SimTime::from_ms(120.0));
        let freqs = soc.trace().freq_series();
        let f_scalar = freqs
            .iter()
            .filter(|(t, _)| *t > 0.010 && *t < 0.018)
            .map(|(_, f)| *f)
            .fold(0.0, f64::max);
        let f_avx2 = freqs
            .iter()
            .filter(|(t, _)| *t > 0.030 && *t < 0.038)
            .map(|(_, f)| *f)
            .fold(0.0, f64::max);
        let f_avx512 = freqs
            .iter()
            .filter(|(t, _)| *t > 0.052 && *t < 0.058)
            .map(|(_, f)| *f)
            .fold(0.0, f64::max);
        assert!(f_scalar > f_avx2, "scalar {f_scalar} vs avx2 {f_avx2}");
        assert!(f_avx2 > f_avx512, "avx2 {f_avx2} vs avx512 {f_avx512}");
    }

    #[test]
    fn calculix_phases_cover_total() {
        let p = PhaseProgram::calculix_like(SimTime::from_secs(2.0), 10_000);
        let total: SimTime = p.phases.iter().map(|ph| ph.duration).sum();
        assert_eq!(total, SimTime::from_secs(2.0));
        assert!(p.phases.len() >= 8);
    }
}

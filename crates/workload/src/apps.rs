//! Synthetic concurrent applications (paper §6.3).
//!
//! Two noise applications shape the Figure 14(b,c) experiments:
//!
//! * [`RandomPhiApp`] — "App injects PHIs with a random power level (from
//!   the four levels) using different rates (10–10,000 App-PHIs per
//!   second)";
//! * [`SevenZipApp`] — a 7-zip-like compressor "which uses AVX2
//!   instructions but not AVX-512", issuing AVX2 bursts amid scalar work.

use ichannels_soc::program::{Action, ProgCtx, Program};
use ichannels_uarch::isa::InstClass;
use ichannels_uarch::time::SimTime;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An application that injects PHI bursts of a random level at a Poisson
/// rate, running forever (until the simulation stops looking at it).
#[derive(Debug)]
pub struct RandomPhiApp {
    rate_hz: f64,
    burst_insts: u64,
    levels: Vec<InstClass>,
    rng: SmallRng,
    deadline: SimTime,
    bursting: bool,
}

impl RandomPhiApp {
    /// Creates the injector: bursts of `burst_insts` instructions, level
    /// drawn uniformly from `levels`, arrivals at `rate_hz`, halting at
    /// `deadline`.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty or `rate_hz` is not positive.
    pub fn new(
        rate_hz: f64,
        burst_insts: u64,
        levels: Vec<InstClass>,
        deadline: SimTime,
        seed: u64,
    ) -> Self {
        assert!(!levels.is_empty(), "need at least one PHI level");
        assert!(
            rate_hz.is_finite() && rate_hz > 0.0,
            "rate must be positive: {rate_hz}"
        );
        RandomPhiApp {
            rate_hz,
            burst_insts,
            levels,
            rng: SmallRng::seed_from_u64(seed),
            deadline,
            bursting: false,
        }
    }

    /// The four IChannels sender levels as the injection alphabet.
    pub fn sender_levels(rate_hz: f64, burst_insts: u64, deadline: SimTime, seed: u64) -> Self {
        RandomPhiApp::new(
            rate_hz,
            burst_insts,
            InstClass::SENDER_LEVELS.to_vec(),
            deadline,
            seed,
        )
    }
}

impl Program for RandomPhiApp {
    fn next(&mut self, ctx: &ProgCtx) -> Action {
        if ctx.now >= self.deadline {
            return Action::Halt;
        }
        if self.bursting {
            // Burst finished: sleep an exponential gap.
            self.bursting = false;
            let u: f64 = self.rng.gen_range(1e-12..1.0);
            let gap_s = -u.ln() / self.rate_hz;
            Action::SleepFor(SimTime::from_secs(gap_s))
        } else {
            self.bursting = true;
            let class = self.levels[self.rng.gen_range(0..self.levels.len())];
            Action::Run {
                class,
                instructions: self.burst_insts,
            }
        }
    }

    fn name(&self) -> &str {
        "random-PHI app"
    }
}

/// A 7-zip-like application: sustained scalar work with periodic AVX2
/// (256b-Heavy) match-finder bursts; never touches AVX-512.
#[derive(Debug)]
pub struct SevenZipApp {
    avx2_burst_rate_hz: f64,
    burst_insts: u64,
    scalar_insts: u64,
    rng: SmallRng,
    deadline: SimTime,
    state: u8,
}

impl SevenZipApp {
    /// Creates the app: scalar blocks of `scalar_insts`, with AVX2 bursts
    /// of `burst_insts` arriving at `avx2_burst_rate_hz`.
    pub fn new(
        avx2_burst_rate_hz: f64,
        burst_insts: u64,
        scalar_insts: u64,
        deadline: SimTime,
        seed: u64,
    ) -> Self {
        assert!(
            avx2_burst_rate_hz.is_finite() && avx2_burst_rate_hz > 0.0,
            "rate must be positive"
        );
        SevenZipApp {
            avx2_burst_rate_hz,
            burst_insts,
            scalar_insts,
            rng: SmallRng::seed_from_u64(seed),
            deadline,
            state: 0,
        }
    }

    /// Typical configuration used by the §6.3 experiment: ~50 AVX2
    /// bursts per second.
    pub fn typical(deadline: SimTime, seed: u64) -> Self {
        SevenZipApp::new(50.0, 20_000, 100_000, deadline, seed)
    }
}

impl Program for SevenZipApp {
    fn next(&mut self, ctx: &ProgCtx) -> Action {
        if ctx.now >= self.deadline {
            return Action::Halt;
        }
        match self.state {
            // Scalar work.
            0 => {
                self.state = 1;
                Action::Run {
                    class: InstClass::Scalar64,
                    instructions: self.scalar_insts,
                }
            }
            // Wait for the next burst arrival.
            1 => {
                self.state = 2;
                let u: f64 = self.rng.gen_range(1e-12..1.0);
                let gap_s = -u.ln() / self.avx2_burst_rate_hz;
                Action::SleepFor(SimTime::from_secs(gap_s))
            }
            // AVX2 burst (never AVX-512).
            _ => {
                self.state = 0;
                Action::Run {
                    class: InstClass::Heavy256,
                    instructions: self.burst_insts,
                }
            }
        }
    }

    fn name(&self) -> &str {
        "7-zip-like app"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ichannels_soc::config::{PlatformSpec, SocConfig};
    use ichannels_soc::sim::Soc;
    use ichannels_uarch::time::Freq;

    #[test]
    fn random_phi_app_halts_at_deadline() {
        let cfg = SocConfig::pinned(PlatformSpec::cannon_lake(), Freq::from_ghz(1.4));
        let mut soc = Soc::new(cfg);
        soc.spawn(
            0,
            0,
            Box::new(RandomPhiApp::sender_levels(
                1000.0,
                5_000,
                SimTime::from_ms(5.0),
                42,
            )),
        );
        let end = soc.run_until_idle(SimTime::from_ms(50.0));
        assert!(end >= SimTime::from_ms(5.0));
        assert!(end < SimTime::from_ms(7.0), "end = {end}");
        assert!(soc.inst_retired(0, 0) > 0.0);
    }

    #[test]
    fn random_phi_app_raises_package_voltage() {
        let cfg = SocConfig::pinned(PlatformSpec::cannon_lake(), Freq::from_ghz(1.4));
        let mut soc = Soc::new(cfg);
        let v0 = soc.vcc_mv();
        soc.spawn(
            1,
            0,
            Box::new(RandomPhiApp::sender_levels(
                5_000.0,
                10_000,
                SimTime::from_ms(3.0),
                7,
            )),
        );
        soc.run_until(SimTime::from_ms(1.0));
        assert!(soc.pmu().package_setpoint_mv() > v0 + 2.0);
    }

    #[test]
    fn seven_zip_never_uses_avx512() {
        // Structural check: the app's alphabet is {Scalar64, Heavy256}.
        let mut app = SevenZipApp::typical(SimTime::from_secs(1.0), 3);
        let ctx = ProgCtx {
            now: SimTime::ZERO,
            tsc: 0,
            core: 0,
            smt: 0,
        };
        for _ in 0..100 {
            if let Action::Run { class, .. } = app.next(&ctx) {
                assert!(
                    class == InstClass::Scalar64 || class == InstClass::Heavy256,
                    "unexpected class {class}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = RandomPhiApp::new(0.0, 1, vec![InstClass::Heavy256], SimTime::from_ms(1.0), 1);
    }
}

//! Power-virus workloads (paper §2).
//!
//! A power virus "exercises the highest possible dynamic capacitance"
//! and draws `Iccvirus`, the current the voltage guardband is provisioned
//! for. Used to probe the worst-case operating point and to validate the
//! secure-mode overhead numbers.

use ichannels_soc::program::Script;
use ichannels_soc::sim::Soc;
use ichannels_uarch::isa::InstClass;
use ichannels_uarch::time::{Freq, SimTime};

/// Builds the per-core power-virus program: an endless-ish 512b-Heavy
/// loop sized for `duration` of unthrottled execution at `freq`.
pub fn power_virus_program(freq: Freq, duration: SimTime) -> Script {
    let insts = crate::loops::instructions_for_duration(InstClass::Heavy512, freq, duration);
    Script::run_loop(InstClass::Heavy512, insts)
}

/// Spawns the virus on every hardware thread 0 of every core.
///
/// # Panics
///
/// Panics if any target hardware thread is already occupied.
pub fn spawn_power_virus(soc: &mut Soc, duration: SimTime) {
    let n = soc.config().platform.n_cores;
    let freq = soc.freq();
    for core in 0..n {
        soc.spawn(core, 0, Box::new(power_virus_program(freq, duration)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ichannels_soc::config::{PlatformSpec, SocConfig};

    #[test]
    fn virus_reaches_maximum_guardband() {
        let cfg = SocConfig::pinned(PlatformSpec::cannon_lake(), Freq::from_ghz(1.4));
        let mut soc = Soc::new(cfg);
        let base = soc.vcc_mv();
        spawn_power_virus(&mut soc, SimTime::from_us(500.0));
        soc.run_until(SimTime::from_us(400.0));
        let setpoint = soc.pmu().package_setpoint_mv();
        // Both cores at 512b-Heavy: the largest possible guardband.
        let gb = soc.config().platform.guardband().secure_mode_guardband_mv(
            2,
            base,
            Freq::from_ghz(1.4),
        );
        assert!(
            (setpoint - (base + gb)).abs() < 0.5,
            "setpoint = {setpoint}"
        );
    }

    #[test]
    fn virus_draws_more_current_than_typical() {
        let cfg = SocConfig::pinned(PlatformSpec::cannon_lake(), Freq::from_ghz(1.4));
        let mut soc = Soc::new(cfg);
        let idle_icc = soc.icc_a();
        spawn_power_virus(&mut soc, SimTime::from_us(200.0));
        soc.run_until(SimTime::from_us(100.0));
        assert!(soc.icc_a() > idle_icc * 3.0);
    }
}

//! Agner-Fog-style measured instruction loops (paper §5.1).
//!
//! The paper's characterization "customize\[s\] multiple micro-benchmarks
//! of the Agner Fog measurement library": tight register-only loops of a
//! chosen instruction class, timed with `rdtsc`. [`MeasuredLoop`] is that
//! micro-benchmark as a simulator [`Program`]: it runs a loop `reps`
//! times (with an optional gap between repetitions) and records each
//! repetition's duration in TSC cycles.

use std::cell::RefCell;
use std::rc::Rc;

use ichannels_soc::program::{Action, ProgCtx, Program};
use ichannels_uarch::isa::InstClass;
use ichannels_uarch::time::SimTime;
use ichannels_uarch::tsc::Tsc;

/// Shared recording of loop durations (TSC cycles), cloneable across the
/// program and the measuring harness.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Rc<RefCell<Vec<u64>>>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Appends a measurement.
    pub fn push(&self, tsc_cycles: u64) {
        self.inner.borrow_mut().push(tsc_cycles);
    }

    /// Snapshot of all measurements.
    pub fn values(&self) -> Vec<u64> {
        self.inner.borrow().clone()
    }

    /// Number of measurements so far.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().is_empty()
    }

    /// Measurements converted to microseconds via the TSC frequency.
    pub fn durations_us(&self, tsc: &Tsc) -> Vec<f64> {
        self.inner
            .borrow()
            .iter()
            .map(|&c| tsc.cycles_to_duration(c).as_us())
            .collect()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoopState {
    /// About to issue repetition `i`.
    Issue(u32),
    /// Repetition `i` is running; started at the given TSC value.
    Timing(u32, u64),
    /// Sleeping the inter-repetition gap before repetition `i`.
    Gap(u32),
    /// All repetitions done.
    Done,
}

/// A measured instruction loop: `reps` repetitions of `instructions`
/// instructions of `class`, with `gap` idle time between repetitions,
/// each repetition's duration recorded in TSC cycles.
///
/// # Examples
///
/// ```
/// use ichannels_soc::config::{PlatformSpec, SocConfig};
/// use ichannels_soc::sim::Soc;
/// use ichannels_uarch::isa::InstClass;
/// use ichannels_uarch::time::{Freq, SimTime};
/// use ichannels_workload::loops::{MeasuredLoop, Recorder};
///
/// let cfg = SocConfig::pinned(PlatformSpec::cannon_lake(), Freq::from_ghz(1.4));
/// let mut soc = Soc::new(cfg);
/// let rec = Recorder::new();
/// soc.spawn(0, 0, Box::new(MeasuredLoop::new(InstClass::Heavy256, 14_000, 3, SimTime::from_us(700.0), rec.clone())));
/// soc.run_until_idle(SimTime::from_ms(10.0));
/// assert_eq!(rec.len(), 3);
/// ```
#[derive(Debug)]
pub struct MeasuredLoop {
    class: InstClass,
    instructions: u64,
    reps: u32,
    gap: SimTime,
    recorder: Recorder,
    state: LoopState,
    label: String,
}

impl MeasuredLoop {
    /// Creates a measured loop.
    ///
    /// # Panics
    ///
    /// Panics if `instructions` or `reps` is zero.
    pub fn new(
        class: InstClass,
        instructions: u64,
        reps: u32,
        gap: SimTime,
        recorder: Recorder,
    ) -> Self {
        assert!(instructions > 0, "loop needs at least one instruction");
        assert!(reps > 0, "loop needs at least one repetition");
        MeasuredLoop {
            class,
            instructions,
            reps,
            gap,
            recorder,
            state: LoopState::Issue(0),
            label: format!("measured {class} x{reps}"),
        }
    }

    /// Single-shot measured loop (one repetition, no gap).
    pub fn once(class: InstClass, instructions: u64, recorder: Recorder) -> Self {
        MeasuredLoop::new(class, instructions, 1, SimTime::ZERO, recorder)
    }
}

impl Program for MeasuredLoop {
    fn next(&mut self, ctx: &ProgCtx) -> Action {
        loop {
            match self.state {
                LoopState::Issue(i) => {
                    self.state = LoopState::Timing(i, ctx.tsc);
                    return Action::Run {
                        class: self.class,
                        instructions: self.instructions,
                    };
                }
                LoopState::Timing(i, start) => {
                    self.recorder.push(ctx.tsc.saturating_sub(start));
                    if i + 1 >= self.reps {
                        self.state = LoopState::Done;
                    } else if self.gap.is_zero() {
                        self.state = LoopState::Issue(i + 1);
                    } else {
                        self.state = LoopState::Gap(i + 1);
                        return Action::SleepFor(self.gap);
                    }
                }
                LoopState::Gap(i) => {
                    self.state = LoopState::Issue(i);
                }
                LoopState::Done => return Action::Halt,
            }
        }
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// A loop that first executes a *preceding* class and then times a main
/// class — the Figure 10(b) experiment ("throttling period of a
/// 512b_Heavy loop when the loop is preceded by different instruction
/// types").
#[derive(Debug)]
pub struct PrecededLoop {
    preceding: InstClass,
    preceding_insts: u64,
    main: InstClass,
    main_insts: u64,
    settle: SimTime,
    recorder: Recorder,
    stage: u8,
    t_start: u64,
}

impl PrecededLoop {
    /// Creates the two-stage loop: run `preceding`, idle for `settle`
    /// (letting its voltage transition finish but staying well inside the
    /// reset-time), then time `main`.
    pub fn new(
        preceding: InstClass,
        preceding_insts: u64,
        main: InstClass,
        main_insts: u64,
        settle: SimTime,
        recorder: Recorder,
    ) -> Self {
        PrecededLoop {
            preceding,
            preceding_insts,
            main,
            main_insts,
            settle,
            recorder,
            stage: 0,
            t_start: 0,
        }
    }
}

impl Program for PrecededLoop {
    fn next(&mut self, ctx: &ProgCtx) -> Action {
        match self.stage {
            0 => {
                self.stage = 1;
                Action::Run {
                    class: self.preceding,
                    instructions: self.preceding_insts,
                }
            }
            1 => {
                self.stage = 2;
                Action::SleepFor(self.settle)
            }
            2 => {
                self.stage = 3;
                self.t_start = ctx.tsc;
                Action::Run {
                    class: self.main,
                    instructions: self.main_insts,
                }
            }
            3 => {
                self.recorder.push(ctx.tsc.saturating_sub(self.t_start));
                self.stage = 4;
                Action::Halt
            }
            _ => Action::Halt,
        }
    }

    fn name(&self) -> &str {
        "preceded loop"
    }
}

/// Sizes a loop so that its *unthrottled* duration is roughly
/// `target` at the given frequency (using the class's nominal IPC).
pub fn instructions_for_duration(
    class: InstClass,
    freq: ichannels_uarch::time::Freq,
    target: SimTime,
) -> u64 {
    let ipc = ichannels_uarch::ipc::nominal_ipc(class);
    ((ipc * freq.as_hz() as f64 * target.as_secs()).round() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ichannels_soc::config::{PlatformSpec, SocConfig};
    use ichannels_soc::sim::Soc;
    use ichannels_uarch::time::Freq;

    fn soc14() -> Soc {
        Soc::new(SocConfig::pinned(
            PlatformSpec::cannon_lake(),
            Freq::from_ghz(1.4),
        ))
    }

    #[test]
    fn records_one_duration_per_rep() {
        let mut soc = soc14();
        let rec = Recorder::new();
        soc.spawn(
            0,
            0,
            Box::new(MeasuredLoop::new(
                InstClass::Heavy256,
                14_000,
                5,
                SimTime::from_us(700.0),
                rec.clone(),
            )),
        );
        soc.run_until_idle(SimTime::from_ms(20.0));
        assert_eq!(rec.len(), 5);
    }

    #[test]
    fn first_rep_includes_throttle_later_reps_do_not() {
        // With a gap much shorter than the reset-time, only the first
        // repetition pays the voltage ramp.
        let mut soc = soc14();
        let rec = Recorder::new();
        soc.spawn(
            0,
            0,
            Box::new(MeasuredLoop::new(
                InstClass::Heavy512,
                14_000,
                3,
                SimTime::from_us(50.0),
                rec.clone(),
            )),
        );
        soc.run_until_idle(SimTime::from_ms(10.0));
        let d = rec.durations_us(soc.tsc());
        assert!(d[0] > d[1] + 5.0, "durations: {d:?}");
        assert!((d[1] - d[2]).abs() < 0.5, "durations: {d:?}");
    }

    #[test]
    fn gap_beyond_reset_time_rethrottles_every_rep() {
        let mut soc = soc14();
        let rec = Recorder::new();
        soc.spawn(
            0,
            0,
            Box::new(MeasuredLoop::new(
                InstClass::Heavy512,
                14_000,
                3,
                SimTime::from_us(700.0),
                rec.clone(),
            )),
        );
        soc.run_until_idle(SimTime::from_ms(10.0));
        let d = rec.durations_us(soc.tsc());
        assert!((d[0] - d[1]).abs() < 1.0, "durations: {d:?}");
        assert!((d[1] - d[2]).abs() < 1.0, "durations: {d:?}");
    }

    #[test]
    fn preceded_loop_reproduces_figure_10b_ordering() {
        // Heavier preceding class ⇒ shorter measured TP of 512b-Heavy.
        let mut tps = Vec::new();
        for prev in [
            InstClass::Light128,
            InstClass::Heavy256,
            InstClass::Heavy512,
        ] {
            let mut soc = soc14();
            let rec = Recorder::new();
            soc.spawn(
                0,
                0,
                Box::new(PrecededLoop::new(
                    prev,
                    14_000,
                    InstClass::Heavy512,
                    14_000,
                    SimTime::from_us(30.0),
                    rec.clone(),
                )),
            );
            soc.run_until_idle(SimTime::from_ms(10.0));
            tps.push(rec.durations_us(soc.tsc())[0]);
        }
        assert!(tps[0] > tps[1] && tps[1] > tps[2], "tps = {tps:?}");
    }

    #[test]
    fn instructions_for_duration_inverts_ipc() {
        let n = instructions_for_duration(
            InstClass::Scalar64,
            Freq::from_ghz(2.0),
            SimTime::from_us(10.0),
        );
        // IPC 2 at 2 GHz for 10 µs = 40_000 instructions.
        assert_eq!(n, 40_000);
    }
}

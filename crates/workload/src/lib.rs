//! # `ichannels-workload` — workload substrate
//!
//! The programs the IChannels (ISCA 2021) reproduction runs on its
//! simulated SoC:
//!
//! * [`loops`] — Agner-Fog-style measured instruction loops (the §5.1
//!   micro-benchmarks), including the preceded-loop experiment of
//!   Figure 10(b) and a shared duration [`loops::Recorder`].
//! * [`phases`] — phase workloads: the Non-AVX→AVX2→AVX512 sequence of
//!   Figure 7(b) and the 454.calculix-like trace of Figure 6(b).
//! * [`apps`] — §6.3 noise applications: the random-level PHI injector
//!   and a 7-zip-like AVX2 compressor.
//! * [`virus`] — power-virus workloads probing the worst-case guardband.
//!
//! # Example
//!
//! ```
//! use ichannels_soc::config::{PlatformSpec, SocConfig};
//! use ichannels_soc::sim::Soc;
//! use ichannels_uarch::isa::InstClass;
//! use ichannels_uarch::time::{Freq, SimTime};
//! use ichannels_workload::loops::{MeasuredLoop, Recorder};
//!
//! let cfg = SocConfig::pinned(PlatformSpec::cannon_lake(), Freq::from_ghz(1.4));
//! let mut soc = Soc::new(cfg);
//! let rec = Recorder::new();
//! soc.spawn(0, 0, Box::new(MeasuredLoop::once(InstClass::Heavy256, 14_000, rec.clone())));
//! soc.run_until_idle(SimTime::from_ms(1.0));
//! assert_eq!(rec.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod apps;
pub mod loops;
pub mod phases;
pub mod virus;

pub use apps::{RandomPhiApp, SevenZipApp};
pub use loops::{instructions_for_duration, MeasuredLoop, PrecededLoop, Recorder};
pub use phases::{Phase, PhaseProgram};

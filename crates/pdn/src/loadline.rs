//! The load-line (adaptive voltage positioning) model of paper §2.
//!
//! "Load-line or adaptive voltage positioning is a model that describes
//! the voltage and current relationship under a given system impedance,
//! denoted by RLL. … The voltage at the load is defined as
//! `Vccload = Vcc – RLL · Icc`." RLL is typically 1.6–2.4 mΩ for recent
//! client processors.

/// A load-line with impedance `RLL` (milliohms).
///
/// # Examples
///
/// ```
/// use ichannels_pdn::loadline::LoadLine;
///
/// let ll = LoadLine::new(1.9);
/// // 20 A through 1.9 mΩ drops 38 mV at the load.
/// assert!((ll.vccload_mv(1000.0, 20.0) - 962.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadLine {
    rll_mohm: f64,
}

impl LoadLine {
    /// Creates a load-line with the given impedance in milliohms.
    ///
    /// # Panics
    ///
    /// Panics if `rll_mohm` is negative or not finite.
    pub fn new(rll_mohm: f64) -> Self {
        assert!(
            rll_mohm.is_finite() && rll_mohm >= 0.0,
            "invalid load-line impedance: {rll_mohm} mΩ"
        );
        LoadLine { rll_mohm }
    }

    /// Load-line impedance in milliohms.
    pub fn rll_mohm(&self) -> f64 {
        self.rll_mohm
    }

    /// Voltage drop across the load-line for a given current (mV).
    pub fn drop_mv(&self, icc_a: f64) -> f64 {
        icc_a * self.rll_mohm
    }

    /// Voltage at the load input: `Vccload = Vcc − RLL·Icc` (all mV / A).
    pub fn vccload_mv(&self, vcc_mv: f64, icc_a: f64) -> f64 {
        vcc_mv - self.drop_mv(icc_a)
    }

    /// The guardband (extra VR output voltage) needed so that the load
    /// still sees `vccmin_mv` at current `icc_a`.
    pub fn guardband_for_mv(&self, vccmin_mv: f64, icc_a: f64) -> f64 {
        vccmin_mv + self.drop_mv(icc_a)
    }

    /// The weakest client load-line of the paper's platform catalog
    /// (Coffee Lake's 1.6 mΩ) — the reference rail against which
    /// cross-core separation compression is measured.
    pub const CLIENT_REFERENCE_RLL_MOHM: f64 = 1.6;

    /// The reference client load-line (see
    /// [`LoadLine::CLIENT_REFERENCE_RLL_MOHM`]).
    pub fn client_reference() -> Self {
        LoadLine::new(Self::CLIENT_REFERENCE_RLL_MOHM)
    }

    /// Cross-core separation-compression factor of this rail versus a
    /// reference rail.
    ///
    /// A remote core's PHI reaches the receiver only through the shared
    /// rail's IR drop, `RLL · ΔIcc`, so the receiver-visible voltage
    /// separation between adjacent sender levels scales linearly with
    /// `RLL`. A stiffer (lower-impedance) rail therefore *compresses*
    /// the cross-core level separation by `RLL / RLL_ref`, clamped to
    /// 1.0 — a softer rail widens separation rather than compressing
    /// it. This is the factor the adaptive receiver calibrates against:
    /// 0.56 for the 0.9 mΩ Skylake-SP rail vs the 1.6 mΩ client
    /// reference, 1.0 for every client part.
    pub fn separation_compression(&self, reference: &LoadLine) -> f64 {
        if reference.rll_mohm <= 0.0 {
            return 1.0;
        }
        (self.rll_mohm / reference.rll_mohm).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_drop() {
        let ll = LoadLine::new(2.0);
        assert_eq!(ll.drop_mv(10.0), 20.0);
        assert_eq!(ll.vccload_mv(800.0, 10.0), 780.0);
    }

    #[test]
    fn zero_impedance_is_ideal() {
        let ll = LoadLine::new(0.0);
        assert_eq!(ll.vccload_mv(800.0, 100.0), 800.0);
    }

    #[test]
    fn guardband_inverts_drop() {
        let ll = LoadLine::new(1.6);
        let gb = ll.guardband_for_mv(650.0, 30.0);
        assert!((ll.vccload_mv(gb, 30.0) - 650.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid load-line impedance")]
    fn negative_impedance_panics() {
        let _ = LoadLine::new(-1.0);
    }

    #[test]
    fn separation_compression_is_clamped_and_linear() {
        let reference = LoadLine::client_reference();
        // The server rail compresses cross-core separation by RLL ratio.
        let server = LoadLine::new(0.9);
        assert!((server.separation_compression(&reference) - 0.9 / 1.6).abs() < 1e-12);
        // Client rails at or above the reference do not compress.
        assert_eq!(reference.separation_compression(&reference), 1.0);
        assert_eq!(LoadLine::new(1.9).separation_compression(&reference), 1.0);
        // A zero-impedance reference cannot define compression.
        assert_eq!(server.separation_compression(&LoadLine::new(0.0)), 1.0);
    }

    proptest! {
        /// Paper §2: "the voltage at the load input (Vccload) decreases
        /// when the load's current (Icc) increases."
        #[test]
        fn vccload_monotonically_decreasing_in_current(
            rll in 0.1f64..5.0,
            vcc in 500.0f64..1500.0,
            i1 in 0.0f64..100.0,
            delta in 0.01f64..50.0,
        ) {
            let ll = LoadLine::new(rll);
            let i2 = i1 + delta;
            prop_assert!(ll.vccload_mv(vcc, i2) < ll.vccload_mv(vcc, i1));
        }

        /// The drop is linear in current: superposition holds.
        #[test]
        fn drop_is_linear(rll in 0.1f64..5.0, a in 0.0f64..50.0, b in 0.0f64..50.0) {
            let ll = LoadLine::new(rll);
            let lhs = ll.drop_mv(a + b);
            let rhs = ll.drop_mv(a) + ll.drop_mv(b);
            prop_assert!((lhs - rhs).abs() < 1e-9);
        }
    }
}

//! Voltage/frequency operating curves.
//!
//! Paper §5.3, observation 2: "the voltage is set to a level
//! corresponding to the new frequency based on the voltage/frequency
//! curves". Each platform ships a fused V/F curve; the PMU looks up the
//! base operating voltage for a target frequency and then adds the
//! adaptive guardband on top.

use ichannels_uarch::time::Freq;

/// A piecewise-linear voltage/frequency curve.
///
/// Points must be strictly increasing in frequency and non-decreasing in
/// voltage. Lookups interpolate linearly and clamp at the endpoints.
///
/// # Examples
///
/// ```
/// use ichannels_pdn::vf_curve::VfCurve;
/// use ichannels_uarch::time::Freq;
///
/// let curve = VfCurve::new(vec![
///     (Freq::from_ghz(1.0), 700.0),
///     (Freq::from_ghz(2.0), 850.0),
/// ]).unwrap();
/// assert!((curve.voltage_mv(Freq::from_ghz(1.5)) - 775.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VfCurve {
    points: Vec<(Freq, f64)>,
}

/// Error constructing a [`VfCurve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfCurveError {
    /// The curve needs at least two points.
    TooFewPoints,
    /// Frequencies must be strictly increasing.
    NonMonotonicFrequency,
    /// Voltages must be non-decreasing with frequency.
    DecreasingVoltage,
    /// A voltage value was negative or not finite.
    InvalidVoltage,
}

impl std::fmt::Display for VfCurveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VfCurveError::TooFewPoints => write!(f, "V/F curve needs at least two points"),
            VfCurveError::NonMonotonicFrequency => {
                write!(f, "V/F curve frequencies must be strictly increasing")
            }
            VfCurveError::DecreasingVoltage => {
                write!(f, "V/F curve voltages must be non-decreasing")
            }
            VfCurveError::InvalidVoltage => write!(f, "V/F curve voltage invalid"),
        }
    }
}

impl std::error::Error for VfCurveError {}

impl VfCurve {
    /// Builds a curve from `(frequency, voltage_mv)` points.
    ///
    /// # Errors
    ///
    /// Returns a [`VfCurveError`] if fewer than two points are given, the
    /// frequencies are not strictly increasing, voltages decrease, or a
    /// voltage is invalid.
    pub fn new(points: Vec<(Freq, f64)>) -> Result<Self, VfCurveError> {
        if points.len() < 2 {
            return Err(VfCurveError::TooFewPoints);
        }
        for w in points.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(VfCurveError::NonMonotonicFrequency);
            }
            if w[1].1 < w[0].1 {
                return Err(VfCurveError::DecreasingVoltage);
            }
        }
        if points.iter().any(|(_, v)| !v.is_finite() || *v < 0.0) {
            return Err(VfCurveError::InvalidVoltage);
        }
        Ok(VfCurve { points })
    }

    /// The curve's control points.
    pub fn points(&self) -> &[(Freq, f64)] {
        &self.points
    }

    /// Lowest frequency on the curve.
    pub fn min_freq(&self) -> Freq {
        // Construction rejects curves with fewer than two points.
        self.points[0].0
    }

    /// Highest frequency on the curve.
    pub fn max_freq(&self) -> Freq {
        self.points[self.points.len() - 1].0
    }

    /// Operating voltage (mV) for `freq`, linearly interpolated and
    /// clamped at the curve endpoints.
    pub fn voltage_mv(&self, freq: Freq) -> f64 {
        let pts = &self.points;
        if freq <= pts[0].0 {
            return pts[0].1;
        }
        if freq >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        for w in pts.windows(2) {
            let (f0, v0) = w[0];
            let (f1, v1) = w[1];
            if freq >= f0 && freq <= f1 {
                let t = (freq.as_hz() - f0.as_hz()) as f64 / (f1.as_hz() - f0.as_hz()) as f64;
                return v0 + t * (v1 - v0);
            }
        }
        unreachable!("frequency {freq} not bracketed by curve");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn curve() -> VfCurve {
        VfCurve::new(vec![
            (Freq::from_ghz(0.8), 650.0),
            (Freq::from_ghz(1.4), 760.0),
            (Freq::from_ghz(2.2), 900.0),
            (Freq::from_ghz(3.1), 1120.0),
        ])
        .unwrap()
    }

    #[test]
    fn interpolation_at_knots() {
        let c = curve();
        assert_eq!(c.voltage_mv(Freq::from_ghz(1.4)), 760.0);
        assert_eq!(c.voltage_mv(Freq::from_ghz(3.1)), 1120.0);
    }

    #[test]
    fn interpolation_between_knots() {
        let c = curve();
        let v = c.voltage_mv(Freq::from_ghz(1.8));
        assert!((v - 830.0).abs() < 1e-9, "v = {v}");
    }

    #[test]
    fn clamps_outside_range() {
        let c = curve();
        assert_eq!(c.voltage_mv(Freq::from_ghz(0.4)), 650.0);
        assert_eq!(c.voltage_mv(Freq::from_ghz(5.0)), 1120.0);
    }

    #[test]
    fn rejects_bad_curves() {
        assert_eq!(
            VfCurve::new(vec![(Freq::from_ghz(1.0), 700.0)]).unwrap_err(),
            VfCurveError::TooFewPoints
        );
        assert_eq!(
            VfCurve::new(vec![
                (Freq::from_ghz(2.0), 700.0),
                (Freq::from_ghz(1.0), 800.0)
            ])
            .unwrap_err(),
            VfCurveError::NonMonotonicFrequency
        );
        assert_eq!(
            VfCurve::new(vec![
                (Freq::from_ghz(1.0), 800.0),
                (Freq::from_ghz(2.0), 700.0)
            ])
            .unwrap_err(),
            VfCurveError::DecreasingVoltage
        );
    }

    proptest! {
        /// Voltage lookups are monotone non-decreasing in frequency.
        #[test]
        fn monotone_lookup(f1 in 0.5f64..4.0, f2 in 0.5f64..4.0) {
            let c = curve();
            let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
            let v_lo = c.voltage_mv(Freq::from_ghz(lo));
            let v_hi = c.voltage_mv(Freq::from_ghz(hi));
            prop_assert!(v_lo <= v_hi + 1e-9);
        }

        /// Interpolated values stay within the curve's voltage envelope.
        #[test]
        fn bounded_lookup(f in 0.0f64..6.0) {
            let c = curve();
            let v = c.voltage_mv(Freq::from_ghz(f));
            prop_assert!((650.0..=1120.0).contains(&v));
        }
    }
}

//! Package supply-current model.
//!
//! Total `Icc` drawn from the core VR is modelled as the sum of
//!
//! * per-core **dynamic** current `Cdyn · Vcc · F · activity`,
//! * a **base** current for the always-on core-domain logic, and
//! * **leakage**, proportional to voltage with a mild temperature
//!   coefficient (paper §2: the minimum current is the leakage current
//!   once clocks are gated).

use crate::guardband::CdynTable;
use ichannels_uarch::isa::InstClass;
use ichannels_uarch::time::Freq;

/// Per-core execution state relevant to current draw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreActivity {
    /// Class of instructions the core is executing.
    pub class: InstClass,
    /// Activity factor ∈ [0, 1]: fraction of peak switching for that
    /// class (1.0 = tight micro-benchmark loop / power virus).
    pub activity: f64,
    /// Whether the core's clocks are running at all.
    pub clocks_on: bool,
}

impl CoreActivity {
    /// An idle, clock-gated core (leakage only).
    pub const IDLE: CoreActivity = CoreActivity {
        class: InstClass::Scalar64,
        activity: 0.0,
        clocks_on: false,
    };

    /// A core running a tight loop of `class` instructions.
    pub fn busy(class: InstClass) -> Self {
        CoreActivity {
            class,
            activity: 1.0,
            clocks_on: true,
        }
    }

    /// A core running `class` at partial intensity (typical application).
    ///
    /// # Panics
    ///
    /// Panics if `activity` is outside [0, 1].
    pub fn partial(class: InstClass, activity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&activity),
            "activity must be in [0,1]: {activity}"
        );
        CoreActivity {
            class,
            activity,
            clocks_on: true,
        }
    }
}

/// Fraction of the worst-case (guardband-provisioning) dynamic
/// capacitance that a sustained loop actually toggles. Voltage
/// guardbands are provisioned for worst-case transients (Equation 1,
/// power-virus `Cdyn`); sustained current draw is roughly half of that
/// on real parts, which is what reconciles the paper's 12–15 µs
/// throttling periods with its ~30 A Figure 7(a) current measurements.
pub const SUSTAINED_UTILIZATION: f64 = 0.5;

/// The package current model.
///
/// # Examples
///
/// ```
/// use ichannels_pdn::current::{CurrentModel, CoreActivity};
/// use ichannels_pdn::guardband::CdynTable;
/// use ichannels_uarch::isa::InstClass;
/// use ichannels_uarch::time::Freq;
///
/// let m = CurrentModel::new(CdynTable::default(), 2.0, 1.5, 0.004);
/// let icc = m.icc_a(
///     &[CoreActivity::busy(InstClass::Heavy256)],
///     1120.0,
///     Freq::from_ghz(3.1),
///     60.0,
/// );
/// assert!(icc > 10.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CurrentModel {
    cdyn: CdynTable,
    base_a: f64,
    leak_a_at_nominal: f64,
    leak_temp_coeff_per_c: f64,
}

impl CurrentModel {
    /// Nominal voltage for leakage normalization (mV).
    pub const NOMINAL_VCC_MV: f64 = 1000.0;
    /// Reference temperature for leakage normalization (°C).
    pub const NOMINAL_TEMP_C: f64 = 50.0;

    /// Creates a current model.
    ///
    /// * `base_a` — always-on core-domain current (A) while any clock runs.
    /// * `leak_a_at_nominal` — leakage at 1 V / 50 °C (A).
    /// * `leak_temp_coeff_per_c` — fractional leakage increase per °C.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite parameters.
    pub fn new(
        cdyn: CdynTable,
        base_a: f64,
        leak_a_at_nominal: f64,
        leak_temp_coeff_per_c: f64,
    ) -> Self {
        for (name, v) in [
            ("base_a", base_a),
            ("leak_a_at_nominal", leak_a_at_nominal),
            ("leak_temp_coeff_per_c", leak_temp_coeff_per_c),
        ] {
            assert!(v.is_finite() && v >= 0.0, "invalid {name}: {v}");
        }
        CurrentModel {
            cdyn,
            base_a,
            leak_a_at_nominal,
            leak_temp_coeff_per_c,
        }
    }

    /// The capacitance table backing the dynamic term.
    pub fn cdyn(&self) -> &CdynTable {
        &self.cdyn
    }

    /// Leakage current (A) at the given voltage/temperature.
    pub fn leakage_a(&self, vcc_mv: f64, temp_c: f64) -> f64 {
        let v_scale = vcc_mv / Self::NOMINAL_VCC_MV;
        let t_scale = 1.0 + self.leak_temp_coeff_per_c * (temp_c - Self::NOMINAL_TEMP_C);
        (self.leak_a_at_nominal * v_scale * t_scale).max(0.0)
    }

    /// Dynamic current (A) of a single core.
    pub fn core_dynamic_a(&self, act: &CoreActivity, vcc_mv: f64, freq: Freq) -> f64 {
        if !act.clocks_on {
            return 0.0;
        }
        self.cdyn.cdyn_nf(act.class)
            * SUSTAINED_UTILIZATION
            * 1e-9
            * (vcc_mv * 1e-3)
            * freq.as_hz() as f64
            * act.activity
    }

    /// Total package current (A) for the given per-core activities.
    pub fn icc_a(&self, cores: &[CoreActivity], vcc_mv: f64, freq: Freq, temp_c: f64) -> f64 {
        let dynamic: f64 = cores
            .iter()
            .map(|a| self.core_dynamic_a(a, vcc_mv, freq))
            .sum();
        let base = if cores.iter().any(|a| a.clocks_on) {
            self.base_a
        } else {
            0.0
        };
        dynamic + base + self.leakage_a(vcc_mv, temp_c)
    }

    /// Package power (W) at the operating point.
    pub fn power_w(&self, cores: &[CoreActivity], vcc_mv: f64, freq: Freq, temp_c: f64) -> f64 {
        self.icc_a(cores, vcc_mv, freq, temp_c) * vcc_mv * 1e-3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model() -> CurrentModel {
        CurrentModel::new(CdynTable::default(), 2.0, 1.5, 0.004)
    }

    #[test]
    fn idle_package_draws_only_leakage() {
        let m = model();
        let icc = m.icc_a(
            &[CoreActivity::IDLE, CoreActivity::IDLE],
            800.0,
            Freq::from_ghz(2.0),
            50.0,
        );
        assert!((icc - m.leakage_a(800.0, 50.0)).abs() < 1e-12);
    }

    #[test]
    fn avx2_draws_more_than_scalar() {
        let m = model();
        let f = Freq::from_ghz(3.1);
        let scalar = m.icc_a(&[CoreActivity::busy(InstClass::Scalar64)], 1120.0, f, 60.0);
        let avx2 = m.icc_a(&[CoreActivity::busy(InstClass::Heavy256)], 1120.0, f, 60.0);
        assert!(avx2 > scalar * 1.5, "scalar={scalar} avx2={avx2}");
    }

    #[test]
    fn mobile_iccmax_scenario() {
        // Figure 7(a): two Cannon Lake cores running AVX2 at 3.1 GHz must
        // exceed Iccmax = 29 A; at 2.2 GHz they must not.
        let m = model();
        let both = [
            CoreActivity::busy(InstClass::Heavy256),
            CoreActivity::busy(InstClass::Heavy256),
        ];
        let at_31 = m.icc_a(&both, 1120.0, Freq::from_ghz(3.1), 60.0);
        let at_22 = m.icc_a(&both, 900.0, Freq::from_ghz(2.2), 60.0);
        assert!(at_31 > 29.0, "icc@3.1GHz = {at_31}");
        assert!(at_22 < 29.0, "icc@2.2GHz = {at_22}");
    }

    #[test]
    fn leakage_grows_with_temp_and_voltage() {
        let m = model();
        assert!(m.leakage_a(1000.0, 90.0) > m.leakage_a(1000.0, 50.0));
        assert!(m.leakage_a(1200.0, 50.0) > m.leakage_a(1000.0, 50.0));
    }

    #[test]
    fn power_is_v_times_i() {
        let m = model();
        let cores = [CoreActivity::busy(InstClass::Heavy256)];
        let f = Freq::from_ghz(2.0);
        let p = m.power_w(&cores, 900.0, f, 55.0);
        let i = m.icc_a(&cores, 900.0, f, 55.0);
        assert!((p - i * 0.9).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "activity must be in")]
    fn partial_activity_validated() {
        let _ = CoreActivity::partial(InstClass::Scalar64, 1.5);
    }

    proptest! {
        /// Icc is monotone in activity factor.
        #[test]
        fn monotone_in_activity(a1 in 0.0f64..1.0, d in 0.001f64..0.5) {
            let m = model();
            let a2 = (a1 + d).min(1.0);
            let f = Freq::from_ghz(2.0);
            let i1 = m.icc_a(&[CoreActivity::partial(InstClass::Heavy256, a1)], 900.0, f, 50.0);
            let i2 = m.icc_a(&[CoreActivity::partial(InstClass::Heavy256, a2)], 900.0, f, 50.0);
            prop_assert!(i2 >= i1);
        }

        /// Icc is monotone in frequency and voltage.
        #[test]
        fn monotone_in_freq(g1 in 0.8f64..4.0, d in 0.05f64..1.0) {
            let m = model();
            let cores = [CoreActivity::busy(InstClass::Heavy256)];
            let i1 = m.icc_a(&cores, 900.0, Freq::from_ghz(g1), 50.0);
            let i2 = m.icc_a(&cores, 900.0, Freq::from_ghz(g1 + d), 50.0);
            prop_assert!(i2 > i1);
        }
    }
}

//! # `ichannels-pdn` — power delivery network substrate
//!
//! Models the electrical side of the IChannels (ISCA 2021) reproduction:
//! everything between the voltage regulator and the core supply rails.
//!
//! * [`loadline`] — `Vccload = Vcc − RLL·Icc` (Figure 2(a,b)).
//! * [`vf_curve`] — fused voltage/frequency operating curves.
//! * [`guardband`] — the adaptive multi-level voltage guardband and
//!   Equation 1 (`ΔV = (Cdyn2 − Cdyn1)·Vcc·F·RLL`).
//! * [`regulator`] — MBVR/FIVR/LDO voltage regulator state machines with
//!   command latency and linear slew; the µs-scale ramp times are the
//!   root cause of the multi-level throttling period.
//! * [`svid`] — the serializing SVID bus; queueing behind another core's
//!   transition is the root cause of *Multi-Throttling-Cores*.
//! * [`limits`] — Vccmax/Iccmax protection (Figure 7).
//! * [`power_gate`] — AVX-unit power gates with staggered wake (8–15 ns,
//!   ~0.1 % of the throttling period — Key Conclusion 3).
//! * [`droop`] — di/dt transient droops and the Vccmin emergency check
//!   the guardband exists to prevent (Key Conclusion 1).
//! * [`current`] — dynamic + base + leakage package current model.
//!
//! # Example
//!
//! Computing the throttling period implied by an AVX2 guardband ramp on
//! an MBVR platform:
//!
//! ```
//! use ichannels_pdn::guardband::{CdynTable, GuardbandModel};
//! use ichannels_pdn::regulator::VrModel;
//! use ichannels_uarch::isa::InstClass;
//! use ichannels_uarch::time::Freq;
//!
//! let gb = GuardbandModel::new(CdynTable::default(), 1.6);
//! let dv = gb.core_guardband_mv(InstClass::Heavy256, 1000.0, Freq::from_ghz(3.0));
//! let tp = VrModel::mbvr().transition_time(dv);
//! // The paper's measured AVX2 throttling period: 12–15 µs.
//! assert!(tp.as_us() > 10.0 && tp.as_us() < 16.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod current;
pub mod droop;
pub mod guardband;
pub mod limits;
pub mod loadline;
pub mod power_gate;
pub mod regulator;
pub mod svid;
pub mod vf_curve;

pub use current::{CoreActivity, CurrentModel};
pub use droop::DroopModel;
pub use guardband::{CdynTable, GuardbandModel};
pub use limits::{ElectricalLimits, LimitViolation};
pub use loadline::LoadLine;
pub use power_gate::{GateState, PowerGate};
pub use regulator::{Vr, VrKind, VrModel};
pub use svid::{SvidBus, SvidGrant};
pub use vf_curve::{VfCurve, VfCurveError};

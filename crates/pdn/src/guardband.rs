//! The adaptive voltage guardband model (paper §2, Equation 1).
//!
//! Modern processors define multiple power-virus levels based on the
//! maximum dynamic capacitance (`Cdyn`) an architectural state can draw.
//! When moving from level 1 to level 2 the required guardband is
//!
//! ```text
//! ΔV = Vcc2 − Vcc1 ≈ (Icc2 − Icc1) · RLL
//!    = (Cdyn2 − Cdyn1) · Vcc1 · F · RLL        (Equation 1)
//! ```
//!
//! `Cdyn` per core is a function of the computational intensity and width
//! of the executing instructions; core contributions are additive across
//! the package (the Figure 6(a) voltage steps: +8 mV when core 1 starts
//! AVX2, a further +9 mV when core 0 joins).

use ichannels_uarch::isa::InstClass;
use ichannels_uarch::time::Freq;

/// Per-class core dynamic capacitance (nF) while running a tight loop of
/// instructions of that class.
///
/// The absolute values are calibrated so that the derived throttling
/// periods land in the paper's measured ranges (see DESIGN.md §1):
/// AVX2 (`256b Heavy`) at 3 GHz / ~1 V / 1.6 mΩ gives ΔV ≈ 30 mV and a
/// 12–15 µs TP on an MBVR platform.
#[derive(Debug, Clone, PartialEq)]
pub struct CdynTable {
    nf: [f64; 7],
}

impl Default for CdynTable {
    fn default() -> Self {
        CdynTable {
            // Indexed by InstClass::intensity_rank():
            //   64b, 128bL, 128bH, 256bL, 256bH, 512bL, 512bH
            nf: [1.2, 2.6, 3.8, 5.2, 7.4, 9.8, 14.0],
        }
    }
}

impl CdynTable {
    /// Builds a table from per-class capacitances (nF), indexed by
    /// [`InstClass::intensity_rank`].
    ///
    /// # Panics
    ///
    /// Panics if values are not finite, negative, or not non-decreasing
    /// in intensity rank (higher intensity must not draw less).
    pub fn new(nf: [f64; 7]) -> Self {
        assert!(
            nf.iter().all(|c| c.is_finite() && *c >= 0.0),
            "invalid Cdyn values"
        );
        assert!(
            nf.windows(2).all(|w| w[1] >= w[0]),
            "Cdyn must be non-decreasing in intensity"
        );
        CdynTable { nf }
    }

    /// Dynamic capacitance (nF) of a core running `class` in a loop.
    pub fn cdyn_nf(&self, class: InstClass) -> f64 {
        self.nf[class.intensity_rank() as usize]
    }

    /// Extra capacitance of `class` relative to the scalar baseline (nF).
    pub fn delta_from_scalar_nf(&self, class: InstClass) -> f64 {
        self.cdyn_nf(class) - self.cdyn_nf(InstClass::Scalar64)
    }
}

/// Equation 1 of the paper: the guardband `ΔV` (mV) required when the
/// per-core dynamic capacitance rises from `cdyn1_nf` to `cdyn2_nf` at
/// supply voltage `vcc_mv` and core frequency `freq`, through load-line
/// impedance `rll_mohm`.
pub fn delta_v_mv(cdyn1_nf: f64, cdyn2_nf: f64, vcc_mv: f64, freq: Freq, rll_mohm: f64) -> f64 {
    // ΔIcc = ΔCdyn · Vcc · F  (nF · V · Hz → A when Cdyn in F)
    let delta_icc_a = (cdyn2_nf - cdyn1_nf) * 1e-9 * (vcc_mv * 1e-3) * freq.as_hz() as f64;
    // ΔV = ΔIcc · RLL (A · mΩ → mV)
    delta_icc_a * rll_mohm
}

/// The adaptive guardband model: maps the set of per-core executing
/// classes to the total guardband the VR output must carry above the
/// V/F-curve base voltage.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardbandModel {
    cdyn: CdynTable,
    rll_mohm: f64,
}

impl GuardbandModel {
    /// Creates a guardband model.
    ///
    /// # Panics
    ///
    /// Panics if `rll_mohm` is negative or not finite.
    pub fn new(cdyn: CdynTable, rll_mohm: f64) -> Self {
        assert!(
            rll_mohm.is_finite() && rll_mohm >= 0.0,
            "invalid RLL: {rll_mohm}"
        );
        GuardbandModel { cdyn, rll_mohm }
    }

    /// The capacitance table.
    pub fn cdyn(&self) -> &CdynTable {
        &self.cdyn
    }

    /// Load-line impedance used for Equation 1.
    pub fn rll_mohm(&self) -> f64 {
        self.rll_mohm
    }

    /// Guardband contribution (mV) of a single core executing `class` at
    /// `vcc_mv` / `freq`, relative to the same core running scalar code.
    pub fn core_guardband_mv(&self, class: InstClass, vcc_mv: f64, freq: Freq) -> f64 {
        delta_v_mv(
            self.cdyn.cdyn_nf(InstClass::Scalar64),
            self.cdyn.cdyn_nf(class),
            vcc_mv,
            freq,
            self.rll_mohm,
        )
    }

    /// Fraction of a core's guardband that is *per-core* (di/dt
    /// emergency margin, additive across PHI cores — the Figure 6(a)
    /// voltage steps and the Figure 10(a) two-core TP exacerbation).
    /// The remaining `1 − PER_CORE_SHARE` is a *package-shared*
    /// component that follows the highest licensed class across all
    /// cores — this shared component is what lets a concurrent
    /// application's higher-level PHI shift the voltage under a covert
    /// channel and corrupt its symbols (Figure 14(b)).
    pub const PER_CORE_SHARE: f64 = 0.75;

    /// Total guardband (mV) above the base voltage for a package state:
    /// one entry per core giving the most intense class that core is
    /// licensed for (`None` ⇒ idle/scalar).
    ///
    /// `= PER_CORE_SHARE · Σ_c ΔV(class_c) + (1 − PER_CORE_SHARE) · ΔV(max_c class_c)`
    pub fn package_guardband_mv(
        &self,
        core_classes: &[Option<InstClass>],
        vcc_mv: f64,
        freq: Freq,
    ) -> f64 {
        self.package_guardband_iter_mv(core_classes.iter().copied(), vcc_mv, freq)
    }

    /// [`Self::package_guardband_mv`] over any class iterator, so hot
    /// callers (the PMU's per-event rail retargeting) need not build a
    /// slice. Single pass: the per-core sum and the shared max-class
    /// component are accumulated together, in iteration order, so the
    /// result is bit-identical to the slice form.
    pub fn package_guardband_iter_mv<I>(&self, core_classes: I, vcc_mv: f64, freq: Freq) -> f64
    where
        I: IntoIterator<Item = Option<InstClass>>,
    {
        let mut per_core = 0.0f64;
        let mut max_class: Option<InstClass> = None;
        for class in core_classes.into_iter().flatten() {
            per_core += self.core_guardband_mv(class, vcc_mv, freq);
            max_class = Some(max_class.map_or(class, |m| m.max(class)));
        }
        let shared = self.core_guardband_mv(max_class.unwrap_or(InstClass::Scalar64), vcc_mv, freq);
        Self::PER_CORE_SHARE * per_core + (1.0 - Self::PER_CORE_SHARE) * shared
    }

    /// The guardband (mV) of the worst-case power virus: all `n_cores`
    /// executing the most intense class. This is the level the paper's
    /// proposed *secure-mode* mitigation (§7) pins the system at.
    pub fn secure_mode_guardband_mv(&self, n_cores: usize, vcc_mv: f64, freq: Freq) -> f64 {
        let classes = std::iter::repeat_n(Some(InstClass::Heavy512), n_cores);
        self.package_guardband_iter_mv(classes, vcc_mv, freq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model() -> GuardbandModel {
        GuardbandModel::new(CdynTable::default(), 1.9)
    }

    #[test]
    fn equation1_dimensional_check() {
        // ΔCdyn = 5 nF at 1 V, 2 GHz: ΔIcc = 5e-9 * 1 * 2e9 = 10 A;
        // through 2 mΩ: ΔV = 20 mV.
        let dv = delta_v_mv(0.0, 5.0, 1000.0, Freq::from_ghz(2.0), 2.0);
        assert!((dv - 20.0).abs() < 1e-9, "dv = {dv}");
    }

    #[test]
    fn guardband_increases_with_intensity() {
        let m = model();
        let f = Freq::from_ghz(1.4);
        let mut last = -1.0;
        for class in InstClass::ALL {
            let gb = m.core_guardband_mv(class, 760.0, f);
            assert!(gb >= last, "class {class}: {gb} < {last}");
            last = gb;
        }
        assert_eq!(m.core_guardband_mv(InstClass::Scalar64, 760.0, f), 0.0);
    }

    #[test]
    fn guardband_scales_with_frequency() {
        // Equation 1: ΔV ∝ F. Figure 10(a): TP grows with frequency.
        let m = model();
        let g1 = m.core_guardband_mv(InstClass::Heavy256, 760.0, Freq::from_ghz(1.0));
        let g14 = m.core_guardband_mv(InstClass::Heavy256, 760.0, Freq::from_ghz(1.4));
        assert!((g14 / g1 - 1.4).abs() < 1e-9);
    }

    #[test]
    fn package_guardband_grows_per_core_plus_shared() {
        let m = model();
        let f = Freq::from_ghz(2.0);
        let gb = m.core_guardband_mv(InstClass::Heavy256, 850.0, f);
        let one = m.package_guardband_mv(&[Some(InstClass::Heavy256), None], 850.0, f);
        let two = m.package_guardband_mv(
            &[Some(InstClass::Heavy256), Some(InstClass::Heavy256)],
            850.0,
            f,
        );
        // One core: full guardband (per-core + shared components).
        assert!((one - gb).abs() < 1e-9);
        // Second identical core adds the per-core share only — the
        // Figure 10(a) exacerbation is ~1.75x, matching the paper's
        // measured 5 µs → 9 µs.
        let expected = gb * (1.0 + GuardbandModel::PER_CORE_SHARE);
        assert!((two - expected).abs() < 1e-9, "two = {two}");
    }

    #[test]
    fn shared_component_follows_max_class() {
        // A second core licensed *higher* raises the shared component —
        // the Figure 14(b) interference path.
        let m = model();
        let f = Freq::from_ghz(1.4);
        let with_low_app = m.package_guardband_mv(
            &[Some(InstClass::Heavy128), Some(InstClass::Light128)],
            760.0,
            f,
        );
        let with_high_app = m.package_guardband_mv(
            &[Some(InstClass::Heavy128), Some(InstClass::Heavy512)],
            760.0,
            f,
        );
        let shared_delta = (1.0 - GuardbandModel::PER_CORE_SHARE)
            * (m.core_guardband_mv(InstClass::Heavy512, 760.0, f)
                - m.core_guardband_mv(InstClass::Heavy128, 760.0, f));
        let per_core_delta = GuardbandModel::PER_CORE_SHARE
            * (m.core_guardband_mv(InstClass::Heavy512, 760.0, f)
                - m.core_guardband_mv(InstClass::Light128, 760.0, f));
        assert!((with_high_app - with_low_app - shared_delta - per_core_delta).abs() < 1e-9);
    }

    #[test]
    fn figure6a_step_sizes_are_plausible() {
        // Coffee Lake at 2 GHz: each core starting AVX2 should add a step
        // in the high-single-digit mV range (paper: ~8 mV, ~9 mV).
        let m = GuardbandModel::new(CdynTable::default(), 1.6);
        let step = m.core_guardband_mv(InstClass::Heavy256, 850.0, Freq::from_ghz(2.0));
        assert!((5.0..25.0).contains(&step), "step = {step} mV");
    }

    #[test]
    fn avx2_guardband_matches_calibration_target() {
        // DESIGN.md: AVX2 at 3 GHz / ~1 V / 1.6 mΩ → ΔV ≈ 30 mV.
        let m = GuardbandModel::new(CdynTable::default(), 1.6);
        let dv = m.core_guardband_mv(InstClass::Heavy256, 1000.0, Freq::from_ghz(3.0));
        assert!((25.0..36.0).contains(&dv), "dv = {dv} mV");
    }

    #[test]
    fn secure_mode_is_the_upper_bound() {
        let m = model();
        let f = Freq::from_ghz(2.2);
        let secure = m.secure_mode_guardband_mv(2, 900.0, f);
        let any = m.package_guardband_mv(
            &[Some(InstClass::Heavy256), Some(InstClass::Light512)],
            900.0,
            f,
        );
        assert!(secure >= any);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn cdyn_table_must_be_monotone() {
        let _ = CdynTable::new([1.0, 2.0, 1.5, 3.0, 4.0, 5.0, 6.0]);
    }

    proptest! {
        /// ΔV is monotone in the class intensity for any operating point.
        #[test]
        fn monotone_in_class(vcc in 600.0f64..1300.0, ghz in 0.8f64..5.0, rll in 1.0f64..3.0) {
            let m = GuardbandModel::new(CdynTable::default(), rll);
            let f = Freq::from_ghz(ghz);
            for w in InstClass::ALL.windows(2) {
                let lo = m.core_guardband_mv(w[0], vcc, f);
                let hi = m.core_guardband_mv(w[1], vcc, f);
                prop_assert!(hi >= lo);
            }
        }

        /// Equation 1 linearity: ΔV(c1→c3) = ΔV(c1→c2) + ΔV(c2→c3).
        #[test]
        fn delta_v_is_additive(
            c1 in 0.0f64..5.0, d1 in 0.0f64..5.0, d2 in 0.0f64..5.0,
            vcc in 600.0f64..1300.0, ghz in 0.8f64..5.0, rll in 1.0f64..3.0,
        ) {
            let f = Freq::from_ghz(ghz);
            let c2 = c1 + d1;
            let c3 = c2 + d2;
            let whole = delta_v_mv(c1, c3, vcc, f, rll);
            let parts = delta_v_mv(c1, c2, vcc, f, rll) + delta_v_mv(c2, c3, vcc, f, rll);
            prop_assert!((whole - parts).abs() < 1e-9);
        }
    }
}

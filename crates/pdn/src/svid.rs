//! The serial voltage identification (SVID) bus.
//!
//! "The central PMU has several interfaces with on-chip and off-chip
//! components, such as the motherboard VR, called serial voltage
//! identification (SVID), to control the voltage level of the VR" (§2).
//!
//! The bus (and the single shared VR behind it) processes one voltage
//! transition at a time. This serialization is the root cause of
//! Observation 3 (*Multi-Throttling-Cores*): "the processor power
//! management unit waits until the voltage transition of one core
//! completes before starting the voltage transition of the next core",
//! so a second core's throttling period is extended by the first core's
//! in-flight transition.

use ichannels_uarch::time::SimTime;

/// A reservation granted by the bus: the window during which the
/// requested transition owns the VR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SvidGrant {
    /// When the transition actually begins (≥ request time).
    pub start: SimTime,
    /// When the transition completes and the bus frees.
    pub end: SimTime,
    /// How long the request waited behind earlier transitions.
    pub queued_for: SimTime,
}

/// A serializing SVID bus in front of a shared voltage regulator.
///
/// # Examples
///
/// ```
/// use ichannels_pdn::svid::SvidBus;
/// use ichannels_uarch::time::SimTime;
///
/// let mut bus = SvidBus::new();
/// // Core 0 requests a 10 us transition at t=0.
/// let g0 = bus.acquire(SimTime::ZERO, SimTime::from_us(10.0));
/// assert_eq!(g0.start, SimTime::ZERO);
/// // Core 1 requests at t=1 us: it queues behind core 0 (Observation 3).
/// let g1 = bus.acquire(SimTime::from_us(1.0), SimTime::from_us(5.0));
/// assert_eq!(g1.start, SimTime::from_us(10.0));
/// assert_eq!(g1.queued_for, SimTime::from_us(9.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SvidBus {
    free_at: SimTime,
    transitions_served: u64,
    total_queue_time: SimTime,
}

impl SvidBus {
    /// Creates an idle bus.
    pub fn new() -> Self {
        SvidBus::default()
    }

    /// Earliest instant at which a new transition could start.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// True if a transition is in flight at `now`.
    pub fn is_busy(&self, now: SimTime) -> bool {
        now < self.free_at
    }

    /// Reserves the bus for a transition of length `duration` requested
    /// at `now`; the transition starts as soon as the bus frees.
    pub fn acquire(&mut self, now: SimTime, duration: SimTime) -> SvidGrant {
        let start = now.max(self.free_at);
        let end = start + duration;
        self.free_at = end;
        let queued_for = start - now;
        self.transitions_served += 1;
        self.total_queue_time += queued_for;
        SvidGrant {
            start,
            end,
            queued_for,
        }
    }

    /// Number of transitions the bus has served.
    pub fn transitions_served(&self) -> u64 {
        self.transitions_served
    }

    /// Sum of queueing delays across all served transitions — a direct
    /// measure of the cross-core interference the channel exploits.
    pub fn total_queue_time(&self) -> SimTime {
        self.total_queue_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn back_to_back_requests_serialize() {
        let mut bus = SvidBus::new();
        let g0 = bus.acquire(SimTime::ZERO, SimTime::from_us(10.0));
        let g1 = bus.acquire(SimTime::ZERO, SimTime::from_us(10.0));
        let g2 = bus.acquire(SimTime::ZERO, SimTime::from_us(10.0));
        assert_eq!(g0.start.as_us(), 0.0);
        assert_eq!(g1.start.as_us(), 10.0);
        assert_eq!(g2.start.as_us(), 20.0);
        assert_eq!(bus.transitions_served(), 3);
        assert_eq!(bus.total_queue_time().as_us(), 30.0);
    }

    #[test]
    fn idle_bus_grants_immediately() {
        let mut bus = SvidBus::new();
        bus.acquire(SimTime::ZERO, SimTime::from_us(5.0));
        // Request long after the first completed: no queueing.
        let g = bus.acquire(SimTime::from_us(100.0), SimTime::from_us(5.0));
        assert_eq!(g.queued_for, SimTime::ZERO);
        assert_eq!(g.start, SimTime::from_us(100.0));
    }

    proptest! {
        /// Grants never overlap and never start before the request.
        #[test]
        fn grants_are_ordered_and_causal(reqs in proptest::collection::vec((0u64..1000, 1u64..100), 1..20)) {
            let mut bus = SvidBus::new();
            let mut now = SimTime::ZERO;
            let mut last_end = SimTime::ZERO;
            for (gap_us, dur_us) in reqs {
                now += SimTime::from_us(gap_us as f64);
                let g = bus.acquire(now, SimTime::from_us(dur_us as f64));
                prop_assert!(g.start >= now);
                prop_assert!(g.start >= last_end);
                prop_assert!(g.end > g.start);
                last_end = g.end;
            }
        }
    }
}

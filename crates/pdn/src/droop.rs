//! di/dt voltage-droop model and the voltage-emergency avoidance check
//! (paper §2, §5.2 / Key Conclusion 1).
//!
//! "Supply voltage fluctuations, known as the di/dt, occur when the
//! processor demands rapid changes in load current over a relatively
//! small time scale, due to large parasitic inductance in power
//! delivery." Short current bursts are filtered by the decoupling
//! capacitors; what remains is a droop whose magnitude grows with the
//! current step. The adaptive guardband exists precisely so that the
//! worst-case droop never pulls `Vccload` below `Vccmin`.

use crate::loadline::LoadLine;
use ichannels_uarch::time::SimTime;

/// Second-order-ish droop model: a current step of `ΔI` produces a
/// transient droop `k · ΔI` (mV per A) below the resistive (load-line)
/// operating point, decaying with time constant `tau`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DroopModel {
    /// Transient droop per ampere of current step (mV/A). Captures the
    /// parasitic-inductance kick the decaps cannot fully absorb.
    pub kick_mv_per_a: f64,
    /// Droop decay time constant (decap + VR loop response).
    pub tau: SimTime,
    /// Minimum operational voltage (mV): dipping below this is a
    /// *voltage emergency* (possible state corruption).
    pub vccmin_mv: f64,
}

impl DroopModel {
    /// Typical client-core values: ~1.1 mV/A of transient kick, ~100 ns
    /// decay, Vccmin 550 mV.
    pub fn client_default() -> Self {
        DroopModel {
            kick_mv_per_a: 1.1,
            tau: SimTime::from_ns(100.0),
            vccmin_mv: 550.0,
        }
    }

    /// Peak transient droop (mV) for a current step of `delta_icc_a`.
    pub fn peak_droop_mv(&self, delta_icc_a: f64) -> f64 {
        self.kick_mv_per_a * delta_icc_a.max(0.0)
    }

    /// Instantaneous droop `dt` after a step of `delta_icc_a`.
    pub fn droop_at_mv(&self, delta_icc_a: f64, dt: SimTime) -> f64 {
        self.peak_droop_mv(delta_icc_a) * (-(dt / self.tau)).exp()
    }

    /// Worst-case load voltage during a current step: VR output minus
    /// the resistive load-line drop minus the transient droop.
    pub fn worst_case_vccload_mv(
        &self,
        vcc_mv: f64,
        loadline: &LoadLine,
        icc_after_a: f64,
        delta_icc_a: f64,
    ) -> f64 {
        loadline.vccload_mv(vcc_mv, icc_after_a) - self.peak_droop_mv(delta_icc_a)
    }

    /// True if a current step would cause a voltage emergency (load
    /// voltage below `Vccmin`) at the given VR output voltage — the
    /// situation the guardband must rule out.
    pub fn is_voltage_emergency(
        &self,
        vcc_mv: f64,
        loadline: &LoadLine,
        icc_after_a: f64,
        delta_icc_a: f64,
    ) -> bool {
        self.worst_case_vccload_mv(vcc_mv, loadline, icc_after_a, delta_icc_a) < self.vccmin_mv
    }

    /// The minimum VR output voltage that keeps the load above `Vccmin`
    /// through a `delta_icc_a` step at final current `icc_after_a` —
    /// i.e., the guardband requirement expressed from the droop side.
    pub fn required_vcc_mv(&self, loadline: &LoadLine, icc_after_a: f64, delta_icc_a: f64) -> f64 {
        // Tiny epsilon so the inverse check is robust to f64 rounding.
        self.vccmin_mv + loadline.drop_mv(icc_after_a) + self.peak_droop_mv(delta_icc_a) + 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guardband::{CdynTable, GuardbandModel};
    use ichannels_uarch::isa::InstClass;
    use ichannels_uarch::time::Freq;
    use proptest::prelude::*;

    #[test]
    fn droop_decays_exponentially() {
        let m = DroopModel::client_default();
        let peak = m.peak_droop_mv(20.0);
        assert!((peak - 22.0).abs() < 1e-9);
        let later = m.droop_at_mv(20.0, SimTime::from_ns(100.0));
        assert!((later - peak / std::f64::consts::E).abs() < 1e-9);
        assert!(m.droop_at_mv(20.0, SimTime::from_us(2.0)) < 0.01);
    }

    #[test]
    fn emergency_detection() {
        let m = DroopModel::client_default();
        let ll = LoadLine::new(1.9);
        // 600 mV output with a 30 A step at 30 A final: deep emergency.
        assert!(m.is_voltage_emergency(600.0, &ll, 30.0, 30.0));
        // 700 mV output with a small step: safe.
        assert!(!m.is_voltage_emergency(700.0, &ll, 10.0, 2.0));
    }

    #[test]
    fn required_vcc_inverts_emergency() {
        let m = DroopModel::client_default();
        let ll = LoadLine::new(1.6);
        let v = m.required_vcc_mv(&ll, 25.0, 12.0);
        assert!(!m.is_voltage_emergency(v, &ll, 25.0, 12.0));
        assert!(m.is_voltage_emergency(v - 0.1, &ll, 25.0, 12.0));
    }

    /// Key Conclusion 1: with the adaptive guardband applied *before*
    /// executing the PHI, the Vccmin limit holds through the worst-case
    /// scalar→512b-Heavy current step; without it, it does not.
    #[test]
    fn guardband_prevents_voltage_emergencies() {
        let gb = GuardbandModel::new(CdynTable::default(), 1.9);
        let droop = DroopModel::client_default();
        let ll = LoadLine::new(1.9);
        let freq = Freq::from_ghz(3.0);
        // Keep Vccmin realistic relative to the operating point.
        let base_mv = droop.required_vcc_mv(&ll, 6.0, 2.0); // scalar-safe baseline
        let delta_icc = gb.cdyn().delta_from_scalar_nf(InstClass::Heavy512)
            * 1e-9
            * (base_mv * 1e-3)
            * freq.as_hz() as f64;
        let icc_after = 6.0 + delta_icc;
        // Without the guardband: emergency.
        assert!(
            droop.is_voltage_emergency(base_mv, &ll, icc_after, delta_icc),
            "step of {delta_icc:.1} A should droop below Vccmin"
        );
        // With the guardband raised first: safe. Eq. 1's guardband covers
        // the resistive load-line shift; real parts carry an additional
        // static di/dt margin sized to the worst-case kick, modelled here
        // as the droop model's own requirement.
        let guarded = base_mv
            + gb.core_guardband_mv(InstClass::Heavy512, base_mv, freq)
            + droop.peak_droop_mv(delta_icc) * 1.1;
        assert!(!droop.is_voltage_emergency(guarded, &ll, icc_after, delta_icc));
    }

    proptest! {
        /// Droop magnitude is monotone in the current step.
        #[test]
        fn droop_monotone(d1 in 0.0f64..50.0, extra in 0.01f64..20.0) {
            let m = DroopModel::client_default();
            prop_assert!(m.peak_droop_mv(d1 + extra) > m.peak_droop_mv(d1));
        }

        /// `required_vcc_mv` is always safe (never reports emergency).
        #[test]
        fn required_vcc_is_sufficient(icc in 0.0f64..60.0, step in 0.0f64..40.0, rll in 0.5f64..3.0) {
            let m = DroopModel::client_default();
            let ll = LoadLine::new(rll);
            let v = m.required_vcc_mv(&ll, icc, step);
            prop_assert!(!m.is_voltage_emergency(v, &ll, icc, step));
        }
    }
}

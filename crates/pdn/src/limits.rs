//! Maximum voltage / current design limits (paper §2, §5.3).
//!
//! "When dynamically increasing the voltage guardband … the processor may
//! reduce the cores' frequency 1) to keep the voltage within the maximum
//! operational voltage (Vccmax) and 2) to keep the current consumed from
//! the VR within the maximum current limit (Iccmax)." Exceeding Iccmax
//! "can result in irreversible damage to the VR or the processor chip".

/// Package electrical design limits.
///
/// # Examples
///
/// ```
/// use ichannels_pdn::limits::{ElectricalLimits, LimitViolation};
///
/// // Cannon Lake mobile limits (Figure 7(a)).
/// let lim = ElectricalLimits::new(1150.0, 29.0);
/// assert_eq!(lim.check(1100.0, 33.3), Some(LimitViolation::IccMax));
/// assert_eq!(lim.check(1100.0, 20.0), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElectricalLimits {
    vccmax_mv: f64,
    iccmax_a: f64,
}

/// Which electrical limit a proposed operating point violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LimitViolation {
    /// The VR output voltage would exceed `Vccmax` (desktop Figure 7(a)).
    VccMax,
    /// The supply current would exceed `Iccmax` (mobile Figure 7(a)).
    IccMax,
}

impl std::fmt::Display for LimitViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LimitViolation::VccMax => write!(f, "Vccmax limit violation"),
            LimitViolation::IccMax => write!(f, "Iccmax limit violation"),
        }
    }
}

impl ElectricalLimits {
    /// Creates the limits.
    ///
    /// # Panics
    ///
    /// Panics if either limit is non-positive or not finite.
    pub fn new(vccmax_mv: f64, iccmax_a: f64) -> Self {
        assert!(
            vccmax_mv.is_finite() && vccmax_mv > 0.0,
            "invalid Vccmax: {vccmax_mv}"
        );
        assert!(
            iccmax_a.is_finite() && iccmax_a > 0.0,
            "invalid Iccmax: {iccmax_a}"
        );
        ElectricalLimits {
            vccmax_mv,
            iccmax_a,
        }
    }

    /// Maximum operational voltage (mV).
    pub fn vccmax_mv(&self) -> f64 {
        self.vccmax_mv
    }

    /// Maximum VR output current (A).
    pub fn iccmax_a(&self) -> f64 {
        self.iccmax_a
    }

    /// Checks a proposed operating point. Vccmax is reported first when
    /// both are violated (voltage damage is the harder constraint).
    pub fn check(&self, vcc_mv: f64, icc_a: f64) -> Option<LimitViolation> {
        if vcc_mv > self.vccmax_mv {
            Some(LimitViolation::VccMax)
        } else if icc_a > self.iccmax_a {
            Some(LimitViolation::IccMax)
        } else {
            None
        }
    }

    /// Headroom to the voltage limit (mV); negative when violated.
    pub fn vcc_headroom_mv(&self, vcc_mv: f64) -> f64 {
        self.vccmax_mv - vcc_mv
    }

    /// Headroom to the current limit (A); negative when violated.
    pub fn icc_headroom_a(&self, icc_a: f64) -> f64 {
        self.iccmax_a - icc_a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desktop_vccmax_case() {
        // Figure 7(a): desktop AVX2 at 4.9 GHz exceeds Vccmax = 1.27 V
        // while current stays below Iccmax = 100 A.
        let lim = ElectricalLimits::new(1270.0, 100.0);
        assert_eq!(lim.check(1310.0, 45.0), Some(LimitViolation::VccMax));
        assert_eq!(lim.check(1258.0, 44.0), None);
    }

    #[test]
    fn mobile_iccmax_case() {
        // Figure 7(a): mobile AVX2 at 3.1 GHz exceeds Iccmax = 29 A while
        // voltage stays below Vccmax = 1.15 V.
        let lim = ElectricalLimits::new(1150.0, 29.0);
        assert_eq!(lim.check(1120.0, 33.0), Some(LimitViolation::IccMax));
        assert_eq!(lim.check(900.0, 19.0), None);
    }

    #[test]
    fn vccmax_takes_priority() {
        let lim = ElectricalLimits::new(1000.0, 10.0);
        assert_eq!(lim.check(1100.0, 20.0), Some(LimitViolation::VccMax));
    }

    #[test]
    fn headroom() {
        let lim = ElectricalLimits::new(1150.0, 29.0);
        assert_eq!(lim.vcc_headroom_mv(1100.0), 50.0);
        assert!(lim.icc_headroom_a(33.0) < 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid Iccmax")]
    fn rejects_nonpositive_limits() {
        let _ = ElectricalLimits::new(1000.0, 0.0);
    }
}

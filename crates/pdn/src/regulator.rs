//! Voltage regulator models.
//!
//! The paper evaluates three PDN styles (§2, §7): motherboard VRs
//! (**MBVR**, shared by all cores — Coffee Lake, Cannon Lake), fully
//! integrated VRs (**FIVR** — Haswell, faster but still shared), and
//! per-core low-dropout regulators (**LDO** — recent AMD parts, the
//! paper's proposed mitigation, <0.5 µs transitions).
//!
//! A [`Vr`] is a little state machine: the PMU issues a setpoint via
//! [`Vr::begin_transition`]; the output then holds for the command
//! latency (SVID round-trip + controller response) and ramps linearly at
//! the slew rate. The ~µs-scale ramp is precisely what creates the
//! multi-level throttling period the covert channels exploit: the core
//! stays throttled until [`Vr::transition_end`].

use ichannels_uarch::time::SimTime;

/// The three PDN regulator styles discussed in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VrKind {
    /// Motherboard voltage regulator shared by all cores (Coffee Lake,
    /// Cannon Lake). Slow command interface (off-chip SVID) + slow ramp.
    Mbvr,
    /// Fully-integrated VR (Haswell). On-die, faster ramp, still shared.
    Fivr,
    /// Per-core low-dropout regulator (the §7 mitigation; AMD Zen-style).
    /// Very fast transitions (< 0.5 µs).
    Ldo,
}

impl std::fmt::Display for VrKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VrKind::Mbvr => write!(f, "MBVR"),
            VrKind::Fivr => write!(f, "FIVR"),
            VrKind::Ldo => write!(f, "LDO"),
        }
    }
}

/// Electrical/timing parameters of a voltage regulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VrModel {
    /// Regulator style.
    pub kind: VrKind,
    /// Output slew rate while ramping, in mV/µs.
    pub slew_mv_per_us: f64,
    /// Latency from setpoint command to the start of the ramp (SVID
    /// serialization + controller response).
    pub cmd_latency: SimTime,
}

impl VrModel {
    /// Coffee Lake-style motherboard VR.
    pub fn mbvr() -> Self {
        VrModel {
            kind: VrKind::Mbvr,
            slew_mv_per_us: 2.4,
            cmd_latency: SimTime::from_us(1.2),
        }
    }

    /// Haswell-style FIVR: ~1.5× faster ramp, much lower command latency.
    pub fn fivr() -> Self {
        VrModel {
            kind: VrKind::Fivr,
            slew_mv_per_us: 3.8,
            cmd_latency: SimTime::from_ns(300.0),
        }
    }

    /// Per-core LDO (mitigation): 200 ns/V-class transitions.
    pub fn ldo() -> Self {
        VrModel {
            kind: VrKind::Ldo,
            slew_mv_per_us: 80.0,
            cmd_latency: SimTime::from_ns(100.0),
        }
    }

    /// Time to ramp across `delta_mv` (excluding command latency).
    ///
    /// # Panics
    ///
    /// Panics if `delta_mv` is negative or not finite.
    pub fn ramp_time(&self, delta_mv: f64) -> SimTime {
        assert!(
            delta_mv.is_finite() && delta_mv >= 0.0,
            "invalid ramp delta: {delta_mv}"
        );
        SimTime::from_us(delta_mv / self.slew_mv_per_us)
    }

    /// Full transition time for `delta_mv` including command latency.
    pub fn transition_time(&self, delta_mv: f64) -> SimTime {
        self.cmd_latency + self.ramp_time(delta_mv)
    }
}

/// A single in-flight voltage transition.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Transition {
    issued_at: SimTime,
    ramp_start: SimTime,
    end: SimTime,
    from_mv: f64,
    to_mv: f64,
}

/// A voltage regulator output: setpoint + linear ramp state machine.
///
/// # Examples
///
/// ```
/// use ichannels_pdn::regulator::{Vr, VrModel};
/// use ichannels_uarch::time::SimTime;
///
/// let mut vr = Vr::new(VrModel::mbvr(), 788.0);
/// let done = vr.begin_transition(SimTime::ZERO, 818.0);
/// // 30 mV at 2.4 mV/us + 1.2 us latency = 13.7 us.
/// assert!((done.as_us() - 13.7).abs() < 0.01);
/// assert_eq!(vr.voltage_mv(SimTime::ZERO), 788.0);
/// assert_eq!(vr.voltage_mv(done), 818.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Vr {
    model: VrModel,
    settled_mv: f64,
    transition: Option<Transition>,
}

impl Vr {
    /// Creates a regulator settled at `initial_mv`.
    ///
    /// # Panics
    ///
    /// Panics if `initial_mv` is negative or not finite.
    pub fn new(model: VrModel, initial_mv: f64) -> Self {
        assert!(
            initial_mv.is_finite() && initial_mv >= 0.0,
            "invalid initial voltage: {initial_mv}"
        );
        Vr {
            model,
            settled_mv: initial_mv,
            transition: None,
        }
    }

    /// The regulator's electrical model.
    pub fn model(&self) -> &VrModel {
        &self.model
    }

    /// Starts (or redirects) a transition toward `target_mv` at `now`,
    /// returning the completion instant.
    ///
    /// If a transition is already in flight, the output first settles at
    /// its instantaneous value and the new ramp starts from there — the
    /// behaviour of a VR receiving a new SVID setpoint mid-ramp.
    pub fn begin_transition(&mut self, now: SimTime, target_mv: f64) -> SimTime {
        let from = self.voltage_mv(now);
        let delta = (target_mv - from).abs();
        let ramp_start = now + self.model.cmd_latency;
        let end = ramp_start + self.model.ramp_time(delta);
        self.settled_mv = target_mv;
        self.transition = Some(Transition {
            issued_at: now,
            ramp_start,
            end,
            from_mv: from,
            to_mv: target_mv,
        });
        end
    }

    /// Completion time of the in-flight transition, if any.
    pub fn transition_end(&self) -> Option<SimTime> {
        self.transition.map(|t| t.end)
    }

    /// True if the output is still moving (or waiting on the command
    /// latency) at `now`.
    pub fn is_busy(&self, now: SimTime) -> bool {
        self.transition.is_some_and(|t| now < t.end)
    }

    /// Instantaneous output voltage at `now`.
    pub fn voltage_mv(&self, now: SimTime) -> f64 {
        match self.transition {
            None => self.settled_mv,
            Some(t) => {
                if now <= t.ramp_start {
                    t.from_mv
                } else if now >= t.end {
                    t.to_mv
                } else {
                    let frac = (now - t.ramp_start) / (t.end - t.ramp_start);
                    t.from_mv + (t.to_mv - t.from_mv) * frac
                }
            }
        }
    }

    /// Final setpoint voltage (where the output will settle).
    pub fn setpoint_mv(&self) -> f64 {
        self.settled_mv
    }

    /// Time at which the most recent transition was issued.
    pub fn last_issued_at(&self) -> Option<SimTime> {
        self.transition.map(|t| t.issued_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn models_ordering() {
        // FIVR ramps faster than MBVR; LDO fastest — this ordering is
        // what makes Haswell's TP (~9 µs) shorter than Coffee Lake's
        // (12–15 µs), Figure 8(a).
        let mbvr = VrModel::mbvr();
        let fivr = VrModel::fivr();
        let ldo = VrModel::ldo();
        let d = 30.0;
        assert!(fivr.transition_time(d) < mbvr.transition_time(d));
        assert!(ldo.transition_time(d) < fivr.transition_time(d));
        // LDO: <0.5 µs for a typical transition (paper §7).
        assert!(ldo.transition_time(d).as_us() < 0.5);
    }

    #[test]
    fn ramp_up_is_linear() {
        let mut vr = Vr::new(VrModel::mbvr(), 700.0);
        let end = vr.begin_transition(SimTime::ZERO, 724.0);
        let ramp_start = SimTime::from_us(1.2);
        let mid = ramp_start + (end - ramp_start).scale(0.5);
        assert!((vr.voltage_mv(mid) - 712.0).abs() < 0.05);
        assert_eq!(vr.voltage_mv(end + SimTime::from_us(1.0)), 724.0);
        assert!(vr.is_busy(SimTime::from_us(2.0)));
        assert!(!vr.is_busy(end));
    }

    #[test]
    fn ramp_down_works() {
        let mut vr = Vr::new(VrModel::mbvr(), 800.0);
        let end = vr.begin_transition(SimTime::ZERO, 776.0);
        assert_eq!(vr.voltage_mv(end), 776.0);
        assert!(vr.voltage_mv(end.scale(0.7)) <= 800.0);
    }

    #[test]
    fn redirect_mid_ramp_starts_from_instantaneous_value() {
        let mut vr = Vr::new(VrModel::mbvr(), 700.0);
        vr.begin_transition(SimTime::ZERO, 748.0);
        // Halfway through the ramp, redirect back down.
        let t = SimTime::from_us(11.2); // 1.2 latency + 10 of 20 us ramp
        let v_mid = vr.voltage_mv(t);
        assert!((v_mid - 724.0).abs() < 0.1);
        let end = vr.begin_transition(t, 700.0);
        assert!((vr.voltage_mv(t) - v_mid).abs() < 1e-9);
        assert_eq!(vr.voltage_mv(end), 700.0);
    }

    #[test]
    fn zero_delta_transition_costs_only_latency() {
        let mut vr = Vr::new(VrModel::mbvr(), 800.0);
        let end = vr.begin_transition(SimTime::ZERO, 800.0);
        assert_eq!(end, VrModel::mbvr().cmd_latency);
    }

    proptest! {
        /// The output never overshoots the [from, to] envelope.
        #[test]
        fn no_overshoot(from in 600.0f64..1200.0, to in 600.0f64..1200.0, at_us in 0.0f64..50.0) {
            let mut vr = Vr::new(VrModel::mbvr(), from);
            vr.begin_transition(SimTime::ZERO, to);
            let v = vr.voltage_mv(SimTime::from_us(at_us));
            let (lo, hi) = if from <= to { (from, to) } else { (to, from) };
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }

        /// Transition time grows with the voltage delta.
        #[test]
        fn transition_time_monotone(d1 in 0.0f64..60.0, extra in 0.1f64..60.0) {
            let m = VrModel::mbvr();
            prop_assert!(m.transition_time(d1 + extra) > m.transition_time(d1));
        }
    }
}

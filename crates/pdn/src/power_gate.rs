//! AVX-unit power gating (paper §2, §5.4).
//!
//! Each AVX unit sits behind a dedicated power-gate (Skylake onward).
//! Waking a gate uses a *staggered wake-up* to limit di/dt noise and
//! takes tens of nanoseconds — the paper measures 8–15 ns on Coffee Lake
//! and shows this accounts for only ~0.1 % of the throttling period
//! (Key Conclusion 3, refuting NetSpectre's power-gating hypothesis).

use ichannels_uarch::time::SimTime;

/// State of a power-gated domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateState {
    /// Gate closed: domain unpowered (saves leakage).
    Closed,
    /// Gate opening: staggered wake in progress until the given instant.
    Opening {
        /// Instant at which the domain becomes usable.
        ready_at: SimTime,
    },
    /// Gate open: domain powered.
    Open,
}

/// A power-gate with staggered wake-up.
///
/// # Examples
///
/// ```
/// use ichannels_pdn::power_gate::{PowerGate, GateState};
/// use ichannels_uarch::time::SimTime;
///
/// let mut pg = PowerGate::new(SimTime::from_ns(12.0));
/// let ready = pg.request_open(SimTime::ZERO);
/// assert_eq!(ready, SimTime::from_ns(12.0));  // first use pays the wake
/// pg.tick(ready);
/// assert_eq!(pg.request_open(ready), ready);  // already open: free
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowerGate {
    wake_latency: SimTime,
    state: GateState,
    opens: u64,
}

impl PowerGate {
    /// Creates a closed gate with the given staggered wake-up latency.
    pub fn new(wake_latency: SimTime) -> Self {
        PowerGate {
            wake_latency,
            state: GateState::Closed,
            opens: 0,
        }
    }

    /// A gate that is always open (parts without AVX power gating, e.g.
    /// Haswell — Figure 8(c) shows no first-iteration penalty there).
    pub fn always_open() -> Self {
        PowerGate {
            wake_latency: SimTime::ZERO,
            state: GateState::Open,
            opens: 0,
        }
    }

    /// Configured staggered wake-up latency.
    pub fn wake_latency(&self) -> SimTime {
        self.wake_latency
    }

    /// Current state.
    pub fn state(&self) -> GateState {
        self.state
    }

    /// Number of wake-ups performed (≥1 means first-iteration penalty
    /// already paid).
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// Requests the domain at `now`; returns the instant it is usable.
    /// Opening is idempotent while a wake is in flight.
    pub fn request_open(&mut self, now: SimTime) -> SimTime {
        match self.state {
            GateState::Open => now,
            GateState::Opening { ready_at } => ready_at.max(now),
            GateState::Closed => {
                let ready_at = now + self.wake_latency;
                self.state = GateState::Opening { ready_at };
                self.opens += 1;
                ready_at
            }
        }
    }

    /// Advances gate state to `now` (completes a finished wake).
    pub fn tick(&mut self, now: SimTime) {
        if let GateState::Opening { ready_at } = self.state {
            if now >= ready_at {
                self.state = GateState::Open;
            }
        }
    }

    /// Closes the gate (local PMU decision after an idle period).
    pub fn close(&mut self) {
        if self.wake_latency.is_zero() {
            // An always-open gate cannot be closed.
            return;
        }
        self.state = GateState::Closed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_open_pays_wake_latency() {
        let mut pg = PowerGate::new(SimTime::from_ns(10.0));
        let t0 = SimTime::from_us(1.0);
        let ready = pg.request_open(t0);
        assert_eq!(ready - t0, SimTime::from_ns(10.0));
        assert_eq!(pg.opens(), 1);
    }

    #[test]
    fn reopen_while_opening_is_idempotent() {
        let mut pg = PowerGate::new(SimTime::from_ns(10.0));
        let r1 = pg.request_open(SimTime::ZERO);
        let r2 = pg.request_open(SimTime::from_ns(4.0));
        assert_eq!(r1, r2);
        assert_eq!(pg.opens(), 1);
    }

    #[test]
    fn open_gate_is_free() {
        let mut pg = PowerGate::new(SimTime::from_ns(10.0));
        let ready = pg.request_open(SimTime::ZERO);
        pg.tick(ready);
        assert_eq!(pg.state(), GateState::Open);
        let t = SimTime::from_us(5.0);
        assert_eq!(pg.request_open(t), t);
        assert_eq!(pg.opens(), 1);
    }

    #[test]
    fn close_and_reopen_pays_again() {
        let mut pg = PowerGate::new(SimTime::from_ns(12.0));
        let r = pg.request_open(SimTime::ZERO);
        pg.tick(r);
        pg.close();
        assert_eq!(pg.state(), GateState::Closed);
        let r2 = pg.request_open(SimTime::from_us(700.0));
        assert_eq!(r2 - SimTime::from_us(700.0), SimTime::from_ns(12.0));
        assert_eq!(pg.opens(), 2);
    }

    #[test]
    fn always_open_never_closes() {
        let mut pg = PowerGate::always_open();
        assert_eq!(pg.state(), GateState::Open);
        pg.close();
        assert_eq!(pg.state(), GateState::Open);
        assert_eq!(
            pg.request_open(SimTime::from_ns(3.0)),
            SimTime::from_ns(3.0)
        );
    }

    #[test]
    fn wake_is_tiny_fraction_of_throttle_period() {
        // Key Conclusion 3: wake (8–15 ns) ≈ 0.1% of TP (12–15 µs).
        let wake = SimTime::from_ns(12.0);
        let tp = SimTime::from_us(13.0);
        let frac = wake / tp;
        assert!(frac < 0.002, "frac = {frac}");
    }
}

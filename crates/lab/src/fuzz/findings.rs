//! The replayable findings report (`fuzz_findings.jsonl`).
//!
//! One JSONL row per flagged case, in case-index order, rendered with
//! a stable field order through the same [`JsonlRow`] path the trial
//! streams use — so a findings file is byte-identical across runs,
//! thread counts, and shard splits (shard findings concatenate and
//! sort by case index back into the unsharded bytes).
//!
//! Every row carries enough to replay without the report: the fuzz
//! base seed plus the case index regenerate the sampled scenario, and
//! the shrunk cell key plus its derived trial seed pin the minimal
//! reproducer a characterization test should construct.

use ichannels_meter::export::{jsonl_to_string, JsonlRow};
use ichannels_meter::parse::{field, parse_jsonl_line, JsonValue};

use super::oracle::AnomalyKind;

/// One shrunk, replayable anomaly.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Case index within the fuzz run (replays the sampled scenario).
    pub case: u64,
    /// The fuzz run's base seed.
    pub seed: u64,
    /// Anomaly class label ([`AnomalyKind::label`]).
    pub kind: String,
    /// Cell key of the originally sampled scenario.
    pub cell: String,
    /// Derived trial seed of the sampled cell.
    pub cell_seed: u64,
    /// Measured error rate at the sampled cell (`NaN` for non-rate
    /// anomalies).
    pub measured: f64,
    /// The envelope it broke (`NaN` for non-rate anomalies).
    pub allowed: f64,
    /// Cell key of the minimal reproducer.
    pub shrunk_cell: String,
    /// Derived trial seed of the minimal reproducer.
    pub shrunk_seed: u64,
    /// Payload symbols of the minimal reproducer.
    pub shrunk_symbols: u64,
    /// Measured error rate at the minimal reproducer.
    pub shrunk_measured: f64,
    /// Envelope at the minimal reproducer.
    pub shrunk_allowed: f64,
    /// Accepted shrink steps.
    pub shrink_steps: u64,
    /// Oracle evaluations the shrinker spent.
    pub shrink_evals: u64,
    /// Readable context from the anomaly.
    pub detail: String,
}

impl Finding {
    /// Renders the finding as one JSONL row (stable field order).
    pub fn jsonl_row(&self) -> JsonlRow {
        JsonlRow::new()
            .int("case", self.case)
            .int("seed", self.seed)
            .str("kind", &self.kind)
            .str("cell", &self.cell)
            .int("cell_seed", self.cell_seed)
            .num("measured", self.measured)
            .num("allowed", self.allowed)
            .str("shrunk_cell", &self.shrunk_cell)
            .int("shrunk_seed", self.shrunk_seed)
            .int("shrunk_symbols", self.shrunk_symbols)
            .num("shrunk_measured", self.shrunk_measured)
            .num("shrunk_allowed", self.shrunk_allowed)
            .int("shrink_steps", self.shrink_steps)
            .int("shrink_evals", self.shrink_evals)
            .str("detail", &self.detail)
    }

    /// Parses one findings row back.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field or
    /// the underlying JSON syntax error.
    pub fn parse(line: &str) -> Result<Self, String> {
        let fields = parse_jsonl_line(line).map_err(|e| e.to_string())?;
        let text = |key: &str| -> Result<String, String> {
            field(&fields, key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field `{key}`"))
        };
        let uint = |key: &str| -> Result<u64, String> {
            field(&fields, key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("missing integer field `{key}`"))
        };
        let float = |key: &str| -> Result<f64, String> {
            field(&fields, key)
                .and_then(JsonValue::as_f64_or_nan)
                .ok_or_else(|| format!("missing numeric field `{key}`"))
        };
        Ok(Finding {
            case: uint("case")?,
            seed: uint("seed")?,
            kind: text("kind")?,
            cell: text("cell")?,
            cell_seed: uint("cell_seed")?,
            measured: float("measured")?,
            allowed: float("allowed")?,
            shrunk_cell: text("shrunk_cell")?,
            shrunk_seed: uint("shrunk_seed")?,
            shrunk_symbols: uint("shrunk_symbols")?,
            shrunk_measured: float("shrunk_measured")?,
            shrunk_allowed: float("shrunk_allowed")?,
            shrink_steps: uint("shrink_steps")?,
            shrink_evals: uint("shrink_evals")?,
            detail: text("detail")?,
        })
    }

    /// True for the anomaly-kind label.
    pub fn is_kind(&self, kind: AnomalyKind) -> bool {
        self.kind == kind.label()
    }
}

/// Renders findings as one in-memory JSONL document (rows in the
/// given order — callers keep case-index order).
pub fn findings_to_jsonl(findings: &[Finding]) -> String {
    let rows: Vec<JsonlRow> = findings.iter().map(Finding::jsonl_row).collect();
    jsonl_to_string(rows.iter())
}

/// Merges shard findings back into unsharded byte order: every finding
/// is pure in its case index, so sorting by case re-interleaves shard
/// outputs into exactly the unsharded report.
pub fn merge_findings(mut findings: Vec<Finding>) -> Vec<Finding> {
    findings.sort_by_key(|f| f.case);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Finding {
        Finding {
            case: 17,
            seed: 0xF0552,
            kind: AnomalyKind::ErrorRateDeviation.label().to_string(),
            cell: "cannon_lake/IccThreadCovert/high/none/noapp/randomx12".to_string(),
            cell_seed: 123,
            measured: 0.31,
            allowed: 0.22,
            shrunk_cell: "cannon_lake/IccThreadCovert/high/none/noapp/randomx4".to_string(),
            shrunk_seed: 456,
            shrunk_symbols: 4,
            shrunk_measured: 0.5,
            shrunk_allowed: 0.22,
            shrink_steps: 2,
            shrink_evals: 9,
            detail: "error rate 0.3100 breaks the model envelope 0.2200".to_string(),
        }
    }

    #[test]
    fn rows_round_trip_byte_exactly() {
        let mut nan_field = sample();
        nan_field.measured = f64::NAN;
        for f in [sample(), nan_field] {
            let line = f.jsonl_row().to_json();
            let reparsed = Finding::parse(&line).expect("row parses");
            assert_eq!(reparsed.jsonl_row().to_json(), line);
            assert_eq!(reparsed.cell, f.cell);
        }
    }

    #[test]
    fn merge_sorts_by_case() {
        let mut a = sample();
        a.case = 9;
        let mut b = sample();
        b.case = 2;
        let merged = merge_findings(vec![a.clone(), b.clone()]);
        assert_eq!(merged[0].case, 2);
        assert_eq!(findings_to_jsonl(&merged), findings_to_jsonl(&[b, a]),);
    }

    #[test]
    fn truncated_rows_fail_to_parse() {
        let line = sample().jsonl_row().to_json();
        assert!(Finding::parse(&line).is_ok());
        assert!(Finding::parse(&line[..line.len() / 2]).is_err());
        assert!(Finding::parse("{\"case\":1}").is_err());
    }
}

//! Randomized scenario generation for the fuzz harness.
//!
//! Every case is a pure function of `(base_seed, case_index)`: the
//! per-case RNG is seeded with `mix(base_seed, case)`, so a case's
//! scenario does not depend on sharding, threading, or which other
//! cases ran — the property that makes a findings report replayable
//! from its recorded seed and case index alone.
//!
//! The sampler only emits [`Scenario::supported`] combinations by
//! construction (channel kinds are drawn from the platform's
//! capabilities, multi-level cells keep the default receiver), so no
//! rejection loop is needed and every case index maps to exactly one
//! runnable scenario.

use ichannels::channel::ChannelKind;
use ichannels::mitigations::Mitigation;
use proptest::test_runner::TestRng;
use rand::Rng;

use crate::grid::fnv1a;
use crate::scenario::{
    mix, AlphabetSpec, AppKind, AppSpec, ChannelSelect, Knob, NoiseSpec, PayloadSpec, PlatformId,
    ReceiverSpec, Scenario,
};

/// The per-case RNG: seeded from the fuzz base seed and case index.
pub fn case_rng(base_seed: u64, case: u64) -> TestRng {
    TestRng::with_seed(mix(base_seed, case))
}

/// Derives the canonical trial seed for a fuzzed cell — the same
/// cell-key rule [`crate::grid::Grid`] uses (`mix(base ^ fnv1a(cell),
/// trial)`), so a fuzz finding replays the identical trial that a grid
/// sweep of that cell would run, and a shrunk variant gets the seed of
/// *its* cell rather than inheriting the original's.
pub fn cell_seed(base_seed: u64, scenario: &Scenario) -> u64 {
    mix(
        base_seed ^ fnv1a(&scenario.cell_key()),
        u64::from(scenario.trial),
    )
}

/// Rounds to one decimal, keeping cell-key labels short and stable.
fn one_decimal(v: f64) -> f64 {
    (v * 10.0).round() / 10.0
}

/// A log-uniform event rate in `[10^lo, 10^hi]`, rounded to an integer
/// so noise/app labels stay compact.
fn log_rate(rng: &mut TestRng, lo: f64, hi: f64) -> f64 {
    10f64.powf(rng.gen_range(lo..hi)).round()
}

/// Samples the fuzz scenario of one case. Pure in `(base_seed, case)`.
pub fn sample_scenario(base_seed: u64, case: u64) -> Scenario {
    let rng = &mut case_rng(base_seed, case);

    let platform = PlatformId::ALL[rng.gen_range(0..PlatformId::ALL.len())];
    let spec = platform.spec();
    let mut kinds = vec![ChannelKind::Thread];
    if spec.smt {
        kinds.push(ChannelKind::Smt);
    }
    if spec.n_cores >= 2 {
        kinds.push(ChannelKind::Cores);
    }
    let kind = kinds[rng.gen_range(0..kinds.len())];

    let alphabets = [
        AlphabetSpec::Paper4,
        AlphabetSpec::Phi6,
        AlphabetSpec::Full7,
    ];
    let channel = if rng.gen_bool(0.25) {
        ChannelSelect::MultiLevel(kind, alphabets[rng.gen_range(0..alphabets.len())])
    } else {
        ChannelSelect::Icc(kind)
    };
    let levels = match channel {
        ChannelSelect::MultiLevel(_, alpha) => alpha.levels(),
        _ => 4,
    };

    // The multi-level channel decodes its own alphabet: only the
    // default receiver is a supported combination there.
    let receiver = if matches!(channel, ChannelSelect::MultiLevel(..)) || rng.gen_bool(0.6) {
        ReceiverSpec::Calibrated
    } else if rng.gen_bool(0.5) {
        ReceiverSpec::Legacy
    } else {
        ReceiverSpec::Fixed {
            window_scale: f64::from(rng.gen_range(1u32..=6)) * 0.5,
            votes: rng.gen_range(1..=7),
        }
    };

    let noise = match rng.gen_range(0u32..5) {
        0 => NoiseSpec::Quiet,
        1 => NoiseSpec::Low,
        2 => NoiseSpec::High,
        3 => NoiseSpec::Interrupts(log_rate(rng, 1.0, 4.0)),
        _ => NoiseSpec::CtxSwitches(log_rate(rng, 1.0, 4.0)),
    };

    let mut mitigations = Vec::new();
    for m in [
        Mitigation::PerCoreVr,
        Mitigation::ImprovedThrottling,
        Mitigation::SecureMode,
    ] {
        if rng.gen_bool(0.15) {
            mitigations.push(m);
        }
    }

    let app = rng.gen_bool(0.3).then(|| {
        let kind = match rng.gen_range(0u32..3) {
            0 => AppKind::RandomLevels,
            1 => AppKind::FixedLevel(rng.gen_range(0u8..4)),
            _ => AppKind::SevenZip,
        };
        AppSpec {
            kind,
            rate_hz: log_rate(rng, 1.0, 3.5),
            burst_insts: 20_000,
        }
    });

    let knob = rng.gen_bool(0.25).then(|| match rng.gen_range(0u32..3) {
        // Wide, deliberately including schedule-hostile reset times:
        // the point of fuzzing is configurations nobody hand-picked.
        0 => Knob::VrSlew(one_decimal(rng.gen_range(0.5..12.0))),
        1 => Knob::ResetTimeUs(f64::from(rng.gen_range(5u32..=400))),
        _ => Knob::MeasurementJitterNs(f64::from(rng.gen_range(0u32..=2_000))),
    });

    let payload = if rng.gen_bool(0.8) {
        PayloadSpec::Random
    } else {
        PayloadSpec::Constant(rng.gen_range(0..levels as u8))
    };

    let freq_ghz = rng
        .gen_bool(0.3)
        .then(|| f64::from(rng.gen_range(8u32..=35)) / 10.0);

    let mut s = Scenario {
        platform,
        channel,
        noise,
        mitigations,
        app,
        knob,
        receiver,
        payload,
        payload_symbols: rng.gen_range(4usize..=24),
        calib_reps: rng.gen_range(1usize..=3),
        freq_ghz,
        trial: 0,
        seed: 0,
    };
    debug_assert!(s.supported(), "sampler built unsupported {}", s.label());
    s.seed = cell_seed(base_seed, &s);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_pure_and_supported() {
        for case in 0..256 {
            let a = sample_scenario(0xF0552, case);
            let b = sample_scenario(0xF0552, case);
            assert_eq!(a, b, "case {case} is not a pure function of (seed, case)");
            assert!(
                a.supported(),
                "case {case} sampled unsupported {}",
                a.label()
            );
        }
    }

    #[test]
    fn seeds_follow_the_grid_cell_rule() {
        let s = sample_scenario(7, 3);
        assert_eq!(s.seed, mix(7 ^ fnv1a(&s.cell_key()), 0));
    }

    #[test]
    fn different_seeds_draw_different_streams() {
        let a: Vec<String> = (0..32).map(|c| sample_scenario(1, c).label()).collect();
        let b: Vec<String> = (0..32).map(|c| sample_scenario(2, c).label()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn the_space_is_actually_wide() {
        // 256 cases must cover every platform, both channel families,
        // and off-default receivers/knobs/apps — otherwise the sampler
        // is quietly stuck in a corner.
        let scenarios: Vec<Scenario> = (0..256).map(|c| sample_scenario(0xF0552, c)).collect();
        for p in PlatformId::ALL {
            assert!(
                scenarios.iter().any(|s| s.platform == p),
                "{p:?} never sampled"
            );
        }
        assert!(scenarios
            .iter()
            .any(|s| matches!(s.channel, ChannelSelect::MultiLevel(..))));
        assert!(scenarios
            .iter()
            .any(|s| matches!(s.channel, ChannelSelect::Icc(_))));
        assert!(scenarios.iter().any(|s| !s.receiver.is_default()));
        assert!(scenarios.iter().any(|s| s.knob.is_some()));
        assert!(scenarios.iter().any(|s| s.app.is_some()));
        assert!(scenarios.iter().any(|s| !s.mitigations.is_empty()));
    }
}

//! The anomaly oracle: what a fuzzed cell is *allowed* to do.
//!
//! The oracle folds three checks over a trial:
//!
//! 1. **Engine invariants** — a trial must be a pure function of its
//!    scenario (run twice, byte-compare the rendered row), and on
//!    client rails the calibrated receiver must resolve to identity
//!    tuning (byte-identical to a legacy-receiver twin with the same
//!    seed — the PR-4 guarantee `tests/receiver_invariance.rs` pins
//!    for the catalog, here extended to arbitrary fuzzed cells).
//! 2. **Error classification** — a typed `ChannelError` is *expected*
//!    only where the configuration collapses the slot schedule (a
//!    reset-time override below the 40 µs transaction loop); any other
//!    errored cell is an anomaly.
//! 3. **Error-rate envelope** — a clean trial's BER (SER for the
//!    multi-level channel) must stay inside an envelope predicted from
//!    the load-line/guard-band model: the platform's separation
//!    compression against the client reference rail plus additive
//!    terms for each degrading axis (noise rate, interfering app,
//!    mitigations, slew/jitter knobs, receiver tuning), all calibrated
//!    against the golden campaign sweeps.
//!
//! The envelope is deliberately one-sided (an upper bound): fuzzing
//! hunts cells that are *worse* than the physics says they may be.

use ichannels_pdn::loadline::LoadLine;

use crate::report::{TrialRecord, TrialRow};
use crate::scenario::{
    AlphabetSpec, AppKind, ChannelSelect, Knob, NoiseSpec, ReceiverSpec, Scenario,
};

/// Reset-time overrides below the 40 µs transaction loop collapse the
/// slot schedule; errors there are expected, anywhere else they are
/// findings.
pub const SCHEDULE_FLOOR_US: f64 = 40.0;

/// What a flagged cell did wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// Measured BER/SER above the model envelope.
    ErrorRateDeviation,
    /// A `ChannelError` outside the expected schedule-collapse region.
    UnexpectedError,
    /// Two runs of the same scenario rendered different rows.
    PurityViolation,
    /// Calibrated vs legacy receiver diverged on an uncompressed rail.
    ReceiverDivergence,
}

impl AnomalyKind {
    /// Stable label used in findings rows.
    pub const fn label(self) -> &'static str {
        match self {
            AnomalyKind::ErrorRateDeviation => "error-rate-deviation",
            AnomalyKind::UnexpectedError => "unexpected-error",
            AnomalyKind::PurityViolation => "purity-violation",
            AnomalyKind::ReceiverDivergence => "receiver-divergence",
        }
    }
}

/// One flagged deviation: the kind plus the measured-vs-allowed pair
/// (`NaN` where a kind has no numeric axis) and a readable detail.
#[derive(Debug, Clone, PartialEq)]
pub struct Anomaly {
    /// What went wrong.
    pub kind: AnomalyKind,
    /// Measured error rate (BER/SER), `NaN` for non-rate anomalies.
    pub measured: f64,
    /// The envelope the measurement broke, `NaN` for non-rate kinds.
    pub allowed: f64,
    /// Readable context (error message, diverging field, …).
    pub detail: String,
}

/// The anomaly oracle, parameterized by the base tolerance every
/// envelope starts from (`--tolerance`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Oracle {
    /// Base slack added to every envelope.
    pub tolerance: f64,
}

impl Default for Oracle {
    fn default() -> Self {
        Oracle { tolerance: 0.02 }
    }
}

/// The platform's level-separation compression against the client
/// reference rail (1.0 on clients, ~0.56 on the skylake server).
pub fn separation_compression(s: &Scenario) -> f64 {
    LoadLine::new(s.platform.spec().rll_mohm).separation_compression(&LoadLine::client_reference())
}

/// The measured error rate of a record: BER where defined (IChannel
/// cells), SER otherwise (multi-level cells).
pub fn error_rate(record: &TrialRecord) -> f64 {
    if record.metrics.ber.is_finite() {
        record.metrics.ber
    } else {
        record.metrics.ser
    }
}

fn row_bytes(record: &TrialRecord) -> String {
    TrialRow::from_record(record).jsonl_row().to_json()
}

impl Oracle {
    /// An oracle with the given base tolerance.
    pub fn new(tolerance: f64) -> Self {
        Oracle { tolerance }
    }

    /// True where a typed `ChannelError` is the *predicted* outcome: a
    /// reset-time knob below the transaction loop starves the slot
    /// schedule.
    pub fn error_expected(&self, s: &Scenario) -> bool {
        matches!(s.knob, Some(Knob::ResetTimeUs(us)) if us < SCHEDULE_FLOOR_US)
    }

    /// The model's upper bound on a clean cell's error rate: base
    /// tolerance plus one additive term per degrading axis, clamped to
    /// a near-coin-flip ceiling. Terms are calibrated against the
    /// golden campaign sweeps (noise_robustness, fig14c, the knob
    /// ablations, receiver_calibration) and a 2048-case fuzz sweep of
    /// the default seed.
    pub fn allowed_error_rate(&self, s: &Scenario) -> f64 {
        // Mitigations exist to destroy the channel: §7 cells routinely
        // measure 0.5–1.0, so a mitigated cell has no upper bound and
        // never flags (it still exercises the purity/error oracles).
        if !s.mitigations.is_empty() {
            return 1.0;
        }

        let mut allowed = self.tolerance;

        // Quantization slack: with n payload symbols one corrupted
        // symbol already costs 1/n, so short trials get proportionally
        // more room before a single hit counts as a deviation.
        allowed += 1.5 / s.payload_symbols as f64;

        // OS noise. The thread channel rides out most events
        // (noise_robustness goldens: irq10000 → 0.0125, ctx10000 →
        // 0.0375 at 40 symbols); the SMT and cross-core channels sit
        // on shared rails and run measurably hotter in the fuzz sweep.
        let kind_mult = match s.channel {
            ChannelSelect::Icc(kind) | ChannelSelect::MultiLevel(kind, _) => match kind {
                ichannels::channel::ChannelKind::Thread => 1.0,
                _ => 1.6,
            },
            _ => 1.0,
        };
        let noise_term = match s.noise {
            NoiseSpec::Quiet => 0.0,
            NoiseSpec::Low => 0.05,
            NoiseSpec::High => 0.30,
            NoiseSpec::Interrupts(r) => (r / 8_000.0).min(0.50),
            NoiseSpec::CtxSwitches(r) => (r / 5_000.0).min(0.55),
        };
        allowed += (noise_term * kind_mult).min(0.60);

        // Concurrent app (fig14c: 1 kHz → 0.0375, 10 kHz → 0.225;
        // fixed-level PHI streams collide harder than random ones).
        if let Some(app) = s.app {
            allowed += match app.kind {
                AppKind::SevenZip => 0.10,
                AppKind::FixedLevel(_) => 0.08 + (app.rate_hz / 10_000.0).min(0.30),
                AppKind::RandomLevels => 0.06 + (app.rate_hz / 12_000.0).min(0.30),
            };
        }

        // Design-knob overrides (the ablation goldens: slew 4.8 →
        // 0.10, 19.2 → 0.15; jitter is large and non-monotonic past
        // ~200 ns: 400 ns → 0.23, 1600 ns → 0.27).
        match s.knob {
            Some(Knob::VrSlew(v)) => {
                allowed += if v > 2.4 {
                    (0.04 * (v - 2.4)).min(0.30)
                } else {
                    0.05
                };
            }
            Some(Knob::MeasurementJitterNs(ns)) => {
                allowed += if ns > 200.0 { 0.45 } else { ns / 200.0 * 0.10 };
            }
            Some(Knob::ResetTimeUs(us)) => {
                // Above the schedule floor the protocol adapts its slot
                // period; near the floor the margins get thin.
                allowed += if us < 1.5 * SCHEDULE_FLOOR_US {
                    0.10
                } else {
                    0.03
                };
            }
            None => {}
        }

        // Receiver tuning: the calibrated default owes a clean decode
        // everywhere (its contract — on the compressed server rail it
        // votes its way back to parity, the PR-4 fix), and on client
        // rails legacy/fixed tunings resolve to the same identity
        // behavior. Legacy and fixed tunings on a *compressed* rail
        // carry no promise at all (skylake legacy golden: 0.10–0.19),
        // and a fixed window scaled into neighboring slots is degraded
        // anywhere.
        let compression = separation_compression(s);
        match s.receiver {
            ReceiverSpec::Calibrated => {}
            ReceiverSpec::Legacy | ReceiverSpec::Fixed { .. } if compression < 0.99 => {
                return 1.0;
            }
            ReceiverSpec::Legacy => {}
            ReceiverSpec::Fixed { window_scale, .. } => {
                if !(0.99..=1.01).contains(&window_scale) {
                    allowed += 0.15;
                }
            }
        }

        // Wider alphabets pack levels tighter (SER envelopes).
        if let ChannelSelect::MultiLevel(_, alpha) = s.channel {
            allowed += match alpha {
                AlphabetSpec::Paper4 => 0.0,
                AlphabetSpec::Phi6 => 0.05,
                AlphabetSpec::Full7 => 0.10,
            };
        }

        // Off-default frequency pins: the guard-band model (fig09c)
        // says the levels stay separable at every pstate, so the
        // envelope concedes only a small margin here. The fuzz sweep
        // shows high pins on client rails measuring far above it —
        // the receiver is calibrated at the platform default operating
        // point, the same bug class as the PR-2 skylake outlier. That
        // deviation is exactly what the hunter exists to surface, so
        // the term stays honest rather than absorbing the finding.
        if s.freq_ghz.is_some() {
            allowed += 0.08;
        }

        allowed.min(0.95)
    }

    /// Runs one scenario through every check and returns its anomaly,
    /// if any. Pure in the scenario (all reruns reuse its seed).
    pub fn judge(&self, s: &Scenario) -> Option<Anomaly> {
        let record = s.run();

        // Invariant: purity. Two runs of one scenario must render the
        // same bytes regardless of process state (memo warm or cold).
        let rerun = s.run();
        let (bytes, rerun_bytes) = (row_bytes(&record), row_bytes(&rerun));
        if bytes != rerun_bytes {
            return Some(Anomaly {
                kind: AnomalyKind::PurityViolation,
                measured: f64::NAN,
                allowed: f64::NAN,
                detail: format!("rerun diverged: {bytes} vs {rerun_bytes}"),
            });
        }

        // Errored cells: expected only in the schedule-collapse region.
        if let Some(err) = &record.error {
            if self.error_expected(s) {
                return None;
            }
            return Some(Anomaly {
                kind: AnomalyKind::UnexpectedError,
                measured: f64::NAN,
                allowed: f64::NAN,
                detail: err.clone(),
            });
        }

        // Invariant: receiver identity on uncompressed rails. The
        // legacy twin keeps the scenario's seed, so only the
        // demodulator differs; its row differs only by the `/rx-legacy`
        // cell-key segment.
        if matches!(s.channel, ChannelSelect::Icc(_))
            && s.receiver == ReceiverSpec::Calibrated
            && separation_compression(s) >= 0.99
        {
            let mut twin = s.clone();
            twin.receiver = ReceiverSpec::Legacy;
            let twin_bytes = row_bytes(&twin.run()).replace("/rx-legacy", "");
            if twin_bytes != bytes {
                return Some(Anomaly {
                    kind: AnomalyKind::ReceiverDivergence,
                    measured: f64::NAN,
                    allowed: f64::NAN,
                    detail: format!("calibrated {bytes} vs legacy twin {twin_bytes}"),
                });
            }
        }

        // Envelope check.
        let measured = error_rate(&record);
        let allowed = self.allowed_error_rate(s);
        if measured.is_finite() && measured > allowed {
            return Some(Anomaly {
                kind: AnomalyKind::ErrorRateDeviation,
                measured,
                allowed,
                detail: format!(
                    "error rate {measured:.4} breaks the model envelope {allowed:.4} \
                     (separation compression {:.2})",
                    separation_compression(s)
                ),
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{PayloadSpec, PlatformId};
    use ichannels::channel::ChannelKind;

    fn base() -> Scenario {
        Scenario {
            platform: PlatformId::CannonLake,
            channel: ChannelSelect::Icc(ChannelKind::Thread),
            noise: NoiseSpec::Quiet,
            mitigations: vec![],
            app: None,
            knob: None,
            receiver: ReceiverSpec::Calibrated,
            payload: PayloadSpec::Random,
            payload_symbols: 8,
            calib_reps: 2,
            freq_ghz: None,
            trial: 0,
            seed: 7,
        }
    }

    #[test]
    fn quiet_default_cell_passes() {
        assert_eq!(Oracle::default().judge(&base()), None);
    }

    #[test]
    fn schedule_collapse_is_expected_not_flagged() {
        let mut s = base();
        s.knob = Some(Knob::ResetTimeUs(0.001));
        s.payload = PayloadSpec::Constant(3);
        s.payload_symbols = 24;
        assert!(s.run().error.is_some(), "collapse must reproduce");
        assert_eq!(Oracle::default().judge(&s), None);
    }

    #[test]
    fn envelope_orders_match_the_physics() {
        let oracle = Oracle::default();
        let quiet = oracle.allowed_error_rate(&base());
        let mut noisy = base();
        noisy.noise = NoiseSpec::High;
        assert!(oracle.allowed_error_rate(&noisy) > quiet);
        let mut mitigated = base();
        mitigated.mitigations = vec![ichannels::mitigations::Mitigation::SecureMode];
        assert_eq!(oracle.allowed_error_rate(&mitigated), 1.0);
        // Legacy on the compressed server rail is unpredicted; the
        // calibrated default keeps its tight envelope there.
        let mut server = base();
        server.platform = PlatformId::SkylakeServer;
        server.channel = ChannelSelect::Icc(ChannelKind::Cores);
        assert_eq!(oracle.allowed_error_rate(&server), quiet);
        server.receiver = ReceiverSpec::Legacy;
        assert_eq!(oracle.allowed_error_rate(&server), 1.0);
        // Short trials get quantization slack.
        let mut long = base();
        long.payload_symbols = 32;
        assert!(oracle.allowed_error_rate(&long) < quiet);
    }

    #[test]
    fn compression_matches_the_pr4_characterization() {
        let mut server = base();
        server.platform = PlatformId::SkylakeServer;
        let c = separation_compression(&server);
        assert!((0.5..0.6).contains(&c), "server compression {c}");
        assert_eq!(separation_compression(&base()), 1.0);
    }
}
